//! Quickstart: build a dual-structure index over a handful of documents,
//! flush a batch, and query it — the smallest end-to-end tour of the
//! public API.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use invidx::core::index::{DualIndex, IndexConfig};
use invidx::core::policy::Policy;
use invidx::core::types::{DocId, WordId};
use invidx::disk::sparse_array;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two simulated disks of 10k 256-byte blocks, first-fit allocation.
    let array = sparse_array(2, 10_000, 256);

    // A small configuration: 16 buckets of 40 units, 10 postings/block,
    // and the paper's recommended balanced policy (new style, in-place
    // updates, proportional reservation k = 2).
    let config = IndexConfig::small().with_policy(Policy::balanced());
    let mut index = DualIndex::create(array, config)?;

    // Batch 1: documents arrive with increasing ids; each insert lists the
    // distinct words of the document.
    index.insert_document(DocId(1), [WordId(10), WordId(20), WordId(30)])?;
    index.insert_document(DocId(2), [WordId(10), WordId(20)])?;
    index.insert_document(DocId(3), [WordId(10)])?;
    let report = index.flush_batch()?;
    println!(
        "batch {}: {} words, {} postings ({} new)",
        report.batch, report.words, report.postings, report.new_words
    );

    // Batch 2: the index is incremental — no rebuild, just another flush.
    index.insert_document(DocId(4), [WordId(10), WordId(40)])?;
    index.insert_document(DocId(5), [WordId(20)])?;
    index.flush_batch()?;

    // Queries merge stored postings with anything still in memory.
    let list = index.postings(WordId(10))?;
    println!(
        "word 10 appears in documents {:?}",
        list.docs().iter().map(|d| d.0).collect::<Vec<_>>()
    );
    assert_eq!(list.len(), 4);

    // Every word lives in exactly one structure: a bucket (short) or the
    // long-list directory — never both.
    for w in [10u64, 20, 30, 40] {
        println!(
            "word {w}: location {:?}, read cost {} ops",
            index.location(WordId(w)),
            index.read_cost(WordId(w))
        );
    }

    // Logical deletion filters immediately; sweep reclaims space.
    index.delete_document(DocId(1));
    assert_eq!(index.postings(WordId(30))?.len(), 0);
    let sweep = index.sweep()?;
    println!("sweep removed {} postings", sweep.postings_removed);
    Ok(())
}
