//! Crash recovery and bucket rebalancing: the operational story.
//!
//! Builds a file-backed index batch by batch, "crashes" between batches
//! (drops the process state), re-opens from the device files, verifies
//! nothing flushed was lost — then grows the bucket space online (the
//! paper's §7 rebalancing) and keeps going.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use invidx::core::index::{DualIndex, IndexConfig};
use invidx::core::policy::Policy;
use invidx::core::types::{DocId, WordId};
use invidx::corpus::{CorpusGenerator, CorpusParams};
use invidx::disk::{BlockDevice, Disk, DiskArray, FileDevice, FitStrategy, FreeList};
use std::path::Path;

const BLOCK: usize = 512;
const BLOCKS: u64 = 100_000;

fn file_array(dir: &Path, create: bool) -> DiskArray {
    let disks = (0..2u16)
        .map(|d| {
            let path = dir.join(format!("disk{d}.bin"));
            let device: Box<dyn BlockDevice> = if create {
                Box::new(FileDevice::create(&path, BLOCKS, BLOCK).expect("create device"))
            } else {
                Box::new(FileDevice::open(&path, BLOCK).expect("open device"))
            };
            Disk { device, alloc: Box::new(FreeList::new(BLOCKS, FitStrategy::FirstFit)) }
        })
        .collect();
    DiskArray::new(disks)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("invidx-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let config = IndexConfig::builder()
        .num_buckets(64)
        .bucket_capacity_units(120)
        .block_postings(25)
        .policy(Policy::balanced())
        .materialize_buckets(true) // recovery needs real bytes
        .build()?;
    let corpus = CorpusParams {
        days: 8,
        docs_per_weekday: 80,
        vocab_ranks: 20_000,
        ..CorpusParams::tiny()
    };

    // Phase 1: index four days, then "crash".
    let days: Vec<_> = CorpusGenerator::new(corpus).collect();
    {
        let mut index = DualIndex::create(file_array(&dir, true), config)?;
        for day in &days[..4] {
            for doc in &day.docs {
                index.insert_document(
                    DocId(doc.id + 1),
                    doc.word_ranks.iter().map(|&r| WordId(r)),
                )?;
            }
            let r = index.flush_batch()?;
            println!("day {}: flushed {} words, {} postings", day.day, r.words, r.postings);
        }
        // Day 5 is buffered but never flushed: it will not survive.
        for doc in &days[4].docs {
            index
                .insert_document(DocId(doc.id + 1), doc.word_ranks.iter().map(|&r| WordId(r)))?;
        }
        println!("day 4 buffered ({} docs) — crashing now", days[4].docs.len());
    } // <- process dies here; only the device files remain

    // Phase 2: recover.
    let mut index = DualIndex::open(file_array(&dir, false), config)?;
    println!(
        "\nrecovered: {} batches, {} short words, {} long words",
        index.batches(),
        index.buckets().total_words(),
        index.directory().num_words()
    );
    assert_eq!(index.batches(), 4);
    let frequent = index.postings(WordId(1))?;
    println!("word 1 has {} postings (batch boundary held)", frequent.len());

    // Phase 3: the index has grown — rebalance the bucket space (§7) and
    // continue with the remaining days, re-flushing day 4's documents.
    let report = index.rebalance_buckets(256, 160)?;
    println!(
        "rebalanced {} -> {} buckets ({} short lists moved, {} evicted)",
        report.old_buckets, report.new_buckets, report.moved_words, report.evictions
    );
    for day in &days[4..] {
        for doc in &day.docs {
            index
                .insert_document(DocId(doc.id + 1), doc.word_ranks.iter().map(|&r| WordId(r)))?;
        }
        index.flush_batch()?;
    }
    println!(
        "\nfinal: {} batches, word 1 in {} documents",
        index.batches(),
        index.postings(WordId(1))?.len()
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
