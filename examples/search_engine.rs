//! A small text search engine over the dual-structure index: real text in,
//! boolean and vector-space queries out — including the paper's own
//! example query `(cat and dog) or mouse`.
//!
//! ```sh
//! cargo run --example search_engine
//! ```

use invidx::core::index::IndexConfig;
use invidx::core::policy::Policy;
use invidx::disk::sparse_array;
use invidx::ir::SearchEngine;

const ARTICLES: &[(&str, &str)] = &[
    ("pets-1", "The cat and the dog shared a basket while the mouse watched from the wall."),
    ("pets-2", "A dog chased the mouse across the yard until the cat intervened."),
    ("pets-3", "Date: ignored header line\nOnly the mouse appears in this short note about cheese."),
    ("db-1", "Inverted lists map each word to the documents containing it; updates append postings."),
    ("db-2", "Incremental updates of inverted lists avoid rebuilding the index every weekend."),
    ("db-3", "Buckets hold short lists for infrequent words; long lists get contiguous chunks."),
    ("sys-1", "Disk seeks dominate scattered writes; sequential writes run at the data rate."),
    ("sys-2", "The RS6000 model 530 drove 8 SCSI disks in 1994 experiments."),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let array = sparse_array(2, 50_000, 256);
    let mut engine = SearchEngine::create(array, IndexConfig::small().with_policy(Policy::query_optimized()))?;

    let mut names = Vec::new();
    for (name, text) in ARTICLES {
        let id = engine.add_document(text)?;
        names.push((id, *name));
    }
    engine.flush()?;
    println!("indexed {} documents, {} distinct words\n", engine.total_docs(), engine.vocabulary_size());

    let label = |id: invidx::core::DocId| {
        names.iter().find(|(d, _)| *d == id).map(|(_, n)| *n).unwrap_or("?")
    };

    // The paper's boolean example.
    for query in ["(cat and dog) or mouse", "inverted and lists", "updates and not weekend", "disks or scsi"] {
        let hits = engine.boolean_str(query)?;
        println!(
            "boolean {query:32} -> {:?}",
            hits.docs().iter().map(|&d| label(d)).collect::<Vec<_>>()
        );
    }

    // Vector-space: "a query may be derived from a document".
    println!();
    for probe in ["incremental inverted index updates", "cat mouse cheese"] {
        let hits = engine.more_like_this(probe, 3)?;
        println!("vector  {probe:32} ->");
        for h in hits {
            println!("    {:8} score {:.3}", label(h.doc), h.score);
        }
    }
    Ok(())
}
