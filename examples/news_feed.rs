//! A dynamic news-feed index: the paper's motivating scenario. Daily
//! batches of articles arrive; the index is updated **in place** — no
//! weekend rebuilds — while staying queryable throughout, including for
//! documents that have not been flushed yet.
//!
//! ```sh
//! cargo run --release --example news_feed
//! ```

use invidx::core::index::{DualIndex, IndexConfig, WordLocation};
use invidx::core::policy::Policy;
use invidx::core::types::{DocId, WordId};
use invidx::corpus::{CorpusGenerator, CorpusParams};
use invidx::disk::sparse_array;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two weeks of synthetic NetNews with the weekly Saturday dip.
    let corpus = CorpusParams {
        days: 14,
        docs_per_weekday: 120,
        vocab_ranks: 60_000,
        ..CorpusParams::tiny()
    };

    let array = sparse_array(4, 500_000, 512);
    let config = IndexConfig::builder()
        .num_buckets(256)
        .bucket_capacity_units(150)
        .block_postings(20)
        .policy(Policy::balanced())
        .materialize_buckets(true)
        .build()?;
    let mut index = DualIndex::create(array, config)?;

    // Watch one frequent and one rare word migrate (or not).
    let frequent = WordId(1); // rank 1: in almost every article
    let rare = WordId(40_001);

    for day in CorpusGenerator::new(corpus) {
        for doc in &day.docs {
            index.insert_document(DocId(doc.id + 1), doc.word_ranks.iter().map(|&r| WordId(r)))?;
        }
        // Mid-day query: unflushed postings are visible.
        let visible = index.postings(frequent)?.len();
        let report = index.flush_batch()?;
        println!(
            "day {:>2}: {:>4} docs, {:>5} words ({:>4} new, {:>4} long) | \
             'the'-like word: {:>4} docs visible, now {:?}",
            day.day,
            day.docs.len(),
            report.words,
            report.new_words,
            report.long_words,
            visible,
            index.location(frequent),
        );
    }

    println!(
        "\nfinal: frequent word is {:?} with read cost {}; rare word is {:?}",
        index.location(frequent),
        index.read_cost(frequent),
        index.location(rare),
    );
    assert_eq!(index.location(frequent), WordLocation::Long);

    // Retire the first day's articles, as a rolling-window feed would.
    let first_day_docs = index.postings(frequent)?.docs().first().copied();
    if let Some(first) = first_day_docs {
        for d in first.0..first.0 + 50 {
            index.delete_document(DocId(d));
        }
        let sweep = index.sweep()?;
        println!(
            "retired 50 articles: {} postings reclaimed, {} long lists rewritten",
            sweep.postings_removed, sweep.long_rewritten
        );
    }
    Ok(())
}
