//! Policy explorer: run the paper's five headline policies over one shared
//! workload (reduced scale) and print the §5.4 "Bottom Line" comparison —
//! update time, query cost, and space utilization, plus which policy wins
//! under which criterion.
//!
//! ```sh
//! cargo run --release --example policy_explorer
//! ```

use invidx::core::policy::{Alloc, Limit, Policy, Style};
use invidx::sim::{Experiment, SimParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = SimParams::tiny();
    println!(
        "preparing workload: {} batches over {} buckets ...",
        params.corpus.days, params.buckets
    );
    let exp = Experiment::prepare(params)?;
    println!(
        "{} postings -> {} long-list updates\n",
        exp.corpus_stats.total_postings,
        exp.buckets.total_updates()
    );

    let policies = vec![
        Policy::update_optimized(),                                      // new 0
        Policy::balanced(),                                              // new z prop 2
        Policy::extent_based(),                                          // fill z e=4
        Policy::new(Style::Whole, Limit::Never, Alloc::Constant { k: 0 }), // whole 0
        Policy::query_optimized(),                                       // whole z prop 1.2
    ];

    println!(
        "{:<18} {:>10} {:>10} {:>8} {:>10}",
        "policy", "build s", "I/O ops", "reads", "util"
    );
    let mut rows = Vec::new();
    for policy in policies {
        let run = exp.run_policy(policy)?;
        println!(
            "{:<18} {:>10.1} {:>10} {:>8.2} {:>10.2}",
            policy.label(),
            run.exercise.total_seconds(),
            run.disks.trace.ops.len(),
            run.disks.final_avg_reads,
            run.disks.final_utilization,
        );
        rows.push((policy, run));
    }

    let fastest = rows
        .iter()
        .min_by(|a, b| a.1.exercise.total_seconds().total_cmp(&b.1.exercise.total_seconds()))
        .expect("rows");
    let best_query = rows
        .iter()
        .min_by(|a, b| a.1.disks.final_avg_reads.total_cmp(&b.1.disks.final_avg_reads))
        .expect("rows");
    println!("\nBottom line (paper §5.4):");
    println!(
        "  fastest build:     {} ({:.1}s) — use when query performance is not critical",
        fastest.0.label(),
        fastest.1.exercise.total_seconds()
    );
    println!(
        "  best query cost:   {} ({:.2} reads/list) — use when query performance is critical",
        best_query.0.label(),
        best_query.1.disks.final_avg_reads
    );
    Ok(())
}
