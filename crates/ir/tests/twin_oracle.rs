//! Twin-oracle property test: the segment-tiered engine must be
//! *observationally identical* to the paper's in-place engine.
//!
//! Two `SearchEngine`s are fed the exact same randomized schedule of
//! document batches, deletions, and flushes — one on
//! [`EngineKind::InPlace`], one on [`EngineKind::Segmented`] with a tiny
//! L0 budget and fanout so that seals and merges fire constantly. After
//! every flush the full query surface is compared: boolean queries,
//! phrases, proximity windows, more-like-this (scores bit-exact), stored
//! documents, and term document frequencies. Any divergence means the
//! tiering leaked into query semantics.

use invidx_core::index::{EngineKind, IndexConfig};
use invidx_core::types::DocId;
use invidx_disk::sparse_array;
use invidx_ir::SearchEngine;
use proptest::prelude::*;

/// A small closed vocabulary so generated docs, queries, and phrases
/// collide constantly.
const VOCAB: &[&str] = &[
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india", "juliet",
];

#[derive(Debug, Clone)]
struct Batch {
    /// Each document is a sequence of vocabulary indices.
    docs: Vec<Vec<usize>>,
    /// Indices (mod docs-so-far) deleted after this batch's inserts.
    deletes: Vec<u32>,
}

fn arb_batch() -> impl Strategy<Value = Batch> {
    (
        prop::collection::vec(prop::collection::vec(0usize..VOCAB.len(), 1..12), 1..6),
        prop::collection::vec(0u32..64, 0..3),
    )
        .prop_map(|(docs, deletes)| Batch { docs, deletes })
}

fn engines(l0_budget: u64, fanout: u32) -> (SearchEngine, SearchEngine) {
    let inplace = SearchEngine::create(sparse_array(2, 40_000, 256), IndexConfig::small())
        .expect("in-place engine");
    let seg_config =
        IndexConfig { engine: EngineKind::Segmented { l0_budget, fanout }, ..IndexConfig::small() };
    let segmented =
        SearchEngine::create(sparse_array(2, 40_000, 256), seg_config).expect("segmented engine");
    (inplace, segmented)
}

fn text(doc: &[usize]) -> String {
    doc.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" ")
}

/// Compare every query surface the engine exposes. `LIKE` scores must be
/// bit-exact, not approximately equal: both engines fold the same doc
/// frequencies in the same order.
fn assert_twins(a: &SearchEngine, b: &SearchEngine) {
    // QUERY: a fixed grammar sweep over the closed vocabulary.
    for w1 in ["alpha", "bravo", "charlie"] {
        for w2 in ["delta", "echo", "juliet"] {
            for q in [
                format!("{w1} and {w2}"),
                format!("{w1} or {w2}"),
                format!("({w1} or {w2}) and not golf"),
            ] {
                let pa = a.boolean_str(&q).expect("in-place boolean");
                let pb = b.boolean_str(&q).expect("segmented boolean");
                assert_eq!(pa.docs(), pb.docs(), "QUERY diverged: {q}");
            }
        }
    }
    // PHRASE and NEAR.
    for pair in [("alpha", "bravo"), ("echo", "foxtrot"), ("india", "juliet")] {
        let (w1, w2) = pair;
        let pa = a.phrase(&format!("{w1} {w2}")).expect("in-place phrase");
        let pb = b.phrase(&format!("{w1} {w2}")).expect("segmented phrase");
        assert_eq!(pa.docs(), pb.docs(), "PHRASE diverged: {w1} {w2}");
        let na = a.within(w1, w2, 3).expect("in-place near");
        let nb = b.within(w1, w2, 3).expect("segmented near");
        assert_eq!(na.docs(), nb.docs(), "NEAR diverged: {w1} {w2}");
    }
    // LIKE: ranking and scores bit-exact.
    let ha = a.more_like_this("alpha delta golf juliet", 8).expect("in-place like");
    let hb = b.more_like_this("alpha delta golf juliet", 8).expect("segmented like");
    assert_eq!(ha.len(), hb.len(), "LIKE lengths diverged");
    for (x, y) in ha.iter().zip(&hb) {
        assert_eq!(x.doc, y.doc, "LIKE ranking diverged");
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "LIKE score diverged for doc {}", x.doc);
    }
    // DF over the whole vocabulary.
    let terms: Vec<String> = VOCAB.iter().map(|w| w.to_string()).collect();
    let da = a.term_dfs(&terms).expect("in-place dfs");
    let db = b.term_dfs(&terms).expect("segmented dfs");
    assert_eq!(da, db, "DF diverged");
    // DOC: stored text round-trips identically.
    for d in 1..=a.total_docs() as u32 {
        let ta = a.document(DocId(d)).expect("in-place doc");
        let tb = b.document(DocId(d)).expect("segmented doc");
        assert_eq!(ta, tb, "DOC diverged for {d}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn segmented_engine_is_observationally_identical(
        batches in prop::collection::vec(arb_batch(), 1..6),
        // Tiny budgets so seals fire on nearly every flush; fanout 2 so
        // merges fire within a few seals.
        l0_budget in prop_oneof![Just(1u64), Just(128), Just(100_000)],
        fanout in 2u32..4,
    ) {
        let (mut inplace, mut segmented) = engines(l0_budget, fanout);
        let mut total = 0u32;
        for batch in &batches {
            for doc in &batch.docs {
                let t = text(doc);
                let da = inplace.add_document(&t).expect("in-place add");
                let db = segmented.add_document(&t).expect("segmented add");
                prop_assert_eq!(da, db, "doc id allocation diverged");
                total += 1;
            }
            for &pick in &batch.deletes {
                let victim = DocId(pick % total + 1);
                inplace.delete(victim);
                segmented.delete(victim);
            }
            inplace.flush().expect("in-place flush");
            segmented.flush().expect("segmented flush");
            assert_twins(&inplace, &segmented);
        }
        // The schedule must actually exercise the tiers when the budget
        // is small enough for a seal per flush.
        if l0_budget == 1 {
            let stats = segmented.segment_stats().expect("segmented stats");
            prop_assert!(stats.seals > 0, "no seal fired under a 1-byte L0 budget");
        }
    }
}
