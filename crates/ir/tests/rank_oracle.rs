//! WAND-vs-brute-force oracle over real engines: BM25 ranked top-k with
//! early termination must return bit-identical hits to the exhaustive
//! scorer, on both the in-place and segmented engines, across random
//! corpora, query lengths, and k values.

use invidx_core::index::{EngineKind, IndexConfig};
use invidx_disk::sparse_array;
use invidx_ir::{Bm25Params, SearchEngine};
use proptest::prelude::*;

const VOCAB: &[&str] = &[
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india", "juliet",
    "kilo", "lima",
];

fn engine(kind: EngineKind) -> SearchEngine {
    let config = IndexConfig { engine: kind, ..IndexConfig::small() };
    SearchEngine::create(sparse_array(2, 40_000, 256), config).expect("engine")
}

fn run(kind: EngineKind, docs: &[Vec<usize>], deletes: &[u32], query: &[usize], k: usize) {
    let mut e = engine(kind);
    for doc in docs {
        let text = doc.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" ");
        e.add_document(&text).expect("add");
    }
    for &pick in deletes {
        e.delete(invidx_core::types::DocId(pick % docs.len() as u32 + 1));
    }
    e.flush().expect("flush");
    let qtext = query.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" ");
    let params = Bm25Params::default();
    let wand = e.rank(&qtext, k, params).expect("wand");
    let brute = e.rank_exhaustive(&qtext, k, params).expect("exhaustive");
    assert_eq!(wand.len(), brute.len(), "hit counts diverged (k={k}, q={qtext:?})");
    for (w, b) in wand.iter().zip(&brute) {
        assert_eq!(w.doc, b.doc, "ranking diverged (k={k}, q={qtext:?})");
        assert_eq!(
            w.score.to_bits(),
            b.score.to_bits(),
            "score diverged for doc {} (k={k}, q={qtext:?})",
            w.doc
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn wand_matches_exhaustive_on_both_engines(
        docs in prop::collection::vec(prop::collection::vec(0usize..VOCAB.len(), 1..16), 1..40),
        deletes in prop::collection::vec(0u32..64, 0..4),
        query in prop::collection::vec(0usize..VOCAB.len(), 1..6),
        k in prop_oneof![Just(1usize), Just(3), Just(10), Just(1000)],
    ) {
        run(EngineKind::InPlace, &docs, &deletes, &query, k);
        run(
            EngineKind::Segmented { l0_budget: 128, fanout: 2 },
            &docs,
            &deletes,
            &query,
            k,
        );
    }
}
