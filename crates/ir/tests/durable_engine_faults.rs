//! Crash → recover → query: fault-injected end-to-end tests for
//! [`DurableEngine`]. A simulated crash at the WAL commit point must roll
//! the engine back to the last committed batch — index postings, stored
//! document texts, vocabulary, and document-id assignment all consistent —
//! and a crash during checkpointing must leave the previous checkpoint +
//! WAL replay path intact.

use invidx_core::index::IndexConfig;
use invidx_core::types::DocId;
use invidx_durable::{DurableOptions, Fault, FaultInjector, FaultPoint, StoreGeometry};
use invidx_ir::DurableEngine;
use std::path::PathBuf;

fn geom() -> StoreGeometry {
    StoreGeometry { disks: 2, blocks_per_disk: 20_000, block_size: 256 }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("invidx-deng-it-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

const BATCH_1: [&str; 2] = ["the cat sat on the mat", "the dog chased the cat"];
const BATCH_2: [&str; 2] = ["a mouse ran past the sleeping dog", "the cat watched the mouse"];
const BATCH_3: [&str; 2] = ["an owl arrived at midnight", "the owl and the cat stared"];

/// Assert the engine reflects exactly the first two committed batches.
fn verify_two_batches(e: &mut DurableEngine) {
    assert_eq!(e.total_docs(), 4);
    assert_eq!(e.boolean_str("cat").unwrap().len(), 3);
    assert_eq!(e.boolean_str("cat and mouse").unwrap().len(), 1);
    assert!(e.boolean_str("owl").unwrap().is_empty(), "uncommitted batch leaked");
    assert_eq!(e.word_id("owl"), None, "uncommitted vocabulary leaked");
    for (i, text) in BATCH_1.iter().chain(&BATCH_2).enumerate() {
        let doc = DocId(i as u32 + 1);
        assert_eq!(e.document(doc).unwrap().as_deref(), Some(*text), "doc {doc}");
    }
    assert_eq!(e.document(DocId(5)).unwrap(), None);
    assert_eq!(e.within("cat", "mouse", 5).unwrap().len(), 1);
}

/// The full crash → recover → query loop: kill the WAL fsync of batch 3,
/// recover, check batch-2 state, then keep living with the store.
#[test]
fn crash_at_commit_point_rolls_back_to_last_batch() {
    let dir = tmpdir("commit");
    let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
    let inj = FaultInjector::new();
    let mut e = DurableEngine::create_with(&dir, IndexConfig::small(), geom(), opts, inj.clone())
        .unwrap();
    for t in BATCH_1 {
        e.add_document(t).unwrap();
    }
    e.flush().unwrap();
    for t in BATCH_2 {
        e.add_document(t).unwrap();
    }
    e.flush().unwrap();
    // Batch 3 dies at the commit point: logged but never fsynced.
    for t in BATCH_3 {
        e.add_document(t).unwrap();
    }
    inj.arm(Fault::at(FaultPoint::WalFsync));
    assert!(e.flush().unwrap_err().is_injected());
    drop(e);
    inj.disarm();

    let mut e = DurableEngine::open(&dir, IndexConfig::small(), opts).unwrap();
    let info = *e.recovery().unwrap();
    assert_eq!(info.replayed_records, 2);
    verify_two_batches(&mut e);

    // Life goes on: the next document takes the id the lost batch had used.
    let d = e.add_document("an owl arrived at midnight").unwrap();
    assert_eq!(d, DocId(5));
    e.flush().unwrap();
    assert_eq!(e.boolean_str("owl").unwrap().len(), 1);

    // One more clean reopen for good measure.
    drop(e);
    let e = DurableEngine::open(&dir, IndexConfig::small(), opts).unwrap();
    assert_eq!(e.total_docs(), 5);
    assert_eq!(e.boolean_str("owl or mouse").unwrap().len(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

/// A crash while writing the checkpoint file must leave the previous
/// checkpoint + WAL intact: recovery replays everything committed.
#[test]
fn crash_during_checkpoint_keeps_wal_replay_path() {
    let dir = tmpdir("ckpt");
    let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
    let inj = FaultInjector::new();
    let mut e = DurableEngine::create_with(&dir, IndexConfig::small(), geom(), opts, inj.clone())
        .unwrap();
    for t in BATCH_1 {
        e.add_document(t).unwrap();
    }
    e.flush().unwrap();
    for t in BATCH_2 {
        e.add_document(t).unwrap();
    }
    e.flush().unwrap();
    inj.arm(Fault::at(FaultPoint::CheckpointWrite).after(64));
    assert!(e.checkpoint().unwrap_err().is_injected());
    drop(e);
    inj.disarm();

    let mut e = DurableEngine::open(&dir, IndexConfig::small(), opts).unwrap();
    let info = *e.recovery().unwrap();
    assert_eq!(info.checkpoint_batch, 0, "batch-0 checkpoint still rules");
    assert_eq!(info.replayed_records, 2);
    verify_two_batches(&mut e);

    // A clean checkpoint now embeds the engine metadata; the next recovery
    // restores from it without touching the (empty) WAL.
    e.checkpoint().unwrap();
    assert_eq!(e.index().wal_size(), 0);
    drop(e);
    let mut e = DurableEngine::open(&dir, IndexConfig::small(), opts).unwrap();
    assert_eq!(e.recovery().unwrap().replayed_records, 0);
    verify_two_batches(&mut e);
    std::fs::remove_dir_all(&dir).ok();
}

/// Mixed history: checkpoint mid-stream, more batches, then a crash while
/// applying — recovery = checkpoint meta + replay of the committed tail.
///
/// The apply phase only touches the device for long-list appends (short
/// lists live in in-memory buckets until the next checkpoint), so the
/// committed-but-crashed batch must hit a word already promoted to the
/// long store. We promote one by overflowing its bucket: `FILLER_DOCS`
/// documents sharing the word "filler" exceed the 40-unit bucket capacity
/// of [`IndexConfig::small`], so the batch-2 flush evicts it to the long
/// store, and batch 3's append to it is the device write the armed
/// [`FaultPoint::ApplyWrite`] intercepts.
#[test]
fn recovery_combines_checkpoint_meta_and_wal_replay() {
    const FILLER_DOCS: u32 = 45;
    let dir = tmpdir("mixed");
    let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
    let inj = FaultInjector::new();
    let mut e = DurableEngine::create_with(&dir, IndexConfig::small(), geom(), opts, inj.clone())
        .unwrap();
    for t in BATCH_1 {
        e.add_document(t).unwrap();
    }
    e.flush().unwrap();
    e.checkpoint().unwrap();
    for i in 0..FILLER_DOCS {
        e.add_document(&format!("filler entry {i}")).unwrap();
    }
    for t in BATCH_2 {
        e.add_document(t).unwrap();
    }
    e.flush().unwrap(); // committed in the WAL, past the checkpoint
    for t in BATCH_3 {
        e.add_document(t).unwrap();
    }
    e.add_document("one more filler entry").unwrap();
    // The crash hits the in-place apply: the record is committed, so the
    // batch must survive through replay.
    inj.arm(Fault::at(FaultPoint::ApplyWrite));
    e.flush().unwrap_err();
    assert_eq!(inj.fired(), Some(FaultPoint::ApplyWrite), "apply fault never struck");
    drop(e);
    inj.disarm();

    let e = DurableEngine::open(&dir, IndexConfig::small(), opts).unwrap();
    let info = *e.recovery().unwrap();
    assert_eq!(info.checkpoint_batch, 1);
    assert_eq!(info.replayed_records, 2, "batch 2 and the crashed-apply batch 3");
    let total = 2 + FILLER_DOCS as u64 + 2 + 2 + 1;
    assert_eq!(e.total_docs(), total);
    assert_eq!(e.boolean_str("owl and cat").unwrap().len(), 1);
    assert_eq!(e.boolean_str("filler").unwrap().len(), FILLER_DOCS as usize + 1);
    let owl_doc = DocId(2 + FILLER_DOCS + 2 + 2); // BATCH_3[1]'s id
    assert_eq!(e.document(owl_doc).unwrap().as_deref(), Some(BATCH_3[1]));
    assert!(e.word_id("owl").is_some());
    std::fs::remove_dir_all(&dir).ok();
}
