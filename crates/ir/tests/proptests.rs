//! Property-based tests for the IR layer: boolean evaluation against a
//! brute-force set model, algebraic laws, vector-search ranking
//! properties, and the query parser against generated well-formed
//! queries.

use invidx_core::postings::PostingList;
use invidx_core::types::{DocId, Result, WordId};
use invidx_ir::boolean::{PostingSource, Query};
use invidx_ir::vector::{search, VectorQuery};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

#[derive(Debug, Clone)]
struct MapSource(HashMap<u64, BTreeSet<u32>>);

impl PostingSource for MapSource {
    fn postings(&self, word: WordId) -> Result<PostingList> {
        Ok(self
            .0
            .get(&word.0)
            .map(|s| PostingList::from_sorted(s.iter().map(|&d| DocId(d)).collect()))
            .unwrap_or_default())
    }
}

fn arb_source() -> impl Strategy<Value = MapSource> {
    prop::collection::hash_map(
        1u64..8,
        prop::collection::btree_set(0u32..40, 0..20),
        0..8,
    )
    .prop_map(MapSource)
}

fn arb_query() -> impl Strategy<Value = Query> {
    let leaf = (1u64..10).prop_map(|w| Query::Word(WordId(w)));
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Query::And),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Query::Or),
            (inner.clone(), inner).prop_map(|(a, b)| Query::and_not(a, b)),
        ]
    })
}

/// Brute-force reference evaluation over doc-id sets.
fn reference(q: &Query, source: &MapSource, universe: &BTreeSet<u32>) -> BTreeSet<u32> {
    match q {
        Query::Word(w) => source.0.get(&w.0).cloned().unwrap_or_default(),
        Query::And(qs) => {
            let mut acc = universe.clone();
            for sub in qs {
                let s = reference(sub, source, universe);
                acc = acc.intersection(&s).copied().collect();
            }
            if qs.is_empty() {
                BTreeSet::new()
            } else {
                acc
            }
        }
        Query::Or(qs) => {
            let mut acc = BTreeSet::new();
            for sub in qs {
                acc.extend(reference(sub, source, universe));
            }
            acc
        }
        Query::AndNot(a, b) => {
            let sa = reference(a, source, universe);
            let sb = reference(b, source, universe);
            sa.difference(&sb).copied().collect()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn boolean_eval_matches_reference(q in arb_query(), source in arb_source()) {
        let universe: BTreeSet<u32> = source.0.values().flatten().copied().collect();
        let expected = reference(&q, &source, &universe);
        let src = source.clone();
        let got: BTreeSet<u32> =
            q.eval(&src).expect("eval").docs().iter().map(|d| d.0).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn de_morgan_within_and_not(source in arb_source(), a in 1u64..10, b in 1u64..10, c in 1u64..10) {
        // x AND NOT (a OR b) == (x AND NOT a) AND NOT b
        let x = Query::Word(WordId(c));
        let lhs = Query::and_not(
            x.clone(),
            Query::or(Query::Word(WordId(a)), Query::Word(WordId(b))),
        );
        let rhs = Query::and_not(
            Query::and_not(x, Query::Word(WordId(a))),
            Query::Word(WordId(b)),
        );
        let s1 = source.clone();
        let s2 = source.clone();
        prop_assert_eq!(lhs.eval(&s1).expect("lhs"), rhs.eval(&s2).expect("rhs"));
    }

    #[test]
    fn vector_scores_are_monotone_in_matches(source in arb_source(), k in 1usize..20) {
        // Every returned hit's score equals the sum of idf contributions of
        // the terms whose lists contain it — verified by recomputation.
        let words: Vec<WordId> = source.0.keys().map(|&w| WordId(w)).collect();
        if words.is_empty() {
            return Ok(());
        }
        let q = VectorQuery::from_words(words.clone());
        let total_docs = 50u64;
        let src = source.clone();
        let hits = search(&src, &q, total_docs, k).expect("search");
        prop_assert!(hits.len() <= k);
        // Scores are non-increasing.
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score - 1e-12);
        }
        for h in &hits {
            let mut expect = 0.0;
            for w in &words {
                if let Some(docs) = source.0.get(&w.0) {
                    if !docs.is_empty() && docs.contains(&h.doc.0) {
                        expect += (1.0 + total_docs as f64 / docs.len() as f64).ln();
                    }
                }
            }
            prop_assert!((h.score - expect).abs() < 1e-9, "doc {} score {} vs {}", h.doc, h.score, expect);
        }
    }
}

// ----- parser round trip on generated query strings -----

use invidx_core::index::IndexConfig;
use invidx_disk::sparse_array;
use invidx_ir::SearchEngine;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parser_handles_generated_well_formed_queries(
        words in prop::collection::vec("[a-z]{1,6}", 1..6),
        ops in prop::collection::vec(0u8..3, 0..5),
    ) {
        let array = sparse_array(1, 20_000, 256);
        let mut engine = SearchEngine::create(array, IndexConfig::small()).expect("engine");
        // Index one document so some words resolve.
        let text = words.join(" ");
        engine.add_document(&format!("{text} filler tokens to lengthen the body")).expect("add");
        // Build a query string by folding operators over the words.
        let mut q = words[0].clone();
        for (i, op) in ops.iter().enumerate() {
            let w = &words[(i + 1) % words.len()];
            q = match op {
                0 => format!("({q}) and {w}"),
                1 => format!("({q}) or {w}"),
                _ => format!("({q}) and not {w}"),
            };
        }
        // Must parse, evaluate, and stay within the corpus.
        let result = engine.boolean_str(&q).expect("eval");
        prop_assert!(result.len() <= 1);
    }
}
