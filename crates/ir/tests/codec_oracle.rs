//! Compressed-vs-plain twin oracle: a compressed index must be
//! *observationally identical* to a plain one — only its device reads
//! shrink.
//!
//! Two `SearchEngine`s run the exact same randomized schedule of batches,
//! deletions, sweeps, compactions, and queries; they differ only in
//! `IndexConfig::codec`. After every flush the full query surface is
//! compared — boolean, phrase, proximity, LIKE and BM25 RANK (scores
//! bit-exact), document frequencies, stored texts — plus the structural
//! fields of every `BatchReport`: the codec's capacity guarantee means
//! allocation, promotion, and eviction decisions are byte-for-byte the
//! same as plain. Exercised across both `EngineKind`s.

use invidx_core::codec::PostingsCodec;
use invidx_core::index::{BatchReport, EngineKind, IndexConfig};
use invidx_core::types::DocId;
use invidx_disk::sparse_array;
use invidx_ir::{Bm25Params, EngineQuery, SearchEngine};
use proptest::prelude::*;

const VOCAB: &[&str] = &[
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india", "juliet",
];

#[derive(Debug, Clone)]
struct Batch {
    docs: Vec<Vec<usize>>,
    deletes: Vec<u32>,
    /// In-place engine only: run a sweep (0), a compaction (1), or
    /// neither after the flush.
    maintenance: u8,
}

fn arb_batch() -> impl Strategy<Value = Batch> {
    (
        prop::collection::vec(prop::collection::vec(0usize..VOCAB.len(), 1..12), 1..6),
        prop::collection::vec(0u32..64, 0..3),
        0u8..4,
    )
        .prop_map(|(docs, deletes, maintenance)| Batch { docs, deletes, maintenance })
}

fn engine(kind: EngineKind, codec: PostingsCodec) -> SearchEngine {
    let config = IndexConfig { engine: kind, codec, ..IndexConfig::small() };
    SearchEngine::create(sparse_array(2, 40_000, 256), config).expect("engine")
}

fn text(doc: &[usize]) -> String {
    doc.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" ")
}

/// Structural batch-report fields: everything except the device-op
/// counters in `long_stats` (a compressed index legitimately reads fewer
/// blocks).
fn shape(r: &BatchReport) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        r.batch,
        r.words,
        r.postings,
        r.new_words,
        r.bucket_words,
        r.long_words,
        r.evictions,
        r.long_appends,
        r.long_words_total,
    )
}

fn assert_twins(plain: &SearchEngine, packed: &SearchEngine) {
    for w1 in ["alpha", "bravo", "charlie"] {
        for w2 in ["delta", "echo", "juliet"] {
            let q = format!("({w1} or {w2}) and not golf");
            assert_eq!(
                plain.boolean_str(&q).expect("plain boolean").docs(),
                packed.boolean_str(&q).expect("packed boolean").docs(),
                "QUERY diverged: {q}"
            );
        }
    }
    assert_eq!(
        plain.phrase("alpha bravo").expect("plain phrase").docs(),
        packed.phrase("alpha bravo").expect("packed phrase").docs(),
        "PHRASE diverged"
    );
    assert_eq!(
        plain.within("echo", "foxtrot", 3).expect("plain near").docs(),
        packed.within("echo", "foxtrot", 3).expect("packed near").docs(),
        "NEAR diverged"
    );
    // LIKE and BM25 RANK: ranking and scores bit-exact.
    let like_a = plain.more_like_this("alpha delta golf juliet", 8).expect("plain like");
    let like_b = packed.more_like_this("alpha delta golf juliet", 8).expect("packed like");
    assert_eq!(like_a.len(), like_b.len(), "LIKE lengths diverged");
    for (x, y) in like_a.iter().zip(&like_b) {
        assert_eq!(
            (x.doc, x.score.to_bits()),
            (y.doc, y.score.to_bits()),
            "LIKE diverged"
        );
    }
    let q = EngineQuery::Rank {
        text: "alpha delta golf juliet".into(),
        k: 8,
        params: Bm25Params::default(),
    };
    let rank_a = plain.execute(&q).expect("plain rank");
    let rank_b = packed.execute(&q).expect("packed rank");
    let (ha, hb) = (rank_a.hits().unwrap(), rank_b.hits().unwrap());
    assert_eq!(ha.len(), hb.len(), "RANK lengths diverged");
    for (x, y) in ha.iter().zip(hb) {
        assert_eq!(
            (x.doc, x.score.to_bits()),
            (y.doc, y.score.to_bits()),
            "RANK diverged"
        );
    }
    let terms: Vec<String> = VOCAB.iter().map(|w| w.to_string()).collect();
    assert_eq!(
        plain.term_dfs(&terms).expect("plain dfs"),
        packed.term_dfs(&terms).expect("packed dfs"),
        "DF diverged"
    );
    for d in 1..=plain.total_docs() as u32 {
        assert_eq!(
            plain.document(DocId(d)).expect("plain doc"),
            packed.document(DocId(d)).expect("packed doc"),
            "DOC diverged for {d}"
        );
    }
}

fn run_schedule(kind: EngineKind, codec: PostingsCodec, batches: &[Batch]) {
    let mut plain = engine(kind, PostingsCodec::Plain);
    let mut packed = engine(kind, codec);
    let mut total = 0u32;
    for batch in batches {
        for doc in &batch.docs {
            let t = text(doc);
            let da = plain.add_document(&t).expect("plain add");
            let db = packed.add_document(&t).expect("packed add");
            assert_eq!(da, db, "doc id allocation diverged");
            total += 1;
        }
        for &pick in &batch.deletes {
            let victim = DocId(pick % total + 1);
            plain.delete(victim);
            packed.delete(victim);
        }
        let ra = plain.flush().expect("plain flush");
        let rb = packed.flush().expect("packed flush");
        assert_eq!(shape(&ra), shape(&rb), "batch report diverged");
        if matches!(kind, EngineKind::InPlace) {
            match batch.maintenance {
                0 => {
                    let sa = plain.sweep().expect("plain sweep");
                    let sb = packed.sweep().expect("packed sweep");
                    assert_eq!(sa.postings_removed, sb.postings_removed, "sweep diverged");
                }
                1 => {
                    let ca = plain.index_mut().compact().expect("plain compact");
                    let cb = packed.index_mut().compact().expect("packed compact");
                    assert_eq!(
                        (ca.lists_rewritten, ca.chunks_before, ca.chunks_after),
                        (cb.lists_rewritten, cb.chunks_before, cb.chunks_after),
                        "compact diverged"
                    );
                }
                _ => {}
            }
        }
        assert_twins(&plain, &packed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn compressed_in_place_engine_is_observationally_identical(
        batches in prop::collection::vec(arb_batch(), 1..5),
        codec in prop_oneof![Just(PostingsCodec::VarintDelta), Just(PostingsCodec::BitPacked)],
    ) {
        run_schedule(EngineKind::InPlace, codec, &batches);
    }

    #[test]
    fn compressed_segmented_engine_is_observationally_identical(
        batches in prop::collection::vec(arb_batch(), 1..5),
        codec in prop_oneof![Just(PostingsCodec::VarintDelta), Just(PostingsCodec::BitPacked)],
        l0_budget in prop_oneof![Just(1u64), Just(128), Just(100_000)],
    ) {
        run_schedule(
            EngineKind::Segmented { l0_budget, fanout: 2 },
            codec,
            &batches,
        );
    }
}
