//! Vector-space query model (paper §1, §5.2.1).
//!
//! "In a vector model system, the query specifies weights for the words,
//! and the system must locate documents that maximize the weighted sum of
//! occurring words. Vector model systems typically use inverted lists to
//! prune the set of candidate documents before the vector condition is
//! evaluated." The paper's query-performance analysis assumes this model:
//! queries "often contain many words (more than 100) and the words tend to
//! be frequently appearing words" — i.e. long-list reads dominate.
//!
//! Scoring is the classic tf·idf accumulator scheme: each query term
//! contributes `weight * idf(term)` to every document on its posting list;
//! top-k selection uses a bounded heap. (Our postings carry document
//! presence, not within-document frequency — the paper's abstracts-style
//! index — so tf is 0/1 and the weighted sum reduces to a weighted
//! idf overlap.)

use crate::boolean::PostingSource;
use invidx_core::types::{DocId, Result, WordId};
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// A weighted vector query.
#[derive(Debug, Clone, Default)]
pub struct VectorQuery {
    /// `(word, weight)` terms; duplicate words accumulate weight.
    pub terms: Vec<(WordId, f64)>,
}

impl VectorQuery {
    /// An empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one weighted term.
    pub fn term(mut self, word: WordId, weight: f64) -> Self {
        self.terms.push((word, weight));
        self
    }

    /// Build a uniform-weight query from words (the "query derived from a
    /// document" case — §5.2.1).
    pub fn from_words<I: IntoIterator<Item = WordId>>(words: I) -> Self {
        Self { terms: words.into_iter().map(|w| (w, 1.0)).collect() }
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the query has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// One scored result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// The matching document.
    pub doc: DocId,
    /// Accumulated score.
    pub score: f64,
}

/// Min-heap adaptor so the `BinaryHeap` keeps the top-k *largest*.
#[derive(PartialEq)]
pub(crate) struct HeapEntry(pub(crate) Hit);

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse on score so BinaryHeap::pop evicts the lowest score; on
        // ties evict the larger doc id, keeping results deterministic and
        // biased toward smaller ids.
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.0.doc.cmp(&other.0.doc))
    }
}

/// Evaluate a vector query over a posting source.
///
/// `total_docs` drives the idf term `ln(1 + N / df)`; pass the corpus
/// document count. Returns up to `k` hits, highest score first; ties break
/// toward smaller document ids.
pub fn search<S: PostingSource + ?Sized>(
    source: &S,
    query: &VectorQuery,
    total_docs: u64,
    k: usize,
) -> Result<Vec<Hit>> {
    if query.is_empty() || k == 0 {
        return Ok(Vec::new());
    }
    // Merge duplicate terms.
    let mut weights: HashMap<WordId, f64> = HashMap::new();
    for &(w, wt) in &query.terms {
        *weights.entry(w).or_insert(0.0) += wt;
    }
    // Accumulate scores document by document.
    let mut acc: HashMap<DocId, f64> = HashMap::new();
    for (&word, &weight) in &weights {
        let list = source.postings(word)?;
        if list.is_empty() {
            continue;
        }
        let idf = (1.0 + total_docs as f64 / list.len() as f64).ln();
        let contribution = weight * idf;
        for &d in list.docs() {
            *acc.entry(d).or_insert(0.0) += contribution;
        }
    }
    Ok(top_k(acc, k))
}

/// Evaluate a pre-weighted term list over a posting source.
///
/// Unlike [`search`], the weight of each term *is* its per-document
/// contribution — no idf is computed here — and accumulation runs in
/// **slice order**, so two evaluators handed the same `(term, weight)`
/// slice produce bit-identical f64 scores. That is the contract the
/// scatter-gather router depends on: it computes corpus-global idf weights
/// once, ships them to every shard in canonical (sorted-term) order, and
/// merges the per-shard top-k knowing equal docs score equally everywhere.
///
/// Terms with empty posting lists contribute nothing; duplicate terms
/// accumulate, exactly as repeated `+=` in slice order.
pub fn search_seeded<S: PostingSource + ?Sized>(
    source: &S,
    terms: &[(WordId, f64)],
    k: usize,
) -> Result<Vec<Hit>> {
    if terms.is_empty() || k == 0 {
        return Ok(Vec::new());
    }
    let mut acc: HashMap<DocId, f64> = HashMap::new();
    for &(word, contribution) in terms {
        let list = source.postings(word)?;
        for &d in list.docs() {
            *acc.entry(d).or_insert(0.0) += contribution;
        }
    }
    Ok(top_k(acc, k))
}

/// Evaluate a term list with locally computed idf weights, in slice order.
///
/// The single-engine counterpart of [`search_seeded`]: each term's weight
/// is `ln(1 + total_docs / df)` with `df` taken from its posting list, and
/// per-document accumulation runs in slice order. Handing this a sorted
/// term list makes `more_like_this` scores independent of hash-map
/// iteration order — the property that lets an unsharded engine serve as
/// a bit-exact oracle for a sharded deployment computing the same global
/// weights.
pub fn search_like<S: PostingSource + ?Sized>(
    source: &S,
    terms: &[WordId],
    total_docs: u64,
    k: usize,
) -> Result<Vec<Hit>> {
    if terms.is_empty() || k == 0 {
        return Ok(Vec::new());
    }
    let mut acc: HashMap<DocId, f64> = HashMap::new();
    for &word in terms {
        let list = source.postings(word)?;
        if list.is_empty() {
            continue;
        }
        let idf = (1.0 + total_docs as f64 / list.len() as f64).ln();
        for &d in list.docs() {
            *acc.entry(d).or_insert(0.0) += idf;
        }
    }
    Ok(top_k(acc, k))
}

/// Bounded-heap top-k selection shared by every search entry point. The
/// result is independent of accumulator iteration order: `(score desc,
/// doc asc)` is a total order, so the k winners and their ordering are
/// fully determined by the `(doc, score)` set itself.
pub(crate) fn top_k(acc: HashMap<DocId, f64>, k: usize) -> Vec<Hit> {
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    for (doc, score) in acc {
        heap.push(HeapEntry(Hit { doc, score }));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut hits: Vec<Hit> = heap.into_iter().map(|e| e.0).collect();
    hits.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.doc.cmp(&b.doc))
    });
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use invidx_core::postings::PostingList;
    use std::collections::HashMap as Map;

    struct MapSource(Map<u64, Vec<u32>>);

    impl PostingSource for MapSource {
        fn postings(&self, word: WordId) -> Result<PostingList> {
            Ok(self
                .0
                .get(&word.0)
                .map(|v| PostingList::from_sorted(v.iter().map(|&d| DocId(d)).collect()))
                .unwrap_or_default())
        }
    }

    fn source() -> MapSource {
        let mut m = Map::new();
        m.insert(1, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]); // common
        m.insert(2, vec![3, 7]); // rare
        m.insert(3, vec![7]); // rarest
        MapSource(m)
    }

    #[test]
    fn rare_terms_score_higher() {
        let q = VectorQuery::from_words([WordId(1), WordId(2), WordId(3)]);
        let hits = search(&source(), &q, 10, 5).unwrap();
        // Doc 7 matches all three terms; doc 3 matches two; others one.
        assert_eq!(hits[0].doc, DocId(7));
        assert_eq!(hits[1].doc, DocId(3));
        assert!(hits[0].score > hits[1].score);
        assert!(hits[1].score > hits[2].score);
    }

    #[test]
    fn k_bounds_results() {
        let q = VectorQuery::from_words([WordId(1)]);
        let hits = search(&source(), &q, 10, 3).unwrap();
        assert_eq!(hits.len(), 3);
        // Ties broken toward smaller doc ids.
        assert_eq!(hits[0].doc, DocId(1));
        assert_eq!(hits[2].doc, DocId(3));
    }

    #[test]
    fn weights_scale_contributions() {
        let balanced = VectorQuery::new().term(WordId(2), 1.0).term(WordId(3), 1.0);
        let boosted = VectorQuery::new().term(WordId(2), 10.0).term(WordId(3), 1.0);
        let hb = search(&source(), &balanced, 10, 2).unwrap();
        let hw = search(&source(), &boosted, 10, 2).unwrap();
        // Boosting the term shared by docs 3 and 7 narrows the gap made by
        // doc 7's extra rarest term.
        let gap_b = hb[0].score - hb[1].score;
        let gap_w = hw[0].score - hw[1].score;
        assert!(gap_b > 0.0 && gap_w > 0.0);
        assert!(gap_w / hw[0].score < gap_b / hb[0].score);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        let q = VectorQuery::new().term(WordId(3), 1.0).term(WordId(3), 1.0);
        let single = VectorQuery::new().term(WordId(3), 2.0);
        let a = search(&source(), &q, 10, 1).unwrap();
        let b = search(&source(), &single, 10, 1).unwrap();
        assert_eq!(a[0].doc, b[0].doc);
        assert!((a[0].score - b[0].score).abs() < 1e-12);
    }

    #[test]
    fn empty_query_or_zero_k() {
        assert!(search(&source(), &VectorQuery::new(), 10, 5).unwrap().is_empty());
        let q = VectorQuery::from_words([WordId(1)]);
        assert!(search(&source(), &q, 10, 0).unwrap().is_empty());
    }

    #[test]
    fn unknown_words_ignored() {
        let q = VectorQuery::from_words([WordId(404), WordId(2)]);
        let hits = search(&source(), &q, 10, 5).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn seeded_search_matches_local_idf_path() {
        let s = source();
        let terms = [WordId(1), WordId(2), WordId(3)];
        let local = search_like(&s, &terms, 10, 5).unwrap();
        // Same weights, computed by the caller instead of the evaluator.
        let seeded: Vec<(WordId, f64)> = terms
            .iter()
            .map(|&w| {
                let df = s.postings(w).unwrap().len() as f64;
                (w, (1.0 + 10.0 / df).ln())
            })
            .collect();
        let routed = search_seeded(&s, &seeded, 5).unwrap();
        assert_eq!(local.len(), routed.len());
        for (a, b) in local.iter().zip(&routed) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "scores must be bit-identical");
        }
    }

    #[test]
    fn seeded_search_skips_unknown_and_respects_k() {
        let s = source();
        let terms = [(WordId(404), 9.0), (WordId(3), 1.5)];
        let hits = search_seeded(&s, &terms, 10).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, DocId(7));
        assert_eq!(hits[0].score.to_bits(), 1.5f64.to_bits());
        assert!(search_seeded(&s, &[], 10).unwrap().is_empty());
        assert!(search_seeded(&s, &terms, 0).unwrap().is_empty());
    }

    #[test]
    fn search_like_is_slice_order_deterministic() {
        let s = source();
        let a = search_like(&s, &[WordId(1), WordId(2), WordId(3)], 10, 10).unwrap();
        let b = search_like(&s, &[WordId(1), WordId(2), WordId(3)], 10, 10).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
        // And agrees with the classic uniform-weight search on doc ranking.
        let q = VectorQuery::from_words([WordId(1), WordId(2), WordId(3)]);
        let classic = search(&s, &q, 10, 10).unwrap();
        assert_eq!(
            a.iter().map(|h| h.doc).collect::<Vec<_>>(),
            classic.iter().map(|h| h.doc).collect::<Vec<_>>()
        );
    }
}
