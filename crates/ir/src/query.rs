//! The unified typed query surface.
//!
//! Every engine used to expose one method per verb (`boolean_str`,
//! `phrase`, `within`, `more_like_this`, …) and every serving layer
//! re-enumerated that surface. [`EngineQuery`] collapses the verbs into
//! one data type with a single `execute(&EngineQuery) -> QueryOutput`
//! entry point, implemented once over [`crate::engine::EngineCore`] +
//! [`crate::QueryIndex`] — so [`crate::SearchEngine`],
//! [`crate::DurableEngine`], and [`crate::EngineSnapshot`] dispatch
//! identically by construction, and new verbs (like BM25 `Rank`) land in
//! exactly one place.
//!
//! The per-verb methods remain as conveniences; they and `execute` call
//! the same `EngineCore` helpers, so answers agree bit-exactly.

use crate::engine::{EngineCore, QueryIndex};
use crate::rank::Bm25Params;
use crate::vector::Hit;
use invidx_core::postings::PostingList;
use invidx_core::types::{DocId, Result};

/// One typed query, engine-agnostic. Construct directly, hand to any
/// engine's `execute`.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineQuery {
    /// Boolean query string, e.g. `"(cat and dog) or mouse"`.
    Boolean(String),
    /// Phrase query: the words occur contiguously, in order.
    Phrase(String),
    /// Proximity query: both words within `window` positions.
    Near {
        /// First word.
        w1: String,
        /// Second word.
        w2: String,
        /// Maximum token distance between the two.
        window: u32,
    },
    /// Vector-space LIKE: tf·idf overlap with a query document text.
    Like {
        /// Query document text.
        text: String,
        /// Result budget.
        k: usize,
    },
    /// BM25 ranked top-k over a query document text, WAND-pruned.
    Rank {
        /// Query document text.
        text: String,
        /// Result budget.
        k: usize,
        /// BM25 tuning parameters.
        params: Bm25Params,
    },
    /// LIKE with caller-supplied per-term contributions in slice order
    /// (the router's distributed second phase).
    WeightedLike {
        /// `(term, contribution)` in canonical order.
        terms: Vec<(String, f64)>,
        /// Result budget.
        k: usize,
    },
    /// BM25 with caller-supplied idf weights and corpus-global avgdl
    /// (the router's distributed second phase).
    WeightedRank {
        /// `(term, idf)` in canonical order.
        terms: Vec<(String, f64)>,
        /// Result budget.
        k: usize,
        /// BM25 tuning parameters.
        params: Bm25Params,
        /// Corpus-global average document length.
        avgdl: f64,
    },
    /// Document frequency per term plus corpus counters (the router's
    /// distributed first phase).
    Dfs(Vec<String>),
    /// Fetch one stored document text.
    Doc(DocId),
}

/// The result of executing an [`EngineQuery`]; the variant is determined
/// by the query variant.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Matching documents (`Boolean`, `Phrase`, `Near`).
    Docs(PostingList),
    /// Scored hits, best first (`Like`, `Rank`, `Weighted*`).
    Hits(Vec<Hit>),
    /// Corpus counters and per-term document frequencies (`Dfs`).
    Dfs {
        /// Documents in this engine.
        docs: u64,
        /// Total lexer tokens across those documents.
        tokens: u64,
        /// Per requested term, its document frequency (0 if unknown).
        dfs: Vec<u64>,
    },
    /// A stored document text, if present (`Doc`).
    Text(Option<String>),
}

impl QueryOutput {
    /// The posting list, when this output carries one.
    pub fn docs(&self) -> Option<&PostingList> {
        match self {
            QueryOutput::Docs(list) => Some(list),
            _ => None,
        }
    }

    /// The scored hits, when this output carries them.
    pub fn hits(&self) -> Option<&[Hit]> {
        match self {
            QueryOutput::Hits(hits) => Some(hits),
            _ => None,
        }
    }
}

/// The single shared dispatcher: every live engine's `execute` is this
/// function over its own core + index.
pub(crate) fn execute_with<S: QueryIndex + ?Sized>(
    core: &EngineCore,
    index: &S,
    query: &EngineQuery,
) -> Result<QueryOutput> {
    Ok(match query {
        EngineQuery::Boolean(text) => QueryOutput::Docs(core.parse_query(text)?.eval(index)?),
        EngineQuery::Phrase(text) => QueryOutput::Docs(core.phrase(index, text)?),
        EngineQuery::Near { w1, w2, window } => {
            QueryOutput::Docs(core.within(index, w1, w2, *window)?)
        }
        EngineQuery::Like { text, k } => QueryOutput::Hits(core.more_like_this(index, text, *k)?),
        EngineQuery::Rank { text, k, params } => {
            QueryOutput::Hits(core.rank(index, text, *k, *params)?)
        }
        EngineQuery::WeightedLike { terms, k } => {
            QueryOutput::Hits(core.weighted_like(index, terms, *k)?)
        }
        EngineQuery::WeightedRank { terms, k, params, avgdl } => {
            QueryOutput::Hits(core.weighted_rank(index, terms, *k, *params, *avgdl)?)
        }
        EngineQuery::Dfs(terms) => QueryOutput::Dfs {
            docs: core.total_docs,
            tokens: core.total_tokens,
            dfs: core.term_dfs(index, terms)?,
        },
        EngineQuery::Doc(doc) => QueryOutput::Text(core.docs.load(index.array(), *doc)?),
    })
}
