//! Document storage.
//!
//! Retrieval systems keep the documents themselves alongside the index —
//! answers are document identifiers, and some conditions (the paper's §1
//! proximity and region predicates) are verified against document content
//! after inverted lists have pruned the candidates. [`DocStore`] is that
//! substrate: an extent-allocated blob store over a (traced) disk array,
//! with per-document chunk references.

use invidx_core::types::{DocId, IndexError, Result};
use invidx_disk::{DiskArray, IoOp, OpKind, Payload};
use std::collections::BTreeMap;

/// On-disk location of one stored document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DocRef {
    disk: u16,
    start: u64,
    blocks: u64,
    len: u32,
}

/// An extent-allocated document blob store.
#[derive(Debug, Default)]
pub struct DocStore {
    directory: BTreeMap<DocId, DocRef>,
    bytes_stored: u64,
}

impl DocStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Total document bytes stored.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored
    }

    /// Blocks currently allocated to documents.
    pub fn blocks_allocated(&self) -> u64 {
        self.directory.values().map(|r| r.blocks).sum()
    }

    /// Store a document's text; one sequential write on the next
    /// round-robin disk. Replacing an existing document frees its old
    /// extent.
    pub fn store(&mut self, array: &mut DiskArray, doc: DocId, text: &str) -> Result<()> {
        let bs = array.block_size();
        let len = u32::try_from(text.len())
            .map_err(|_| IndexError::InvalidConfig("document too large".into()))?;
        let blocks = (text.len().max(1)).div_ceil(bs) as u64;
        let disk = array.next_disk();
        let start = array.alloc_on(disk, blocks)?;
        let mut buf = text.as_bytes().to_vec();
        buf.resize(blocks as usize * bs, 0);
        array.write_op(
            IoOp {
                kind: OpKind::Write,
                disk,
                start,
                blocks,
                payload: Payload::LongList { word: 0, postings: 0 },
            },
            &buf,
        )?;
        let old = self.directory.insert(doc, DocRef { disk, start, blocks, len });
        self.bytes_stored += text.len() as u64;
        if let Some(o) = old {
            self.bytes_stored -= o.len as u64;
            array.free_on(o.disk, o.start, o.blocks)?;
        }
        Ok(())
    }

    /// Load a document's text; one sequential read. Shared access: device
    /// reads and trace recording are `&self` on the array, so concurrent
    /// readers (the serving layer's worker threads) load documents in
    /// parallel.
    pub fn load(&self, array: &DiskArray, doc: DocId) -> Result<Option<String>> {
        let Some(&r) = self.directory.get(&doc) else {
            return Ok(None);
        };
        let bs = array.block_size();
        let mut buf = vec![0u8; r.blocks as usize * bs];
        array.read_op(
            IoOp {
                kind: OpKind::Read,
                disk: r.disk,
                start: r.start,
                blocks: r.blocks,
                payload: Payload::LongList { word: 0, postings: 0 },
            },
            &mut buf,
        )?;
        buf.truncate(r.len as usize);
        String::from_utf8(buf)
            .map(Some)
            .map_err(|_| IndexError::Corruption(format!("non-utf8 document {doc}")))
    }

    /// Remove a document, freeing its extent.
    pub fn remove(&mut self, array: &mut DiskArray, doc: DocId) -> Result<bool> {
        match self.directory.remove(&doc) {
            Some(r) => {
                self.bytes_stored -= r.len as u64;
                array.free_on(r.disk, r.start, r.blocks)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Iterate `(doc, disk, start, blocks)` of every stored document — for
    /// allocator reconstruction during recovery.
    pub fn extents(&self) -> impl Iterator<Item = (DocId, u16, u64, u64)> + '_ {
        self.directory.iter().map(|(&d, r)| (d, r.disk, r.start, r.blocks))
    }

    /// Serialize the directory (`u64 count`, then per doc
    /// `u32 doc | u16 disk | u64 start | u64 blocks | u32 len`).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.directory.len() * 26);
        out.extend_from_slice(&(self.directory.len() as u64).to_le_bytes());
        for (d, r) in &self.directory {
            out.extend_from_slice(&d.0.to_le_bytes());
            out.extend_from_slice(&r.disk.to_le_bytes());
            out.extend_from_slice(&r.start.to_le_bytes());
            out.extend_from_slice(&r.blocks.to_le_bytes());
            out.extend_from_slice(&r.len.to_le_bytes());
        }
        out
    }

    /// Restore from [`DocStore::serialize`] bytes.
    pub fn deserialize(bytes: &[u8]) -> Result<Self> {
        let need = |ok: bool| {
            ok.then_some(()).ok_or_else(|| IndexError::Corruption("docstore truncated".into()))
        };
        need(bytes.len() >= 8)?;
        let count = u64::from_le_bytes(bytes[0..8].try_into().expect("8"));
        let mut pos = 8usize;
        let mut store = Self::new();
        for _ in 0..count {
            need(bytes.len() >= pos + 26)?;
            let doc = DocId(u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4")));
            let disk = u16::from_le_bytes(bytes[pos + 4..pos + 6].try_into().expect("2"));
            let start = u64::from_le_bytes(bytes[pos + 6..pos + 14].try_into().expect("8"));
            let blocks = u64::from_le_bytes(bytes[pos + 14..pos + 22].try_into().expect("8"));
            let len = u32::from_le_bytes(bytes[pos + 22..pos + 26].try_into().expect("4"));
            pos += 26;
            store.bytes_stored += len as u64;
            store.directory.insert(doc, DocRef { disk, start, blocks, len });
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invidx_disk::sparse_array;

    #[test]
    fn store_load_round_trip() {
        let mut array = sparse_array(2, 10_000, 256);
        let mut store = DocStore::new();
        store.store(&mut array, DocId(1), "hello world").unwrap();
        store.store(&mut array, DocId(2), &"long text ".repeat(100)).unwrap();
        assert_eq!(store.load(&array, DocId(1)).unwrap().unwrap(), "hello world");
        assert_eq!(store.load(&array, DocId(2)).unwrap().unwrap().len(), 1000);
        assert_eq!(store.load(&array, DocId(404)).unwrap(), None);
        assert_eq!(store.len(), 2);
        assert_eq!(store.bytes_stored(), 11 + 1000);
    }

    #[test]
    fn replace_frees_old_extent() {
        let mut array = sparse_array(1, 1_000, 64);
        let mut store = DocStore::new();
        let free0 = array.free_blocks();
        store.store(&mut array, DocId(1), &"x".repeat(640)).unwrap();
        store.store(&mut array, DocId(1), "short").unwrap();
        assert_eq!(store.load(&array, DocId(1)).unwrap().unwrap(), "short");
        assert_eq!(array.free_blocks(), free0 - 1);
        assert_eq!(store.bytes_stored(), 5);
    }

    #[test]
    fn remove_frees_space() {
        let mut array = sparse_array(1, 1_000, 64);
        let mut store = DocStore::new();
        let free0 = array.free_blocks();
        store.store(&mut array, DocId(7), "some document body").unwrap();
        assert!(store.remove(&mut array, DocId(7)).unwrap());
        assert!(!store.remove(&mut array, DocId(7)).unwrap());
        assert_eq!(array.free_blocks(), free0);
        assert!(store.is_empty());
    }

    #[test]
    fn empty_document_stored() {
        let mut array = sparse_array(1, 1_000, 64);
        let mut store = DocStore::new();
        store.store(&mut array, DocId(1), "").unwrap();
        assert_eq!(store.load(&array, DocId(1)).unwrap().unwrap(), "");
    }

    #[test]
    fn unicode_round_trip() {
        let mut array = sparse_array(1, 1_000, 64);
        let mut store = DocStore::new();
        let text = "caf\u{e9} na\u{ef}ve \u{1F600}";
        store.store(&mut array, DocId(1), text).unwrap();
        assert_eq!(store.load(&array, DocId(1)).unwrap().unwrap(), text);
    }
}
