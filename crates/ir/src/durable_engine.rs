//! [`DurableEngine`]: the crash-safe search engine.
//!
//! [`crate::SearchEngine`] persists its extra-index state (vocabulary,
//! document directory, counters) by asking the caller to write a metadata
//! blob after every flush — lose that write and the engine is gone.
//! `DurableEngine` instead rides the WAL + checkpoint discipline of
//! [`invidx_durable::DurableIndex`]:
//!
//! * every flushed batch logs its **document texts** in the WAL record's
//!   metadata field, so replay can redo the document-store appends and
//!   re-intern the vocabulary (interning order is the lexer order, which
//!   is deterministic from the texts);
//! * every checkpoint embeds the full engine metadata blob, so recovery
//!   starts from a consistent (index, docstore, vocabulary) triple and
//!   replays only the batches after it.
//!
//! The ordering contract matters: the original run allocates each batch's
//! document extents *before* that batch's index apply, so recovery does the
//! same — [`RecoveryHooks::on_checkpoint_meta`] re-reserves the checkpoint's
//! document extents before any replay, and [`RecoveryHooks::before_apply`]
//! redoes a batch's document appends before its index postings land.

use crate::boolean::{PostingSource, Query};
use crate::engine::{EngineCore, QueryIndex};
use crate::vector::{search, Hit, VectorQuery};
use invidx_core::index::{
    BatchReport, CompactReport, DualIndex, EngineKind, IndexConfig, RebalanceReport, SweepReport,
};
use invidx_core::postings::PostingList;
use invidx_core::types::{DocId, IndexError, WordId};
use invidx_durable::{
    DurableError, DurableIndex, DurableOptions, FaultInjector, RecoveryHooks, RecoveryInfo,
    StoreGeometry, WalRecord,
};
use invidx_segment::{DurableSegmentedIndex, SegmentStats};
use std::path::Path;

/// The crash-safe store behind a [`DurableEngine`]: a [`DurableIndex`]
/// alone (in-place engine), or a [`DurableSegmentedIndex`] that layers
/// sealed segments, a manifest, and compaction over it.
pub enum DurableBackend {
    /// WAL + checkpoint over the in-place dual-structure index.
    InPlace(DurableIndex),
    /// The same durable L0 plus the segment tier.
    Segmented(DurableSegmentedIndex),
}

impl DurableBackend {
    /// The durable L0 store (the whole store when in-place).
    pub fn l0(&self) -> &DurableIndex {
        match self {
            DurableBackend::InPlace(ix) => ix,
            DurableBackend::Segmented(ix) => ix.l0(),
        }
    }

    fn inner(&self) -> &DualIndex {
        self.l0().inner()
    }

    fn inner_mut(&mut self) -> &mut DualIndex {
        match self {
            DurableBackend::InPlace(ix) => ix.inner_mut(),
            DurableBackend::Segmented(ix) => ix.inner_mut(),
        }
    }

    /// Segment-tier statistics, when this backend is segmented.
    pub fn segment_stats(&self) -> Option<SegmentStats> {
        match self {
            DurableBackend::InPlace(_) => None,
            DurableBackend::Segmented(ix) => Some(ix.stats()),
        }
    }

    fn insert_document(&mut self, doc: DocId, words: Vec<WordId>) -> invidx_durable::Result<()> {
        match self {
            DurableBackend::InPlace(ix) => ix.insert_document(doc, words),
            DurableBackend::Segmented(ix) => ix.insert_document(doc, words).map_err(Into::into),
        }
    }

    fn insert_documents(
        &mut self,
        docs: Vec<(DocId, Vec<WordId>)>,
        threads: usize,
    ) -> invidx_durable::Result<()> {
        match self {
            DurableBackend::InPlace(ix) => ix.insert_documents(docs, threads),
            DurableBackend::Segmented(ix) => {
                ix.insert_documents(docs, threads).map_err(Into::into)
            }
        }
    }

    fn delete_document(&mut self, doc: DocId) {
        match self {
            DurableBackend::InPlace(ix) => ix.delete_document(doc),
            DurableBackend::Segmented(ix) => ix.delete_document(doc),
        }
    }

    fn set_checkpoint_meta(&mut self, meta: Vec<u8>) {
        match self {
            DurableBackend::InPlace(ix) => ix.set_checkpoint_meta(meta),
            DurableBackend::Segmented(ix) => ix.set_checkpoint_meta(meta),
        }
    }

    fn flush_with_meta(&mut self, meta: Vec<u8>) -> invidx_durable::Result<BatchReport> {
        match self {
            DurableBackend::InPlace(ix) => ix.flush_with_meta(meta),
            DurableBackend::Segmented(ix) => ix.flush_with_meta(meta).map_err(Into::into),
        }
    }

    fn checkpoint(&mut self) -> invidx_durable::Result<u64> {
        match self {
            DurableBackend::InPlace(ix) => ix.checkpoint(),
            DurableBackend::Segmented(ix) => ix.checkpoint().map_err(Into::into),
        }
    }

    fn sweep(&mut self) -> invidx_durable::Result<SweepReport> {
        match self {
            DurableBackend::InPlace(ix) => ix.sweep(),
            // See `Backend::sweep`: sealed segments rely on L0 tombstones.
            DurableBackend::Segmented(_) => Err(DurableError::Index(IndexError::InvalidConfig(
                "the segmented engine has no sweep; deletions are purged by compaction".into(),
            ))),
        }
    }

    fn compact(&mut self) -> invidx_durable::Result<CompactReport> {
        match self {
            DurableBackend::InPlace(ix) => ix.compact(),
            DurableBackend::Segmented(ix) => ix.l0_mut().compact(),
        }
    }

    fn rebalance(
        &mut self,
        num_buckets: usize,
        capacity_units: u64,
    ) -> invidx_durable::Result<RebalanceReport> {
        match self {
            DurableBackend::InPlace(ix) => ix.rebalance(num_buckets, capacity_units),
            DurableBackend::Segmented(ix) => ix.l0_mut().rebalance(num_buckets, capacity_units),
        }
    }
}

impl PostingSource for DurableBackend {
    fn postings(&self, word: WordId) -> invidx_core::Result<PostingList> {
        let _stage = invidx_obs::trace::stage("term");
        let list = match self {
            DurableBackend::InPlace(ix) => ix.inner().postings(word)?,
            DurableBackend::Segmented(ix) => ix.postings(word).map_err(IndexError::from)?,
        };
        invidx_obs::trace::add_items(list.len() as u64);
        Ok(list)
    }
}

impl QueryIndex for DurableBackend {
    fn array(&self) -> &invidx_disk::DiskArray {
        self.inner().array()
    }
}

/// Per-batch WAL metadata: the documents added since the last flush, as
/// `u32 count`, then per document `u32 id | u32 len | utf8 text`.
fn encode_batch_meta(docs: &[(DocId, String)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + docs.iter().map(|(_, t)| 8 + t.len()).sum::<usize>());
    out.extend_from_slice(&(docs.len() as u32).to_le_bytes());
    for (d, text) in docs {
        out.extend_from_slice(&d.0.to_le_bytes());
        out.extend_from_slice(&(text.len() as u32).to_le_bytes());
        out.extend_from_slice(text.as_bytes());
    }
    out
}

fn decode_batch_meta(meta: &[u8]) -> invidx_durable::Result<Vec<(DocId, String)>> {
    if meta.is_empty() {
        return Ok(Vec::new());
    }
    let corrupt = |m: &str| DurableError::Corrupt(format!("batch meta: {m}"));
    let mut pos = 0usize;
    let mut take = |n: usize| -> invidx_durable::Result<&[u8]> {
        if pos + n > meta.len() {
            return Err(corrupt("truncated"));
        }
        let s = &meta[pos..pos + n];
        pos += n;
        Ok(s)
    };
    let count = u32::from_le_bytes(take(4)?.try_into().expect("4"));
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let doc = DocId(u32::from_le_bytes(take(4)?.try_into().expect("4")));
        let len = u32::from_le_bytes(take(4)?.try_into().expect("4")) as usize;
        let text = String::from_utf8(take(len)?.to_vec())
            .map_err(|_| corrupt("non-utf8 document"))?;
        out.push((doc, text));
    }
    if pos != meta.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(out)
}

/// Recovery participant: rebuilds the engine state alongside index replay.
struct EngineHooks {
    core: EngineCore,
}

impl RecoveryHooks for EngineHooks {
    fn on_checkpoint_meta(
        &mut self,
        meta: &[u8],
        index: &mut DualIndex,
    ) -> invidx_durable::Result<()> {
        // The batch-0 checkpoint of a fresh store carries no engine blob.
        if meta.is_empty() {
            return Ok(());
        }
        self.core = EngineCore::decode_meta(meta)?;
        for (_, disk, start, blocks) in self.core.docs.extents() {
            index.reserve_extent(disk, start, blocks)?;
        }
        Ok(())
    }

    fn before_apply(
        &mut self,
        record: &WalRecord,
        index: &mut DualIndex,
    ) -> invidx_durable::Result<()> {
        let WalRecord::Batch { meta, .. } = record else {
            return Ok(());
        };
        for (doc, text) in decode_batch_meta(meta)? {
            // Re-intern in lexer order: reproduces the original word-id
            // assignment, which the record's posting lists were built with.
            self.core.lex_and_intern(&text);
            self.core.docs.store(index.sidecar_array(), doc, &text)?;
            self.core.register_doc(doc, &text);
            self.core.next_doc = self.core.next_doc.max(doc.0 + 1);
            self.core.total_docs += 1;
        }
        Ok(())
    }
}

/// A crash-safe text search engine: [`crate::SearchEngine`] semantics over
/// a [`DurableIndex`] store directory.
///
/// ```
/// use invidx_core::index::IndexConfig;
/// use invidx_durable::{DurableOptions, StoreGeometry};
/// use invidx_ir::DurableEngine;
///
/// let dir = std::env::temp_dir().join(format!("invidx-deng-doc-{}", std::process::id()));
/// std::fs::remove_dir_all(&dir).ok();
/// let geometry = StoreGeometry { disks: 2, blocks_per_disk: 20_000, block_size: 256 };
/// let mut e = DurableEngine::create(&dir, IndexConfig::small(), geometry,
///                                   DurableOptions::default()).unwrap();
/// e.add_document("the cat sat on the mat").unwrap();
/// e.flush().unwrap();
/// drop(e);
/// // Reopen = recover: checkpoint + WAL replay restore everything.
/// let mut e = DurableEngine::open(&dir, IndexConfig::small(),
///                                 DurableOptions::default()).unwrap();
/// assert_eq!(e.boolean_str("cat").unwrap().len(), 1);
/// std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct DurableEngine {
    backend: DurableBackend,
    core: EngineCore,
    /// Documents added since the last flush; their texts become the next
    /// WAL record's metadata.
    pending_docs: Vec<(DocId, String)>,
}

impl DurableEngine {
    /// Create a fresh durable engine in `dir`.
    pub fn create(
        dir: &Path,
        config: IndexConfig,
        geometry: StoreGeometry,
        opts: DurableOptions,
    ) -> invidx_durable::Result<Self> {
        Self::create_with(dir, config, geometry, opts, FaultInjector::new())
    }

    /// [`Self::create`] with a caller-supplied fault injector (tests).
    pub fn create_with(
        dir: &Path,
        config: IndexConfig,
        geometry: StoreGeometry,
        opts: DurableOptions,
        injector: FaultInjector,
    ) -> invidx_durable::Result<Self> {
        let backend = match config.engine {
            EngineKind::InPlace => DurableBackend::InPlace(DurableIndex::create_with(
                dir, config, geometry, opts, injector,
            )?),
            EngineKind::Segmented { .. } => DurableBackend::Segmented(
                DurableSegmentedIndex::create_with(dir, config, geometry, opts, injector)?,
            ),
        };
        Ok(Self { backend, core: EngineCore::new(), pending_docs: Vec::new() })
    }

    /// Open (recover) a durable engine from `dir`: restore the checkpoint's
    /// engine metadata, then replay WAL batches — including their document
    /// appends and vocabulary growth.
    pub fn open(
        dir: &Path,
        config: IndexConfig,
        opts: DurableOptions,
    ) -> invidx_durable::Result<Self> {
        Self::open_with(dir, config, opts, FaultInjector::new())
    }

    /// [`Self::open`] with a caller-supplied fault injector (tests).
    pub fn open_with(
        dir: &Path,
        config: IndexConfig,
        opts: DurableOptions,
        injector: FaultInjector,
    ) -> invidx_durable::Result<Self> {
        let mut hooks = EngineHooks { core: EngineCore::new() };
        let backend = match config.engine {
            EngineKind::InPlace => DurableBackend::InPlace(DurableIndex::open_with(
                dir, config, opts, injector, &mut hooks,
            )?),
            // The segment layer peels its manifest slice off the
            // checkpoint meta and hands these hooks the engine blob.
            EngineKind::Segmented { .. } => DurableBackend::Segmented(
                DurableSegmentedIndex::open_with(dir, config, opts, injector, &mut hooks)?,
            ),
        };
        Ok(Self { backend, core: hooks.core, pending_docs: Vec::new() })
    }

    // ----- updates -----

    /// Add a document; returns its assigned id. Not yet durable — the
    /// document text is logged (and committed) by the next [`Self::flush`].
    pub fn add_document(&mut self, text: &str) -> invidx_durable::Result<DocId> {
        let words = self.core.lex_and_intern(text);
        let doc = DocId(self.core.next_doc);
        self.backend.insert_document(doc, words)?;
        self.core.next_doc += 1;
        self.core.docs.store(self.backend.inner_mut().sidecar_array(), doc, text)?;
        self.core.register_doc(doc, text);
        self.core.total_docs += 1;
        self.pending_docs.push((doc, text.to_string()));
        Ok(doc)
    }

    /// Add a batch of documents: parallel tokenize, serial intern in
    /// document order, sharded parallel invert. Produces the same ids,
    /// vocabulary, in-memory index, stored texts, and pending WAL batch
    /// as calling [`Self::add_document`] once per text — recovery replays
    /// the logged texts one at a time and converges on identical state.
    pub fn add_documents(&mut self, texts: &[&str]) -> invidx_durable::Result<Vec<DocId>> {
        let threads = self.backend.inner().ingest_threads();
        let words = self.core.lex_batch(texts, threads);
        let mut ids = Vec::with_capacity(texts.len());
        let mut batch = Vec::with_capacity(texts.len());
        for per_doc in words {
            let doc = DocId(self.core.next_doc);
            self.core.next_doc += 1;
            batch.push((doc, per_doc));
            ids.push(doc);
        }
        self.backend.insert_documents(batch, threads)?;
        for (doc, text) in ids.iter().zip(texts) {
            self.core.docs.store(self.backend.inner_mut().sidecar_array(), *doc, text)?;
            self.core.register_doc(*doc, text);
            self.core.total_docs += 1;
            self.pending_docs.push((*doc, text.to_string()));
        }
        Ok(ids)
    }

    /// Logically delete a document; rides in the next WAL record.
    pub fn delete(&mut self, doc: DocId) {
        // Deletions can shrink any list; conservatively invalidate the
        // whole snapshot view (see `EngineCore::dirty_all`).
        self.core.dirty_all = true;
        self.backend.delete_document(doc);
    }

    /// Flush the buffered batch: WAL-commit the postings, the deletions,
    /// and the batch's document texts, then apply. On the segmented
    /// engine a flush that crosses the L0 budget also seals a segment
    /// and runs one compaction tick, each committed durably.
    pub fn flush(&mut self) -> invidx_durable::Result<BatchReport> {
        self.backend.set_checkpoint_meta(self.core.encode_meta());
        let meta = encode_batch_meta(&self.pending_docs);
        let report = self.backend.flush_with_meta(meta)?;
        self.pending_docs.clear();
        Ok(report)
    }

    /// Run the deletion sweep as a logged, replayable operation
    /// (in-place engine only; the segmented engine purges deletions
    /// through compaction instead).
    pub fn sweep(&mut self) -> invidx_durable::Result<SweepReport> {
        self.core.dirty_all = true;
        self.backend.set_checkpoint_meta(self.core.encode_meta());
        self.backend.sweep()
    }

    /// Rewrite fragmented long lists contiguously (logged; needs a batch
    /// boundary — flush first). Operates on L0 under the segmented engine.
    pub fn compact(&mut self) -> invidx_durable::Result<CompactReport> {
        self.core.dirty_all = true;
        self.backend.set_checkpoint_meta(self.core.encode_meta());
        self.backend.compact()
    }

    /// Rehash the bucket space to a new geometry (logged; needs a batch
    /// boundary — flush first). Operates on L0 under the segmented engine.
    pub fn rebalance(
        &mut self,
        num_buckets: usize,
        capacity_units: u64,
    ) -> invidx_durable::Result<RebalanceReport> {
        self.core.dirty_all = true;
        self.backend.set_checkpoint_meta(self.core.encode_meta());
        self.backend.rebalance(num_buckets, capacity_units)
    }

    /// Materialize an immutable point-in-time view of this engine for the
    /// lock-free serving read path (see [`crate::EngineSnapshot`]).
    pub fn snapshot(
        &mut self,
        prev: Option<&crate::EngineSnapshot>,
    ) -> invidx_core::Result<crate::EngineSnapshot> {
        crate::snapshot::materialize(&mut self.core, &self.backend, prev)
    }

    /// Write a checkpoint now (embedding current engine metadata) and reset
    /// the WAL. Returns the checkpoint size in bytes.
    pub fn checkpoint(&mut self) -> invidx_durable::Result<u64> {
        self.backend.set_checkpoint_meta(self.core.encode_meta());
        self.backend.checkpoint()
    }

    // ----- queries (same surface as `SearchEngine`) -----

    /// Evaluate a boolean [`Query`]. `&self`, like every query method:
    /// the serving layer runs these concurrently under a read lock.
    pub fn boolean(&self, query: &Query) -> invidx_core::Result<PostingList> {
        query.eval(&self.backend)
    }

    /// Parse and evaluate a boolean query string.
    pub fn boolean_str(&self, query: &str) -> invidx_core::Result<PostingList> {
        let q = self.core.parse_query(query)?;
        self.boolean(&q)
    }

    /// Parse a boolean query string into a [`Query`].
    pub fn parse_query(&self, text: &str) -> invidx_core::Result<Query> {
        self.core.parse_query(text)
    }

    /// Vector-space search with an explicit query.
    pub fn vector(&self, query: &VectorQuery, k: usize) -> invidx_core::Result<Vec<Hit>> {
        search(&self.backend, query, self.core.total_docs, k)
    }

    /// Proximity query: both words within `window` positions of each other.
    pub fn within(&self, w1: &str, w2: &str, window: u32) -> invidx_core::Result<PostingList> {
        self.core.within(&self.backend, w1, w2, window)
    }

    /// Phrase query: the words occur contiguously, in order.
    pub fn phrase(&self, phrase: &str) -> invidx_core::Result<PostingList> {
        self.core.phrase(&self.backend, phrase)
    }

    /// Vector-space search using a document text as the query.
    pub fn more_like_this(&self, text: &str, k: usize) -> invidx_core::Result<Vec<Hit>> {
        self.core.more_like_this(&self.backend, text, k)
    }

    /// Document frequency per term (0 for unknown words) — the DF phase of
    /// the router's distributed LIKE.
    pub fn term_dfs(&self, terms: &[String]) -> invidx_core::Result<Vec<u64>> {
        self.core.term_dfs(&self.backend, terms)
    }

    /// Top-k scoring with caller-supplied per-term contributions (the
    /// router's WLIKE phase); accumulation runs in slice order.
    pub fn weighted_like(&self, terms: &[(String, f64)], k: usize) -> invidx_core::Result<Vec<Hit>> {
        self.core.weighted_like(&self.backend, terms, k)
    }

    /// BM25 ranked top-k using a document text as the query, with WAND
    /// early termination (bit-exact with the exhaustive oracle).
    pub fn rank(
        &self,
        text: &str,
        k: usize,
        params: crate::rank::Bm25Params,
    ) -> invidx_core::Result<Vec<Hit>> {
        self.core.rank(&self.backend, text, k, params)
    }

    /// BM25 ranked top-k with caller-supplied idf weights and avgdl (the
    /// router's distributed RANK phase).
    pub fn weighted_rank(
        &self,
        terms: &[(String, f64)],
        k: usize,
        params: crate::rank::Bm25Params,
        avgdl: f64,
    ) -> invidx_core::Result<Vec<Hit>> {
        self.core.weighted_rank(&self.backend, terms, k, params, avgdl)
    }

    /// Total lexer tokens across all added documents (BM25 avgdl
    /// numerator).
    pub fn total_tokens(&self) -> u64 {
        self.core.total_tokens
    }

    /// Evaluate a typed [`crate::EngineQuery`] — the unified query
    /// surface shared by every engine and the serving layer.
    pub fn execute(&self, query: &crate::EngineQuery) -> invidx_core::Result<crate::QueryOutput> {
        crate::query::execute_with(&self.core, &self.backend, query)
    }

    // ----- replication -----

    /// Committed WAL records after `from_batch` — what a primary serves to
    /// a tailing replica. See [`DurableIndex::wal_records_from`] for the
    /// checkpoint caveat (primaries that ship their WAL must run with
    /// `checkpoint_every: 0`).
    /// (Segmented engines checkpoint on every seal, truncating the WAL,
    /// so only in-place primaries can ship their log.)
    pub fn wal_records_from(&self, from_batch: u64) -> invidx_durable::Result<Vec<WalRecord>> {
        self.backend.l0().wal_records_from(from_batch)
    }

    /// Apply one shipped WAL record on a replica, re-running the primary's
    /// batch through this engine's own update path (re-lex, re-intern,
    /// re-store, re-flush). The replica converges on the same vocabulary,
    /// document store, and posting lists as the primary because the record
    /// carries the batch's document texts and interning order is the
    /// deterministic lexer order — the same argument that makes crash
    /// recovery exact. The record lands in the replica's *own* WAL, so a
    /// restarted replica recovers locally and resumes tailing from its
    /// committed batch count.
    ///
    /// Records must arrive in batch order with no gaps; a divergent doc id
    /// or batch number poisons nothing but returns `Corrupt`, and the
    /// caller should re-seed the replica.
    pub fn apply_replicated(&mut self, record: &WalRecord) -> invidx_durable::Result<u64> {
        let expect = self.backend.l0().batches() + 1;
        if record.batch() != expect {
            return Err(DurableError::Corrupt(format!(
                "replica committed batch {}, shipped record is batch {} (gap or replay)",
                expect - 1,
                record.batch()
            )));
        }
        match record {
            WalRecord::Batch { deletes, meta, .. } => {
                for (doc, text) in decode_batch_meta(meta)? {
                    if doc.0 != self.core.next_doc {
                        return Err(DurableError::Corrupt(format!(
                            "shipped batch adds doc {}, replica expects doc {}",
                            doc.0, self.core.next_doc
                        )));
                    }
                    self.add_document(&text)?;
                }
                for &d in deletes {
                    self.delete(d);
                }
                self.flush()?;
            }
            WalRecord::Sweep { deletes, .. } => {
                for &d in deletes {
                    self.delete(d);
                }
                self.sweep()?;
            }
            WalRecord::Compact { .. } => {
                self.compact()?;
            }
            WalRecord::Rebalance { num_buckets, capacity_units, .. } => {
                self.rebalance(*num_buckets as usize, *capacity_units as u64)?;
            }
        }
        let now = self.backend.l0().batches();
        if now != record.batch() {
            return Err(DurableError::Corrupt(format!(
                "replicated apply produced batch {now}, record says {}",
                record.batch()
            )));
        }
        Ok(now)
    }

    /// The stored text of a document.
    pub fn document(&self, doc: DocId) -> invidx_core::Result<Option<String>> {
        self.core.docs.load(self.backend.inner().array(), doc)
    }

    // ----- introspection -----

    /// The underlying durable index (WAL size, checkpoint state, recovery
    /// report, fault injector) — L0 when segmented.
    pub fn index(&self) -> &DurableIndex {
        self.backend.l0()
    }

    /// The backend behind this engine.
    pub fn backend(&self) -> &DurableBackend {
        &self.backend
    }

    /// The segment-tiered store, when running the segmented engine.
    pub fn segmented(&self) -> Option<&DurableSegmentedIndex> {
        match &self.backend {
            DurableBackend::InPlace(_) => None,
            DurableBackend::Segmented(ix) => Some(ix),
        }
    }

    /// Mutable segment-tier access (merge-rate control, forced seals).
    pub fn segmented_mut(&mut self) -> Option<&mut DurableSegmentedIndex> {
        match &mut self.backend {
            DurableBackend::InPlace(_) => None,
            DurableBackend::Segmented(ix) => Some(ix),
        }
    }

    /// Segment-tier statistics, when running the segmented engine.
    pub fn segment_stats(&self) -> Option<SegmentStats> {
        self.backend.segment_stats()
    }

    /// Documents added so far.
    pub fn total_docs(&self) -> u64 {
        self.core.total_docs
    }

    /// Block-cache counters, if the index was configured with a cache
    /// (`IndexConfig::cache_blocks > 0`).
    pub fn cache_stats(&self) -> Option<invidx_core::cache::CacheStats> {
        self.backend.l0().cache_stats()
    }

    /// Distinct words interned so far.
    pub fn vocabulary_size(&self) -> usize {
        self.core.vocab.len()
    }

    /// Look up a word without interning.
    pub fn word_id(&self, word: &str) -> Option<WordId> {
        self.core.word_id(word)
    }

    /// What recovery did when this handle was opened (None for freshly
    /// created stores).
    pub fn recovery(&self) -> Option<&RecoveryInfo> {
        self.backend.l0().recovery()
    }
}

impl PostingSource for DurableEngine {
    fn postings(&self, word: WordId) -> invidx_core::Result<PostingList> {
        self.backend.postings(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn geom() -> StoreGeometry {
        StoreGeometry { disks: 2, blocks_per_disk: 20_000, block_size: 256 }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("invidx-deng-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn batch_meta_round_trips() {
        let docs = vec![
            (DocId(1), "the cat sat".to_string()),
            (DocId(2), String::new()),
            (DocId(7), "caf\u{e9} \u{1F600}".to_string()),
        ];
        let meta = encode_batch_meta(&docs);
        assert_eq!(decode_batch_meta(&meta).unwrap(), docs);
        assert_eq!(decode_batch_meta(&[]).unwrap(), Vec::new());
        assert!(decode_batch_meta(&meta[..meta.len() - 1]).is_err());
    }

    #[test]
    fn durable_engine_survives_reopen_mid_wal() {
        let dir = tmpdir("reopen");
        let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
        let mut e = DurableEngine::create(&dir, IndexConfig::small(), geom(), opts).unwrap();
        e.add_document("the cat sat on the mat").unwrap();
        e.add_document("the dog chased the cat").unwrap();
        e.flush().unwrap();
        e.add_document("a mouse ran past the sleeping dog").unwrap();
        e.flush().unwrap();
        let vocab = e.vocabulary_size();
        drop(e);

        // No checkpoint ran since creation: both batches replay from the WAL,
        // re-storing documents and re-interning the vocabulary.
        let mut e = DurableEngine::open(&dir, IndexConfig::small(), opts).unwrap();
        assert_eq!(e.recovery().unwrap().replayed_records, 2);
        assert_eq!(e.total_docs(), 3);
        assert_eq!(e.vocabulary_size(), vocab);
        assert_eq!(e.boolean_str("cat and dog").unwrap().len(), 1);
        assert_eq!(e.document(DocId(1)).unwrap().unwrap(), "the cat sat on the mat");
        assert_eq!(e.within("mouse", "dog", 10).unwrap().len(), 1);
        // The engine keeps working after recovery with stable ids.
        let d4 = e.add_document("another cat arrives").unwrap();
        assert_eq!(d4, DocId(4));
        e.flush().unwrap();
        assert_eq!(e.boolean_str("cat").unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_meta_restores_engine_without_replay() {
        let dir = tmpdir("ckptmeta");
        let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
        let mut e = DurableEngine::create(&dir, IndexConfig::small(), geom(), opts).unwrap();
        e.add_document("alpha beta gamma").unwrap();
        e.add_document("beta gamma delta words").unwrap();
        e.flush().unwrap();
        e.checkpoint().unwrap();
        assert_eq!(e.index().wal_size(), 0);
        drop(e);

        let e = DurableEngine::open(&dir, IndexConfig::small(), opts).unwrap();
        assert_eq!(e.recovery().unwrap().replayed_records, 0);
        assert_eq!(e.total_docs(), 2);
        assert_eq!(e.boolean_str("beta and gamma").unwrap().len(), 2);
        assert_eq!(e.document(DocId(2)).unwrap().unwrap(), "beta gamma delta words");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_shipping_replica_converges_and_survives_restart() {
        let pdir = tmpdir("repl-primary");
        let rdir = tmpdir("repl-replica");
        let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
        let mut primary = DurableEngine::create(&pdir, IndexConfig::small(), geom(), opts).unwrap();
        let mut replica = DurableEngine::create(&rdir, IndexConfig::small(), geom(), opts).unwrap();

        let d1 = primary.add_document("the cat sat on the mat").unwrap();
        primary.add_document("the dog chased the cat").unwrap();
        primary.flush().unwrap();
        primary.add_document("a mouse ran past the sleeping dog").unwrap();
        primary.delete(d1);
        primary.flush().unwrap();
        primary.sweep().unwrap();

        // Ship everything past the replica's committed batch count.
        for rec in primary.wal_records_from(replica.index().batches()).unwrap() {
            replica.apply_replicated(&rec).unwrap();
        }
        assert_eq!(replica.index().batches(), primary.index().batches());
        assert_eq!(replica.total_docs(), primary.total_docs());
        assert_eq!(replica.vocabulary_size(), primary.vocabulary_size());
        for q in ["cat", "dog and mouse", "cat and not dog"] {
            assert_eq!(
                replica.boolean_str(q).unwrap().docs(),
                primary.boolean_str(q).unwrap().docs(),
                "{q}"
            );
        }
        let (ph, rh) =
            (primary.more_like_this("cat dog", 5).unwrap(), replica.more_like_this("cat dog", 5).unwrap());
        assert_eq!(ph.len(), rh.len());
        for (a, b) in ph.iter().zip(&rh) {
            assert_eq!((a.doc, a.score.to_bits()), (b.doc, b.score.to_bits()));
        }

        // The replica restarts from its own WAL and resumes tailing.
        drop(replica);
        let mut replica = DurableEngine::open(&rdir, IndexConfig::small(), opts).unwrap();
        primary.add_document("another cat arrives").unwrap();
        primary.flush().unwrap();
        let shipped = primary.wal_records_from(replica.index().batches()).unwrap();
        assert_eq!(shipped.len(), 1);
        for rec in shipped {
            replica.apply_replicated(&rec).unwrap();
        }
        assert_eq!(replica.index().batches(), primary.index().batches());
        assert_eq!(
            replica.boolean_str("cat").unwrap().docs(),
            primary.boolean_str("cat").unwrap().docs()
        );

        // Gap and divergence detection: replaying an old record is refused.
        let stale = primary.wal_records_from(0).unwrap();
        assert!(replica.apply_replicated(&stale[0]).is_err());
        std::fs::remove_dir_all(&pdir).ok();
        std::fs::remove_dir_all(&rdir).ok();
    }

    #[test]
    fn deletes_and_sweep_survive_recovery() {
        let dir = tmpdir("sweep");
        let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
        let mut e = DurableEngine::create(&dir, IndexConfig::small(), geom(), opts).unwrap();
        let d1 = e.add_document("shared words one").unwrap();
        e.add_document("shared words two").unwrap();
        e.flush().unwrap();
        e.delete(d1);
        e.sweep().unwrap();
        assert_eq!(e.boolean_str("shared").unwrap().len(), 1);
        drop(e);

        let e = DurableEngine::open(&dir, IndexConfig::small(), opts).unwrap();
        assert_eq!(e.boolean_str("shared").unwrap().len(), 1);
        assert_eq!(e.index().inner().pending_deletions(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
