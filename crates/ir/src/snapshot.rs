//! Immutable point-in-time engine views for the lock-free read path.
//!
//! The serving layer publishes an [`EngineSnapshot`] per committed batch:
//! a fully materialized copy of the deletion-filtered posting lists, the
//! stored document texts, and the vocabulary, behind `Arc`s so readers
//! share the bulk of the data across epochs. Queries against a snapshot
//! never touch the disk model or the block cache — all I/O (and its
//! block-cache/disk accounting) happens once, at materialization time,
//! inside the writer's commit path.
//!
//! Materialization is incremental: [`crate::engine::EngineCore`] tracks
//! the words whose lists changed since the last snapshot (every intern
//! marks its word dirty; deletions, sweeps, and compactions dirty
//! everything), so re-materializing after a batch re-reads only the lists
//! that batch touched and `Arc`-shares the rest from the previous
//! snapshot.
//!
//! Query evaluation reuses the engines' own helpers
//! ([`crate::engine::parse_query_with`], the positional filters, and the
//! slice-ordered vector scorers), so snapshot answers — including LIKE
//! scores, bit-exactly — match the live engine by construction.

use crate::boolean::{PostingSource, Query};
use crate::engine::{filter_phrase, filter_within, parse_query_with, EngineCore, QueryIndex};
use crate::vector::{search_like, search_seeded, Hit};
use invidx_core::postings::PostingList;
use invidx_core::types::{DocId, Result, WordId};
use invidx_corpus::lexer;
use std::collections::HashMap;
use std::sync::Arc;

/// An immutable, self-contained view of an engine at one commit point.
///
/// Cheap to share (`Arc` fields), cheap to evolve (unchanged posting
/// lists and texts are pointer-shared with the previous snapshot), and
/// safe to query from any number of threads with no locking at all.
#[derive(Debug, Clone, Default)]
pub struct EngineSnapshot {
    vocab: Arc<HashMap<String, WordId>>,
    postings: HashMap<WordId, Arc<PostingList>>,
    texts: HashMap<DocId, Arc<str>>,
    /// Per-document token lengths for BM25 (shared across epochs — the
    /// map only grows, like `total_docs`).
    lens: Arc<HashMap<DocId, u32>>,
    total_docs: u64,
    total_tokens: u64,
    next_doc: u32,
}

impl EngineSnapshot {
    /// An empty view: no vocabulary, no documents. Every query matches
    /// nothing. Useful as a placeholder before the first materialization.
    pub fn empty() -> Self {
        Self::default()
    }

    fn word_id(&self, word: &str) -> Option<WordId> {
        self.vocab.get(&word.to_ascii_lowercase()).copied()
    }

    fn load_text(&self, doc: DocId) -> Result<Option<String>> {
        Ok(self.texts.get(&doc).map(|t| t.to_string()))
    }

    /// Parse and evaluate a boolean query string, e.g.
    /// `"(cat and dog) or mouse"`.
    pub fn boolean_str(&self, query: &str) -> Result<PostingList> {
        parse_query_with(&self.vocab, query)?.eval(self)
    }

    /// Proximity query: documents where `w1` and `w2` occur within
    /// `window` positions of each other.
    pub fn within(&self, w1: &str, w2: &str, window: u32) -> Result<PostingList> {
        let (Some(a), Some(b)) = (self.word_id(w1), self.word_id(w2)) else {
            return Ok(PostingList::new());
        };
        let candidates = Query::and(Query::Word(a), Query::Word(b)).eval(self)?;
        filter_within(&candidates, |doc| self.load_text(doc), w1, w2, window)
    }

    /// Phrase query: the words of `phrase` occur contiguously, in order.
    pub fn phrase(&self, phrase: &str) -> Result<PostingList> {
        let words: Vec<String> = lexer::tokenize_document(phrase);
        if words.is_empty() {
            return Ok(PostingList::new());
        }
        let mut ids = Vec::with_capacity(words.len());
        for w in &words {
            match self.vocab.get(w) {
                Some(&id) => ids.push(Query::Word(id)),
                None => return Ok(PostingList::new()),
            }
        }
        let candidates = Query::And(ids).eval(self)?;
        filter_phrase(&candidates, |doc| self.load_text(doc), &words)
    }

    /// Vector-space search using a document text as the query. Terms run
    /// in the lexer's canonical order, so scores are bit-exact with the
    /// live engine's `more_like_this`.
    pub fn more_like_this(&self, text: &str, k: usize) -> Result<Vec<Hit>> {
        let words: Vec<WordId> = lexer::document_words(text)
            .iter()
            .filter_map(|w| self.vocab.get(w).copied())
            .collect();
        search_like(self, &words, self.total_docs, k)
    }

    /// Document frequency per term (0 for unknown words).
    pub fn term_dfs(&self, terms: &[String]) -> Result<Vec<u64>> {
        Ok(terms
            .iter()
            .map(|t| match self.word_id(t) {
                Some(w) => self.postings.get(&w).map(|l| l.len() as u64).unwrap_or(0),
                None => 0,
            })
            .collect())
    }

    /// Top-k scoring with caller-supplied per-term contributions, in
    /// slice order (the router's WLIKE phase).
    pub fn weighted_like(&self, terms: &[(String, f64)], k: usize) -> Result<Vec<Hit>> {
        let seeded: Vec<(WordId, f64)> = terms
            .iter()
            .filter_map(|(t, w)| self.word_id(t).map(|id| (id, *w)))
            .collect();
        search_seeded(self, &seeded, k)
    }

    /// BM25 ranked top-k using a document text as the query, bit-exact
    /// with the live engine's `rank`.
    pub fn rank(&self, text: &str, k: usize, params: crate::rank::Bm25Params) -> Result<Vec<Hit>> {
        let words: Vec<WordId> = lexer::document_words(text)
            .iter()
            .filter_map(|w| self.vocab.get(w).copied())
            .collect();
        crate::rank::rank_like(
            self,
            &words,
            self.total_docs,
            &self.lens,
            crate::rank::avgdl(self.total_tokens, self.total_docs),
            params,
            k,
        )
    }

    /// BM25 ranked top-k with caller-supplied idf weights and avgdl (the
    /// router's distributed RANK phase).
    pub fn weighted_rank(
        &self,
        terms: &[(String, f64)],
        k: usize,
        params: crate::rank::Bm25Params,
        avgdl: f64,
    ) -> Result<Vec<Hit>> {
        let seeded: Vec<(WordId, f64)> = terms
            .iter()
            .filter_map(|(t, w)| self.word_id(t).map(|id| (id, *w)))
            .collect();
        crate::rank::rank_seeded(self, &seeded, &self.lens, avgdl, params, k)
    }

    /// Total lexer tokens as of this snapshot (BM25 avgdl numerator).
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Evaluate a typed [`crate::EngineQuery`] — same dispatch as the
    /// live engines, over this snapshot's materialized state.
    pub fn execute(&self, query: &crate::EngineQuery) -> Result<crate::QueryOutput> {
        use crate::{EngineQuery, QueryOutput};
        Ok(match query {
            EngineQuery::Boolean(text) => {
                QueryOutput::Docs(parse_query_with(&self.vocab, text)?.eval(self)?)
            }
            EngineQuery::Phrase(text) => QueryOutput::Docs(self.phrase(text)?),
            EngineQuery::Near { w1, w2, window } => {
                QueryOutput::Docs(self.within(w1, w2, *window)?)
            }
            EngineQuery::Like { text, k } => QueryOutput::Hits(self.more_like_this(text, *k)?),
            EngineQuery::Rank { text, k, params } => {
                QueryOutput::Hits(self.rank(text, *k, *params)?)
            }
            EngineQuery::WeightedLike { terms, k } => {
                QueryOutput::Hits(self.weighted_like(terms, *k)?)
            }
            EngineQuery::WeightedRank { terms, k, params, avgdl } => {
                QueryOutput::Hits(self.weighted_rank(terms, *k, *params, *avgdl)?)
            }
            EngineQuery::Dfs(terms) => QueryOutput::Dfs {
                docs: self.total_docs,
                tokens: self.total_tokens,
                dfs: self.term_dfs(terms)?,
            },
            EngineQuery::Doc(doc) => QueryOutput::Text(self.load_text(*doc)?),
        })
    }

    /// The stored text of a document.
    pub fn document(&self, doc: DocId) -> Result<Option<String>> {
        self.load_text(doc)
    }

    /// Documents added as of this snapshot.
    pub fn total_docs(&self) -> u64 {
        self.total_docs
    }

    /// Distinct words interned as of this snapshot.
    pub fn vocabulary_size(&self) -> usize {
        self.vocab.len()
    }
}

impl PostingSource for EngineSnapshot {
    fn postings(&self, word: WordId) -> Result<PostingList> {
        let _stage = invidx_obs::trace::stage("term");
        let list = self.postings.get(&word).map(|l| (**l).clone()).unwrap_or_default();
        invidx_obs::trace::add_items(list.len() as u64);
        Ok(list)
    }
}

/// Build the next snapshot from an engine's core and index.
///
/// Pass `prev` — the snapshot produced by the *previous* call on this
/// same engine — to re-read only the posting lists dirtied since then
/// and `Arc`-share everything else. With `prev = None`, or after a
/// conservative invalidation (`dirty_all`), every non-empty list is
/// re-read. Either way the reads go through the index's normal
/// [`PostingSource`] path, so block-cache counters and `block_cache` /
/// `disk` trace stages charge here, at publish time, not on queries.
pub(crate) fn materialize<S: QueryIndex + ?Sized>(
    core: &mut EngineCore,
    index: &S,
    prev: Option<&EngineSnapshot>,
) -> Result<EngineSnapshot> {
    let _stage = invidx_obs::trace::stage("materialize");
    let full = core.dirty_all || prev.is_none();
    let (mut postings, mut texts) = if full {
        (HashMap::new(), HashMap::new())
    } else {
        let p = prev.unwrap();
        (p.postings.clone(), p.texts.clone())
    };
    if full {
        for &id in core.vocab.values() {
            let list = index.postings(id)?;
            if !list.is_empty() {
                postings.insert(id, Arc::new(list));
            }
        }
        for (doc, _, _, _) in core.docs.extents() {
            if let Some(text) = core.docs.load(index.array(), doc)? {
                texts.insert(doc, Arc::from(text.as_str()));
            }
        }
    } else {
        for &id in core.dirty.iter() {
            let list = index.postings(id)?;
            if list.is_empty() {
                postings.remove(&id);
            } else {
                postings.insert(id, Arc::new(list));
            }
        }
        let from = prev.map(|p| p.next_doc).unwrap_or(1);
        for id in from..core.next_doc {
            let doc = DocId(id);
            if let Some(text) = core.docs.load(index.array(), doc)? {
                texts.insert(doc, Arc::from(text.as_str()));
            }
        }
    }
    // The vocabulary only grows; an unchanged length means an unchanged
    // map, so the Arc can be shared with the previous snapshot.
    let vocab = match prev {
        Some(p) if p.vocab.len() == core.vocab.len() => p.vocab.clone(),
        _ => Arc::new(core.vocab.clone()),
    };
    // Document lengths likewise only grow (deletions never retract an
    // entry): share the Arc whenever no document was added since `prev`.
    let lens = match prev {
        Some(p) if p.lens.len() == core.doc_lengths.len() => p.lens.clone(),
        _ => Arc::new(core.doc_lengths.clone()),
    };
    core.dirty.clear();
    core.dirty_all = false;
    Ok(EngineSnapshot {
        vocab,
        postings,
        texts,
        lens,
        total_docs: core.total_docs,
        total_tokens: core.total_tokens,
        next_doc: core.next_doc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchEngine;
    use invidx_core::index::{EngineKind, IndexConfig};
    use invidx_disk::sparse_array;

    fn ids(list: &PostingList) -> Vec<u32> {
        list.docs().iter().map(|d| d.0).collect()
    }

    fn score_bits(hits: &[Hit]) -> Vec<(u32, u64)> {
        hits.iter().map(|h| (h.doc.0, h.score.to_bits())).collect()
    }

    fn corpus() -> Vec<String> {
        (0..30)
            .map(|i| {
                format!(
                    "shared w{} w{} anchor tail{} {}",
                    i % 5,
                    (i * 7) % 11,
                    i,
                    if i % 3 == 0 { "cat sat near the dog" } else { "mouse ran far away" }
                )
            })
            .collect()
    }

    fn assert_parity(engine: &SearchEngine, snap: &EngineSnapshot) {
        assert_eq!(snap.total_docs(), engine.total_docs());
        assert_eq!(snap.vocabulary_size(), engine.vocabulary_size());
        for q in ["shared", "cat and dog", "(cat and dog) or mouse", "shared and not cat", "w3 or w10", "nonexistent"] {
            assert_eq!(
                ids(&snap.boolean_str(q).unwrap()),
                ids(&engine.boolean_str(q).unwrap()),
                "boolean {q:?}"
            );
        }
        assert_eq!(
            ids(&snap.within("cat", "dog", 4).unwrap()),
            ids(&engine.within("cat", "dog", 4).unwrap())
        );
        assert_eq!(
            ids(&snap.phrase("cat sat near the dog").unwrap()),
            ids(&engine.phrase("cat sat near the dog").unwrap())
        );
        assert_eq!(
            score_bits(&snap.more_like_this("shared anchor cat dog", 10).unwrap()),
            score_bits(&engine.more_like_this("shared anchor cat dog", 10).unwrap()),
            "LIKE scores must be bit-exact"
        );
        let terms: Vec<String> = ["shared", "cat", "zebra"].iter().map(|s| s.to_string()).collect();
        assert_eq!(snap.term_dfs(&terms).unwrap(), engine.term_dfs(&terms).unwrap());
        let weighted: Vec<(String, f64)> =
            [("shared", 0.5), ("dog", 2.0)].iter().map(|(t, w)| (t.to_string(), *w)).collect();
        assert_eq!(
            score_bits(&snap.weighted_like(&weighted, 5).unwrap()),
            score_bits(&engine.weighted_like(&weighted, 5).unwrap())
        );
        let p = crate::rank::Bm25Params::default();
        assert_eq!(
            score_bits(&snap.rank("shared anchor cat dog", 10, p).unwrap()),
            score_bits(&engine.rank("shared anchor cat dog", 10, p).unwrap()),
            "BM25 RANK scores must be bit-exact"
        );
        let avgdl = crate::rank::avgdl(engine.total_tokens(), engine.total_docs());
        assert_eq!(
            score_bits(&snap.weighted_rank(&weighted, 5, p, avgdl).unwrap()),
            score_bits(&engine.weighted_rank(&weighted, 5, p, avgdl).unwrap())
        );
        // The typed query surface dispatches to the same evaluators.
        let q = crate::EngineQuery::Rank { text: "shared anchor".into(), k: 5, params: p };
        assert_eq!(snap.execute(&q).unwrap(), engine.execute(&q).unwrap());
        let q = crate::EngineQuery::Dfs(vec!["shared".into(), "zebra".into()]);
        assert_eq!(snap.execute(&q).unwrap(), engine.execute(&q).unwrap());
        for d in [1u32, 2, 7, 999] {
            assert_eq!(snap.document(DocId(d)).unwrap(), engine.document(DocId(d)).unwrap());
        }
    }

    fn run_parity(config: IndexConfig) {
        let array = sparse_array(2, 50_000, 256);
        let mut e = SearchEngine::create(array, config).unwrap();
        let texts = corpus();
        for t in &texts[..20] {
            e.add_document(t).unwrap();
        }
        e.flush().unwrap();
        let snap1 = e.snapshot(None).unwrap();
        assert_parity(&e, &snap1);

        // Incremental: add more documents, re-materialize off the first.
        for t in &texts[20..] {
            e.add_document(t).unwrap();
        }
        e.flush().unwrap();
        let snap2 = e.snapshot(Some(&snap1)).unwrap();
        assert_parity(&e, &snap2);
        // The first snapshot still answers for its own epoch. (The corpus
        // lexer splits letter/digit runs, so "tail25" indexes as "tail"
        // and "25"; the digit token is unique to document 26.)
        assert_eq!(snap1.total_docs(), 20);
        assert_eq!(ids(&snap1.boolean_str("25").unwrap()), Vec::<u32>::new());
        assert_eq!(ids(&snap2.boolean_str("25").unwrap()), vec![26]);
    }

    #[test]
    fn snapshot_matches_live_engine_in_place() {
        run_parity(IndexConfig::small());
    }

    #[test]
    fn snapshot_matches_live_engine_segmented() {
        let config = IndexConfig {
            engine: EngineKind::Segmented { l0_budget: 64, fanout: 2 },
            ..IndexConfig::small()
        };
        run_parity(config);
    }

    #[test]
    fn snapshot_tracks_deletions_via_dirty_all() {
        let array = sparse_array(2, 50_000, 256);
        let mut e = SearchEngine::create(array, IndexConfig::small()).unwrap();
        let d1 = e.add_document("target shared words").unwrap();
        e.add_document("other shared words").unwrap();
        e.flush().unwrap();
        let snap1 = e.snapshot(None).unwrap();
        assert_eq!(snap1.boolean_str("target").unwrap().len(), 1);

        e.delete(d1);
        let snap2 = e.snapshot(Some(&snap1)).unwrap();
        assert!(snap2.boolean_str("target").unwrap().is_empty(), "deletion must invalidate");
        assert_eq!(ids(&snap2.boolean_str("shared").unwrap()), vec![2]);
        // The old snapshot is untouched.
        assert_eq!(snap1.boolean_str("target").unwrap().len(), 1);
    }

    #[test]
    fn incremental_rematerialization_shares_unchanged_lists() {
        let array = sparse_array(2, 50_000, 256);
        let mut e = SearchEngine::create(array, IndexConfig::small()).unwrap();
        e.add_document("stable words never touched again").unwrap();
        e.flush().unwrap();
        let snap1 = e.snapshot(None).unwrap();
        e.add_document("fresh vocabulary entirely disjoint").unwrap();
        e.flush().unwrap();
        let snap2 = e.snapshot(Some(&snap1)).unwrap();
        let stable = e.word_id("stable").unwrap();
        assert!(Arc::ptr_eq(&snap1.postings[&stable], &snap2.postings[&stable]));
        assert!(Arc::ptr_eq(&snap1.texts[&DocId(1)], &snap2.texts[&DocId(1)]));
        assert_eq!(snap2.boolean_str("fresh").unwrap().len(), 1);
    }

    #[test]
    fn empty_snapshot_answers_nothing() {
        let s = EngineSnapshot::empty();
        assert!(s.boolean_str("anything").unwrap().is_empty());
        assert!(s.phrase("any phrase").unwrap().is_empty());
        assert!(s.within("a", "b", 5).unwrap().is_empty());
        assert!(s.more_like_this("query text", 5).unwrap().is_empty());
        assert_eq!(s.total_docs(), 0);
        assert_eq!(s.document(DocId(1)).unwrap(), None);
    }
}
