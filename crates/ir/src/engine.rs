//! The end-to-end search engine: text documents in, ranked results out.
//!
//! [`SearchEngine`] glues the corpus lexer (paper §4.2), a string → word-id
//! interner ("all words in batch updates are converted to unique
//! integers"), the dual-structure index, and the two query models of §1.
//! It also ships a small boolean query-string parser so examples and tests
//! can write `(cat and dog) or mouse` — the paper's own example query.
//!
//! The engine state that is *not* the index proper — the document store,
//! the vocabulary, and the id counters — lives in [`EngineCore`], shared
//! with the crash-safe [`crate::DurableEngine`]. `SearchEngine` persists
//! that state with an explicit metadata blob ([`SearchEngine::save_meta`]);
//! the durable engine carries the same blob in WAL records and checkpoints.

use crate::boolean::{PostingSource, Query};
use crate::docstore::DocStore;
use crate::proximity;
use crate::vector::{search, Hit, VectorQuery};
use invidx_core::index::{BatchReport, DualIndex, EngineKind, IndexConfig, SweepReport};
use invidx_core::postings::PostingList;
use invidx_core::types::{DocId, IndexError, Result, WordId};
use invidx_corpus::lexer;
use invidx_disk::DiskArray;
use invidx_segment::{SegmentStats, SegmentedIndex};
use std::collections::{HashMap, HashSet};

/// A queryable index backend: posting lists plus the disk array the
/// document store lives on. Everything the query evaluators need,
/// satisfied by the in-place [`DualIndex`], the segment-tiered
/// [`SegmentedIndex`], and the engines' own backend enums — so boolean,
/// proximity, phrase, and vector search run unchanged over any engine.
pub trait QueryIndex: PostingSource {
    /// The disk array shared by the index and the document store.
    fn array(&self) -> &DiskArray;
}

impl QueryIndex for DualIndex {
    fn array(&self) -> &DiskArray {
        DualIndex::array(self)
    }
}

impl PostingSource for SegmentedIndex {
    fn postings(&self, word: WordId) -> Result<PostingList> {
        let _stage = invidx_obs::trace::stage("term");
        let list = SegmentedIndex::postings(self, word)?;
        invidx_obs::trace::add_items(list.len() as u64);
        Ok(list)
    }
}

impl QueryIndex for SegmentedIndex {
    fn array(&self) -> &DiskArray {
        SegmentedIndex::array(self)
    }
}

/// The index behind a [`SearchEngine`]: the paper's mutable in-place
/// store, or the segment-tiered store with that same structure demoted
/// to L0. Selected by [`IndexConfig::engine`] at creation.
pub enum Backend {
    /// Update-in-place dual-structure index (the paper's design).
    InPlace(DualIndex),
    /// L0 dual-structure index plus immutable sealed segments.
    Segmented(SegmentedIndex),
}

impl Backend {
    fn create(array: DiskArray, config: IndexConfig) -> Result<Self> {
        match config.engine {
            EngineKind::InPlace => Ok(Backend::InPlace(DualIndex::create(array, config)?)),
            EngineKind::Segmented { .. } => {
                Ok(Backend::Segmented(SegmentedIndex::create(array, config)?))
            }
        }
    }

    /// The dual-structure index: the whole store in-place, L0 when
    /// segmented.
    pub fn dual(&self) -> &DualIndex {
        match self {
            Backend::InPlace(ix) => ix,
            Backend::Segmented(ix) => ix.l0(),
        }
    }

    fn dual_mut(&mut self) -> &mut DualIndex {
        match self {
            Backend::InPlace(ix) => ix,
            Backend::Segmented(ix) => ix.l0_mut(),
        }
    }

    /// Segment-tier statistics, when this backend is segmented.
    pub fn segment_stats(&self) -> Option<SegmentStats> {
        match self {
            Backend::InPlace(_) => None,
            Backend::Segmented(ix) => Some(ix.stats()),
        }
    }

    fn insert_document(&mut self, doc: DocId, words: Vec<WordId>) -> Result<()> {
        match self {
            Backend::InPlace(ix) => ix.insert_document(doc, words),
            Backend::Segmented(ix) => Ok(ix.insert_document(doc, words)?),
        }
    }

    fn insert_documents(&mut self, docs: Vec<(DocId, Vec<WordId>)>, threads: usize) -> Result<()> {
        match self {
            Backend::InPlace(ix) => ix.insert_documents(docs, threads),
            Backend::Segmented(ix) => Ok(ix.insert_documents(docs, threads)?),
        }
    }

    fn delete_document(&mut self, doc: DocId) {
        match self {
            Backend::InPlace(ix) => ix.delete_document(doc),
            Backend::Segmented(ix) => ix.delete_document(doc),
        }
    }

    fn flush_batch(&mut self) -> Result<BatchReport> {
        match self {
            Backend::InPlace(ix) => ix.flush_batch(),
            Backend::Segmented(ix) => Ok(ix.flush_batch()?),
        }
    }

    fn sweep(&mut self) -> Result<SweepReport> {
        match self {
            Backend::InPlace(ix) => ix.sweep(),
            // Sweeping L0 would clear tombstones that sealed segments
            // still need for read-time filtering; deletions are instead
            // dropped for good when segments merge.
            Backend::Segmented(_) => Err(IndexError::InvalidConfig(
                "the segmented engine has no sweep; deletions are purged by compaction".into(),
            )),
        }
    }
}

impl PostingSource for Backend {
    fn postings(&self, word: WordId) -> Result<PostingList> {
        match self {
            Backend::InPlace(ix) => PostingSource::postings(ix, word),
            Backend::Segmented(ix) => PostingSource::postings(ix, word),
        }
    }
}

impl QueryIndex for Backend {
    fn array(&self) -> &DiskArray {
        match self {
            Backend::InPlace(ix) => DualIndex::array(ix),
            Backend::Segmented(ix) => SegmentedIndex::array(ix),
        }
    }
}

/// Engine state beyond the index itself: stored documents, the word
/// interner, and the id counters. Query evaluation lives here too, so the
/// plain and durable engines share one implementation.
pub(crate) struct EngineCore {
    pub(crate) docs: DocStore,
    pub(crate) vocab: HashMap<String, WordId>,
    pub(crate) next_word: u64,
    pub(crate) next_doc: u32,
    pub(crate) total_docs: u64,
    /// Per-document token count (in-order, non-deduplicated lexer
    /// tokens) — the BM25 length norm. Deletions leave entries in place,
    /// mirroring `total_docs`, which also never decrements.
    pub(crate) doc_lengths: HashMap<DocId, u32>,
    /// Sum of all registered document lengths; `total_tokens /
    /// total_docs` is the corpus avgdl.
    pub(crate) total_tokens: u64,
    /// Words whose posting lists changed since the last snapshot
    /// materialization ([`crate::EngineSnapshot`]). Every interned word is
    /// marked: an intern happens exactly when a document contributes a
    /// posting for that word.
    pub(crate) dirty: HashSet<WordId>,
    /// Conservative invalidation: deletions, sweeps, and freshly
    /// constructed/recovered cores dirty every list at once.
    pub(crate) dirty_all: bool,
}

impl EngineCore {
    /// Fresh, empty state. Word id 0 is reserved (unknown words map to it
    /// and match nothing); document ids start at 1.
    pub(crate) fn new() -> Self {
        Self {
            docs: DocStore::new(),
            vocab: HashMap::new(),
            next_word: 1,
            next_doc: 1,
            total_docs: 0,
            doc_lengths: HashMap::new(),
            total_tokens: 0,
            dirty: HashSet::new(),
            dirty_all: true,
        }
    }

    /// Record a stored document's token length for BM25 length
    /// normalization. Call once per `docs.store`.
    pub(crate) fn register_doc(&mut self, doc: DocId, text: &str) {
        let len = lexer::tokenize_document(text).len() as u32;
        self.doc_lengths.insert(doc, len);
        self.total_tokens += len as u64;
    }

    /// Corpus average document length (see [`crate::rank::avgdl`]).
    pub(crate) fn avgdl(&self) -> f64 {
        crate::rank::avgdl(self.total_tokens, self.total_docs)
    }

    /// Intern a word (lowercased by the caller/lexer).
    pub(crate) fn intern(&mut self, word: &str) -> WordId {
        if let Some(&id) = self.vocab.get(word) {
            self.dirty.insert(id);
            return id;
        }
        let id = WordId(self.next_word);
        self.next_word += 1;
        self.vocab.insert(word.to_string(), id);
        self.dirty.insert(id);
        id
    }

    /// Look up a word without interning.
    pub(crate) fn word_id(&self, word: &str) -> Option<WordId> {
        self.vocab.get(&word.to_ascii_lowercase()).copied()
    }

    /// Lex a document and intern every word, in lexer order. Interning
    /// order determines word-id assignment, so recovery re-runs exactly
    /// this to reproduce the vocabulary.
    pub(crate) fn lex_and_intern(&mut self, text: &str) -> Vec<WordId> {
        lexer::document_words(text).iter().map(|w| self.intern(w)).collect()
    }

    /// Lex a batch of documents across `threads` workers, then intern
    /// serially in document order. Tokenization is pure per-document work,
    /// so it parallelizes freely; interning — the only order-sensitive
    /// step — stays sequential, which makes word-id assignment identical
    /// to calling [`Self::lex_and_intern`] once per document. Recovery
    /// replays documents one at a time and still reproduces the same
    /// vocabulary.
    pub(crate) fn lex_batch(&mut self, texts: &[&str], threads: usize) -> Vec<Vec<WordId>> {
        let threads = threads.max(1);
        if threads == 1 || texts.len() < 2 {
            return texts.iter().map(|t| self.lex_and_intern(t)).collect();
        }
        let chunk = texts.len().div_ceil(threads);
        let lexed: Vec<Vec<String>> = std::thread::scope(|s| {
            let handles: Vec<_> = texts
                .chunks(chunk)
                .map(|group| {
                    s.spawn(move || {
                        group.iter().map(|t| lexer::document_words(t)).collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut all = Vec::with_capacity(texts.len());
            for h in handles {
                match h.join() {
                    Ok(group) => all.extend(group),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            all
        });
        invidx_obs::counter!(invidx_obs::names::INGEST_LEXED_DOCS).add(texts.len() as u64);
        lexed.iter().map(|words| words.iter().map(|w| self.intern(w)).collect()).collect()
    }

    /// Serialize everything beyond what the index persists itself:
    /// counters, vocabulary, document directory.
    pub(crate) fn encode_meta(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"IVXMETA2");
        out.extend_from_slice(&self.next_word.to_le_bytes());
        out.extend_from_slice(&self.next_doc.to_le_bytes());
        out.extend_from_slice(&self.total_docs.to_le_bytes());
        out.extend_from_slice(&self.total_tokens.to_le_bytes());
        out.extend_from_slice(&(self.doc_lengths.len() as u64).to_le_bytes());
        let mut lens: Vec<(&DocId, &u32)> = self.doc_lengths.iter().collect();
        lens.sort_by_key(|&(d, _)| d.0);
        for (d, len) in lens {
            out.extend_from_slice(&d.0.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        out.extend_from_slice(&(self.vocab.len() as u64).to_le_bytes());
        let mut words: Vec<(&String, &WordId)> = self.vocab.iter().collect();
        words.sort_by_key(|&(_, id)| id.0);
        for (w, id) in words {
            out.extend_from_slice(&id.0.to_le_bytes());
            out.extend_from_slice(&(w.len() as u16).to_le_bytes());
            out.extend_from_slice(w.as_bytes());
        }
        let docs = self.docs.serialize();
        out.extend_from_slice(&(docs.len() as u64).to_le_bytes());
        out.extend_from_slice(&docs);
        out
    }

    /// Restore from [`EngineCore::encode_meta`] bytes.
    pub(crate) fn decode_meta(meta: &[u8]) -> Result<Self> {
        let corrupt = |m: &str| IndexError::Corruption(format!("engine meta: {m}"));
        let need = |ok: bool, m: &str| ok.then_some(()).ok_or_else(|| corrupt(m));
        need(meta.len() >= 8 && &meta[..8] == b"IVXMETA2", "bad magic")?;
        let mut pos = 8usize;
        let mut take = |n: usize| -> Result<&[u8]> {
            if pos + n > meta.len() {
                return Err(corrupt("truncated"));
            }
            let s = &meta[pos..pos + n];
            pos += n;
            Ok(s)
        };
        let width = |m: &str| IndexError::Corruption(format!("engine meta: short field {m}"));
        macro_rules! word_field {
            ($ty:ty, $n:expr, $m:expr) => {
                <$ty>::from_le_bytes(take($n)?.try_into().map_err(|_| width($m))?)
            };
        }
        let next_word = word_field!(u64, 8, "next_word");
        let next_doc = word_field!(u32, 4, "next_doc");
        let total_docs = word_field!(u64, 8, "total_docs");
        let total_tokens = word_field!(u64, 8, "total_tokens");
        let lens_len = word_field!(u64, 8, "lens_len") as usize;
        let mut doc_lengths = HashMap::with_capacity(lens_len);
        for _ in 0..lens_len {
            let doc = DocId(word_field!(u32, 4, "len_doc"));
            let len = word_field!(u32, 4, "len_val");
            doc_lengths.insert(doc, len);
        }
        let vocab_len = word_field!(u64, 8, "vocab_len") as usize;
        let mut vocab = HashMap::with_capacity(vocab_len);
        for _ in 0..vocab_len {
            let id = WordId(word_field!(u64, 8, "word_id"));
            let wlen = word_field!(u16, 2, "word_len") as usize;
            let word = String::from_utf8(take(wlen)?.to_vec())
                .map_err(|_| corrupt("non-utf8 word"))?;
            vocab.insert(word, id);
        }
        let dlen = word_field!(u64, 8, "doc_len") as usize;
        let docs = DocStore::deserialize(take(dlen)?)?;
        Ok(Self {
            docs,
            vocab,
            next_word,
            next_doc,
            total_docs,
            doc_lengths,
            total_tokens,
            dirty: HashSet::new(),
            dirty_all: true,
        })
    }

    /// Parse a boolean query string into a [`Query`]. Unknown words become
    /// empty-list terms (word id 0 is never interned, so they match
    /// nothing).
    pub(crate) fn parse_query(&self, text: &str) -> Result<Query> {
        parse_query_with(&self.vocab, text)
    }

    /// Proximity query (paper §1): inverted lists prune to the documents
    /// containing both words; the stored text verifies the positional
    /// window.
    pub(crate) fn within<S: QueryIndex + ?Sized>(
        &self,
        index: &S,
        w1: &str,
        w2: &str,
        window: u32,
    ) -> Result<PostingList> {
        let (Some(a), Some(b)) = (self.word_id(w1), self.word_id(w2)) else {
            return Ok(PostingList::new());
        };
        let candidates = Query::and(Query::Word(a), Query::Word(b)).eval(index)?;
        filter_within(&candidates, |doc| self.docs.load(index.array(), doc), w1, w2, window)
    }

    /// Phrase query: the words of `phrase` occur contiguously, in order.
    pub(crate) fn phrase<S: QueryIndex + ?Sized>(
        &self,
        index: &S,
        phrase: &str,
    ) -> Result<PostingList> {
        let words: Vec<String> = lexer::tokenize_document(phrase);
        if words.is_empty() {
            return Ok(PostingList::new());
        }
        // Prune: AND over all words (unknown word => empty result).
        let mut ids = Vec::with_capacity(words.len());
        for w in &words {
            match self.vocab.get(w) {
                Some(&id) => ids.push(Query::Word(id)),
                None => return Ok(PostingList::new()),
            }
        }
        let candidates = Query::And(ids).eval(index)?;
        filter_phrase(&candidates, |doc| self.docs.load(index.array(), doc), &words)
    }

    /// Vector-space search using a document text as the query (the paper's
    /// "a query may be derived from a document" — §5.2.1).
    ///
    /// Terms are evaluated in the lexer's canonical (sorted, deduplicated)
    /// order via [`crate::vector::search_like`], so scores are bit-exact
    /// across runs and across deployments — an unsharded engine and a
    /// sharded router computing the same global weights produce identical
    /// f64 scores for every document.
    pub(crate) fn more_like_this<S: QueryIndex + ?Sized>(
        &self,
        index: &S,
        text: &str,
        k: usize,
    ) -> Result<Vec<Hit>> {
        let words: Vec<WordId> = lexer::document_words(text)
            .iter()
            .filter_map(|w| self.vocab.get(w).copied())
            .collect();
        crate::vector::search_like(index, &words, self.total_docs, k)
    }

    /// Document frequency of each query term, for the router's two-phase
    /// distributed LIKE: `(term, df)` per requested term (0 for unknown
    /// words), plus this engine's document count. Uses the same
    /// deletion-filtered posting lists that scoring reads, so a router
    /// summing shard dfs computes exactly the idf an unsharded engine
    /// would.
    pub(crate) fn term_dfs<S: QueryIndex + ?Sized>(
        &self,
        index: &S,
        terms: &[String],
    ) -> Result<Vec<u64>> {
        terms
            .iter()
            .map(|t| match self.word_id(t) {
                Some(w) => Ok(index.postings(w)?.len() as u64),
                None => Ok(0),
            })
            .collect()
    }

    /// Top-k scoring with caller-supplied per-term contributions, in slice
    /// order (the router ships corpus-global idf weights in canonical
    /// sorted-term order). Unknown words are skipped — they have no local
    /// postings, so they contribute nothing anyway.
    pub(crate) fn weighted_like<S: QueryIndex + ?Sized>(
        &self,
        index: &S,
        terms: &[(String, f64)],
        k: usize,
    ) -> Result<Vec<Hit>> {
        let seeded: Vec<(WordId, f64)> = terms
            .iter()
            .filter_map(|(t, w)| self.word_id(t).map(|id| (id, *w)))
            .collect();
        crate::vector::search_seeded(index, &seeded, k)
    }

    /// BM25 ranked top-k using a document text as the query. Terms run
    /// in the lexer's canonical order; evaluation is WAND-pruned and
    /// bit-exact with the exhaustive oracle.
    pub(crate) fn rank<S: QueryIndex + ?Sized>(
        &self,
        index: &S,
        text: &str,
        k: usize,
        params: crate::rank::Bm25Params,
    ) -> Result<Vec<Hit>> {
        let words: Vec<WordId> = lexer::document_words(text)
            .iter()
            .filter_map(|w| self.vocab.get(w).copied())
            .collect();
        crate::rank::rank_like(
            index,
            &words,
            self.total_docs,
            &self.doc_lengths,
            self.avgdl(),
            params,
            k,
        )
    }

    /// The brute-force counterpart of [`Self::rank`]: no early
    /// termination. Kept for tests and the ablation gate.
    pub(crate) fn rank_exhaustive<S: QueryIndex + ?Sized>(
        &self,
        index: &S,
        text: &str,
        k: usize,
        params: crate::rank::Bm25Params,
    ) -> Result<Vec<Hit>> {
        let words: Vec<WordId> = lexer::document_words(text)
            .iter()
            .filter_map(|w| self.vocab.get(w).copied())
            .collect();
        crate::rank::rank_like_exhaustive(
            index,
            &words,
            self.total_docs,
            &self.doc_lengths,
            self.avgdl(),
            params,
            k,
        )
    }

    /// BM25 ranked top-k with caller-supplied idf weights and a
    /// caller-supplied (corpus-global) avgdl — the router's distributed
    /// RANK phase. Accumulation runs in slice order.
    pub(crate) fn weighted_rank<S: QueryIndex + ?Sized>(
        &self,
        index: &S,
        terms: &[(String, f64)],
        k: usize,
        params: crate::rank::Bm25Params,
        avgdl: f64,
    ) -> Result<Vec<Hit>> {
        let seeded: Vec<(WordId, f64)> = terms
            .iter()
            .filter_map(|(t, w)| self.word_id(t).map(|id| (id, *w)))
            .collect();
        crate::rank::rank_seeded(index, &seeded, &self.doc_lengths, avgdl, params, k)
    }
}

/// A text search engine over the dual-structure index.
///
/// Documents are stored alongside the index (in a [`DocStore`] sharing the
/// same disks), enabling the paper's §1 positional conditions: inverted
/// lists prune the candidates, the stored text verifies proximity and
/// phrase predicates.
/// ```
/// use invidx_core::index::IndexConfig;
/// use invidx_disk::sparse_array;
/// use invidx_ir::SearchEngine;
///
/// let array = sparse_array(2, 50_000, 256);
/// let mut engine = SearchEngine::create(array, IndexConfig::small()).unwrap();
/// engine.add_document("the cat sat on the mat").unwrap();
/// engine.add_document("the dog chased the cat").unwrap();
/// engine.flush().unwrap();
/// assert_eq!(engine.boolean_str("cat and dog").unwrap().len(), 1);
/// assert_eq!(engine.within("dog", "cat", 3).unwrap().len(), 1);
/// ```
pub struct SearchEngine {
    backend: Backend,
    core: EngineCore,
}

impl SearchEngine {
    /// Create a fresh engine on the given disks. [`IndexConfig::engine`]
    /// picks the backend: in-place (the paper's design) or segmented.
    pub fn create(array: DiskArray, config: IndexConfig) -> Result<Self> {
        Ok(Self { backend: Backend::create(array, config)?, core: EngineCore::new() })
    }

    /// Serialize the engine's metadata (vocabulary, document directory,
    /// counters) — everything beyond what `DualIndex` persists itself.
    /// Write this beside the device files after each flush; pass it to
    /// [`SearchEngine::open`] to restore.
    pub fn save_meta(&self) -> Vec<u8> {
        self.core.encode_meta()
    }

    /// Assemble an engine from an already-recovered index plus
    /// [`SearchEngine::save_meta`] bytes. Document-store extents are
    /// re-reserved in the index's allocators.
    pub fn from_parts(mut index: DualIndex, meta: &[u8]) -> Result<Self> {
        let core = EngineCore::decode_meta(meta)?;
        for (_, disk, start, blocks) in core.docs.extents() {
            index.reserve_extent(disk, start, blocks)?;
        }
        Ok(Self { backend: Backend::InPlace(index), core })
    }

    /// Re-open an engine: recover the index from `array` (see
    /// [`DualIndex::open`]) and the engine metadata from `meta` bytes.
    /// Document-store extents are re-reserved in the allocators.
    /// In-place only: the segmented engine's manifest lives in a store
    /// directory, so it reopens through [`crate::DurableEngine`].
    pub fn open(array: DiskArray, config: IndexConfig, meta: &[u8]) -> Result<Self> {
        if !matches!(config.engine, EngineKind::InPlace) {
            return Err(IndexError::InvalidConfig(
                "the segmented engine reopens through DurableEngine (its manifest \
                 is part of the durable store directory)"
                    .into(),
            ));
        }
        Self::from_parts(DualIndex::open(array, config)?, meta)
    }

    /// The dual-structure index: the whole store for the in-place
    /// engine, the L0 tier for the segmented one.
    pub fn index(&self) -> &DualIndex {
        self.backend.dual()
    }

    /// Mutable access to the dual-structure index (see [`Self::index`]).
    pub fn index_mut(&mut self) -> &mut DualIndex {
        self.backend.dual_mut()
    }

    /// The backend behind this engine.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Mutable backend access (compaction rate control, forced seals).
    pub fn backend_mut(&mut self) -> &mut Backend {
        &mut self.backend
    }

    /// Segment-tier statistics, when running the segmented engine.
    pub fn segment_stats(&self) -> Option<SegmentStats> {
        self.backend.segment_stats()
    }

    /// Documents added so far.
    pub fn total_docs(&self) -> u64 {
        self.core.total_docs
    }

    /// Block-cache counters, if the index was configured with a cache
    /// (`IndexConfig::cache_blocks > 0`).
    pub fn cache_stats(&self) -> Option<invidx_core::cache::CacheStats> {
        self.backend.dual().cache_stats()
    }

    /// Distinct words interned so far.
    pub fn vocabulary_size(&self) -> usize {
        self.core.vocab.len()
    }

    /// Intern a word (lowercased by the caller/lexer).
    pub fn intern(&mut self, word: &str) -> WordId {
        self.core.intern(word)
    }

    /// Look up a word without interning.
    pub fn word_id(&self, word: &str) -> Option<WordId> {
        self.core.word_id(word)
    }

    /// Add a document; returns its assigned id. The text goes through the
    /// paper's lexer: letter/digit tokens, lowercasing, header-line
    /// skipping, per-document dedup.
    pub fn add_document(&mut self, text: &str) -> Result<DocId> {
        let words = self.core.lex_and_intern(text);
        let doc = DocId(self.core.next_doc);
        self.core.next_doc += 1;
        self.backend.insert_document(doc, words)?;
        self.core.docs.store(self.backend.dual_mut().sidecar_array(), doc, text)?;
        self.core.register_doc(doc, text);
        self.core.total_docs += 1;
        Ok(doc)
    }

    /// Add a batch of documents in one call. Texts are tokenized across
    /// the configured ingest-thread pool, interned serially in document
    /// order (identical word-id assignment to one-at-a-time adds), and
    /// inverted by the word-sharded parallel inverter. Document ids are
    /// assigned in input order and the result is byte-identical to
    /// calling [`Self::add_document`] for each text in turn.
    pub fn add_documents(&mut self, texts: &[&str]) -> Result<Vec<DocId>> {
        let threads = self.backend.dual().ingest_threads();
        let words = self.core.lex_batch(texts, threads);
        let mut ids = Vec::with_capacity(texts.len());
        let mut batch = Vec::with_capacity(texts.len());
        for per_doc in words {
            let doc = DocId(self.core.next_doc);
            self.core.next_doc += 1;
            batch.push((doc, per_doc));
            ids.push(doc);
        }
        self.backend.insert_documents(batch, threads)?;
        for (doc, text) in ids.iter().zip(texts) {
            self.core.docs.store(self.backend.dual_mut().sidecar_array(), *doc, text)?;
            self.core.register_doc(*doc, text);
            self.core.total_docs += 1;
        }
        Ok(ids)
    }

    /// The stored text of a document.
    pub fn document(&self, doc: DocId) -> Result<Option<String>> {
        self.core.docs.load(self.backend.array(), doc)
    }

    /// Flush the current batch to disk. On the segmented engine this
    /// also runs the seal policy and one compaction tick.
    pub fn flush(&mut self) -> Result<BatchReport> {
        self.backend.flush_batch()
    }

    /// Logically delete a document.
    pub fn delete(&mut self, doc: DocId) {
        // A deletion can shrink any list the document appears in; the
        // dirty-word set only tracks additions, so invalidate everything.
        self.core.dirty_all = true;
        self.backend.delete_document(doc);
    }

    /// Run the deletion sweep (in-place engine only; the segmented
    /// engine purges deletions through compaction instead).
    pub fn sweep(&mut self) -> Result<SweepReport> {
        self.core.dirty_all = true;
        self.backend.sweep()
    }

    /// Materialize an immutable point-in-time view of this engine for the
    /// lock-free serving read path. Pass the previous snapshot to reuse
    /// unchanged posting lists and texts (only dirty words are re-read).
    pub fn snapshot(&mut self, prev: Option<&crate::EngineSnapshot>) -> Result<crate::EngineSnapshot> {
        crate::snapshot::materialize(&mut self.core, &self.backend, prev)
    }

    /// Evaluate a boolean [`Query`]. `&self`: queries share the engine,
    /// so a serving layer can fan them out across threads under one read
    /// lock while a single writer ingests.
    pub fn boolean(&self, query: &Query) -> Result<PostingList> {
        query.eval(&self.backend)
    }

    /// Parse and evaluate a boolean query string, e.g.
    /// `"(cat and dog) or mouse"`.
    pub fn boolean_str(&self, query: &str) -> Result<PostingList> {
        let q = self.parse_query(query)?;
        self.boolean(&q)
    }

    /// Parse a boolean query string into a [`Query`]. Unknown words become
    /// empty-list terms (word id 0 is never interned, so they match
    /// nothing).
    pub fn parse_query(&self, text: &str) -> Result<Query> {
        self.core.parse_query(text)
    }

    /// Vector-space search with an explicit query.
    pub fn vector(&self, query: &VectorQuery, k: usize) -> Result<Vec<Hit>> {
        search(&self.backend, query, self.core.total_docs, k)
    }

    /// Proximity query (paper §1: "requiring that 'cat' and 'dog' occur
    /// within so many words of each other"): inverted lists prune to the
    /// documents containing both words; the stored text verifies the
    /// positional window.
    pub fn within(&self, w1: &str, w2: &str, window: u32) -> Result<PostingList> {
        self.core.within(&self.backend, w1, w2, window)
    }

    /// Phrase query: the words of `phrase` occur contiguously, in order.
    pub fn phrase(&self, phrase: &str) -> Result<PostingList> {
        self.core.phrase(&self.backend, phrase)
    }

    /// Vector-space search using a document text as the query (the paper's
    /// "a query may be derived from a document" — §5.2.1).
    pub fn more_like_this(&self, text: &str, k: usize) -> Result<Vec<Hit>> {
        self.core.more_like_this(&self.backend, text, k)
    }

    /// Document frequency per term (0 for unknown words) — the DF phase of
    /// the router's distributed LIKE.
    pub fn term_dfs(&self, terms: &[String]) -> Result<Vec<u64>> {
        self.core.term_dfs(&self.backend, terms)
    }

    /// Top-k scoring with caller-supplied per-term contributions (the
    /// router's WLIKE phase); accumulation runs in slice order.
    pub fn weighted_like(&self, terms: &[(String, f64)], k: usize) -> Result<Vec<Hit>> {
        self.core.weighted_like(&self.backend, terms, k)
    }

    /// BM25 ranked top-k using a document text as the query, with WAND
    /// early termination (bit-exact with the exhaustive oracle).
    pub fn rank(&self, text: &str, k: usize, params: crate::rank::Bm25Params) -> Result<Vec<Hit>> {
        self.core.rank(&self.backend, text, k, params)
    }

    /// [`Self::rank`] without early termination — the brute-force oracle
    /// used by tests and the ablation gate to certify WAND.
    pub fn rank_exhaustive(
        &self,
        text: &str,
        k: usize,
        params: crate::rank::Bm25Params,
    ) -> Result<Vec<Hit>> {
        self.core.rank_exhaustive(&self.backend, text, k, params)
    }

    /// BM25 ranked top-k with caller-supplied idf weights and avgdl (the
    /// router's distributed RANK phase).
    pub fn weighted_rank(
        &self,
        terms: &[(String, f64)],
        k: usize,
        params: crate::rank::Bm25Params,
        avgdl: f64,
    ) -> Result<Vec<Hit>> {
        self.core.weighted_rank(&self.backend, terms, k, params, avgdl)
    }

    /// Total lexer tokens across all added documents (BM25 avgdl
    /// numerator; ships with DF responses so a router can compute the
    /// corpus-global average document length).
    pub fn total_tokens(&self) -> u64 {
        self.core.total_tokens
    }

    /// Evaluate a typed [`crate::EngineQuery`] — the unified query
    /// surface shared by every engine and the serving layer.
    pub fn execute(&self, query: &crate::EngineQuery) -> Result<crate::QueryOutput> {
        crate::query::execute_with(&self.core, &self.backend, query)
    }
}

impl PostingSource for SearchEngine {
    fn postings(&self, word: WordId) -> Result<PostingList> {
        self.backend.postings(word)
    }
}

// ----- shared query helpers -----
//
// The text-verification passes and the query parser are free functions
// over (candidates, text loader, vocabulary) so the live engines and the
// materialized [`crate::EngineSnapshot`] run *identical* logic — snapshot
// parity with the engines is by construction, not by parallel maintenance.

/// Positional-window verification over pruned candidates: keep the
/// documents where `w1` and `w2` occur within `window` positions.
pub(crate) fn filter_within(
    candidates: &PostingList,
    mut load: impl FnMut(DocId) -> Result<Option<String>>,
    w1: &str,
    w2: &str,
    window: u32,
) -> Result<PostingList> {
    let (l1, l2) = (w1.to_ascii_lowercase(), w2.to_ascii_lowercase());
    let mut hits = Vec::new();
    for &doc in candidates.docs() {
        let Some(text) = load(doc)? else {
            continue;
        };
        let positions = lexer::document_word_positions(&text);
        let find = |w: &str| {
            positions
                .binary_search_by(|(t, _)| t.as_str().cmp(w))
                .ok()
                .map(|i| positions[i].1.as_slice())
                .unwrap_or(&[])
        };
        if proximity::within(find(&l1), find(&l2), window) {
            hits.push(doc);
        }
    }
    Ok(PostingList::from_sorted(hits))
}

/// Phrase verification over pruned candidates: keep the documents where
/// `words` occur contiguously, in order.
pub(crate) fn filter_phrase(
    candidates: &PostingList,
    mut load: impl FnMut(DocId) -> Result<Option<String>>,
    words: &[String],
) -> Result<PostingList> {
    let mut hits = Vec::new();
    for &doc in candidates.docs() {
        let Some(text) = load(doc)? else {
            continue;
        };
        let positions = lexer::document_word_positions(&text);
        let find = |w: &str| {
            positions
                .binary_search_by(|(t, _)| t.as_str().cmp(w))
                .ok()
                .map(|i| positions[i].1.as_slice())
                .unwrap_or(&[])
        };
        let term_positions: Vec<&[u32]> = words.iter().map(|w| find(w)).collect();
        if proximity::contains_phrase(&term_positions) {
            hits.push(doc);
        }
    }
    Ok(PostingList::from_sorted(hits))
}

/// Parse a boolean query string against a vocabulary. Unknown words become
/// empty-list terms (word id 0 is never interned, so they match nothing).
pub(crate) fn parse_query_with(vocab: &HashMap<String, WordId>, text: &str) -> Result<Query> {
    let tokens = lex_query(text)?;
    let mut p = Parser { tokens, pos: 0, vocab };
    let q = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(IndexError::InvalidConfig(format!("trailing tokens in query {text:?}")));
    }
    Ok(q)
}

// ----- boolean query-string parsing -----

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Word(String),
    And,
    Or,
    Not,
    Open,
    Close,
}

fn lex_query(text: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    for raw in text
        .replace('(', " ( ")
        .replace(')', " ) ")
        .split_ascii_whitespace()
    {
        let lower = raw.to_ascii_lowercase();
        out.push(match lower.as_str() {
            "(" => Tok::Open,
            ")" => Tok::Close,
            "and" => Tok::And,
            "or" => Tok::Or,
            "not" => Tok::Not,
            w if w.chars().all(|c| c.is_ascii_alphanumeric()) => Tok::Word(w.to_string()),
            other => {
                return Err(IndexError::InvalidConfig(format!(
                    "bad token {other:?} in query"
                )))
            }
        });
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<Tok>,
    pos: usize,
    vocab: &'a HashMap<String, WordId>,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// expr := term (OR term)*
    fn expr(&mut self) -> Result<Query> {
        let first = self.term()?;
        if !self.eat(&Tok::Or) {
            return Ok(first);
        }
        let mut parts = vec![first, self.term()?];
        while self.eat(&Tok::Or) {
            parts.push(self.term()?);
        }
        Ok(Query::Or(parts))
    }

    /// term := factor ((AND NOT? | NOT) factor)*
    fn term(&mut self) -> Result<Query> {
        let mut acc = self.factor()?;
        loop {
            if self.eat(&Tok::And) {
                if self.eat(&Tok::Not) {
                    let rhs = self.factor()?;
                    acc = Query::and_not(acc, rhs);
                } else {
                    let rhs = self.factor()?;
                    acc = Query::and(acc, rhs);
                }
            } else {
                break;
            }
        }
        Ok(acc)
    }

    /// factor := word | '(' expr ')'
    fn factor(&mut self) -> Result<Query> {
        match self.peek().cloned() {
            Some(Tok::Open) => {
                self.pos += 1;
                let q = self.expr()?;
                if !self.eat(&Tok::Close) {
                    return Err(IndexError::InvalidConfig("unbalanced parentheses".into()));
                }
                Ok(q)
            }
            Some(Tok::Word(w)) => {
                self.pos += 1;
                // Unknown words map to the reserved id 0 => empty list.
                Ok(Query::Word(self.vocab.get(&w).copied().unwrap_or(WordId(0))))
            }
            Some(Tok::Not) => Err(IndexError::InvalidConfig(
                "NOT is only valid after AND (a AND NOT b)".into(),
            )),
            other => Err(IndexError::InvalidConfig(format!(
                "expected word or '(', found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invidx_disk::sparse_array;

    fn engine() -> SearchEngine {
        let array = sparse_array(2, 50_000, 256);
        SearchEngine::create(array, IndexConfig::small()).unwrap()
    }

    fn doc_ids(list: &PostingList) -> Vec<u32> {
        list.docs().iter().map(|d| d.0).collect()
    }

    #[test]
    fn add_documents_matches_sequential_adds() {
        let texts: Vec<String> = (0..24)
            .map(|i| format!("shared w{} w{} tail{}", i % 5, (i * 7) % 11, i))
            .collect();
        let refs: Vec<&str> = texts.iter().map(|t| t.as_str()).collect();

        let mut seq = engine();
        for t in &refs {
            seq.add_document(t).unwrap();
        }
        let config = IndexConfig { ingest_threads: 4, ..IndexConfig::small() };
        let mut par = SearchEngine::create(sparse_array(2, 50_000, 256), config).expect("create");
        let ids = par.add_documents(&refs).unwrap();

        assert_eq!(ids, (1..=24).map(DocId).collect::<Vec<_>>());
        assert_eq!(par.vocabulary_size(), seq.vocabulary_size());
        for word in ["shared", "w", "tail", "3", "10"] {
            assert_eq!(par.word_id(word), seq.word_id(word), "{word}");
            assert!(par.word_id(word).is_some(), "{word}");
        }
        for i in 1..=24 {
            assert_eq!(par.document(DocId(i)).unwrap(), seq.document(DocId(i)).unwrap());
        }
        seq.flush().unwrap();
        par.flush().unwrap();
        let a = seq.boolean_str("shared AND 3").unwrap();
        let b = par.boolean_str("shared AND 3").unwrap();
        assert_eq!(doc_ids(&a), doc_ids(&b));
        assert!(!a.is_empty());
    }

    #[test]
    fn end_to_end_boolean() {
        let mut e = engine();
        let d1 = e.add_document("the cat sat on the mat").unwrap();
        let d2 = e.add_document("the dog sat on the cat").unwrap();
        let d3 = e.add_document("a mouse ran away").unwrap();
        e.flush().unwrap();
        assert_eq!((d1.0, d2.0, d3.0), (1, 2, 3));
        let r = e.boolean_str("(cat and dog) or mouse").unwrap();
        assert_eq!(doc_ids(&r), vec![2, 3]);
        let r = e.boolean_str("cat and not dog").unwrap();
        assert_eq!(doc_ids(&r), vec![1]);
        let r = e.boolean_str("sat").unwrap();
        assert_eq!(doc_ids(&r), vec![1, 2]);
    }

    #[test]
    fn queries_see_unflushed_documents() {
        let mut e = engine();
        e.add_document("alpha beta gamma plus padding words").unwrap();
        let r = e.boolean_str("beta").unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn unknown_words_match_nothing() {
        let mut e = engine();
        e.add_document("something else entirely").unwrap();
        e.flush().unwrap();
        assert!(e.boolean_str("nonexistent").unwrap().is_empty());
        assert!(e.boolean_str("something and nonexistent").unwrap().is_empty());
        assert_eq!(e.boolean_str("something or nonexistent").unwrap().len(), 1);
    }

    #[test]
    fn parser_rejects_malformed() {
        let e = engine();
        assert!(e.parse_query("(cat and dog").is_err());
        assert!(e.parse_query("cat dog").is_err());
        assert!(e.parse_query("not cat").is_err());
        assert!(e.parse_query("cat and").is_err());
        assert!(e.parse_query("c@t").is_err());
    }

    #[test]
    fn vector_search_ranks_overlap() {
        let mut e = engine();
        e.add_document("rust database systems research paper").unwrap();
        e.add_document("rust compiler internals").unwrap();
        e.add_document("cooking with garlic").unwrap();
        e.flush().unwrap();
        let hits = e.more_like_this("rust database papers", 3).unwrap();
        assert_eq!(hits[0].doc, DocId(1));
        assert!(hits.len() >= 2);
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn lexer_semantics_flow_through() {
        let mut e = engine();
        e.add_document("Date: ignored words here\nReal CONTENT body").unwrap();
        e.flush().unwrap();
        assert!(e.boolean_str("content").unwrap().len() == 1);
        assert!(e.boolean_str("ignored").unwrap().is_empty());
        // Uppercase query words are lowercased by the query lexer too.
        assert!(e.boolean_str("CONTENT").unwrap().len() == 1);
    }

    #[test]
    fn delete_then_sweep_via_engine() {
        let mut e = engine();
        let d1 = e.add_document("shared words one").unwrap();
        e.add_document("shared words two").unwrap();
        e.flush().unwrap();
        e.delete(d1);
        let r = e.boolean_str("shared").unwrap();
        assert_eq!(r.len(), 1);
        let report = e.sweep().unwrap();
        assert!(report.postings_removed >= 2);
    }

    #[test]
    fn documents_are_stored_and_retrievable() {
        let mut e = engine();
        let d = e.add_document("the exact original text survives").unwrap();
        assert_eq!(
            e.document(d).unwrap().unwrap(),
            "the exact original text survives"
        );
        assert_eq!(e.document(DocId(999)).unwrap(), None);
    }

    #[test]
    fn proximity_queries() {
        let mut e = engine();
        let d1 = e.add_document("the cat sat right beside the dog today").unwrap();
        let d2 = e.add_document("a cat lived here while the dog lived far away beyond the river dog").unwrap();
        e.add_document("cat alone in this one").unwrap();
        e.flush().unwrap();
        // d1: cat@1 dog@6 -> distance 5. d2: cat@1, dog@6? positions:
        // a(0) cat(1) lived(2) here(3) while(4) the(5) dog(6)... also 5.
        let r = e.within("cat", "dog", 5).unwrap();
        assert_eq!(r.docs(), &[d1, d2]);
        let r = e.within("cat", "dog", 2).unwrap();
        assert!(r.is_empty());
        // Unknown words match nothing.
        assert!(e.within("cat", "unicorn", 100).unwrap().is_empty());
    }

    #[test]
    fn phrase_queries() {
        let mut e = engine();
        let d1 = e.add_document("incremental updates of inverted lists for retrieval").unwrap();
        e.add_document("inverted updates of incremental lists reversed order here").unwrap();
        e.flush().unwrap();
        let r = e.phrase("incremental updates of inverted lists").unwrap();
        assert_eq!(r.docs(), &[d1]);
        // Both docs contain all the words; only one has the phrase.
        let r = e.phrase("updates of").unwrap();
        assert_eq!(r.len(), 2);
        assert!(e.phrase("lists inverted").unwrap().is_empty());
        assert!(e.phrase("").unwrap().is_empty());
        assert!(e.phrase("unknownword updates").unwrap().is_empty());
        // Case-insensitive, as everywhere.
        assert_eq!(e.phrase("Incremental UPDATES").unwrap().len(), 1);
    }

    #[test]
    fn proximity_sees_unflushed_documents() {
        let mut e = engine();
        let d = e.add_document("alpha beta gamma delta words here").unwrap();
        let r = e.within("alpha", "gamma", 2).unwrap();
        assert_eq!(r.docs(), &[d]);
    }

    #[test]
    fn engine_persistence_round_trip() {
        use invidx_disk::{Disk, DiskArray, FileDevice, FitStrategy, FreeList};
        let dir = std::env::temp_dir().join(format!("invidx-eng-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file_array = |create: bool| {
            let disks = (0..2u16)
                .map(|d| {
                    let path = dir.join(format!("disk{d}.bin"));
                    let device: Box<dyn invidx_disk::BlockDevice> = if create {
                        Box::new(FileDevice::create(&path, 20_000, 256).unwrap())
                    } else {
                        Box::new(FileDevice::open(&path, 256).unwrap())
                    };
                    Disk { device, alloc: Box::new(FreeList::new(20_000, FitStrategy::FirstFit)) }
                })
                .collect();
            DiskArray::new(disks)
        };
        let config = IndexConfig::small();
        let meta = {
            let mut e = SearchEngine::create(file_array(true), config).unwrap();
            e.add_document("the cat sat beside the dog").unwrap();
            e.add_document("a mouse ran past the cat").unwrap();
            e.flush().unwrap();
            e.save_meta()
        };
        let mut e = SearchEngine::open(file_array(false), config, &meta).unwrap();
        assert_eq!(e.total_docs(), 2);
        assert_eq!(e.boolean_str("cat and dog").unwrap().len(), 1);
        assert_eq!(e.document(DocId(1)).unwrap().unwrap(), "the cat sat beside the dog");
        assert_eq!(e.within("cat", "mouse", 5).unwrap().len(), 1);
        // The engine keeps working: new documents get fresh ids and the
        // vocabulary keeps interning consistently.
        let d3 = e.add_document("another cat arrives").unwrap();
        assert_eq!(d3, DocId(3));
        e.flush().unwrap();
        assert_eq!(e.boolean_str("cat").unwrap().len(), 3);
        // Corrupt meta is rejected.
        assert!(SearchEngine::open(file_array(false), config, b"garbage").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn vocabulary_interning_is_stable() {
        let mut e = engine();
        let a = e.intern("cat");
        let b = e.intern("cat");
        let c = e.intern("dog");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(e.vocabulary_size(), 2);
        assert_eq!(e.word_id("CAT"), Some(a));
        assert_eq!(e.word_id("missing"), None);
    }
}
