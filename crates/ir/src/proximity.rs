//! Proximity and phrase predicates (paper §1).
//!
//! "The query may also give additional conditions, such as requiring that
//! 'cat' and 'dog' occur within so many words of each other." Inverted
//! lists prune the candidate documents (the boolean AND); these predicates
//! verify the positional condition against each candidate's token
//! positions.

/// Minimum absolute distance between any position of `a` and any position
/// of `b`, or `None` when either list is empty. Linear two-pointer merge
/// over sorted position lists.
pub fn min_distance(a: &[u32], b: &[u32]) -> Option<u32> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]));
    let (mut i, mut j) = (0usize, 0usize);
    let mut best = u32::MAX;
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        best = best.min(x.abs_diff(y));
        if best == 0 {
            return Some(0);
        }
        if x < y {
            i += 1;
        } else {
            j += 1;
        }
    }
    Some(best)
}

/// True when the words occur within `window` tokens of each other.
pub fn within(a: &[u32], b: &[u32], window: u32) -> bool {
    min_distance(a, b).is_some_and(|d| d <= window)
}

/// True when the terms occur as a contiguous phrase: some position `p`
/// has `terms[i]` at `p + i` for all `i`. `terms[i]` holds the sorted
/// positions of the i-th phrase word.
pub fn contains_phrase(terms: &[&[u32]]) -> bool {
    let Some(first) = terms.first() else {
        return false;
    };
    'starts: for &p in *first {
        for (i, positions) in terms.iter().enumerate().skip(1) {
            let want = p + i as u32;
            if positions.binary_search(&want).is_err() {
                continue 'starts;
            }
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_distance_basic() {
        assert_eq!(min_distance(&[1, 10], &[4]), Some(3));
        assert_eq!(min_distance(&[5], &[5]), Some(0));
        assert_eq!(min_distance(&[1, 2, 3], &[100]), Some(97));
        assert_eq!(min_distance(&[], &[1]), None);
        assert_eq!(min_distance(&[1], &[]), None);
    }

    #[test]
    fn min_distance_interleaved() {
        // Closest pair spans the merge frontier.
        assert_eq!(min_distance(&[10, 20, 30], &[14, 19, 33]), Some(1));
        assert_eq!(min_distance(&[0, 100], &[49, 51]), Some(49));
    }

    #[test]
    fn within_window() {
        assert!(within(&[1], &[4], 3));
        assert!(!within(&[1], &[5], 3));
        assert!(!within(&[], &[5], 100));
    }

    #[test]
    fn phrase_detection() {
        // "the quick brown fox": positions of each word.
        let the = [0u32, 8];
        let quick = [1u32];
        let brown = [2u32, 9];
        let fox = [3u32];
        assert!(contains_phrase(&[&the, &quick, &brown, &fox]));
        // "brown the" does not occur contiguously.
        assert!(!contains_phrase(&[&brown, &the]));
        // Single word phrase: any occurrence.
        assert!(contains_phrase(&[&fox]));
        assert!(!contains_phrase(&[&[]]));
        assert!(!contains_phrase(&[]));
        // "the brown" occurs at 8,9.
        assert!(contains_phrase(&[&the, &brown]));
    }
}
