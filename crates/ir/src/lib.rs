//! # invidx-ir — information retrieval over the dual-structure index
//!
//! The paper's §1 describes the two retrieval models its index serves:
//! boolean systems ("(cat and dog) or mouse") evaluated by merging sorted
//! inverted lists, and vector-model systems that "locate documents that
//! maximize the weighted sum of occurring words", using inverted lists to
//! prune candidates. This crate provides both, plus [`engine::SearchEngine`]
//! — a complete text-in/results-out engine combining the corpus lexer, a
//! word interner, and [`invidx_core::DualIndex`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod boolean;
pub mod docstore;
pub mod durable_engine;
pub mod engine;
pub mod proximity;
pub mod query;
pub mod rank;
pub mod snapshot;
pub mod vector;

pub use boolean::{PostingSource, Query};
pub use docstore::DocStore;
pub use durable_engine::{DurableBackend, DurableEngine};
pub use engine::{Backend, QueryIndex, SearchEngine};
pub use query::{EngineQuery, QueryOutput};
pub use rank::{rank_exhaustive, rank_like, rank_seeded, Bm25Params};
pub use snapshot::EngineSnapshot;
pub use vector::{search, search_like, search_seeded, Hit, VectorQuery};
