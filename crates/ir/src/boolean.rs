//! Boolean query model (paper §1).
//!
//! "In a boolean system, queries are boolean expressions such as
//! `(cat and dog) or mouse`. In this example, the system would retrieve
//! the inverted list for 'cat' and 'dog', intersect them, and then would
//! union the result with the list for 'mouse'."
//!
//! Evaluation works on sorted posting lists via linear merges; NOT is only
//! valid in an AND context (`a AND NOT b`), the standard restriction that
//! avoids materializing the complement of the corpus.

use invidx_core::postings::PostingList;
use invidx_core::types::{Result, WordId};

/// A boolean query over word identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Postings of one word.
    Word(WordId),
    /// Intersection of all sub-queries.
    And(Vec<Query>),
    /// Union of all sub-queries.
    Or(Vec<Query>),
    /// `AndNot(a, b)` = documents matching `a` but not `b`.
    AndNot(Box<Query>, Box<Query>),
}

impl Query {
    /// Convenience: `a AND b`.
    pub fn and(a: Query, b: Query) -> Query {
        Query::And(vec![a, b])
    }

    /// Convenience: `a OR b`.
    pub fn or(a: Query, b: Query) -> Query {
        Query::Or(vec![a, b])
    }

    /// Convenience: `a AND NOT b`.
    pub fn and_not(a: Query, b: Query) -> Query {
        Query::AndNot(Box::new(a), Box::new(b))
    }

    /// All words mentioned by the query, in evaluation order.
    pub fn words(&self) -> Vec<WordId> {
        let mut out = Vec::new();
        self.collect_words(&mut out);
        out
    }

    fn collect_words(&self, out: &mut Vec<WordId>) {
        match self {
            Query::Word(w) => out.push(*w),
            Query::And(qs) | Query::Or(qs) => {
                for q in qs {
                    q.collect_words(out);
                }
            }
            Query::AndNot(a, b) => {
                a.collect_words(out);
                b.collect_words(out);
            }
        }
    }

    /// Evaluate against any posting source. Takes `&S`: posting reads are
    /// shared-access all the way down (see [`PostingSource`]), so concurrent
    /// queries evaluate in parallel under a read lock.
    pub fn eval<S: PostingSource + ?Sized>(&self, source: &S) -> Result<PostingList> {
        match self {
            Query::Word(w) => source.postings(*w),
            Query::And(qs) => {
                let mut lists = Vec::with_capacity(qs.len());
                for q in qs {
                    lists.push(q.eval(source)?);
                }
                // Intersect smallest-first: each step can only shrink, so
                // starting from the shortest list minimizes merge work.
                lists.sort_by_key(PostingList::len);
                let mut it = lists.into_iter();
                let mut acc = it.next().unwrap_or_default();
                for l in it {
                    if acc.is_empty() {
                        break;
                    }
                    acc = acc.intersect(&l);
                }
                Ok(acc)
            }
            Query::Or(qs) => {
                let mut acc = PostingList::new();
                for q in qs {
                    acc = acc.union(&q.eval(source)?);
                }
                Ok(acc)
            }
            Query::AndNot(a, b) => {
                let pa = a.eval(source)?;
                if pa.is_empty() {
                    return Ok(pa);
                }
                let pb = b.eval(source)?;
                Ok(pa.difference(&pb))
            }
        }
    }
}

/// Anything that can produce the posting list of a word. Implemented by
/// the dual-structure index (through the engine) and by in-memory maps in
/// tests.
///
/// `postings` takes `&self`: the whole read path is shareable
/// (`DualIndex::postings` is `&self`; device reads and trace recording go
/// through shared interfaces), which is what lets N serving threads
/// evaluate queries concurrently under one read lock.
pub trait PostingSource {
    /// The current posting list for `word` (empty if absent).
    fn postings(&self, word: WordId) -> Result<PostingList>;
}

impl PostingSource for invidx_core::DualIndex {
    fn postings(&self, word: WordId) -> Result<PostingList> {
        let _stage = invidx_obs::trace::stage("term");
        let list = invidx_core::DualIndex::postings(self, word)?;
        invidx_obs::trace::add_items(list.len() as u64);
        Ok(list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invidx_core::types::DocId;
    use std::collections::HashMap;

    struct MapSource(HashMap<u64, Vec<u32>>);

    impl PostingSource for MapSource {
        fn postings(&self, word: WordId) -> Result<PostingList> {
            Ok(self
                .0
                .get(&word.0)
                .map(|v| PostingList::from_sorted(v.iter().map(|&d| DocId(d)).collect()))
                .unwrap_or_default())
        }
    }

    fn source() -> MapSource {
        let mut m = HashMap::new();
        m.insert(1, vec![1, 2, 3, 5, 8]); // cat
        m.insert(2, vec![2, 3, 4, 8]); // dog
        m.insert(3, vec![4, 5, 6]); // mouse
        MapSource(m)
    }

    fn docs(list: &PostingList) -> Vec<u32> {
        list.docs().iter().map(|d| d.0).collect()
    }

    #[test]
    fn paper_example_cat_and_dog_or_mouse() {
        let q = Query::or(
            Query::and(Query::Word(WordId(1)), Query::Word(WordId(2))),
            Query::Word(WordId(3)),
        );
        let r = q.eval(&source()).unwrap();
        assert_eq!(docs(&r), vec![2, 3, 4, 5, 6, 8]);
    }

    #[test]
    fn and_not() {
        let q = Query::and_not(Query::Word(WordId(1)), Query::Word(WordId(2)));
        let r = q.eval(&source()).unwrap();
        assert_eq!(docs(&r), vec![1, 5]);
    }

    #[test]
    fn nested_queries() {
        // (cat OR mouse) AND NOT (dog AND mouse)
        let q = Query::and_not(
            Query::or(Query::Word(WordId(1)), Query::Word(WordId(3))),
            Query::and(Query::Word(WordId(2)), Query::Word(WordId(3))),
        );
        let r = q.eval(&source()).unwrap();
        assert_eq!(docs(&r), vec![1, 2, 3, 5, 6, 8]);
    }

    #[test]
    fn empty_operands() {
        let q = Query::And(vec![]);
        assert!(q.eval(&source()).unwrap().is_empty());
        let q = Query::Or(vec![]);
        assert!(q.eval(&source()).unwrap().is_empty());
        let q = Query::and(Query::Word(WordId(99)), Query::Word(WordId(1)));
        assert!(q.eval(&source()).unwrap().is_empty());
    }

    #[test]
    fn words_collection() {
        let q = Query::and_not(
            Query::or(Query::Word(WordId(1)), Query::Word(WordId(3))),
            Query::Word(WordId(2)),
        );
        assert_eq!(q.words(), vec![WordId(1), WordId(3), WordId(2)]);
    }

    #[test]
    fn and_intersects_smallest_first() {
        // Correctness is order-independent; this pins the associativity.
        let q = Query::And(vec![
            Query::Word(WordId(1)),
            Query::Word(WordId(2)),
            Query::Word(WordId(3)),
        ]);
        let r = q.eval(&source()).unwrap();
        assert!(docs(&r).is_empty());
    }
}
