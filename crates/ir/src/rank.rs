//! BM25 ranked retrieval with WAND early termination.
//!
//! The paper's vector model (§1, §5.2.1) scores documents by a weighted
//! sum of occurring words. This module upgrades that accumulator to the
//! BM25 weighting scheme over the same presence-only postings (tf is
//! binary — the abstracts-style index of the paper stores document
//! occurrence, not within-document frequency):
//!
//! ```text
//! score(d) = Σ_t idf_t · (k1 + 1) / (k1·(1 − b + b·len_d/avgdl) + 1)
//! ```
//!
//! with `idf_t = ln(1 + N/df_t)` — the exact expression the LIKE scorer
//! uses, so a BM25 deployment reuses the router's existing global-DF
//! machinery unchanged.
//!
//! Two evaluators share one scoring kernel:
//!
//! * [`rank_exhaustive`] — score every posting, select top-k with the
//!   bounded heap. The oracle.
//! * [`rank_wand`] — document-at-a-time WAND: terms carry an upper bound
//!   (their score at the minimum length norm), cursors advance past any
//!   document whose summed bounds cannot beat the current k-th score, and
//!   only surviving pivots are fully evaluated. Results are bit-identical
//!   to the exhaustive pass: full evaluation accumulates contributions in
//!   the *original term-slice order*, and the pruning test carries a small
//!   upward slack so float-summation order can never cause a false prune.
//!
//! Both accumulate per-document contributions in term-slice order, so —
//! exactly like [`crate::vector::search_seeded`] — two evaluators handed
//! the same `(term, idf)` slice produce bit-identical f64 scores. That is
//! what lets the scatter-gather router ship corpus-global idf weights and
//! a global `avgdl` to every shard and merge per-shard top-k knowing
//! equal documents score equally everywhere.

use crate::boolean::PostingSource;
use crate::vector::{top_k, HeapEntry, Hit};
use invidx_core::postings::PostingList;
use invidx_core::types::{DocId, Result, WordId};
use std::collections::{BinaryHeap, HashMap};

/// BM25 tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation. With binary tf it scales how strongly
    /// the length norm bites. Standard default 1.2.
    pub k1: f64,
    /// Length-normalization strength in `[0, 1]`; 0 disables length
    /// normalization entirely. Standard default 0.75.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

/// Corpus average document length (in lexer tokens). Degenerate corpora
/// (no documents, or only empty ones) pin the average to 1.0 so the
/// length norm stays finite.
pub fn avgdl(total_tokens: u64, total_docs: u64) -> f64 {
    if total_docs == 0 || total_tokens == 0 {
        1.0
    } else {
        total_tokens as f64 / total_docs as f64
    }
}

/// The per-document BM25 factor multiplying every term's idf. One
/// expression, used verbatim by both evaluators — bit-exactness between
/// them (and across deployments) depends on it.
#[inline]
fn bm25_norm(len: u32, avgdl: f64, p: Bm25Params) -> f64 {
    (p.k1 + 1.0) / (p.k1 * (1.0 - p.b + p.b * (len as f64 / avgdl)) + 1.0)
}

/// Relative slack applied to WAND's summed upper bounds before comparing
/// against the heap threshold. Each term's true contribution is ≤ its
/// bound, but the two sums run in different orders, and IEEE addition is
/// not associative — a bound sum a few ulps under the true score must not
/// prune a winner. 1e-9 is ~10⁷ ulps at these magnitudes: unmeasurable
/// for pruning power, decisive for the bit-exact oracle.
const UB_SLACK: f64 = 1.0 + 1e-9;

/// One query term ready for scoring: its idf weight and its
/// (deletion-filtered, sorted) posting list.
struct Term {
    idf: f64,
    list: PostingList,
}

/// Read each term's postings once and pair it with the caller-supplied
/// idf; empty lists are dropped (they contribute nothing to any score).
/// Slice order is preserved — both evaluators accumulate in this order.
fn load_terms<S: PostingSource + ?Sized>(
    source: &S,
    terms: &[(WordId, f64)],
) -> Result<Vec<Term>> {
    let mut out = Vec::with_capacity(terms.len());
    for &(word, idf) in terms {
        let list = source.postings(word)?;
        if !list.is_empty() {
            out.push(Term { idf, list });
        }
    }
    Ok(out)
}

/// BM25 top-k with locally computed idf weights: `idf = ln(1 + N/df)`
/// with `df` taken from each term's posting list. The single-engine
/// entry point — hand it the canonical (sorted, deduplicated) word list
/// and scores are bit-exact across runs and engines.
pub fn rank_like<S: PostingSource + ?Sized>(
    source: &S,
    words: &[WordId],
    total_docs: u64,
    lens: &HashMap<DocId, u32>,
    avgdl: f64,
    params: Bm25Params,
    k: usize,
) -> Result<Vec<Hit>> {
    Ok(wand(load_like_terms(source, words, total_docs)?, lens, avgdl, params, k))
}

/// [`rank_like`] without early termination: score every posting, select
/// with the bounded heap. Bit-identical results; kept public as the
/// brute-force oracle for tests and the ablation gate.
pub fn rank_like_exhaustive<S: PostingSource + ?Sized>(
    source: &S,
    words: &[WordId],
    total_docs: u64,
    lens: &HashMap<DocId, u32>,
    avgdl: f64,
    params: Bm25Params,
    k: usize,
) -> Result<Vec<Hit>> {
    if k == 0 {
        return Ok(Vec::new());
    }
    Ok(exhaustive(&load_like_terms(source, words, total_docs)?, lens, avgdl, params, k))
}

/// Read each word's postings once, computing `idf = ln(1 + N/df)` from
/// the list itself; empties are dropped, slice order is preserved.
fn load_like_terms<S: PostingSource + ?Sized>(
    source: &S,
    words: &[WordId],
    total_docs: u64,
) -> Result<Vec<Term>> {
    let mut terms = Vec::with_capacity(words.len());
    for &word in words {
        let list = source.postings(word)?;
        if !list.is_empty() {
            let idf = (1.0 + total_docs as f64 / list.len() as f64).ln();
            terms.push(Term { idf, list });
        }
    }
    Ok(terms)
}

/// BM25 top-k with caller-supplied per-term idf weights in slice order
/// (the router's distributed phase: corpus-global idf and avgdl shipped
/// to every shard). Unknown/empty terms contribute nothing.
pub fn rank_seeded<S: PostingSource + ?Sized>(
    source: &S,
    terms: &[(WordId, f64)],
    lens: &HashMap<DocId, u32>,
    avgdl: f64,
    params: Bm25Params,
    k: usize,
) -> Result<Vec<Hit>> {
    if terms.is_empty() || k == 0 {
        return Ok(Vec::new());
    }
    Ok(wand(load_terms(source, terms)?, lens, avgdl, params, k))
}

/// Exhaustive BM25 oracle: score every posting of every term, then select
/// top-k. Same inputs and bit-identical outputs as [`rank_seeded`] —
/// kept public so tests and the ablation gate can assert exactly that.
pub fn rank_exhaustive<S: PostingSource + ?Sized>(
    source: &S,
    terms: &[(WordId, f64)],
    lens: &HashMap<DocId, u32>,
    avgdl: f64,
    params: Bm25Params,
    k: usize,
) -> Result<Vec<Hit>> {
    if terms.is_empty() || k == 0 {
        return Ok(Vec::new());
    }
    Ok(exhaustive(&load_terms(source, terms)?, lens, avgdl, params, k))
}

/// Score every posting of every term, then bounded-heap select.
fn exhaustive(
    terms: &[Term],
    lens: &HashMap<DocId, u32>,
    avgdl: f64,
    params: Bm25Params,
    k: usize,
) -> Vec<Hit> {
    let mut acc: HashMap<DocId, f64> = HashMap::new();
    for t in terms {
        for &d in t.list.docs() {
            let norm = bm25_norm(lens.get(&d).copied().unwrap_or(0), avgdl, params);
            *acc.entry(d).or_insert(0.0) += t.idf * norm;
        }
    }
    top_k(acc, k)
}

/// WAND early-terminated evaluation over pre-loaded terms.
///
/// Documents are visited in ascending id order (document-at-a-time). The
/// current k-th best score θ prunes: cursors sorted by current document,
/// the pivot is the first prefix whose summed upper bounds (with
/// [`UB_SLACK`]) exceed θ; everything before the pivot document is
/// skipped wholesale. Safe because ascending-id evaluation means a doc
/// scoring exactly θ always loses the `(score desc, doc asc)` tie to the
/// k incumbents — identical to the bounded-heap semantics of
/// [`crate::vector::top_k`].
fn wand(
    terms: Vec<Term>,
    lens: &HashMap<DocId, u32>,
    avgdl: f64,
    params: Bm25Params,
    k: usize,
) -> Vec<Hit> {
    // Upper bound per term: its score at the minimum possible length
    // norm (len = 0). Division by a larger denominator can only shrink
    // an IEEE quotient, so every real contribution ≤ its bound.
    struct Cursor {
        ord: usize,
        ub: f64,
        pos: usize,
    }
    if terms.is_empty() || k == 0 {
        return Vec::new();
    }
    let max_norm = bm25_norm(0, avgdl, params);
    let mut cursors: Vec<Cursor> = terms
        .iter()
        .enumerate()
        .map(|(ord, t)| Cursor { ord, ub: t.idf * max_norm, pos: 0 })
        .collect();
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    loop {
        cursors.retain(|c| c.pos < terms[c.ord].list.len());
        if cursors.is_empty() {
            break;
        }
        let doc_at = |c: &Cursor| terms[c.ord].list.docs()[c.pos];
        cursors.sort_by_key(|c| (doc_at(c), c.ord));
        let theta = if heap.len() == k {
            heap.peek().map(|e| e.0.score).unwrap_or(f64::NEG_INFINITY)
        } else {
            f64::NEG_INFINITY
        };
        let mut sum = 0.0;
        let Some(pivot) = cursors.iter().position(|c| {
            sum += c.ub;
            sum * UB_SLACK > theta
        }) else {
            break; // no remaining document can enter the top-k
        };
        let pivot_doc = doc_at(&cursors[pivot]);
        if doc_at(&cursors[0]) == pivot_doc {
            // Every cursor at pivot_doc holds a contribution; accumulate
            // them in original term-slice order for bit-exactness with
            // the exhaustive accumulator.
            let norm = bm25_norm(lens.get(&pivot_doc).copied().unwrap_or(0), avgdl, params);
            let mut at_pivot: Vec<usize> =
                cursors.iter().filter(|c| doc_at(c) == pivot_doc).map(|c| c.ord).collect();
            at_pivot.sort_unstable();
            let mut score = 0.0;
            for ord in at_pivot {
                score += terms[ord].idf * norm;
            }
            heap.push(HeapEntry(Hit { doc: pivot_doc, score }));
            if heap.len() > k {
                heap.pop();
            }
            for c in cursors.iter_mut() {
                if doc_at(c) == pivot_doc {
                    c.pos += 1;
                }
            }
        } else {
            // Skip the leading cursor forward to the pivot document.
            let c = &mut cursors[0];
            let docs = terms[c.ord].list.docs();
            c.pos += docs[c.pos..].partition_point(|&d| d < pivot_doc);
        }
    }
    let mut hits: Vec<Hit> = heap.into_iter().map(|e| e.0).collect();
    hits.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.doc.cmp(&b.doc))
    });
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;

    struct MapSource(Map<u64, Vec<u32>>);

    impl PostingSource for MapSource {
        fn postings(&self, word: WordId) -> Result<PostingList> {
            Ok(self
                .0
                .get(&word.0)
                .map(|v| PostingList::from_sorted(v.iter().map(|&d| DocId(d)).collect()))
                .unwrap_or_default())
        }
    }

    fn source() -> MapSource {
        let mut m = Map::new();
        m.insert(1, (1..=40).collect()); // common
        m.insert(2, vec![3, 7, 21, 33]); // rare
        m.insert(3, vec![7, 33]); // rarest
        MapSource(m)
    }

    fn lens() -> HashMap<DocId, u32> {
        (1..=40u32).map(|d| (DocId(d), 4 + (d * 7) % 23)).collect()
    }

    fn idf_terms(s: &MapSource, words: &[u64], n: u64) -> Vec<(WordId, f64)> {
        words
            .iter()
            .map(|&w| {
                let df = s.postings(WordId(w)).unwrap().len().max(1) as f64;
                (WordId(w), (1.0 + n as f64 / df).ln())
            })
            .collect()
    }

    #[test]
    fn wand_matches_exhaustive_bit_exactly() {
        let s = source();
        let lens = lens();
        let terms = idf_terms(&s, &[1, 2, 3], 40);
        for k in [1, 3, 5, 10, 40, 100] {
            let a = rank_exhaustive(&s, &terms, &lens, 12.5, Bm25Params::default(), k).unwrap();
            let b = rank_seeded(&s, &terms, &lens, 12.5, Bm25Params::default(), k).unwrap();
            assert_eq!(a.len(), b.len(), "k={k}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.doc, y.doc, "k={k}");
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "k={k} doc={:?}", x.doc);
            }
        }
    }

    #[test]
    fn shorter_documents_rank_higher_on_equal_overlap() {
        let mut m = Map::new();
        m.insert(1, vec![1, 2]);
        let s = MapSource(m);
        let lens: HashMap<DocId, u32> = [(DocId(1), 5), (DocId(2), 50)].into();
        let hits =
            rank_like(&s, &[WordId(1)], 2, &lens, 27.5, Bm25Params::default(), 2).unwrap();
        assert_eq!(hits[0].doc, DocId(1), "short doc must outrank long on same match");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn b_zero_disables_length_normalization() {
        let mut m = Map::new();
        m.insert(1, vec![1, 2]);
        let s = MapSource(m);
        let lens: HashMap<DocId, u32> = [(DocId(1), 5), (DocId(2), 50)].into();
        let p = Bm25Params { k1: 1.2, b: 0.0 };
        let hits = rank_like(&s, &[WordId(1)], 2, &lens, 27.5, p, 2).unwrap();
        assert_eq!(hits[0].score.to_bits(), hits[1].score.to_bits());
        assert_eq!(hits[0].doc, DocId(1), "tie breaks toward smaller id");
    }

    #[test]
    fn empty_inputs_and_unknown_words() {
        let s = source();
        let lens = lens();
        let p = Bm25Params::default();
        assert!(rank_like(&s, &[], 40, &lens, 10.0, p, 5).unwrap().is_empty());
        assert!(rank_like(&s, &[WordId(1)], 40, &lens, 10.0, p, 0).unwrap().is_empty());
        assert!(rank_seeded(&s, &[(WordId(404), 3.0)], &lens, 10.0, p, 5).unwrap().is_empty());
        assert!(rank_exhaustive(&s, &[], &lens, 10.0, p, 5).unwrap().is_empty());
    }

    #[test]
    fn avgdl_guards_degenerate_corpora() {
        assert_eq!(avgdl(0, 0), 1.0);
        assert_eq!(avgdl(0, 5), 1.0);
        assert_eq!(avgdl(100, 10), 10.0);
    }

    #[test]
    fn seeded_matches_like_when_weights_agree() {
        let s = source();
        let lens = lens();
        let words = [WordId(1), WordId(2), WordId(3)];
        let p = Bm25Params::default();
        let a = rank_like(&s, &words, 40, &lens, 12.5, p, 10).unwrap();
        let terms = idf_terms(&s, &[1, 2, 3], 40);
        let b = rank_seeded(&s, &terms, &lens, 12.5, p, 10).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.doc, x.score.to_bits()), (y.doc, y.score.to_bits()));
        }
    }
}
