//! Crash-consistency matrix for the segmented durable store: kill the
//! pipeline at every injectable write site — WAL, apply, device flush,
//! manifest tmp-write/fsync/rename (which share the checkpoint fault
//! points), WAL truncate — and at every protocol site inside the
//! seal/merge commit sequence, across both manifest-changing operations.
//! After each crash, recover and prove the store holds exactly the
//! committed history by diffing every word against an independent model,
//! then prove the store still works and survives a second clean reopen.

use invidx_core::{DocId, EngineKind, IndexConfig, PostingList, WordId};
use invidx_durable::{DurableOptions, Fault, FaultInjector, FaultPoint, StoreGeometry};
use invidx_segment::{DurableSegmentedIndex, ProtocolSite};
use std::collections::BTreeSet;
use std::path::PathBuf;

const DOCS_PER_BATCH: u32 = 40;
const WORDS: u64 = 10;
const DELETED: [u32; 2] = [4, 9];

fn geom() -> StoreGeometry {
    StoreGeometry { disks: 3, blocks_per_disk: 40_000, block_size: 256 }
}

fn config(l0_budget: u64, fanout: u32) -> IndexConfig {
    IndexConfig { engine: EngineKind::Segmented { l0_budget, fanout }, ..IndexConfig::small() }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("invidx-segrec-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn insert_batch(ix: &mut DurableSegmentedIndex, batch: u32) {
    let lo = (batch - 1) * DOCS_PER_BATCH + 1;
    let hi = batch * DOCS_PER_BATCH + 1;
    for d in lo..hi {
        let words = (1..=WORDS).filter(|w| (d as u64).is_multiple_of(*w)).map(WordId);
        ix.insert_document(DocId(d), words).unwrap();
    }
}

fn expected(word: u64, batches: u64) -> PostingList {
    let deleted: BTreeSet<u32> =
        if batches >= 2 { DELETED.into_iter().collect() } else { BTreeSet::new() };
    let hi = batches as u32 * DOCS_PER_BATCH;
    PostingList::from_sorted(
        (1..=hi)
            .filter(|d| (*d as u64).is_multiple_of(word) && !deleted.contains(d))
            .map(DocId)
            .collect(),
    )
}

fn verify_all_words(ix: &DurableSegmentedIndex, batches: u64, tag: &str) {
    for w in 1..=WORDS {
        let got = ix.postings(WordId(w)).unwrap();
        let want = expected(w, batches);
        assert_eq!(
            got.docs(),
            want.docs(),
            "[{tag}] word {w} differs after recovery to batch {batches}"
        );
    }
    assert!(ix.postings(WordId(999)).unwrap().is_empty(), "[{tag}] ghost word appeared");
    ix.verify_segments().unwrap_or_else(|e| panic!("[{tag}] segment CRC audit failed: {e}"));
}

/// Reopen, check the model, commit one more batch, reopen again clean.
fn recover_and_continue(
    dir: &PathBuf,
    cfg: IndexConfig,
    opts: DurableOptions,
    inj: &FaultInjector,
    committed: u64,
    tag: &str,
) {
    let mut ix =
        DurableSegmentedIndex::open_with(dir, cfg, opts, inj.clone(), &mut ())
            .unwrap_or_else(|e| panic!("[{tag}] recovery failed: {e}"));
    assert_eq!(ix.batches(), committed, "[{tag}] wrong batch count after recovery");
    verify_all_words(&ix, committed, tag);

    insert_batch(&mut ix, committed as u32 + 1);
    ix.flush().unwrap_or_else(|e| panic!("[{tag}] post-recovery flush failed: {e}"));
    verify_all_words(&ix, committed + 1, tag);
    let gen = ix.manifest().generation;
    drop(ix);

    let ix = DurableSegmentedIndex::open(dir, cfg, opts)
        .unwrap_or_else(|e| panic!("[{tag}] second recovery failed: {e}"));
    assert!(ix.manifest().generation >= gen, "[{tag}] manifest generation went backwards");
    verify_all_words(&ix, committed + 1, tag);
    drop(ix);
    std::fs::remove_dir_all(dir).ok();
}

/// Two committed batches (the second carrying deletes), then batch 3
/// flushed under an armed fault. With `l0_budget = 1` every flush also
/// seals, so the armed point's first write site inside the seal protocol
/// is struck: the manifest tmp write for `CheckpointWrite`, the manifest
/// rename for `CheckpointRename`, the pre-manifest device flush for
/// `DeviceFlush`, and so on.
fn crash_during_seal(fault: Fault) {
    let tag = format!("seal-{:?}-{}", fault.point, fault.after);
    let dir = tmpdir(&tag);
    let cfg = config(1, 100); // seal every flush, never merge
    let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
    let inj = FaultInjector::new();
    let mut ix =
        DurableSegmentedIndex::create_with(&dir, cfg, geom(), opts, inj.clone()).unwrap();

    insert_batch(&mut ix, 1);
    ix.flush().unwrap();
    for d in DELETED {
        ix.delete_document(DocId(d));
    }
    insert_batch(&mut ix, 2);
    ix.flush().unwrap();
    assert!(ix.stats().seals >= 2, "[{tag}] setup failed to seal");

    insert_batch(&mut ix, 3);
    inj.arm(fault);
    let res = ix.flush();
    if res.is_ok() {
        // A deep `after` can overshoot every write of this flush; nothing
        // crashed, nothing to recover.
        assert!(inj.fired().is_none(), "[{tag}] fault fired but flush succeeded");
        std::fs::remove_dir_all(&dir).ok();
        return;
    }
    assert_eq!(inj.fired(), Some(fault.point), "[{tag}] wrong fault fired");
    drop(ix);
    inj.disarm();

    let committed = if fault.point.before_commit() { 2 } else { 3 };
    recover_and_continue(&dir, cfg, opts, &inj, committed, &tag);
}

#[test]
fn kill_matrix_during_seal_every_fault_point() {
    for point in FaultPoint::ALL {
        crash_during_seal(Fault::at(point));
    }
}

#[test]
fn kill_matrix_during_seal_apply_depths() {
    // Deeper strikes into ApplyWrite land inside the segment extent
    // writes rather than the batch apply.
    for after in [0, 2, 5, 9, 14, 20, 40] {
        crash_during_seal(Fault::at(FaultPoint::ApplyWrite).after(after));
    }
}

/// Three sealed segments awaiting a deferred merge, then the merge runs
/// under an armed fault: the first strike site of every fault point is
/// inside the merge protocol (there is no batch in flight).
fn crash_during_merge(fault: Fault) {
    let tag = format!("merge-{:?}-{}", fault.point, fault.after);
    let dir = tmpdir(&tag);
    let cfg = config(1, 2);
    let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
    let inj = FaultInjector::new();
    let mut ix =
        DurableSegmentedIndex::create_with(&dir, cfg, geom(), opts, inj.clone()).unwrap();
    ix.set_merge_rate(1); // defer all merges during setup

    insert_batch(&mut ix, 1);
    ix.flush().unwrap();
    for d in DELETED {
        ix.delete_document(DocId(d));
    }
    insert_batch(&mut ix, 2);
    ix.flush().unwrap();
    insert_batch(&mut ix, 3);
    ix.flush().unwrap();
    assert!(ix.stats().seals >= 3 && ix.stats().merges == 0, "[{tag}] setup skewed");

    ix.set_merge_rate(0);
    inj.arm(fault);
    let res = ix.tick();
    if res.is_ok() {
        assert!(inj.fired().is_none(), "[{tag}] fault fired but tick succeeded");
        std::fs::remove_dir_all(&dir).ok();
        return;
    }
    assert_eq!(inj.fired(), Some(fault.point), "[{tag}] wrong fault fired");
    drop(ix);
    inj.disarm();

    // No batch was in flight: all three batches stay committed whatever
    // the strike site; the merge either vanished or rolls forward.
    recover_and_continue(&dir, cfg, opts, &inj, 3, &tag);
}

#[test]
fn kill_matrix_during_merge_every_fault_point() {
    // WAL points never fire during a merge (no record is written); the
    // other six all strike inside the merge protocol.
    for point in [
        FaultPoint::ApplyWrite,
        FaultPoint::DeviceFlush,
        FaultPoint::CheckpointWrite,
        FaultPoint::CheckpointFsync,
        FaultPoint::CheckpointRename,
        FaultPoint::WalTruncate,
    ] {
        crash_during_merge(Fault::at(point));
    }
}

/// Process-kill at each site inside the seal protocol proper (the
/// windows between durable steps that the byte-level faults cannot pin
/// exactly), including the roll-forward window after the manifest
/// commit.
#[test]
fn kill_matrix_protocol_sites_during_seal() {
    for site in ProtocolSite::ALL {
        if site == ProtocolSite::AfterInputFree {
            continue; // merge-only site
        }
        let tag = format!("site-seal-{site:?}");
        let dir = tmpdir(&tag);
        let cfg = config(1, 100);
        let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
        let inj = FaultInjector::new();
        let mut ix =
            DurableSegmentedIndex::create_with(&dir, cfg, geom(), opts, inj.clone()).unwrap();
        insert_batch(&mut ix, 1);
        ix.flush().unwrap();
        for d in DELETED {
            ix.delete_document(DocId(d));
        }
        insert_batch(&mut ix, 2);
        ix.flush().unwrap();

        insert_batch(&mut ix, 3);
        ix.inject_protocol_crash(site);
        ix.flush().expect_err(&format!("[{tag}] protocol crash did not fire"));
        drop(ix);

        // The triggering batch committed before the seal began.
        recover_and_continue(&dir, cfg, opts, &inj, 3, &tag);
    }
}

#[test]
fn kill_matrix_protocol_sites_during_merge() {
    for site in ProtocolSite::ALL {
        if site == ProtocolSite::AfterL0Reset {
            continue; // seal-only site
        }
        let tag = format!("site-merge-{site:?}");
        let dir = tmpdir(&tag);
        let cfg = config(1, 2);
        let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
        let inj = FaultInjector::new();
        let mut ix =
            DurableSegmentedIndex::create_with(&dir, cfg, geom(), opts, inj.clone()).unwrap();
        ix.set_merge_rate(1);
        insert_batch(&mut ix, 1);
        ix.flush().unwrap();
        for d in DELETED {
            ix.delete_document(DocId(d));
        }
        insert_batch(&mut ix, 2);
        ix.flush().unwrap();
        insert_batch(&mut ix, 3);
        ix.flush().unwrap();

        ix.set_merge_rate(0);
        ix.inject_protocol_crash(site);
        ix.tick().expect_err(&format!("[{tag}] protocol crash did not fire"));
        drop(ix);

        recover_and_continue(&dir, cfg, opts, &inj, 3, &tag);
    }
}

/// A clean close/reopen cycle with seals and merges on disk: the sealed
/// history, tier shape, and manifest generation all survive.
#[test]
fn clean_round_trip_preserves_tiers() {
    let dir = tmpdir("roundtrip");
    let cfg = config(1, 2);
    let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
    let mut ix = DurableSegmentedIndex::create(&dir, cfg, geom(), opts).unwrap();
    for b in 1..=6u32 {
        insert_batch(&mut ix, b);
        if b == 2 {
            for d in DELETED {
                ix.delete_document(DocId(d));
            }
        }
        ix.flush().unwrap();
    }
    let stats = ix.stats();
    assert!(stats.seals >= 6 && stats.merges > 0, "round trip needs tiers: {stats:?}");
    let gen = ix.manifest().generation;
    drop(ix);

    let ix = DurableSegmentedIndex::open(&dir, cfg, opts).unwrap();
    assert_eq!(ix.manifest().generation, gen);
    assert_eq!(ix.stats().segments, stats.segments);
    verify_all_words(&ix, 6, "roundtrip");
    drop(ix);
    std::fs::remove_dir_all(&dir).ok();
}

/// A seal that commits its manifest generation but crashes before the
/// checkpoint is rolled *back* on recovery: the orphaned segment is
/// discarded (WAL replay rebuilt its contents in L0, possibly on the
/// same blocks), its id stays burned, and a superseding generation
/// restores the manifest/checkpoint lockstep.
#[test]
fn interrupted_seal_rolls_back_and_burns_the_id() {
    let tag = "rollback";
    let dir = tmpdir(tag);
    let cfg = config(1, 100);
    let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
    let inj = FaultInjector::new();
    let mut ix =
        DurableSegmentedIndex::create_with(&dir, cfg, geom(), opts, inj.clone()).unwrap();
    insert_batch(&mut ix, 1);
    ix.flush().unwrap();
    let committed_segments = ix.stats().segments;
    let next_id = ix.manifest().peek_next_id();
    for d in DELETED {
        ix.delete_document(DocId(d));
    }
    insert_batch(&mut ix, 2);
    ix.inject_protocol_crash(ProtocolSite::AfterManifestCommit);
    ix.flush().expect_err("crash site must fire");
    let gen_ahead = ix.manifest().generation;
    drop(ix);

    let ix = DurableSegmentedIndex::open(&dir, cfg, opts).unwrap();
    assert!(
        ix.manifest().generation > gen_ahead,
        "roll-back must supersede the orphaned generation, not resurrect it"
    );
    assert_eq!(ix.stats().segments, committed_segments, "orphan segment must be discarded");
    assert!(ix.manifest().peek_next_id() > next_id, "orphan's id must stay burned");
    verify_all_words(&ix, 2, tag);
    drop(ix);
    std::fs::remove_dir_all(&dir).ok();
}
