//! Functional tests for the plain (non-durable) segmented store: seals,
//! merges, read equivalence with the in-place engine, and format
//! integrity.

use invidx_core::{DocId, DualIndex, EngineKind, IndexConfig, WordId};
use invidx_disk::{sparse_array, Payload};
use invidx_segment::SegmentedIndex;

fn config(l0_budget: u64, fanout: u32) -> IndexConfig {
    IndexConfig { engine: EngineKind::Segmented { l0_budget, fanout }, ..IndexConfig::small() }
}

fn in_place_config() -> IndexConfig {
    IndexConfig::small()
}

/// Deterministic synthetic corpus: doc d contains word w iff d % (w+1) == 0
/// over a small vocabulary, so posting lists have very different lengths.
fn words_of(doc: u32, vocab: u64) -> Vec<WordId> {
    (0..vocab).filter(|w| (doc as u64).is_multiple_of(w + 1)).map(|w| WordId(w + 1)).collect()
}

fn drive(ix: &mut SegmentedIndex, docs: std::ops::Range<u32>, batch: u32) {
    for chunk_start in docs.clone().step_by(batch as usize) {
        for d in chunk_start..(chunk_start + batch).min(docs.end) {
            ix.insert_document(DocId(d), words_of(d, 24)).unwrap();
        }
        ix.flush_batch().unwrap();
    }
}

#[test]
fn seals_fire_when_l0_crosses_budget() {
    let mut ix = SegmentedIndex::create(sparse_array(2, 200_000, 256), config(4096, 4)).unwrap();
    drive(&mut ix, 1..400, 40);
    let stats = ix.stats();
    assert!(stats.seals > 0, "no seal at budget 4096: {stats:?}");
    assert!(stats.segments > 0);
    assert!(stats.l0_bytes < 4096 * 4, "L0 should reset after seals");
    ix.verify_segments().unwrap();
}

#[test]
fn merges_keep_levels_under_fanout() {
    let mut ix = SegmentedIndex::create(sparse_array(2, 400_000, 256), config(2048, 3)).unwrap();
    ix.set_merge_rate(0); // no rate limit: levels must stay < fanout
    drive(&mut ix, 1..800, 25);
    let stats = ix.stats();
    assert!(stats.merges > 0, "expected merges: {stats:?}");
    for (level, count, _) in &stats.levels {
        assert!(*count < 3, "level {level} holds {count} segments, fanout 3: {stats:?}");
    }
    assert!(
        stats.write_amplification(256) >= 1.0,
        "write amp must count rewrites: {stats:?}"
    );
    ix.verify_segments().unwrap();
}

#[test]
fn rate_limit_defers_but_eventually_drains() {
    let mut ix = SegmentedIndex::create(sparse_array(2, 400_000, 256), config(2048, 3)).unwrap();
    ix.set_merge_rate(16); // absurdly small: every merge deferred
    drive(&mut ix, 1..200, 25);
    let throttled = ix.stats();
    ix.set_merge_rate(0);
    ix.tick().unwrap();
    let drained = ix.stats();
    assert!(drained.merges >= throttled.merges);
    for (level, count, _) in &drained.levels {
        assert!(*count < 3, "level {level}: {count} segments after drain");
    }
}

#[test]
fn postings_match_in_place_twin_with_deletes() {
    let mut seg = SegmentedIndex::create(sparse_array(2, 400_000, 256), config(2048, 3)).unwrap();
    let mut flat = DualIndex::create(sparse_array(2, 400_000, 256), in_place_config()).unwrap();
    for chunk in 0..12 {
        for d in (chunk * 50 + 1)..(chunk * 50 + 51) {
            seg.insert_document(DocId(d), words_of(d, 24)).unwrap();
            flat.insert_document(DocId(d), words_of(d, 24)).unwrap();
        }
        if chunk == 5 {
            for d in [3u32, 60, 120, 121, 250] {
                seg.delete_document(DocId(d));
                flat.delete_document(DocId(d));
            }
        }
        seg.flush_batch().unwrap();
        flat.flush_batch().unwrap();
    }
    assert!(seg.stats().seals > 0, "twin test must exercise sealed reads");
    for w in 1..=24u64 {
        let a = seg.postings(WordId(w)).unwrap();
        let b = flat.postings(WordId(w)).unwrap();
        assert_eq!(a.docs(), b.docs(), "postings diverge for word {w}");
        assert_eq!(
            seg.doc_frequency(WordId(w)),
            flat.doc_frequency(WordId(w)),
            "df diverges for word {w}"
        );
    }
}

#[test]
fn segment_io_is_traced_with_segment_payload() {
    let mut ix = SegmentedIndex::create(sparse_array(2, 200_000, 256), config(2048, 4)).unwrap();
    ix.array().start_trace();
    drive(&mut ix, 1..300, 30);
    let trace = ix.array().take_trace();
    let seg_writes = trace
        .count(|op| matches!(op.payload, Payload::Segment { .. }) && op.kind == invidx_disk::OpKind::Write);
    assert!(seg_writes > 0, "segment writes must appear in the Figure-6 trace");
    // The text grammar round-trips segment ops.
    let parsed = invidx_disk::IoTrace::from_text(&trace.to_text()).unwrap();
    assert_eq!(parsed, trace);
}

#[test]
fn sealed_reads_go_through_the_block_cache() {
    let cfg = IndexConfig {
        cache_blocks: 4096,
        engine: EngineKind::Segmented { l0_budget: 2048, fanout: 4 },
        ..IndexConfig::small()
    };
    let mut ix = SegmentedIndex::create(sparse_array(2, 200_000, 256), cfg).unwrap();
    drive(&mut ix, 1..300, 30);
    assert!(ix.stats().segments > 0);
    // First read warms the cache, second must hit.
    ix.postings(WordId(1)).unwrap();
    let before = ix.block_cache().unwrap().stats();
    ix.postings(WordId(1)).unwrap();
    let after = ix.block_cache().unwrap().stats();
    assert!(after.hits > before.hits, "repeat sealed read should hit cache");
}

#[test]
fn merge_frees_input_extents() {
    let mut ix = SegmentedIndex::create(sparse_array(2, 400_000, 256), config(2048, 2)).unwrap();
    ix.set_merge_rate(0);
    drive(&mut ix, 1..600, 25);
    let stats = ix.stats();
    assert!(stats.merges > 0);
    // Everything allocated is reachable: used blocks ≈ live segments +
    // L0 + metadata. If merge inputs leaked, usage would exceed live
    // segment blocks by far more than the L0/meta footprint.
    let used: u64 = ix
        .array()
        .per_disk_usage()
        .iter()
        .map(|(free, total)| total - free)
        .sum();
    let bs = ix.array().block_size() as u64;
    let meta_allowance = 2_000u64; // bucket stripes, directory, block 0
    assert!(
        used <= stats.segment_blocks + stats.l0_bytes / bs + meta_allowance,
        "used {used} blocks vs live {} — merge inputs leaked?",
        stats.segment_blocks
    );
}

/// Compressed segments must serve bit-identical postings to plain ones
/// across seals and merges, while storing strictly fewer payload bytes.
#[test]
fn compressed_segments_match_plain_twin() {
    use invidx_core::PostingsCodec;
    for codec in [PostingsCodec::VarintDelta, PostingsCodec::BitPacked] {
        let cfg = IndexConfig { codec, ..config(2048, 3) };
        let mut packed = SegmentedIndex::create(sparse_array(2, 400_000, 256), cfg).unwrap();
        let mut plain = SegmentedIndex::create(sparse_array(2, 400_000, 256), config(2048, 3)).unwrap();
        packed.set_merge_rate(0);
        plain.set_merge_rate(0);
        for chunk in 0..12 {
            for d in (chunk * 50 + 1)..(chunk * 50 + 51) {
                packed.insert_document(DocId(d), words_of(d, 24)).unwrap();
                plain.insert_document(DocId(d), words_of(d, 24)).unwrap();
            }
            if chunk == 4 {
                for d in [7u32, 24, 100, 199, 200] {
                    packed.delete_document(DocId(d));
                    plain.delete_document(DocId(d));
                }
            }
            packed.flush_batch().unwrap();
            plain.flush_batch().unwrap();
        }
        let (ps, fs) = (packed.stats(), plain.stats());
        assert!(ps.seals > 0 && ps.merges > 0, "codec {codec}: need tiers: {ps:?}");
        assert_eq!(ps.seals, fs.seals, "codec {codec}: seal counts diverge");
        assert_eq!(ps.merges, fs.merges, "codec {codec}: merge counts diverge");
        for w in 1..=24u64 {
            assert_eq!(
                packed.postings(WordId(w)).unwrap().docs(),
                plain.postings(WordId(w)).unwrap().docs(),
                "codec {codec}: postings diverge for word {w}"
            );
            assert_eq!(packed.doc_frequency(WordId(w)), plain.doc_frequency(WordId(w)));
        }
        packed.verify_segments().unwrap();
        assert!(
            ps.segment_blocks < fs.segment_blocks,
            "codec {codec}: compressed segments should occupy fewer blocks \
             ({} vs {})",
            ps.segment_blocks,
            fs.segment_blocks
        );
    }
}

#[test]
fn in_place_engine_kind_is_rejected() {
    let err = SegmentedIndex::create(sparse_array(2, 10_000, 256), in_place_config());
    assert!(err.is_err());
}
