//! Tiered background compaction over the sealed-segment set.
//!
//! Seals produce level-0 segments; whenever a level accumulates `fanout`
//! segments, the oldest `fanout` of them merge into one segment at the
//! next level. Merging is append-only and tombstone-free: inputs are
//! unioned run-by-run (doc-id order), the output is written as a fresh
//! immutable segment, the manifest commits the swap, and only then are
//! the input extents freed. Deletions never write tombstones — the L0
//! deletion filter screens reads, exactly as §3 of the paper screens
//! in-place reads.
//!
//! The scheduler is cooperative: the owning writer pumps it between
//! batches (`tick`), and a per-tick byte budget bounds how much merge
//! I/O a single batch boundary can absorb. Work that exceeds the budget
//! is deferred to the next tick and counted in
//! `segment_merge_deferrals_total`.

use crate::manifest::Manifest;

/// Knobs governing when and how fast segments merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// A level merges when it holds this many segments.
    pub fanout: u32,
    /// Per-tick merge budget: at most this many blocks of input may be
    /// merged at one batch boundary (0 disables the limit).
    pub max_merge_blocks_per_tick: u64,
}

impl CompactionPolicy {
    /// Default per-tick budget in blocks.
    pub const DEFAULT_TICK_BLOCKS: u64 = 4096;

    /// Policy for a given fanout with the default rate limit.
    pub fn with_fanout(fanout: u32) -> Self {
        Self { fanout, max_merge_blocks_per_tick: Self::DEFAULT_TICK_BLOCKS }
    }
}

/// One unit of compaction work: merge `inputs` (all at `level`) into a
/// fresh segment at `output_level`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergePlan {
    /// Level being compacted.
    pub level: u32,
    /// Ids of the input segments, oldest first.
    pub inputs: Vec<u64>,
    /// Level of the merge output (`level + 1`).
    pub output_level: u32,
    /// Total input blocks (the cost charged against the tick budget).
    pub input_blocks: u64,
}

/// Pick the next merge, lowest level first, respecting `budget_blocks`
/// (the tick budget remaining). Returns `None` when no level is over
/// fanout or the only eligible merge exceeds the budget (the deferral is
/// counted).
pub fn plan(manifest: &Manifest, policy: &CompactionPolicy, budget_blocks: u64) -> Option<MergePlan> {
    let fanout = policy.fanout.max(2) as usize;
    for (level, segs) in manifest.levels() {
        if segs.len() < fanout {
            continue;
        }
        let inputs: Vec<_> = segs.iter().take(fanout).collect();
        let input_blocks: u64 = inputs.iter().map(|s| s.blocks()).sum();
        if policy.max_merge_blocks_per_tick > 0 && input_blocks > budget_blocks {
            invidx_obs::counter!(invidx_obs::names::SEGMENT_MERGE_DEFERRALS).inc();
            return None;
        }
        return Some(MergePlan {
            level,
            inputs: inputs.iter().map(|s| s.id).collect(),
            output_level: level + 1,
            input_blocks,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{SegmentExtent, SegmentMeta};

    fn seg(id: u64, level: u32, blocks: u64) -> SegmentMeta {
        SegmentMeta {
            id,
            level,
            extents: vec![SegmentExtent { disk: 0, start: id * 1000, blocks }],
            terms: vec![],
            data_bytes: 0,
            crc: 0,
            codec: Default::default(),
        }
    }

    #[test]
    fn plans_oldest_fanout_at_lowest_level() {
        let mut m = Manifest::new();
        m.next_segment_id = 0;
        for id in 0..5 {
            m.apply_seal(seg(id, 0, 10), id);
        }
        let p = plan(&m, &CompactionPolicy::with_fanout(4), u64::MAX).unwrap();
        assert_eq!(p.level, 0);
        assert_eq!(p.inputs, vec![0, 1, 2, 3]);
        assert_eq!(p.output_level, 1);
        assert_eq!(p.input_blocks, 40);
    }

    #[test]
    fn under_fanout_is_idle() {
        let mut m = Manifest::new();
        for id in 0..3 {
            m.apply_seal(seg(id, 0, 10), id);
        }
        assert_eq!(plan(&m, &CompactionPolicy::with_fanout(4), u64::MAX), None);
    }

    #[test]
    fn budget_defers_large_merges() {
        let mut m = Manifest::new();
        for id in 0..4 {
            m.apply_seal(seg(id, 0, 100), id);
        }
        let before = invidx_obs::counter!(invidx_obs::names::SEGMENT_MERGE_DEFERRALS).get();
        assert_eq!(plan(&m, &CompactionPolicy::with_fanout(4), 100), None);
        let after = invidx_obs::counter!(invidx_obs::names::SEGMENT_MERGE_DEFERRALS).get();
        assert_eq!(after, before + 1);
        assert!(plan(&m, &CompactionPolicy::with_fanout(4), 400).is_some());
    }
}
