//! Error type for the segment-tiered storage engine.

use std::fmt;

/// Everything that can go wrong in the segment layer.
#[derive(Debug)]
pub enum SegmentError {
    /// Invariant violation or unreadable on-disk state.
    Corrupt(String),
    /// Misuse of the API (wrong engine kind, seal mid-batch, ...).
    Usage(String),
    /// Bubbled up from the core index.
    Index(invidx_core::IndexError),
    /// Bubbled up from the disk array.
    Disk(invidx_disk::DiskError),
    /// Bubbled up from the durability layer (WAL, checkpoint, manifest
    /// file, injected faults).
    Durable(invidx_durable::DurableError),
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SegmentError>;

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Corrupt(m) => write!(f, "segment corruption: {m}"),
            SegmentError::Usage(m) => write!(f, "segment usage error: {m}"),
            SegmentError::Index(e) => write!(f, "index error: {e}"),
            SegmentError::Disk(e) => write!(f, "disk error: {e}"),
            SegmentError::Durable(e) => write!(f, "durability error: {e}"),
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<invidx_core::IndexError> for SegmentError {
    fn from(e: invidx_core::IndexError) -> Self {
        SegmentError::Index(e)
    }
}

impl From<invidx_disk::DiskError> for SegmentError {
    fn from(e: invidx_disk::DiskError) -> Self {
        SegmentError::Disk(e)
    }
}

impl From<invidx_durable::DurableError> for SegmentError {
    fn from(e: invidx_durable::DurableError) -> Self {
        SegmentError::Durable(e)
    }
}

/// Lossy downcast for callers speaking the core error vocabulary (the
/// IR engines expose one error type regardless of backend).
impl From<SegmentError> for invidx_core::IndexError {
    fn from(e: SegmentError) -> Self {
        use invidx_core::IndexError;
        match e {
            SegmentError::Index(e) => e,
            SegmentError::Disk(e) => IndexError::Disk(e),
            SegmentError::Durable(invidx_durable::DurableError::Index(e)) => e,
            SegmentError::Durable(e) => IndexError::Corruption(format!("durable: {e}")),
            SegmentError::Corrupt(m) => IndexError::Corruption(m),
            SegmentError::Usage(m) => IndexError::InvalidConfig(m),
        }
    }
}

/// Lossy downcast for callers speaking the durability vocabulary.
impl From<SegmentError> for invidx_durable::DurableError {
    fn from(e: SegmentError) -> Self {
        use invidx_durable::DurableError;
        match e {
            SegmentError::Durable(e) => e,
            SegmentError::Index(e) => DurableError::Index(e),
            SegmentError::Disk(e) => DurableError::Index(invidx_core::IndexError::Disk(e)),
            SegmentError::Corrupt(m) => DurableError::Corrupt(m),
            SegmentError::Usage(m) => {
                DurableError::Index(invidx_core::IndexError::InvalidConfig(m))
            }
        }
    }
}
