//! `SegmentedIndex`: the segment-tiered engine over an in-memory-manifest
//! store (no WAL — see `crate::durable` for the crash-safe variant).
//!
//! The existing dual-structure machinery ([`DualIndex`]) becomes **L0**:
//! fresh batches land in its buckets and in-place long lists exactly as
//! before. When L0's stored footprint crosses the configured byte budget
//! at a batch boundary, its contents are *sealed* — written once, sorted
//! by term, into an immutable segment — the manifest commits the new
//! segment, and L0 restarts empty. Reads merge the sealed segments with
//! L0 behind the same `postings()` interface, in doc-id order, filtered
//! through the shared deletion list. A cooperative tiered compactor
//! bounds read amplification by folding `fanout` same-level segments
//! into one at the next level.

use crate::compact::{self, CompactionPolicy, MergePlan};
use crate::error::{Result, SegmentError};
use crate::format::{self, SegmentMeta, SegmentWriter};
use crate::manifest::Manifest;
use invidx_core::{
    BatchReport, BlockCache, DocId, DualIndex, EngineKind, IndexConfig, PostingList, WordId,
};
use invidx_disk::DiskArray;
use std::collections::BTreeMap;

/// A point-in-time summary of the tiered store, for `stats` surfaces and
/// the ablation harness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Live sealed segments.
    pub segments: usize,
    /// `(level, segment count, blocks)` per live level, ascending.
    pub levels: Vec<(u32, usize, u64)>,
    /// Blocks held by live segments.
    pub segment_blocks: u64,
    /// Postings held by live segments.
    pub segment_postings: u64,
    /// Current L0 stored footprint in bytes.
    pub l0_bytes: u64,
    /// Seals performed over the store's lifetime.
    pub seals: u64,
    /// Merges performed over the store's lifetime.
    pub merges: u64,
    /// Cumulative segment bytes written (seals + merges) — the numerator
    /// of write amplification.
    pub bytes_written: u64,
    /// Manifest generation.
    pub generation: u64,
}

impl SegmentStats {
    /// Write amplification: segment bytes written per byte currently
    /// live in segments. 1.0 until the first merge rewrites data.
    pub fn write_amplification(&self, block_size: usize) -> f64 {
        let live = self.segment_blocks * block_size as u64;
        if live == 0 {
            return 0.0;
        }
        self.bytes_written as f64 / live as f64
    }
}

/// The segment-tiered engine: L0 `DualIndex` + sealed segments + manifest
/// + cooperative compactor.
pub struct SegmentedIndex {
    l0: DualIndex,
    manifest: Manifest,
    policy: CompactionPolicy,
    l0_budget: u64,
    seals: u64,
    merges: u64,
    bytes_written: u64,
}

impl SegmentedIndex {
    /// Create a fresh segmented store. `config.engine` must be
    /// [`EngineKind::Segmented`].
    pub fn create(array: DiskArray, config: IndexConfig) -> Result<Self> {
        let (l0_budget, fanout) = match config.engine {
            EngineKind::Segmented { l0_budget, fanout } => (l0_budget, fanout),
            EngineKind::InPlace => {
                return Err(SegmentError::Usage(
                    "SegmentedIndex requires EngineKind::Segmented".into(),
                ))
            }
        };
        let l0 = DualIndex::create(array, config)?;
        Ok(Self {
            l0,
            manifest: Manifest::new(),
            policy: CompactionPolicy::with_fanout(fanout),
            l0_budget,
            seals: 0,
            merges: 0,
            bytes_written: 0,
        })
    }

    /// Override the compaction rate limit (blocks of merge input per
    /// tick; 0 removes the limit).
    pub fn set_merge_rate(&mut self, blocks_per_tick: u64) {
        self.policy.max_merge_blocks_per_tick = blocks_per_tick;
    }

    // ----- updates -----

    /// Add a document to the current in-memory batch (L0).
    pub fn insert_document<I>(&mut self, doc: DocId, words: I) -> Result<()>
    where
        I: IntoIterator<Item = WordId>,
    {
        Ok(self.l0.insert_document(doc, words)?)
    }

    /// Bulk-add documents, inverting the batch on `threads` threads.
    pub fn insert_documents(
        &mut self,
        docs: Vec<(DocId, Vec<WordId>)>,
        threads: usize,
    ) -> Result<()> {
        Ok(self.l0.insert_documents(docs, threads)?)
    }

    /// Logically delete a document (filter semantics, paper §3). The
    /// filter screens both L0 and sealed-segment reads.
    pub fn delete_document(&mut self, doc: DocId) {
        self.l0.delete_document(doc);
    }

    /// Flush the current batch into L0, then run the seal policy and one
    /// compaction tick.
    pub fn flush_batch(&mut self) -> Result<BatchReport> {
        let report = self.l0.flush_batch()?;
        let sealed = self.maybe_seal()?;
        let merges = self.tick()?;
        if sealed.is_some() || merges > 0 {
            // Seal/merge I/O trails the batch L0 just closed in the
            // Figure-6 trace; give it its own end-of-batch marker so
            // per-batch accounting (and the text round-trip) sees it.
            self.l0.array().end_batch();
        }
        Ok(report)
    }

    /// Seal L0 into a fresh level-0 segment if its stored footprint
    /// crossed the budget. Returns the new segment id if a seal happened.
    pub fn maybe_seal(&mut self) -> Result<Option<u64>> {
        if self.l0.stored_bytes() < self.l0_budget {
            return Ok(None);
        }
        self.seal_now()
    }

    /// Unconditionally seal L0's stored postings into a segment (no-op
    /// when L0 is empty). Requires a batch boundary.
    pub fn seal_now(&mut self) -> Result<Option<u64>> {
        let Some(writer) = build_seal_writer(&self.l0, self.manifest.peek_next_id())? else {
            return Ok(None);
        };
        let meta = writer.finish(self.l0.sidecar_array())?;
        let id = meta.id;
        self.bytes_written += meta.blocks() * self.l0.array().block_size() as u64;
        let batch = self.l0.batches();
        self.manifest.apply_seal(meta, batch);
        self.l0.seal_reset()?;
        self.seals += 1;
        Ok(Some(id))
    }

    /// One cooperative compaction tick: run merges lowest-level-first
    /// until the per-tick budget is spent or no level is over fanout.
    pub fn tick(&mut self) -> Result<usize> {
        let mut budget = if self.policy.max_merge_blocks_per_tick == 0 {
            u64::MAX
        } else {
            self.policy.max_merge_blocks_per_tick
        };
        let mut done = 0;
        while let Some(plan) = compact::plan(&self.manifest, &self.policy, budget) {
            budget = budget.saturating_sub(plan.input_blocks);
            self.execute_merge(&plan)?;
            done += 1;
        }
        Ok(done)
    }

    fn execute_merge(&mut self, plan: &MergePlan) -> Result<()> {
        let inputs: Vec<SegmentMeta> = plan
            .inputs
            .iter()
            .map(|id| {
                self.manifest
                    .segment(*id)
                    .cloned()
                    .ok_or_else(|| SegmentError::Corrupt(format!("merge input {id} not live")))
            })
            .collect::<Result<_>>()?;
        let writer =
            merge_writer(&inputs, self.manifest.peek_next_id(), plan.output_level, self.l0.array(), self.l0.block_cache())?;
        let meta = writer.finish(self.l0.sidecar_array())?;
        self.bytes_written += meta.blocks() * self.l0.array().block_size() as u64;
        self.manifest.apply_merge(&plan.inputs, meta)?;
        // Inputs are unreachable from the new manifest: release their
        // extents (quarantined under defer_frees in durable mode).
        for m in &inputs {
            for e in &m.extents {
                self.l0.sidecar_array().free_on(e.disk, e.start, e.blocks)?;
            }
        }
        self.merges += 1;
        Ok(())
    }

    // ----- reads -----

    /// The full posting list for a word: sealed segments (oldest first)
    /// unioned with L0, filtered through the deletion list. Matches
    /// [`DualIndex::postings`] bit-for-bit on the same history.
    pub fn postings(&self, word: WordId) -> Result<PostingList> {
        let mut list = self.l0.postings(word)?;
        for seg in &self.manifest.segments {
            let mut run = format::read_term(seg, self.l0.array(), self.l0.block_cache(), word)?;
            if run.is_empty() {
                continue;
            }
            run.retain(|d| !self.l0.is_deleted(d));
            list = list.union(&run);
        }
        Ok(list)
    }

    /// Document frequency from metadata only (term indexes are resident):
    /// segment run lengths plus L0's directory/bucket/mem counts. Like
    /// [`DualIndex::doc_frequency`], ignores the deletion filter.
    pub fn doc_frequency(&self, word: WordId) -> u64 {
        let sealed: u64 = self
            .manifest
            .segments
            .iter()
            .filter_map(|s| s.find(word))
            .map(|t| t.postings as u64)
            .sum();
        sealed + self.l0.doc_frequency(word)
    }

    // ----- introspection -----

    /// The L0 in-place index.
    pub fn l0(&self) -> &DualIndex {
        &self.l0
    }

    /// Mutable access to L0 (sidecar writes by higher layers — the IR
    /// engine's document store and vocabulary live on the same array).
    pub fn l0_mut(&mut self) -> &mut DualIndex {
        &mut self.l0
    }

    /// The live manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The disk array.
    pub fn array(&self) -> &DiskArray {
        self.l0.array()
    }

    /// The shared block cache, if configured.
    pub fn block_cache(&self) -> Option<&BlockCache> {
        self.l0.block_cache()
    }

    /// The store's configuration.
    pub fn config(&self) -> &IndexConfig {
        self.l0.config()
    }

    /// Completed batches (L0's counter; seals do not bump it).
    pub fn batches(&self) -> u64 {
        self.l0.batches()
    }

    /// Snapshot of tier shape and lifetime write counters.
    pub fn stats(&self) -> SegmentStats {
        let mut levels: Vec<(u32, usize, u64)> = Vec::new();
        for (level, segs) in self.manifest.levels() {
            levels.push((level, segs.len(), segs.iter().map(|s| s.blocks()).sum()));
        }
        SegmentStats {
            segments: self.manifest.segments.len(),
            levels,
            segment_blocks: self.manifest.total_blocks(),
            segment_postings: self.manifest.total_postings(),
            l0_bytes: self.l0.stored_bytes(),
            seals: self.seals,
            merges: self.merges,
            bytes_written: self.bytes_written,
            generation: self.manifest.generation,
        }
    }

    /// Verify every live segment's footer and CRC against the manifest.
    pub fn verify_segments(&self) -> Result<()> {
        for s in &self.manifest.segments {
            format::verify(s, self.l0.array())?;
        }
        Ok(())
    }
}

/// Collect L0's stored postings (buckets + long lists, raw — no deletion
/// filter) into a seal-ready writer. `None` when L0 stores nothing.
pub(crate) fn build_seal_writer(l0: &DualIndex, id: u64) -> Result<Option<SegmentWriter>> {
    let mut words: Vec<WordId> = l0.directory().words();
    words.extend(l0.buckets().iter().map(|(w, _)| w));
    words.sort_unstable();
    words.dedup();
    if words.is_empty() {
        return Ok(None);
    }
    let mut writer = SegmentWriter::new(id, 0, l0.config().codec);
    for word in words {
        let list = l0.stored_postings(word)?;
        writer.push(word, list.docs())?;
    }
    if writer.is_empty() {
        return Ok(None);
    }
    Ok(Some(writer))
}

/// Union `inputs` run-by-run into a writer for a segment at
/// `output_level`. Pure append-only set union: deletions stay filtered
/// at read time, so doc frequencies are preserved exactly.
pub(crate) fn merge_writer(
    inputs: &[SegmentMeta],
    id: u64,
    output_level: u32,
    array: &DiskArray,
    cache: Option<&BlockCache>,
) -> Result<SegmentWriter> {
    let mut map: BTreeMap<WordId, PostingList> = BTreeMap::new();
    for m in inputs {
        for t in &m.terms {
            let run = format::read_term(m, array, cache, t.word)?;
            match map.entry(t.word) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(run);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    let merged = o.get().union(&run);
                    o.insert(merged);
                }
            }
        }
    }
    let codec = inputs.first().map(|m| m.codec).unwrap_or_default();
    let mut writer = SegmentWriter::new(id, output_level, codec);
    for (word, list) in &map {
        writer.push(*word, list.docs())?;
    }
    Ok(writer)
}
