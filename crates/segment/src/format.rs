//! On-disk format of a sealed segment.
//!
//! A segment is a write-once artifact holding the postings of many words,
//! sorted by word id, laid out as one logical byte stream split across a
//! list of block extents on the disk array:
//!
//! ```text
//! +--------------------------+----------------------+-----------+
//! | postings runs (4B docs)  | term index           | footer    |
//! +--------------------------+----------------------+-----------+
//! ```
//!
//! * **postings runs** — for each term, its doc ids in ascending word
//!   order: fixed-width 4-byte little-endian values under the plain
//!   codec, or a self-describing coding-block stream (see
//!   [`invidx_core::codec`]) under a compressed one. The segment's codec
//!   is recorded in its metadata;
//! * **term index** — `(word u64, offset u64, postings u32, bytes u32)`
//!   entries in ascending word order, locating each run in the postings
//!   region;
//! * **footer** — magic, region lengths, and a CRC32 over everything
//!   before it, so a segment is self-describing and verifiable.
//!
//! The stream is padded to a whole number of blocks and written through
//! [`invidx_disk::DiskArray`] extents tagged [`Payload::Segment`], so
//! segment I/O shows up in Figure-6 traces and is charged to the same
//! simulated disks as every other structure. Reads go through the shared
//! block cache with the same pin-scope discipline as long-list chunks.

use crate::error::{Result, SegmentError};
use invidx_core::codec as pcodec;
use invidx_core::{BlockCache, DocId, PostingList, PostingsCodec, WordId};
use invidx_disk::{DiskArray, IoOp, OpKind, Payload};
use invidx_durable::crc32;

/// Magic bytes opening the footer (v2 added per-run byte lengths and the
/// segment codec tag).
pub const FOOTER_MAGIC: &[u8; 8] = b"IVXSEG2\0";
/// Serialized footer length in bytes.
pub const FOOTER_LEN: usize = 8 + 8 + 8 + 4;
/// Bytes of one serialized term-index entry.
pub const TERM_ENTRY_LEN: usize = 8 + 8 + 4 + 4;
/// Largest single extent a segment writer allocates, in blocks. Long
/// segments stripe round-robin across disks in extents of this size.
pub const MAX_EXTENT_BLOCKS: u64 = 256;
/// Postings per coding block in compressed segment runs. Segments are
/// byte-addressed (runs need not align to device blocks), so this is a
/// format constant rather than the index's `BlockPosting` parameter.
pub const SEGMENT_CODING_POSTINGS: u64 = 128;

/// One contiguous run of blocks belonging to a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentExtent {
    /// Disk holding the extent.
    pub disk: u16,
    /// First block of the extent.
    pub start: u64,
    /// Extent length in blocks.
    pub blocks: u64,
}

/// Term-index entry: where one word's postings run lives in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TermEntry {
    /// The word.
    pub word: WordId,
    /// Byte offset of the run inside the postings region.
    pub offset: u64,
    /// Postings in the run.
    pub postings: u32,
    /// Encoded byte length of the run (`postings * 4` under the plain
    /// codec, the coding-block stream length otherwise).
    pub bytes: u32,
}

/// Everything the engine needs to read a sealed segment: identity, tier
/// level, extent list, and the (in-memory copy of the) term index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Unique, monotonically assigned segment id.
    pub id: u64,
    /// Tier level: 0 for freshly sealed L0 snapshots, `n+1` for the
    /// output of a level-`n` merge.
    pub level: u32,
    /// Extents of the logical stream, in stream order.
    pub extents: Vec<SegmentExtent>,
    /// Term index, ascending by word.
    pub terms: Vec<TermEntry>,
    /// Length of the postings region in bytes.
    pub data_bytes: u64,
    /// CRC32 over postings region + term index.
    pub crc: u32,
    /// Codec the postings runs were written with.
    pub codec: PostingsCodec,
}

impl SegmentMeta {
    /// Total blocks occupied by the segment.
    pub fn blocks(&self) -> u64 {
        self.extents.iter().map(|e| e.blocks).sum()
    }

    /// Total postings stored.
    pub fn postings(&self) -> u64 {
        self.terms.iter().map(|t| t.postings as u64).sum()
    }

    /// Logical stream length in bytes (before block padding).
    pub fn stream_bytes(&self) -> u64 {
        self.data_bytes + self.terms.len() as u64 * TERM_ENTRY_LEN as u64 + FOOTER_LEN as u64
    }

    /// Locate a word's run via binary search on the term index.
    pub fn find(&self, word: WordId) -> Option<TermEntry> {
        self.terms
            .binary_search_by_key(&word, |t| t.word)
            .ok()
            .map(|i| self.terms[i])
    }

    /// Serialize into `out` (manifest / checkpoint embedding).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.level.to_le_bytes());
        out.extend_from_slice(&self.data_bytes.to_le_bytes());
        out.extend_from_slice(&self.crc.to_le_bytes());
        out.push(self.codec.as_u8());
        out.extend_from_slice(&(self.extents.len() as u32).to_le_bytes());
        for e in &self.extents {
            out.extend_from_slice(&e.disk.to_le_bytes());
            out.extend_from_slice(&e.start.to_le_bytes());
            out.extend_from_slice(&e.blocks.to_le_bytes());
        }
        out.extend_from_slice(&(self.terms.len() as u32).to_le_bytes());
        for t in &self.terms {
            out.extend_from_slice(&t.word.0.to_le_bytes());
            out.extend_from_slice(&t.offset.to_le_bytes());
            out.extend_from_slice(&t.postings.to_le_bytes());
            out.extend_from_slice(&t.bytes.to_le_bytes());
        }
    }

    /// Inverse of [`Self::encode_into`]; advances `pos`.
    pub fn decode_from(bytes: &[u8], pos: &mut usize) -> Result<Self> {
        let id = take_u64(bytes, pos)?;
        let level = take_u32(bytes, pos)?;
        let data_bytes = take_u64(bytes, pos)?;
        let crc = take_u32(bytes, pos)?;
        let codec = PostingsCodec::from_u8(take_u8(bytes, pos)?)
            .map_err(|e| SegmentError::Corrupt(e.to_string()))?;
        let n_ext = take_u32(bytes, pos)? as usize;
        if n_ext > bytes.len() / 8 {
            return Err(SegmentError::Corrupt(format!("absurd extent count {n_ext}")));
        }
        let mut extents = Vec::with_capacity(n_ext);
        for _ in 0..n_ext {
            extents.push(SegmentExtent {
                disk: take_u16(bytes, pos)?,
                start: take_u64(bytes, pos)?,
                blocks: take_u64(bytes, pos)?,
            });
        }
        let n_terms = take_u32(bytes, pos)? as usize;
        if n_terms > bytes.len() / 4 {
            return Err(SegmentError::Corrupt(format!("absurd term count {n_terms}")));
        }
        let mut terms = Vec::with_capacity(n_terms);
        for _ in 0..n_terms {
            terms.push(TermEntry {
                word: WordId(take_u64(bytes, pos)?),
                offset: take_u64(bytes, pos)?,
                postings: take_u32(bytes, pos)?,
                bytes: take_u32(bytes, pos)?,
            });
        }
        Ok(Self { id, level, extents, terms, data_bytes, crc, codec })
    }
}

pub(crate) fn take_u8(b: &[u8], pos: &mut usize) -> Result<u8> {
    let &v = b
        .get(*pos)
        .ok_or_else(|| SegmentError::Corrupt("truncated u8".into()))?;
    *pos += 1;
    Ok(v)
}

pub(crate) fn take_u16(b: &[u8], pos: &mut usize) -> Result<u16> {
    let s = b
        .get(*pos..*pos + 2)
        .ok_or_else(|| SegmentError::Corrupt("truncated u16".into()))?;
    *pos += 2;
    Ok(u16::from_le_bytes(s.try_into().unwrap()))
}

pub(crate) fn take_u32(b: &[u8], pos: &mut usize) -> Result<u32> {
    let s = b
        .get(*pos..*pos + 4)
        .ok_or_else(|| SegmentError::Corrupt("truncated u32".into()))?;
    *pos += 4;
    Ok(u32::from_le_bytes(s.try_into().unwrap()))
}

pub(crate) fn take_u64(b: &[u8], pos: &mut usize) -> Result<u64> {
    let s = b
        .get(*pos..*pos + 8)
        .ok_or_else(|| SegmentError::Corrupt("truncated u64".into()))?;
    *pos += 8;
    Ok(u64::from_le_bytes(s.try_into().unwrap()))
}

/// Builds one sealed segment: push terms in ascending word order, then
/// [`SegmentWriter::finish`] allocates extents and writes the stream.
pub struct SegmentWriter {
    id: u64,
    level: u32,
    codec: PostingsCodec,
    data: Vec<u8>,
    terms: Vec<TermEntry>,
}

impl SegmentWriter {
    /// Start a segment with the given identity, tier level, and postings
    /// codec.
    pub fn new(id: u64, level: u32, codec: PostingsCodec) -> Self {
        Self { id, level, codec, data: Vec::new(), terms: Vec::new() }
    }

    /// Append one word's postings run. Words must arrive in strictly
    /// ascending order; empty runs are skipped.
    pub fn push(&mut self, word: WordId, docs: &[DocId]) -> Result<()> {
        if docs.is_empty() {
            return Ok(());
        }
        if let Some(last) = self.terms.last() {
            if word <= last.word {
                return Err(SegmentError::Corrupt(format!(
                    "segment writer: {word:?} pushed after {:?}",
                    last.word
                )));
            }
        }
        let offset = self.data.len() as u64;
        if self.codec.is_compressed() {
            let stream = pcodec::encode_stream(self.codec, docs, SEGMENT_CODING_POSTINGS);
            self.data.extend_from_slice(&stream);
        } else {
            for d in docs {
                self.data.extend_from_slice(&d.0.to_le_bytes());
            }
        }
        self.terms.push(TermEntry {
            word,
            offset,
            postings: docs.len() as u32,
            bytes: (self.data.len() as u64 - offset) as u32,
        });
        Ok(())
    }

    /// Terms pushed so far.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Postings-region bytes accumulated so far.
    pub fn data_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// Serialize the stream, allocate extents on the array, and write
    /// them out tagged [`Payload::Segment`]. Consumes the writer.
    pub fn finish(self, array: &mut DiskArray) -> Result<SegmentMeta> {
        let bs = array.block_size();
        let data_bytes = self.data.len() as u64;
        let mut stream = self.data;
        for t in &self.terms {
            stream.extend_from_slice(&t.word.0.to_le_bytes());
            stream.extend_from_slice(&t.offset.to_le_bytes());
            stream.extend_from_slice(&t.postings.to_le_bytes());
            stream.extend_from_slice(&t.bytes.to_le_bytes());
        }
        let crc = crc32(&stream);
        stream.extend_from_slice(FOOTER_MAGIC);
        stream.extend_from_slice(&data_bytes.to_le_bytes());
        stream.extend_from_slice(&(self.terms.len() as u64).to_le_bytes());
        stream.extend_from_slice(&crc.to_le_bytes());
        let total_blocks = (stream.len() as u64).div_ceil(bs as u64).max(1);
        stream.resize(total_blocks as usize * bs, 0);

        // Stripe the stream across disks in bounded extents so a large
        // merge output doesn't monopolize one spindle.
        let mut extents = Vec::new();
        let mut written = 0u64;
        while written < total_blocks {
            let want = (total_blocks - written).min(MAX_EXTENT_BLOCKS);
            let (disk, start) = alloc_somewhere(array, want)?;
            let op = IoOp {
                kind: OpKind::Write,
                disk,
                start,
                blocks: want,
                payload: Payload::Segment { segment: self.id },
            };
            let lo = (written * bs as u64) as usize;
            let hi = lo + (want * bs as u64) as usize;
            array.write_op(op, &stream[lo..hi])?;
            extents.push(SegmentExtent { disk, start, blocks: want });
            written += want;
        }
        invidx_obs::counter!(invidx_obs::names::SEGMENT_BYTES_WRITTEN)
            .add(total_blocks * bs as u64);
        Ok(SegmentMeta {
            id: self.id,
            level: self.level,
            extents,
            terms: self.terms,
            data_bytes,
            crc,
            codec: self.codec,
        })
    }
}

/// Allocate `blocks` on the array's next disk, falling back to any disk
/// with room.
fn alloc_somewhere(array: &mut DiskArray, blocks: u64) -> Result<(u16, u64)> {
    let first = array.next_disk();
    let n = array.num_disks();
    for i in 0..n {
        let disk = (first + i) % n;
        if let Ok(start) = array.alloc_on(disk, blocks) {
            return Ok((disk, start));
        }
    }
    Err(SegmentError::Corrupt(format!(
        "no disk has {blocks} contiguous free blocks for a segment extent"
    )))
}

/// Read one word's postings from a sealed segment, going through the
/// block cache with the same pin-scope discipline as long-list reads.
/// Returns an empty list when the segment has no run for the word.
pub fn read_term(
    meta: &SegmentMeta,
    array: &DiskArray,
    cache: Option<&BlockCache>,
    word: WordId,
) -> Result<PostingList> {
    let Some(entry) = meta.find(word) else {
        return Ok(PostingList::new());
    };
    let bytes = read_range(meta, array, cache, entry.offset, entry.bytes as u64)?;
    let docs = if meta.codec.is_compressed() {
        pcodec::decode_stream(&bytes, entry.postings as u64)
            .map_err(|e| SegmentError::Corrupt(format!("segment {}: {e}", meta.id)))?
    } else {
        let mut docs = Vec::with_capacity(entry.postings as usize);
        for chunk in bytes.chunks_exact(4) {
            docs.push(DocId(u32::from_le_bytes(chunk.try_into().unwrap())));
        }
        docs
    };
    if !docs.windows(2).all(|w| w[0] < w[1]) {
        return Err(SegmentError::Corrupt(format!(
            "segment {}: unsorted run for {word:?}",
            meta.id
        )));
    }
    Ok(PostingList::from_sorted(docs))
}

/// Read `len` bytes of the logical stream starting at `offset`, walking
/// the extent list and charging block-granular reads to the cache/array.
pub fn read_range(
    meta: &SegmentMeta,
    array: &DiskArray,
    cache: Option<&BlockCache>,
    offset: u64,
    len: u64,
) -> Result<Vec<u8>> {
    let bs = array.block_size() as u64;
    let mut out = Vec::with_capacity(len as usize);
    let mut guard = cache.map(|c| c.pin_scope());
    let (mut remaining, mut pos) = (len, offset);
    let mut ext_base = 0u64; // logical byte offset where the extent starts
    for e in &meta.extents {
        let ext_bytes = e.blocks * bs;
        if remaining == 0 {
            break;
        }
        if pos >= ext_base + ext_bytes {
            ext_base += ext_bytes;
            continue;
        }
        // Overlap of [pos, pos+remaining) with this extent, block-aligned.
        let local = pos - ext_base;
        let take = remaining.min(ext_bytes - local);
        let blk0 = local / bs;
        let blk1 = (local + take).div_ceil(bs);
        let nblocks = blk1 - blk0;
        let mut buf = vec![0u8; (nblocks * bs) as usize];
        let cached = {
            let _stage = invidx_obs::trace::stage("block_cache");
            invidx_obs::trace::add_blocks(nblocks);
            let hit = match (cache, guard.as_mut()) {
                (Some(cache), Some(g)) => {
                    cache.read_pinned(e.disk, e.start + blk0, nblocks, &mut buf, g)
                }
                _ => false,
            };
            if hit {
                invidx_obs::trace::add_bytes(buf.len() as u64);
            }
            hit
        };
        if !cached {
            let op = IoOp {
                kind: OpKind::Read,
                disk: e.disk,
                start: e.start + blk0,
                blocks: nblocks,
                payload: Payload::Segment { segment: meta.id },
            };
            array.read_op(op, &mut buf)?;
            invidx_obs::counter!(invidx_obs::names::SEGMENT_READ_OPS).inc();
            if let (Some(cache), Some(g)) = (cache, guard.as_mut()) {
                cache.insert_pinned(e.disk, e.start + blk0, nblocks, &buf, g);
            }
        }
        let lo = (local - blk0 * bs) as usize;
        out.extend_from_slice(&buf[lo..lo + take as usize]);
        pos += take;
        remaining -= take;
        ext_base += ext_bytes;
    }
    if remaining != 0 {
        return Err(SegmentError::Corrupt(format!(
            "segment {}: read past end of stream ({remaining} bytes short)",
            meta.id
        )));
    }
    Ok(out)
}

/// Re-read the whole segment and check its footer and CRC against the
/// manifest's metadata. Used by recovery audits and tests.
pub fn verify(meta: &SegmentMeta, array: &DiskArray) -> Result<()> {
    let term_bytes = meta.terms.len() as u64 * TERM_ENTRY_LEN as u64;
    let body = read_range(meta, array, None, 0, meta.data_bytes + term_bytes)?;
    let footer = read_range(meta, array, None, meta.data_bytes + term_bytes, FOOTER_LEN as u64)?;
    if &footer[0..8] != FOOTER_MAGIC {
        return Err(SegmentError::Corrupt(format!("segment {}: bad footer magic", meta.id)));
    }
    let mut pos = 8;
    let data_bytes = take_u64(&footer, &mut pos)?;
    let n_terms = take_u64(&footer, &mut pos)?;
    let crc = take_u32(&footer, &mut pos)?;
    if data_bytes != meta.data_bytes || n_terms != meta.terms.len() as u64 {
        return Err(SegmentError::Corrupt(format!(
            "segment {}: footer disagrees with manifest (data {data_bytes}/{}, terms {n_terms}/{})",
            meta.id,
            meta.data_bytes,
            meta.terms.len()
        )));
    }
    if crc != meta.crc || crc32(&body) != meta.crc {
        return Err(SegmentError::Corrupt(format!("segment {}: CRC mismatch", meta.id)));
    }
    Ok(())
}
