//! The manifest: durable source of truth for the set of live segments.
//!
//! The manifest is a generation-numbered record of every sealed segment
//! (with its extent list and term index) plus the id counter and the L0
//! watermark. Every state change — a seal or a merge — bumps the
//! generation and, in durable mode, rewrites the manifest file with the
//! same tmp-write/fsync/atomic-rename protocol the checkpoint uses, at
//! the same injectable fault points. A crash can therefore leave at most
//! one committed-but-uncheckpointed manifest generation, which recovery
//! rolls forward (see `crate::durable`).

use crate::error::{Result, SegmentError};
use crate::format::{take_u32, take_u64, SegmentMeta};
use invidx_durable::{crc32, DurableFile, FaultInjector, FaultPoint};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Magic bytes opening a serialized manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"IVXMANI1";
/// Default manifest file name inside a durable store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// The live-segment set at one generation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic generation; bumped by every seal and merge.
    pub generation: u64,
    /// Next segment id to assign.
    pub next_segment_id: u64,
    /// Batch number of the L0 index when the last seal committed — the
    /// watermark below which all postings live in sealed segments.
    pub l0_sealed_batch: u64,
    /// Live segments, oldest first (creation order). Within a word,
    /// postings from later segments and L0 supersede nothing — segments
    /// are disjoint snapshots merged by doc-id union at read time.
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    /// A fresh empty manifest at generation zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assign the next segment id (does not bump the generation; the id
    /// is only consumed when the seal or merge commits).
    pub fn peek_next_id(&self) -> u64 {
        self.next_segment_id
    }

    /// Commit a freshly sealed L0 segment.
    pub fn apply_seal(&mut self, meta: SegmentMeta, l0_batch: u64) {
        debug_assert_eq!(meta.id, self.next_segment_id);
        self.next_segment_id = meta.id + 1;
        self.segments.push(meta);
        self.l0_sealed_batch = l0_batch;
        self.generation += 1;
        invidx_obs::counter!(invidx_obs::names::SEGMENT_SEALS).inc();
        invidx_obs::gauge!(invidx_obs::names::SEGMENT_LIVE).set(self.segments.len() as i64);
    }

    /// Commit a merge: drop `inputs`, add `output` in their place (at the
    /// position of the oldest input, preserving creation order).
    pub fn apply_merge(&mut self, inputs: &[u64], output: SegmentMeta) -> Result<()> {
        debug_assert_eq!(output.id, self.next_segment_id);
        let first = self
            .segments
            .iter()
            .position(|s| inputs.contains(&s.id))
            .ok_or_else(|| SegmentError::Corrupt("merge inputs not in manifest".into()))?;
        let before = self.segments.len();
        self.segments.retain(|s| !inputs.contains(&s.id));
        if before - self.segments.len() != inputs.len() {
            return Err(SegmentError::Corrupt(format!(
                "merge expected {} inputs live, found {}",
                inputs.len(),
                before - self.segments.len()
            )));
        }
        self.next_segment_id = output.id + 1;
        self.segments.insert(first, output);
        self.generation += 1;
        invidx_obs::counter!(invidx_obs::names::SEGMENT_MERGES).inc();
        invidx_obs::gauge!(invidx_obs::names::SEGMENT_LIVE).set(self.segments.len() as i64);
        Ok(())
    }

    /// Segment metadata by id.
    pub fn segment(&self, id: u64) -> Option<&SegmentMeta> {
        self.segments.iter().find(|s| s.id == id)
    }

    /// Live segments grouped by tier level, ascending.
    pub fn levels(&self) -> BTreeMap<u32, Vec<&SegmentMeta>> {
        let mut map: BTreeMap<u32, Vec<&SegmentMeta>> = BTreeMap::new();
        for s in &self.segments {
            map.entry(s.level).or_default().push(s);
        }
        map
    }

    /// Total blocks held by live segments.
    pub fn total_blocks(&self) -> u64 {
        self.segments.iter().map(|s| s.blocks()).sum()
    }

    /// Total postings held by live segments.
    pub fn total_postings(&self) -> u64 {
        self.segments.iter().map(|s| s.postings()).sum()
    }

    /// Serialize with magic, version, and trailing CRC32.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&1u32.to_le_bytes()); // version
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.next_segment_id.to_le_bytes());
        out.extend_from_slice(&self.l0_sealed_batch.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for s in &self.segments {
            s.encode_into(&mut out);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Inverse of [`Self::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < MANIFEST_MAGIC.len() + 4 + 4 || &bytes[..8] != MANIFEST_MAGIC {
            return Err(SegmentError::Corrupt("bad manifest magic".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let want = u32::from_le_bytes(tail.try_into().unwrap());
        if crc32(body) != want {
            return Err(SegmentError::Corrupt("manifest CRC mismatch".into()));
        }
        let mut pos = 8;
        let version = take_u32(body, &mut pos)?;
        if version != 1 {
            return Err(SegmentError::Corrupt(format!("manifest version {version}")));
        }
        let generation = take_u64(body, &mut pos)?;
        let next_segment_id = take_u64(body, &mut pos)?;
        let l0_sealed_batch = take_u64(body, &mut pos)?;
        let n = take_u32(body, &mut pos)? as usize;
        let mut segments = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            segments.push(SegmentMeta::decode_from(body, &mut pos)?);
        }
        Ok(Self { generation, next_segment_id, l0_sealed_batch, segments })
    }
}

/// Atomic file persistence for the manifest, mirroring the checkpoint's
/// tmp-write → fsync → rename → dir-fsync protocol. It reuses the
/// checkpoint fault points (`CheckpointWrite`/`CheckpointFsync`/
/// `CheckpointRename`) so the existing kill matrices strike manifest
/// writes too.
#[derive(Debug, Clone)]
pub struct ManifestFile {
    path: PathBuf,
}

impl ManifestFile {
    /// Manifest persisted at `dir/MANIFEST`.
    pub fn in_dir(dir: &Path) -> Self {
        Self { path: dir.join(MANIFEST_FILE) }
    }

    /// The backing path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Atomically replace the manifest file with `manifest`.
    pub fn store(&self, manifest: &Manifest, injector: &FaultInjector) -> Result<()> {
        let bytes = manifest.encode();
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = DurableFile::open_append(
                &tmp,
                injector.clone(),
                FaultPoint::CheckpointWrite,
                FaultPoint::CheckpointFsync,
            )?;
            f.truncate(0)?;
            f.append(&bytes)?;
            f.sync()?;
        }
        injector.check_event(FaultPoint::CheckpointRename)?;
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| SegmentError::Corrupt(format!("manifest rename: {e}")))?;
        if let Some(parent) = self.path.parent() {
            if let Ok(d) = std::fs::File::open(parent) {
                d.sync_all().ok();
            }
        }
        invidx_obs::counter!(invidx_obs::names::SEGMENT_MANIFEST_COMMITS).inc();
        Ok(())
    }

    /// Load the manifest, or `None` when the file does not exist yet. A
    /// leftover `.tmp` from an interrupted store is discarded.
    pub fn load(&self) -> Result<Option<Manifest>> {
        std::fs::remove_file(self.path.with_extension("tmp")).ok();
        match std::fs::read(&self.path) {
            Ok(bytes) => Manifest::decode(&bytes).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(SegmentError::Corrupt(format!("manifest read: {e}"))),
        }
    }
}
