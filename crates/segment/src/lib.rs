//! # invidx-segment — segment-tiered storage for long lists
//!
//! The paper's in-place engine updates long lists where they sit, which
//! is ideal for incremental batches but accumulates fragmentation and
//! relocation churn as lists grow (§1's "massive reorganization"
//! trade-off). This crate adds the complementary design point as a
//! first-class engine: an LSM-style tier of **immutable sealed
//! segments** under the existing dual structure, which becomes the
//! mutable **L0**.
//!
//! * [`format`] — the write-once segment artifact: sorted term runs,
//!   term index, CRC'd footer, block extents on the shared
//!   [`invidx_disk::DiskArray`] (traced as `Payload::Segment`), reads
//!   through the shared block cache;
//! * [`manifest`] — the generation-numbered source of truth for the
//!   live-segment set, persisted by atomic rename at the checkpoint's
//!   fault points;
//! * [`store`] — [`SegmentedIndex`]: seal-on-budget L0 + merged reads
//!   behind the same `postings()` interface;
//! * [`compact`] — the tiered, rate-limited, cooperative merge
//!   scheduler;
//! * [`durable`] — [`DurableSegmentedIndex`]: the crash-safe variant
//!   (WAL-backed L0, manifest/checkpoint lockstep, roll-forward
//!   recovery).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod compact;
pub mod durable;
pub mod error;
pub mod format;
pub mod manifest;
pub mod store;

pub use compact::{plan, CompactionPolicy, MergePlan};
pub use durable::{DurableSegmentedIndex, ProtocolSite};
pub use error::{Result, SegmentError};
pub use format::{SegmentExtent, SegmentMeta, SegmentWriter, TermEntry};
pub use manifest::{Manifest, ManifestFile, MANIFEST_FILE};
pub use store::{SegmentStats, SegmentedIndex};
