//! Crash-safe segment-tiered store: [`DurableIndex`] as L0 plus a
//! manifest file and roll-forward recovery.
//!
//! ## Commit protocol
//!
//! The manifest file is the source of truth for the sealed-segment set.
//! Every manifest-changing operation checkpoints the L0 store
//! immediately after committing, so the WAL never has to replay *across*
//! a manifest change and at most **one** manifest generation can be
//! ahead of the checkpoint after a crash:
//!
//! ```text
//! seal:   write segment extents → flush devices → manifest gen+1
//!         → L0 seal-reset → checkpoint (carries gen+1)
//! merge:  checkpoint (empties the WAL) → write output extents
//!         → flush devices → manifest gen+1 → free input extents
//!         → checkpoint (carries gen+1)
//! ```
//!
//! ## Recovery
//!
//! The checkpoint's meta blob embeds the manifest state it was taken
//! under. On open, recovery hooks re-reserve that generation's segment
//! extents *before* free-space verification and WAL replay. Afterwards
//! the on-disk manifest is compared with the checkpoint's: if it is one
//! generation ahead, the interrupted operation is repaired and a fresh
//! checkpoint restores the lockstep invariant.
//!
//! A pending **seal** is rolled *back*: WAL replay already rebuilt the
//! sealed contents in L0, and — because the allocator's placement
//! cursor is not part of the checkpoint — the replayed chunks may
//! occupy the very blocks the orphaned segment was written to, so
//! adopting the segment is unsound. The segment is discarded (its id
//! stays burned) and a superseding manifest generation is committed.
//! A pending **merge** is rolled *forward* — output extents reserved
//! and verified, inputs freed. That is safe because [`Self::tick`]
//! checkpoints L0 before the first merge of a tick, so the WAL is
//! always empty across a merge protocol and replay can never compete
//! with the output segment for blocks.

use crate::compact::{self, CompactionPolicy};
use crate::error::{Result, SegmentError};
use crate::format::{self, SegmentMeta};
use crate::manifest::{Manifest, ManifestFile};
use crate::store::{build_seal_writer, merge_writer, SegmentStats};
use invidx_core::{BatchReport, DocId, DualIndex, EngineKind, IndexConfig, PostingList, WordId};
use invidx_durable::{
    DurableError, DurableIndex, DurableOptions, FaultInjector, RecoveryHooks, RecoveryInfo,
    StoreGeometry, WalRecord,
};
use std::path::Path;

/// Magic bytes opening a composite (segment-aware) checkpoint meta blob.
const META_MAGIC: &[u8; 8] = b"SEGCKPT1";

/// Process-kill sites inside the seal/merge protocol, for the recovery
/// matrix. A crash here stops the protocol cleanly at the site — exactly
/// the on-disk state a power cut at that instant would leave — and
/// surfaces as an `Injected`-style error the test catches before
/// dropping and reopening the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolSite {
    /// After the segment's extents are written, before the device flush
    /// and manifest commit (the segment is orphaned garbage).
    AfterSegmentWrite,
    /// After the manifest rename committed the new generation, before
    /// the L0 reset / input frees and the checkpoint (the roll-forward
    /// window).
    AfterManifestCommit,
    /// Seal only: after the L0 reset, before the checkpoint.
    AfterL0Reset,
    /// Merge only: after the input extents were freed, before the
    /// checkpoint.
    AfterInputFree,
}

impl ProtocolSite {
    /// All sites, for building test matrices.
    pub const ALL: [ProtocolSite; 4] = [
        ProtocolSite::AfterSegmentWrite,
        ProtocolSite::AfterManifestCommit,
        ProtocolSite::AfterL0Reset,
        ProtocolSite::AfterInputFree,
    ];
}

/// A crash-safe [`crate::SegmentedIndex`]: durable L0, manifest file,
/// and checkpoint-embedded segment state.
pub struct DurableSegmentedIndex {
    l0: DurableIndex,
    manifest: Manifest,
    file: ManifestFile,
    policy: CompactionPolicy,
    l0_budget: u64,
    user_meta: Vec<u8>,
    seals: u64,
    merges: u64,
    bytes_written: u64,
    crash_site: Option<ProtocolSite>,
    poisoned: bool,
}

impl DurableSegmentedIndex {
    /// Create a fresh store in `dir`. `config.engine` must be
    /// [`EngineKind::Segmented`].
    pub fn create(
        dir: &Path,
        config: IndexConfig,
        geometry: StoreGeometry,
        opts: DurableOptions,
    ) -> Result<Self> {
        Self::create_with(dir, config, geometry, opts, FaultInjector::new())
    }

    /// [`Self::create`] with a caller-supplied fault injector.
    pub fn create_with(
        dir: &Path,
        config: IndexConfig,
        geometry: StoreGeometry,
        opts: DurableOptions,
        injector: FaultInjector,
    ) -> Result<Self> {
        let (l0_budget, fanout) = engine_params(&config)?;
        let l0 = DurableIndex::create_with(dir, config, geometry, opts, injector)?;
        let manifest = Manifest::new();
        let file = ManifestFile::in_dir(dir);
        file.store(&manifest, l0.injector())?;
        let mut me = Self {
            l0,
            manifest,
            file,
            policy: CompactionPolicy::with_fanout(fanout),
            l0_budget,
            user_meta: Vec::new(),
            seals: 0,
            merges: 0,
            bytes_written: 0,
            crash_site: None,
            poisoned: false,
        };
        me.push_composite_meta();
        Ok(me)
    }

    /// Open (recover) the store in `dir`.
    pub fn open(dir: &Path, config: IndexConfig, opts: DurableOptions) -> Result<Self> {
        Self::open_with(dir, config, opts, FaultInjector::new(), &mut ())
    }

    /// [`Self::open`] with a fault injector and caller recovery hooks
    /// (which see only the caller's own slice of the checkpoint meta).
    pub fn open_with(
        dir: &Path,
        config: IndexConfig,
        opts: DurableOptions,
        injector: FaultInjector,
        hooks: &mut dyn RecoveryHooks,
    ) -> Result<Self> {
        let (l0_budget, fanout) = engine_params(&config)?;
        let file = ManifestFile::in_dir(dir);
        let disk_manifest = file.load()?;
        let mut seg_hooks = SegmentHooks { user: hooks, ckpt_manifest: None, user_meta: Vec::new() };
        let mut l0 = DurableIndex::open_with(dir, config, opts, injector, &mut seg_hooks)?;
        let ckpt_manifest = seg_hooks.ckpt_manifest.take().unwrap_or_default();
        let user_meta = seg_hooks.user_meta;
        let disk_manifest = match disk_manifest {
            Some(m) => m,
            // The manifest file never made it to disk (crash during the
            // very first store): the checkpoint's copy is authoritative.
            None => ckpt_manifest.clone(),
        };

        let mut me = match disk_manifest.generation {
            g if g == ckpt_manifest.generation => {
                let ckpt_ids: Vec<u64> = ckpt_manifest.segments.iter().map(|s| s.id).collect();
                let disk_ids: Vec<u64> = disk_manifest.segments.iter().map(|s| s.id).collect();
                if ckpt_ids != disk_ids {
                    return Err(SegmentError::Corrupt(format!(
                        "manifest gen {g} disagrees with checkpoint on live segments \
                         ({disk_ids:?} vs {ckpt_ids:?})"
                    )));
                }
                Self {
                    l0,
                    manifest: disk_manifest,
                    file,
                    policy: CompactionPolicy::with_fanout(fanout),
                    l0_budget,
                    user_meta,
                    seals: 0,
                    merges: 0,
                    bytes_written: 0,
                    crash_site: None,
                    poisoned: false,
                }
            }
            g if g == ckpt_manifest.generation + 1 => {
                // One manifest op committed but never checkpointed: roll
                // it forward against the replayed L0.
                let added: Vec<SegmentMeta> = disk_manifest
                    .segments
                    .iter()
                    .filter(|s| ckpt_manifest.segment(s.id).is_none())
                    .cloned()
                    .collect();
                let removed: Vec<SegmentMeta> = ckpt_manifest
                    .segments
                    .iter()
                    .filter(|s| disk_manifest.segment(s.id).is_none())
                    .cloned()
                    .collect();
                let pending_seal = removed.is_empty() && added.len() == 1;
                let repaired = if pending_seal {
                    // Roll back: replay rebuilt the sealed contents in
                    // L0 (possibly on the orphaned segment's blocks), so
                    // discard the segment and commit a superseding
                    // generation. The segment id stays burned.
                    let mut m = ckpt_manifest.clone();
                    m.generation = disk_manifest.generation + 1;
                    m.next_segment_id = disk_manifest.next_segment_id;
                    file.store(&m, l0.injector())?;
                    m
                } else {
                    // Roll a merge forward: the WAL was empty when it
                    // started, so nothing competed for its blocks.
                    for s in &added {
                        for e in &s.extents {
                            l0.inner_mut().reserve_extent(e.disk, e.start, e.blocks)?;
                        }
                        format::verify(s, l0.inner().array())?;
                    }
                    for s in &removed {
                        for e in &s.extents {
                            l0.inner_mut().sidecar_array().free_on(e.disk, e.start, e.blocks)?;
                        }
                    }
                    disk_manifest
                };
                invidx_obs::counter!(invidx_obs::names::SEGMENT_ROLLFORWARDS).inc();
                let mut me = Self {
                    l0,
                    manifest: repaired,
                    file,
                    policy: CompactionPolicy::with_fanout(fanout),
                    l0_budget,
                    user_meta,
                    seals: 0,
                    merges: 0,
                    bytes_written: 0,
                    crash_site: None,
                    poisoned: false,
                };
                me.push_composite_meta();
                me.l0.checkpoint()?;
                me
            }
            g => {
                return Err(SegmentError::Corrupt(format!(
                    "manifest generation {g} vs checkpoint generation {} — more than one \
                     uncheckpointed manifest op should be impossible",
                    ckpt_manifest.generation
                )));
            }
        };
        invidx_obs::gauge!(invidx_obs::names::SEGMENT_LIVE)
            .set(me.manifest.segments.len() as i64);
        me.push_composite_meta();
        Ok(me)
    }

    // ----- meta plumbing -----

    /// Stage the caller's blob for every subsequent checkpoint. The
    /// segment layer wraps it with the manifest state transparently.
    pub fn set_checkpoint_meta(&mut self, meta: Vec<u8>) {
        self.user_meta = meta;
        self.push_composite_meta();
    }

    /// The caller blob recovered from the checkpoint (open path).
    pub fn user_meta(&self) -> &[u8] {
        &self.user_meta
    }

    fn push_composite_meta(&mut self) {
        let manifest_bytes = self.manifest.encode();
        let mut out = Vec::with_capacity(16 + manifest_bytes.len() + self.user_meta.len());
        out.extend_from_slice(META_MAGIC);
        out.extend_from_slice(&(manifest_bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&manifest_bytes);
        out.extend_from_slice(&self.user_meta);
        self.l0.set_checkpoint_meta(out);
    }

    // ----- updates -----

    /// Add a document to the current volatile batch.
    pub fn insert_document<I>(&mut self, doc: DocId, words: I) -> Result<()>
    where
        I: IntoIterator<Item = WordId>,
    {
        Ok(self.l0.insert_document(doc, words)?)
    }

    /// Bulk-add documents on `threads` threads.
    pub fn insert_documents(
        &mut self,
        docs: Vec<(DocId, Vec<WordId>)>,
        threads: usize,
    ) -> Result<()> {
        Ok(self.l0.insert_documents(docs, threads)?)
    }

    /// Logically delete a document.
    pub fn delete_document(&mut self, doc: DocId) {
        self.l0.delete_document(doc);
    }

    /// Commit the batch (WAL + apply), then run the seal policy and one
    /// compaction tick.
    pub fn flush(&mut self) -> Result<BatchReport> {
        self.flush_with_meta(Vec::new())
    }

    /// [`Self::flush`] carrying an opaque caller blob in the WAL record.
    pub fn flush_with_meta(&mut self, meta: Vec<u8>) -> Result<BatchReport> {
        self.check_poison()?;
        let report = self.l0.flush_with_meta(meta)?;
        if let Err(e) = self.maybe_seal().and_then(|_| self.tick()) {
            self.poisoned = true;
            return Err(e);
        }
        Ok(report)
    }

    /// Seal L0 into a segment if it crossed the byte budget.
    pub fn maybe_seal(&mut self) -> Result<Option<u64>> {
        if self.l0.inner().stored_bytes() < self.l0_budget {
            return Ok(None);
        }
        self.seal_now()
    }

    /// Unconditionally seal L0 (no-op when empty), committing the full
    /// durable protocol: extents → flush → manifest → reset → checkpoint.
    pub fn seal_now(&mut self) -> Result<Option<u64>> {
        self.check_poison()?;
        let Some(writer) = build_seal_writer(self.l0.inner(), self.manifest.peek_next_id())? else {
            return Ok(None);
        };
        let meta = writer.finish(self.l0.inner_mut().sidecar_array())?;
        let id = meta.id;
        self.bytes_written += meta.blocks() * self.l0.inner().array().block_size() as u64;
        self.crash_check(ProtocolSite::AfterSegmentWrite)?;
        self.l0.inner_mut().flush_devices()?;
        let batch = self.l0.batches();
        self.manifest.apply_seal(meta, batch);
        self.file.store(&self.manifest, self.l0.injector())?;
        self.crash_check(ProtocolSite::AfterManifestCommit)?;
        self.l0.inner_mut().seal_reset()?;
        self.crash_check(ProtocolSite::AfterL0Reset)?;
        self.push_composite_meta();
        self.l0.checkpoint()?;
        self.seals += 1;
        Ok(Some(id))
    }

    /// One cooperative compaction tick (same policy as the plain store),
    /// each merge committed through the durable protocol.
    pub fn tick(&mut self) -> Result<usize> {
        let mut budget = if self.policy.max_merge_blocks_per_tick == 0 {
            u64::MAX
        } else {
            self.policy.max_merge_blocks_per_tick
        };
        let mut done = 0;
        while let Some(plan) = compact::plan(&self.manifest, &self.policy, budget) {
            if done == 0 {
                // Empty the WAL before the first merge: recovery rolls
                // merges forward, which is only sound if replay cannot
                // allocate over the output segment's extents.
                self.push_composite_meta();
                self.l0.checkpoint()?;
            }
            budget = budget.saturating_sub(plan.input_blocks);
            let inputs: Vec<SegmentMeta> = plan
                .inputs
                .iter()
                .map(|id| {
                    self.manifest
                        .segment(*id)
                        .cloned()
                        .ok_or_else(|| SegmentError::Corrupt(format!("merge input {id} not live")))
                })
                .collect::<Result<_>>()?;
            let writer = merge_writer(
                &inputs,
                self.manifest.peek_next_id(),
                plan.output_level,
                self.l0.inner().array(),
                self.l0.inner().block_cache(),
            )?;
            let meta = writer.finish(self.l0.inner_mut().sidecar_array())?;
            self.bytes_written += meta.blocks() * self.l0.inner().array().block_size() as u64;
            self.crash_check(ProtocolSite::AfterSegmentWrite)?;
            self.l0.inner_mut().flush_devices()?;
            self.manifest.apply_merge(&plan.inputs, meta)?;
            self.file.store(&self.manifest, self.l0.injector())?;
            self.crash_check(ProtocolSite::AfterManifestCommit)?;
            for m in &inputs {
                for e in &m.extents {
                    self.l0.inner_mut().sidecar_array().free_on(e.disk, e.start, e.blocks)?;
                }
            }
            self.crash_check(ProtocolSite::AfterInputFree)?;
            self.push_composite_meta();
            self.l0.checkpoint()?;
            self.merges += 1;
            done += 1;
        }
        Ok(done)
    }

    /// Override the compaction rate limit (blocks per tick, 0 = no cap).
    pub fn set_merge_rate(&mut self, blocks_per_tick: u64) {
        self.policy.max_merge_blocks_per_tick = blocks_per_tick;
    }

    /// Arm a one-shot process-kill at a protocol site (recovery matrix).
    pub fn inject_protocol_crash(&mut self, site: ProtocolSite) {
        self.crash_site = Some(site);
    }

    fn crash_check(&mut self, site: ProtocolSite) -> Result<()> {
        if self.crash_site == Some(site) {
            self.crash_site = None;
            self.poisoned = true;
            return Err(SegmentError::Usage(format!(
                "injected protocol crash at {site:?}"
            )));
        }
        Ok(())
    }

    fn check_poison(&self) -> Result<()> {
        if self.poisoned {
            return Err(SegmentError::Usage(
                "segmented store poisoned by an earlier error; reopen to recover".into(),
            ));
        }
        Ok(())
    }

    // ----- reads -----

    /// The full posting list: sealed segments unioned with durable L0,
    /// deletion-filtered.
    pub fn postings(&self, word: WordId) -> Result<PostingList> {
        let mut list = self.l0.postings(word)?;
        for seg in &self.manifest.segments {
            let mut run =
                format::read_term(seg, self.l0.inner().array(), self.l0.inner().block_cache(), word)?;
            if run.is_empty() {
                continue;
            }
            run.retain(|d| !self.l0.inner().is_deleted(d));
            list = list.union(&run);
        }
        Ok(list)
    }

    /// Metadata-only document frequency (segment term indexes + L0).
    pub fn doc_frequency(&self, word: WordId) -> u64 {
        let sealed: u64 = self
            .manifest
            .segments
            .iter()
            .filter_map(|s| s.find(word))
            .map(|t| t.postings as u64)
            .sum();
        sealed + self.l0.inner().doc_frequency(word)
    }

    // ----- introspection / passthrough -----

    /// Write a checkpoint now (manifest state rides in the meta blob).
    pub fn checkpoint(&mut self) -> Result<u64> {
        self.check_poison()?;
        Ok(self.l0.checkpoint()?)
    }

    /// The durable L0 store.
    pub fn l0(&self) -> &DurableIndex {
        &self.l0
    }

    /// Mutable access to the durable L0 store.
    pub fn l0_mut(&mut self) -> &mut DurableIndex {
        &mut self.l0
    }

    /// The underlying in-place index (L0's core).
    pub fn inner(&self) -> &DualIndex {
        self.l0.inner()
    }

    /// Mutable access to L0's core (sidecar writes).
    pub fn inner_mut(&mut self) -> &mut DualIndex {
        self.l0.inner_mut()
    }

    /// The live manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The fault injector.
    pub fn injector(&self) -> &FaultInjector {
        self.l0.injector()
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> Option<&RecoveryInfo> {
        self.l0.recovery()
    }

    /// Completed batches.
    pub fn batches(&self) -> u64 {
        self.l0.batches()
    }

    /// Tier shape and lifetime write counters.
    pub fn stats(&self) -> SegmentStats {
        let mut levels: Vec<(u32, usize, u64)> = Vec::new();
        for (level, segs) in self.manifest.levels() {
            levels.push((level, segs.len(), segs.iter().map(|s| s.blocks()).sum()));
        }
        SegmentStats {
            segments: self.manifest.segments.len(),
            levels,
            segment_blocks: self.manifest.total_blocks(),
            segment_postings: self.manifest.total_postings(),
            l0_bytes: self.l0.inner().stored_bytes(),
            seals: self.seals,
            merges: self.merges,
            bytes_written: self.bytes_written,
            generation: self.manifest.generation,
        }
    }

    /// Verify every live segment against its manifest CRC.
    pub fn verify_segments(&self) -> Result<()> {
        for s in &self.manifest.segments {
            format::verify(s, self.l0.inner().array())?;
        }
        Ok(())
    }
}

fn engine_params(config: &IndexConfig) -> Result<(u64, u32)> {
    match config.engine {
        EngineKind::Segmented { l0_budget, fanout } => Ok((l0_budget, fanout)),
        EngineKind::InPlace => Err(SegmentError::Usage(
            "DurableSegmentedIndex requires EngineKind::Segmented".into(),
        )),
    }
}

/// Recovery hooks wrapper: peels the segment layer's slice off the
/// checkpoint meta, re-reserves that generation's segment extents before
/// free-space verification, and forwards the caller's slice.
struct SegmentHooks<'a> {
    user: &'a mut dyn RecoveryHooks,
    ckpt_manifest: Option<Manifest>,
    user_meta: Vec<u8>,
}

impl RecoveryHooks for SegmentHooks<'_> {
    fn on_checkpoint_meta(
        &mut self,
        meta: &[u8],
        index: &mut DualIndex,
    ) -> invidx_durable::Result<()> {
        let (manifest, user) = decode_composite(meta)?;
        for s in &manifest.segments {
            for e in &s.extents {
                index.reserve_extent(e.disk, e.start, e.blocks)?;
            }
        }
        self.ckpt_manifest = Some(manifest);
        self.user_meta = user.to_vec();
        self.user.on_checkpoint_meta(user, index)
    }

    fn before_apply(
        &mut self,
        record: &WalRecord,
        index: &mut DualIndex,
    ) -> invidx_durable::Result<()> {
        self.user.before_apply(record, index)
    }
}

/// Split a composite meta blob into (manifest, caller slice). Layout:
/// `SEGCKPT1 | manifest_len u64 | manifest | caller bytes`. A blob
/// without the segment magic (a pre-segmented store, or the implicit
/// empty meta of a fresh store) is all caller bytes with an empty
/// manifest.
fn decode_composite(meta: &[u8]) -> invidx_durable::Result<(Manifest, &[u8])> {
    if meta.len() < META_MAGIC.len() + 8 || &meta[..8] != META_MAGIC {
        return Ok((Manifest::default(), meta));
    }
    let len = u64::from_le_bytes(meta[8..16].try_into().unwrap()) as usize;
    let body = &meta[16..];
    if len > body.len() {
        return Err(DurableError::Corrupt(format!(
            "composite meta: manifest length {len} exceeds blob ({} bytes)",
            body.len()
        )));
    }
    let manifest = Manifest::decode(&body[..len])
        .map_err(|e| DurableError::Corrupt(format!("checkpoint manifest: {e}")))?;
    Ok((manifest, &body[len..]))
}
