//! Routed `STATS` must equal the sum of the shards' own scrapes — no
//! more, no less.
//!
//! The bug class this pins down: an aggregator that folds its *own*
//! admission counters into the per-shard sums double-counts every request
//! (once at the router, once at the shard that served it). The router
//! keeps its counters in a disjoint `router_*` namespace instead, so the
//! routed `STATS` payload is a pure field-by-field sum of the shards'
//! serving counters.
//!
//! The check reads each field three ways:
//!
//! 1. a direct per-shard sum *before* the routed scrape (the baseline),
//! 2. the routed `STATS` payload itself,
//! 3. a direct per-shard sum *after* it (the scrape's own fan-out bumps
//!    each shard's query counter by exactly one, and nothing else moves).
//!
//! With traffic quiesced, (2) must equal (3) exactly, and must sit
//! exactly `shards` queries above (1) — any contribution from the
//! router's own admission counter would push it higher.

use invidx_core::index::IndexConfig;
use invidx_disk::sparse_array;
use invidx_ir::SearchEngine;
use invidx_router::{LocalShard, Partitioner, ReadPolicy, ReplicaSet, Router, ShardBackend};
use invidx_serve::{Payload, QueryService, Request, ServeConfig, ServeStats};
use std::sync::Arc;

fn build_router(shards: usize) -> Router<SearchEngine> {
    let mut writers = Vec::with_capacity(shards);
    let mut readers = Vec::with_capacity(shards);
    for shard in 0..shards {
        let engine =
            SearchEngine::create(sparse_array(2, 50_000, 256), IndexConfig::small()).unwrap();
        // A small cache so hits, misses, and stale drops all show up in
        // the summed fields.
        let config = ServeConfig::builder().result_cache_capacity(8).build().unwrap();
        let service = Arc::new(QueryService::with_config(engine, config).unwrap());
        let backend: Arc<dyn ShardBackend> =
            Arc::new(LocalShard::new(Arc::clone(&service), format!("shard-{shard}")));
        writers.push(service);
        readers.push(ReplicaSet::new(vec![backend]).unwrap());
    }
    Router::new(
        writers,
        readers,
        Partitioner::Range { shards, chunk: 2 },
        ReadPolicy::default(),
    )
    .unwrap()
}

fn summed(router: &Router<SearchEngine>) -> ServeStats {
    let mut sum = ServeStats::default();
    for service in router.writers() {
        let s = service.stats();
        sum.docs += s.docs;
        sum.queries += s.queries;
        sum.cache_hits += s.cache_hits;
        sum.cache_misses += s.cache_misses;
        sum.cache_evictions += s.cache_evictions;
        sum.cache_stale_drops += s.cache_stale_drops;
        sum.shed += s.shed;
        sum.timeouts += s.timeouts;
        sum.batches += s.batches;
        sum.block_cache_hits += s.block_cache_hits;
        sum.block_cache_misses += s.block_cache_misses;
        sum.block_cache_evictions += s.block_cache_evictions;
    }
    sum
}

#[test]
fn routed_stats_equal_summed_shard_scrapes_without_double_counting() {
    let shards = 3;
    let router = build_router(shards);
    let mut admitted = 0u64;

    // Traffic that exercises every summed counter: ingest (docs,
    // batches), repeated queries (cache hits), post-ingest re-queries
    // (stale drops), a point read (touches exactly one shard).
    router.ingest(&["cat dog", "dog fox", "fox ant", "ant bee", "bee cat"]).unwrap();
    for _ in 0..3 {
        router.execute(&Request::Boolean("dog".into())).unwrap();
        admitted += 1;
    }
    router.ingest(&["cat fox", "dog bee"]).unwrap();
    router.execute(&Request::Boolean("dog".into())).unwrap();
    router.execute(&Request::Like(3, "cat dog".into())).unwrap();
    router.execute(&Request::Doc(1)).unwrap();
    admitted += 3;

    let before = summed(&router);
    let routed = match router.execute(&Request::Stats).unwrap().payload {
        Payload::Stats(s) => s,
        other => panic!("STATS answered {other:?}"),
    };
    admitted += 1;
    let after = summed(&router);

    // Quiesced: the routed scrape and the post-scrape direct reads see
    // the identical counter state, field by field.
    assert_eq!(routed, after, "routed STATS must be the exact shard sum");

    // The scrape's own fan-out is the only movement between the
    // snapshots: one query per shard, nothing folded in from the router.
    assert_eq!(
        routed.queries,
        before.queries + shards as u64,
        "only the scrape fan-out itself may separate the snapshots — \
         a larger gap means the router double-counted its own admissions"
    );
    assert_eq!(routed.docs, before.docs);
    assert_eq!(routed.batches, before.batches);
    assert_eq!(routed.cache_hits, before.cache_hits);
    assert_eq!(routed.cache_stale_drops, before.cache_stale_drops);

    // Sanity on the traffic itself: both batches flushed on every shard
    // (range chunk 2 over 7 docs touches all three), repeats hit the
    // cache, the post-ingest re-query dropped a stale entry.
    assert_eq!(routed.docs, 7);
    assert!(routed.cache_hits > 0, "repeated query must hit the result cache");
    assert!(routed.cache_stale_drops > 0, "re-query after ingest must drop a stale entry");

    // The router's own admissions live in router_* counters, sized by
    // what the client sent — not by the fan-out multiplier.
    assert_eq!(router.counters().queries(), admitted);
    assert_eq!(router.counters().ingested_docs(), 7);
    assert_eq!(router.counters().retries(), 0);

    // The metrics exposition carries the router-layer series.
    let text = router.render_metrics();
    assert!(text.contains("router_queries_total"), "missing router counter:\n{text}");
    assert!(text.contains("router_shard_epoch"), "missing epoch gauge:\n{text}");
}
