//! Kill a replica under the router and make sure nobody notices.
//!
//! The full replication topology, in miniature: two shards, each a
//! durable primary (WAL-shipping via its server's `WALTAIL` verb) plus
//! one durable read replica kept caught up by a [`ReplicaTailer`] and
//! served over TCP. The router reads through per-shard replica sets
//! `[remote replica, local primary]` under a retry+hedge policy, and a
//! volatile unsharded oracle ingests the identical documents.
//!
//! The scripted fault sequence:
//!
//! 1. steady state — replicas at epoch parity, routed answers equal the
//!    oracle's (LIKE scores bit-exact);
//! 2. **kill** shard 0's replica server — every routed query must still
//!    answer within the read deadline (failover to the primary) and stay
//!    oracle-correct, while the router's error/retry/hedge counters
//!    record the dance;
//! 3. keep ingesting through the outage — correctness must hold with the
//!    corpus moving and one replica dark;
//! 4. **restart** the replica cold: stop its tailer, close its engine,
//!    reopen the same directory (local WAL recovery), tail again — it
//!    must reach epoch parity with the primary and answer the full query
//!    set identically.

use invidx_core::index::IndexConfig;
use invidx_disk::sparse_array;
use invidx_durable::{DurableOptions, StoreGeometry};
use invidx_ir::{DurableEngine, SearchEngine};
use invidx_router::{
    LocalShard, Partitioner, ReadPolicy, RemoteShard, ReplicaSet, ReplicaTailer, Router,
    ShardBackend, TailerOptions,
};
use invidx_serve::{
    Payload, QueryService, Request, ServeConfig, ServeEngine, Server,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 2;

fn geom() -> StoreGeometry {
    StoreGeometry { disks: 2, blocks_per_disk: 20_000, block_size: 256 }
}

fn opts() -> DurableOptions {
    // Replication source contract: no checkpoints while shipping, a
    // checkpoint would reset the WAL a tailer reads from.
    DurableOptions { checkpoint_every: 0, ..Default::default() }
}

fn serve_cfg() -> ServeConfig {
    ServeConfig::builder().result_cache_capacity(0).build().unwrap()
}

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("invidx-router-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn durable_service(dir: &Path) -> Arc<QueryService<DurableEngine>> {
    let engine = DurableEngine::create(dir, IndexConfig::small(), geom(), opts()).unwrap();
    let epoch = engine.batches();
    Arc::new(QueryService::with_config_at(engine, serve_cfg(), epoch).unwrap())
}

fn wait_until(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let started = Instant::now();
    while !done() {
        assert!(started.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn query_mix() -> Vec<Request> {
    vec![
        Request::Boolean("cat".into()),
        Request::Boolean("dog and fox".into()),
        Request::Boolean("bee or ant".into()),
        Request::Phrase("cat dog".into()),
        Request::Near("fox".into(), "bee".into(), 3),
        Request::Like(4, "cat dog fox".into()),
        Request::Doc(2),
        Request::Doc(5),
    ]
}

/// Every routed answer equals the unsharded oracle's, and lands inside
/// the read deadline even mid-fault.
fn assert_oracle_correct(
    router: &Router<DurableEngine>,
    oracle: &QueryService<SearchEngine>,
    deadline: Duration,
    context: &str,
) {
    for request in query_mix() {
        let started = Instant::now();
        let routed = router.execute(&request).unwrap_or_else(|e| {
            panic!("{context}: {request:?} failed mid-fault: {e}")
        });
        let elapsed = started.elapsed();
        assert!(
            elapsed < deadline + Duration::from_millis(500),
            "{context}: {request:?} took {elapsed:?}, beyond the read deadline"
        );
        let want = oracle.execute(&request).unwrap();
        match (&routed.payload, &want.payload) {
            (Payload::Hits(got), Payload::Hits(expect)) => {
                let bits =
                    |hits: &[(u32, f64)]| -> Vec<(u32, u64)> {
                        hits.iter().map(|&(d, s)| (d, s.to_bits())).collect()
                    };
                assert_eq!(bits(got), bits(expect), "{context}: {request:?} scores diverged");
            }
            (got, expect) => {
                assert_eq!(got, expect, "{context}: {request:?} diverged from the oracle");
            }
        }
    }
}

#[test]
fn router_fails_over_on_replica_death_and_replica_catches_up_after_restart() {
    // --- topology ------------------------------------------------------
    let mut primaries: Vec<Arc<QueryService<DurableEngine>>> = Vec::new();
    let mut primary_servers = Vec::new();
    for shard in 0..SHARDS {
        let dir = tmpdir(&format!("failover-primary-{shard}"));
        let service = durable_service(&dir);
        let server =
            Server::bind("127.0.0.1:0", Arc::clone(&service), serve_cfg()).unwrap();
        primaries.push(service);
        primary_servers.push(server);
    }

    let mut replica_dirs = Vec::new();
    let mut replicas: Vec<Option<Arc<QueryService<DurableEngine>>>> = Vec::new();
    let mut tailers: Vec<Option<ReplicaTailer>> = Vec::new();
    let mut replica_servers: Vec<Option<Server<DurableEngine>>> = Vec::new();
    let tailer_opts = |shard: usize| TailerOptions {
        poll: Duration::from_millis(10),
        timeout: Duration::from_secs(1),
        shard,
    };
    for (shard, primary_server) in primary_servers.iter().enumerate() {
        let dir = tmpdir(&format!("failover-replica-{shard}"));
        let service = durable_service(&dir);
        let tailer = ReplicaTailer::start(
            Arc::clone(&service),
            primary_server.addr(),
            tailer_opts(shard),
        );
        let server =
            Server::bind("127.0.0.1:0", Arc::clone(&service), serve_cfg()).unwrap();
        replica_dirs.push(dir);
        replicas.push(Some(service));
        tailers.push(Some(tailer));
        replica_servers.push(Some(server));
    }

    let policy = ReadPolicy {
        deadline: Duration::from_secs(3),
        hedge_after: Some(Duration::from_millis(150)),
        max_attempts: 2,
    };
    let mut readers = Vec::new();
    for shard in 0..SHARDS {
        let remote: Arc<dyn ShardBackend> = Arc::new(RemoteShard::new(
            replica_servers[shard].as_ref().unwrap().addr(),
            Duration::from_millis(500),
            format!("replica-{shard}"),
        ));
        let local: Arc<dyn ShardBackend> =
            Arc::new(LocalShard::new(Arc::clone(&primaries[shard]), format!("primary-{shard}")));
        readers.push(ReplicaSet::new(vec![remote, local]).unwrap());
    }
    let router =
        Router::new(primaries.clone(), readers, Partitioner::Hash { shards: SHARDS }, policy)
            .unwrap();

    let oracle_engine =
        SearchEngine::create(sparse_array(2, 50_000, 256), IndexConfig::small()).unwrap();
    let oracle = QueryService::with_config(oracle_engine, serve_cfg()).unwrap();

    let ingest = |router: &Router<DurableEngine>, texts: &[&str]| {
        router.ingest(texts).unwrap();
        oracle.ingest_batch(texts).unwrap();
    };
    let wait_parity = |router: &Router<DurableEngine>,
                       replica: &Arc<QueryService<DurableEngine>>,
                       shard: usize| {
        let primary_epoch = router.writers()[shard].epoch();
        wait_until(&format!("shard {shard} replica parity"), Duration::from_secs(10), || {
            replica.epoch() >= primary_epoch
        });
    };

    // --- phase 1: steady state ----------------------------------------
    ingest(&router, &["cat dog ant", "dog fox", "fox bee cat", "ant bee"]);
    ingest(&router, &["cat dog", "bee fox dog", "ant cat fox"]);
    for (shard, replica) in replicas.iter().enumerate() {
        wait_parity(&router, replica.as_ref().unwrap(), shard);
    }
    assert_oracle_correct(&router, &oracle, policy.deadline, "steady state");

    // --- phase 2: kill shard 0's replica (server and tailer) -----------
    replica_servers[0].take().unwrap().shutdown();
    tailers[0].take().unwrap().stop();
    assert_oracle_correct(&router, &oracle, policy.deadline, "replica 0 dark");
    let counters = router.counters();
    assert!(
        counters.shard_errors(0) + counters.hedges() > 0,
        "the dead replica must have shown up as shard errors or hedges"
    );
    assert_eq!(counters.shard_errors(1), 0, "shard 1 never failed");

    // --- phase 3: the corpus keeps moving through the outage -----------
    ingest(&router, &["dog dog bee", "cat ant", "fox fox"]);
    wait_parity(&router, replicas[1].as_ref().unwrap(), 1);
    assert_oracle_correct(&router, &oracle, policy.deadline, "ingest during outage");

    // --- phase 4: cold restart, catch up over WALTAIL ------------------
    let service = Arc::try_unwrap(replicas[0].take().unwrap())
        .ok()
        .expect("server and tailer released their handles");
    let behind = service.epoch();
    drop(service.into_engine()); // close the store cleanly
    let engine = DurableEngine::open(&replica_dirs[0], IndexConfig::small(), opts()).unwrap();
    assert_eq!(
        engine.batches(),
        behind,
        "local recovery must restore exactly the replicated prefix"
    );
    let restarted =
        Arc::new(QueryService::with_config_at(engine, serve_cfg(), behind).unwrap());
    let primary_epoch = router.writers()[0].epoch();
    assert!(behind < primary_epoch, "the outage left replica 0 behind its primary");
    let _tailer =
        ReplicaTailer::start(Arc::clone(&restarted), primary_servers[0].addr(), tailer_opts(0));
    wait_until("restarted replica parity", Duration::from_secs(10), || {
        restarted.epoch() >= primary_epoch
    });
    assert_eq!(restarted.epoch(), router.writers()[0].epoch(), "epoch parity after catch-up");

    // The caught-up replica answers exactly like its primary.
    for request in query_mix() {
        let from_replica = restarted.execute(&request).unwrap();
        let from_primary = router.writers()[0].execute(&request).unwrap();
        assert_eq!(
            from_replica.payload, from_primary.payload,
            "{request:?} diverged between restarted replica and primary"
        );
    }
}
