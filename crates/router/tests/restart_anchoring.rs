//! Regression test for epoch anchoring across restarts: a durable engine
//! reopened and rewrapped with `QueryService::with_config_at(batches)`
//! must come back at the epoch its store committed, so the primary and
//! its replica keep speaking the same epoch language and the router's
//! replication-lag gauge (primary epoch − replica epoch) stays
//! meaningful across the restart. Rewrapping with a zero-based epoch
//! would make an up-to-date replica look infinitely ahead — and the lag
//! gauge would wrap through `u64::MAX` into garbage.

use invidx_core::index::IndexConfig;
use invidx_durable::{DurableOptions, StoreGeometry};
use invidx_ir::DurableEngine;
use invidx_obs::names;
use invidx_router::{ReplicaTailer, TailerOptions};
use invidx_serve::{Payload, QueryService, Request, ServeConfig, ServeEngine, Server};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn geom() -> StoreGeometry {
    StoreGeometry { disks: 2, blocks_per_disk: 20_000, block_size: 256 }
}

fn opts() -> DurableOptions {
    // Replication source contract: no checkpoints while shipping.
    DurableOptions { checkpoint_every: 0, ..Default::default() }
}

fn serve_cfg() -> ServeConfig {
    ServeConfig::builder().result_cache_capacity(0).build().unwrap()
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("invidx-restart-anchor-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn anchored_service(engine: DurableEngine) -> Arc<QueryService<DurableEngine>> {
    let epoch = engine.batches();
    Arc::new(QueryService::with_config_at(engine, serve_cfg(), epoch).unwrap())
}

fn create(dir: &Path) -> DurableEngine {
    DurableEngine::create(dir, IndexConfig::small(), geom(), opts()).unwrap()
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let started = Instant::now();
    while !done() {
        assert!(started.elapsed() < Duration::from_secs(10), "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn reanchored_restart_keeps_epochs_and_lag_gauge_comparable() {
    let lag = invidx_obs::registry().gauge(&names::per_shard(names::REPLICA_LAG_BATCHES, 0));
    let tailer_opts =
        || TailerOptions { poll: Duration::from_millis(10), timeout: Duration::from_secs(1), shard: 0 };

    // --- before the restart: primary at epoch 3, replica caught up -----
    let primary_dir = tmpdir("primary");
    let primary = anchored_service(create(&primary_dir));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&primary), serve_cfg()).unwrap();
    let replica = anchored_service(create(&tmpdir("replica")));
    let tailer = ReplicaTailer::start(Arc::clone(&replica), server.addr(), tailer_opts());

    primary.ingest_batch(&["cat dog", "dog fox"]).unwrap();
    primary.ingest_batch(&["bee ant cat"]).unwrap();
    primary.ingest_batch(&["fox fox dog"]).unwrap();
    assert_eq!(primary.epoch(), 3);
    wait_until("replica parity before restart", || replica.epoch() >= 3);
    wait_until("lag gauge settles at zero", || lag.get() == 0);

    // --- restart the primary -------------------------------------------
    tailer.stop();
    server.shutdown();
    let service = Arc::try_unwrap(primary).ok().expect("handles released");
    drop(service.into_engine()); // close the store cleanly
    let reopened = DurableEngine::open(&primary_dir, IndexConfig::small(), opts()).unwrap();
    assert_eq!(reopened.batches(), 3, "recovery must restore the committed batch count");
    let primary = anchored_service(reopened);

    // The anchor is the whole point: the rewrapped service resumes at the
    // committed epoch, directly comparable with the live replica's.
    assert_eq!(primary.epoch(), 3, "with_config_at must anchor at the committed count");
    assert_eq!(primary.epoch(), replica.epoch(), "primary/replica epoch parity survives");

    // The restart's initial snapshot serves the recovered corpus at once.
    let response = primary.execute(&Request::Boolean("cat".into())).unwrap();
    assert_eq!(response.epoch, 3);
    assert_eq!(response.payload, Payload::Docs(vec![1, 3]));

    // --- after the restart: replication keeps counting from 3 ----------
    let server = Server::bind("127.0.0.1:0", Arc::clone(&primary), serve_cfg()).unwrap();
    let _tailer = ReplicaTailer::start(Arc::clone(&replica), server.addr(), tailer_opts());
    primary.ingest_batch(&["ant bee"]).unwrap();
    assert_eq!(primary.epoch(), 4);
    wait_until("replica parity after restart", || replica.epoch() >= 4);
    wait_until("lag gauge returns to zero", || lag.get() == 0);
    assert_eq!(replica.epoch(), 4, "replica followed the restarted primary to epoch 4");

    // Both sides answer the post-restart corpus identically, at the same
    // epoch — the invariant every lag dashboard and failover check rests on.
    for request in [Request::Boolean("ant".into()), Request::Boolean("dog".into())] {
        let p = primary.execute(&request).unwrap();
        let r = replica.execute(&request).unwrap();
        assert_eq!(p.epoch, r.epoch, "{request:?} answered at different epochs");
        assert_eq!(p.payload, r.payload, "{request:?} diverged across the pair");
    }
}
