//! The router's correctness oracle: sharding must be invisible.
//!
//! Random interleavings of batch ingest and the full query grammar run
//! twice — once through a [`Router`] over `1..=8` shards (range and hash
//! partitionings, each shard its own engine behind a [`LocalShard`]
//! backend), once through a single **unsharded** engine fed the identical
//! documents in the identical order. Every routed answer must equal the
//! oracle's:
//!
//! * `QUERY` / `PHRASE` / `NEAR` — merged doc lists identical;
//! * `LIKE` / `RANK` — hit ids identical and scores **bit-identical**
//!   (the two-phase df/weight exchanges claim ulp-exact parity);
//! * `DOC` — stored text identical after global→local translation;
//! * `DF` — summed document frequencies identical.
//!
//! Ingest interleaves with queries, so the test also exercises the
//! epoch-vector bookkeeping while the corpus moves.

use invidx_core::index::IndexConfig;
use invidx_disk::sparse_array;
use invidx_ir::SearchEngine;
use invidx_router::{LocalShard, Partitioner, ReadPolicy, ReplicaSet, Router, ShardBackend};
use invidx_serve::{Payload, QueryService, Request, ServeConfig};
use proptest::prelude::*;
use std::sync::Arc;

const VOCAB: [&str; 10] =
    ["ant", "bee", "cat", "dog", "eel", "fox", "gnu", "hen", "ibex", "jay"];

#[derive(Debug, Clone)]
enum Op {
    /// Flush a batch of docs; each doc is a sequence of vocabulary indices.
    Ingest(Vec<Vec<usize>>),
    /// Single-word boolean query.
    Word(usize),
    /// `a and b`.
    And(usize, usize),
    /// `a or b`.
    Or(usize, usize),
    /// `a and not b`.
    Not(usize, usize),
    /// Two-word phrase.
    Phrase(usize, usize),
    /// Proximity within a window.
    Near(usize, usize, u32),
    /// Top-k ranked search seeded by a word sequence.
    Like(usize, Vec<usize>),
    /// BM25 top-k seeded by a word sequence (two-phase WRANK exchange).
    Rank(usize, Vec<usize>),
    /// Per-term document frequencies.
    Df(Vec<usize>),
    /// Point read of a global doc id (may be unallocated).
    Doc(u32),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let word = 0usize..VOCAB.len();
    let doc = prop::collection::vec(word.clone(), 1..6);
    let seed = prop::collection::vec(word.clone(), 1..6);
    let rank_seed = prop::collection::vec(word.clone(), 1..6);
    let batch = prop::collection::vec(doc, 1..5);
    let op = prop_oneof![
        batch.prop_map(Op::Ingest),
        word.clone().prop_map(Op::Word),
        (word.clone(), word.clone()).prop_map(|(a, b)| Op::And(a, b)),
        (word.clone(), word.clone()).prop_map(|(a, b)| Op::Or(a, b)),
        (word.clone(), word.clone()).prop_map(|(a, b)| Op::Not(a, b)),
        (word.clone(), word.clone()).prop_map(|(a, b)| Op::Phrase(a, b)),
        (word.clone(), word.clone(), 1u32..4).prop_map(|(a, b, w)| Op::Near(a, b, w)),
        (1usize..6, seed).prop_map(|(k, seed)| Op::Like(k, seed)),
        (1usize..6, rank_seed).prop_map(|(k, seed)| Op::Rank(k, seed)),
        prop::collection::vec(word, 1..4).prop_map(Op::Df),
        (1u32..40).prop_map(Op::Doc),
    ];
    prop::collection::vec(op, 1..30)
}

fn arb_partitioner() -> impl Strategy<Value = Partitioner> {
    prop_oneof![
        (1usize..=8, 1u64..=3)
            .prop_map(|(shards, chunk)| Partitioner::Range { shards, chunk }),
        (1usize..=8).prop_map(|shards| Partitioner::Hash { shards }),
    ]
}

fn text_of(doc: &[usize]) -> String {
    doc.iter().map(|&w| VOCAB[w]).collect::<Vec<_>>().join(" ")
}

fn to_request(op: &Op) -> Request {
    match op {
        Op::Word(w) => Request::Boolean(VOCAB[*w].into()),
        Op::And(a, b) => Request::Boolean(format!("{} and {}", VOCAB[*a], VOCAB[*b])),
        Op::Or(a, b) => Request::Boolean(format!("{} or {}", VOCAB[*a], VOCAB[*b])),
        Op::Not(a, b) => Request::Boolean(format!("{} and not {}", VOCAB[*a], VOCAB[*b])),
        Op::Phrase(a, b) => Request::Phrase(format!("{} {}", VOCAB[*a], VOCAB[*b])),
        Op::Near(a, b, w) => Request::Near(VOCAB[*a].into(), VOCAB[*b].into(), *w),
        Op::Like(k, seed) => Request::Like(*k, text_of(seed)),
        Op::Rank(k, seed) => Request::Rank(*k, text_of(seed)),
        Op::Df(terms) => Request::Df(terms.iter().map(|&t| VOCAB[t].to_string()).collect()),
        Op::Doc(id) => Request::Doc(*id),
        Op::Ingest(_) => unreachable!("ingest is not a query"),
    }
}

fn fresh_service() -> Arc<QueryService<SearchEngine>> {
    let engine = SearchEngine::create(sparse_array(2, 50_000, 256), IndexConfig::small()).unwrap();
    // Caches off: the oracle compares engines, not cache layers (the
    // cache's own invariants have their own property test in serve).
    let config = ServeConfig::builder().result_cache_capacity(0).build().unwrap();
    Arc::new(QueryService::with_config(engine, config).unwrap())
}

fn build_router(partitioner: Partitioner) -> Router<SearchEngine> {
    let shards = partitioner.shards();
    let mut writers = Vec::with_capacity(shards);
    let mut readers = Vec::with_capacity(shards);
    for shard in 0..shards {
        let service = fresh_service();
        let backend: Arc<dyn ShardBackend> =
            Arc::new(LocalShard::new(Arc::clone(&service), format!("shard-{shard}")));
        writers.push(service);
        readers.push(ReplicaSet::new(vec![backend]).unwrap());
    }
    Router::new(writers, readers, partitioner, ReadPolicy::default()).unwrap()
}

/// Hits compare by id and by *bit pattern* of the score — `==` on f64
/// would already fail on any drift, but bits make the claim exact.
fn bits(hits: &[(u32, f64)]) -> Vec<(u32, u64)> {
    hits.iter().map(|&(id, s)| (id, s.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn routed_answers_equal_an_unsharded_oracle(
        partitioner in arb_partitioner(),
        ops in arb_ops(),
    ) {
        let router = build_router(partitioner);
        let oracle = fresh_service();

        for op in &ops {
            if let Op::Ingest(batch) = op {
                let texts: Vec<String> = batch.iter().map(|d| text_of(d)).collect();
                let epochs = router.ingest(&texts).unwrap();
                oracle.ingest_batch(&texts).unwrap();
                prop_assert_eq!(epochs.len(), router.shards());
                continue;
            }
            let request = to_request(op);
            let routed = router.execute(&request).unwrap();
            let want = oracle.execute(&request).unwrap();
            prop_assert_eq!(routed.epochs.len(), router.shards());
            match (&routed.payload, &want.payload) {
                (Payload::Hits(got), Payload::Hits(expect)) => {
                    prop_assert_eq!(
                        bits(got), bits(expect),
                        "{:?} over {:?}: sharded LIKE scores must be bit-identical",
                        op, partitioner
                    );
                }
                (got, expect) => {
                    prop_assert_eq!(
                        got, expect,
                        "{:?} over {:?} diverged from the unsharded oracle",
                        op, partitioner
                    );
                }
            }
        }

        // The corpora must have ended up the same size, shard-summed.
        prop_assert_eq!(
            router.total_docs(),
            oracle.with_read(|_, e| e.total_docs())
        );
    }
}
