//! The scatter-gather core: one logical index over N shards.
//!
//! Reads fan out to every shard's [`ReplicaSet`] concurrently and the
//! per-shard answers are merged; writes route each document to its owning
//! shard through the [`PartitionMap`] and flush per shard, batch-atomically.
//! Every routed response carries an **epoch vector** — one epoch per
//! shard — in place of the single-shard epoch, and the correctness claim
//! is the single-shard one lifted pointwise: the response equals what an
//! unsharded engine would answer over exactly the documents visible at
//! those per-shard epochs.
//!
//! Two merges deserve their footnotes:
//!
//! * **Doc lists** — shards own disjoint document sets and the partition
//!   map is monotone per shard, so translated per-shard lists are sorted
//!   and disjoint; the union is a plain k-way merge, no dedup needed.
//! * **LIKE scores** — ranking needs corpus-global idf, which no single
//!   shard knows. The router runs a two-phase exchange: a `DF` fan-out
//!   sums deletion-filtered document frequencies (shards are disjoint, so
//!   the sum *is* the global df), then the router computes
//!   `w = ln(1 + N/df)` — the same expression, the same f64 operations,
//!   as the unsharded scorer — and ships the weights bit-exactly in a
//!   `WLIKE` fan-out. Each shard accumulates contributions in the same
//!   canonical sorted-term order the unsharded engine uses, so per-doc
//!   scores match to the last ulp and per-shard top-k + merge is the
//!   exact global top-k. If an ingest lands between the two phases the
//!   epoch vectors differ and the router retries the exchange, so a
//!   successful `LIKE` is always computed at one consistent vector.

use crate::backend::{ReadPolicy, ReplicaSet};
use crate::partition::{PartitionMap, Partitioner};
use invidx_obs::names;
use invidx_serve::{
    Payload, QueryService, Request, Response, ServeEngine, ServeError, ServeStats,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Attempts at the two-phase LIKE exchange before giving up; each retry
/// only fires when an ingest moved some shard between the phases.
const LIKE_PHASE_RETRIES: usize = 8;

/// A per-router counter mirrored into the global registry (same pattern
/// as the serving layer's counters: local for tests, global for scrapes).
#[derive(Debug)]
struct Mirrored {
    local: AtomicU64,
    global: Arc<invidx_obs::Counter>,
}

impl Mirrored {
    fn new(name: &str) -> Self {
        Self { local: AtomicU64::new(0), global: invidx_obs::registry().counter(name) }
    }

    fn add(&self, n: u64) {
        if n > 0 {
            self.local.fetch_add(n, Ordering::Relaxed);
            self.global.add(n);
        }
    }

    fn inc(&self) {
        self.add(1)
    }

    fn get(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }
}

/// The router's own counters — deliberately in a `router_*` namespace
/// disjoint from the per-shard `serve_*` counters, so aggregating shard
/// stats never double-counts the router's admission work.
#[derive(Debug)]
pub struct RouterCounters {
    queries: Mirrored,
    ingested_docs: Mirrored,
    retries: Mirrored,
    hedges: Mirrored,
    shard_errors: Vec<Mirrored>,
}

impl RouterCounters {
    fn new(shards: usize) -> Self {
        Self {
            queries: Mirrored::new(names::ROUTER_QUERIES),
            ingested_docs: Mirrored::new(names::ROUTER_INGESTED_DOCS),
            retries: Mirrored::new(names::ROUTER_RETRIES),
            hedges: Mirrored::new(names::ROUTER_HEDGES),
            shard_errors: (0..shards)
                .map(|i| Mirrored::new(&names::per_shard(names::ROUTER_SHARD_ERRORS, i)))
                .collect(),
        }
    }

    /// Client requests admitted by the router.
    pub fn queries(&self) -> u64 {
        self.queries.get()
    }

    /// Documents routed to shards by the writer path.
    pub fn ingested_docs(&self) -> u64 {
        self.ingested_docs.get()
    }

    /// Failover retries launched.
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Hedged duplicates launched.
    pub fn hedges(&self) -> u64 {
        self.hedges.get()
    }

    /// Per-shard request failures observed (including ones a later
    /// attempt recovered from).
    pub fn shard_errors(&self, shard: usize) -> u64 {
        self.shard_errors[shard].get()
    }
}

/// A routed answer: the payload plus the per-shard epoch vector it was
/// computed at.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedResponse {
    /// Epoch per shard, in shard order.
    pub epochs: Vec<u64>,
    /// The merged result.
    pub payload: Payload,
}

impl RoutedResponse {
    /// Render as a response line: `OK <e0,e1,...> <payload>` — the
    /// single-shard wire form with the epoch widened to a vector.
    pub fn to_wire(&self) -> String {
        let line = Response { epoch: 0, payload: self.payload.clone() }.to_wire();
        let body = line.strip_prefix("OK 0 ").expect("response rendering starts `OK 0 `");
        let epochs: Vec<String> = self.epochs.iter().map(u64::to_string).collect();
        format!("OK {} {body}", epochs.join(","))
    }
}

/// Parse a routed response line back into `Ok(RoutedResponse)` /
/// `Err(ServeError)` — the client half of the routed protocol.
pub fn parse_routed_response(
    line: &str,
) -> Result<Result<RoutedResponse, ServeError>, ServeError> {
    let bad = |m: String| ServeError::BadRequest(m);
    let line = line.trim_end();
    if line.starts_with("ERR ") {
        return Ok(Err(invidx_serve::parse_response(line)?.expect_err("ERR line parses to Err")));
    }
    let rest = line
        .strip_prefix("OK ")
        .ok_or_else(|| bad(format!("routed response {line:?} is neither OK nor ERR")))?;
    let (vector, body) =
        rest.split_once(' ').ok_or_else(|| bad("routed OK line missing payload".into()))?;
    let epochs: Vec<u64> = vector
        .split(',')
        .map(|e| e.parse().map_err(|err| bad(format!("epoch vector {vector:?}: {err}"))))
        .collect::<Result<_, _>>()?;
    let single = invidx_serve::parse_response(&format!("OK 0 {body}"))?;
    Ok(single.map(|r| RoutedResponse { epochs, payload: r.payload }))
}

/// The scatter-gather router over N shards.
///
/// Reads go to the per-shard [`ReplicaSet`]s under the configured
/// [`ReadPolicy`]; writes go to the per-shard primary services. The
/// router is the deployment's **single writer**: all ingest must funnel
/// through [`Router::ingest`], which is what keeps the partition map's
/// dense id assignment aligned with every shard engine's own dense local
/// ids.
pub struct Router<E: ServeEngine> {
    writers: Vec<Arc<QueryService<E>>>,
    readers: Vec<ReplicaSet>,
    map: Mutex<PartitionMap>,
    policy: ReadPolicy,
    /// BM25 parameters shipped (bit-exactly) with every distributed RANK.
    bm25: invidx_ir::Bm25Params,
    /// Last epoch observed per shard (from reads or writes); used for the
    /// epoch vector of answers that never touched a shard, and exported
    /// as the `router_shard_epoch` gauges.
    shard_epochs: Vec<AtomicU64>,
    counters: RouterCounters,
}

impl<E: ServeEngine> Router<E> {
    /// Assemble a router: one writer (primary service) and one replica
    /// set per shard, in shard order. The partition map is rebuilt from
    /// the primaries' document counts and cross-checked against them —
    /// a mismatch means the stores were not produced by this partitioner.
    pub fn new(
        writers: Vec<Arc<QueryService<E>>>,
        readers: Vec<ReplicaSet>,
        partitioner: Partitioner,
        policy: ReadPolicy,
    ) -> Result<Self, ServeError> {
        partitioner.validate()?;
        let shards = partitioner.shards();
        if writers.len() != shards || readers.len() != shards {
            return Err(ServeError::Config(format!(
                "partitioner wants {shards} shards, got {} writers / {} replica sets",
                writers.len(),
                readers.len()
            )));
        }
        let total: u64 = writers.iter().map(|w| w.with_read(|_, e| e.total_docs())).sum();
        let map = PartitionMap::rebuild(partitioner, total);
        for (i, w) in writers.iter().enumerate() {
            let have = w.with_read(|_, e| e.total_docs());
            if have != map.shard_docs(i) {
                return Err(ServeError::Config(format!(
                    "shard {i} holds {have} docs but the {partitioner:?} map assigns {}",
                    map.shard_docs(i)
                )));
            }
        }
        let shard_epochs = writers.iter().map(|w| AtomicU64::new(w.epoch())).collect();
        Ok(Self {
            writers,
            readers,
            map: Mutex::new(map),
            policy,
            bm25: invidx_ir::Bm25Params::default(),
            shard_epochs,
            counters: RouterCounters::new(shards),
        })
    }

    /// Override the BM25 parameters routed `RANK` requests are scored
    /// with (the default matches the engines' own
    /// [`invidx_ir::Bm25Params::default`]). Deployments must use the same
    /// values on the shards' serving configs for cache keys and oracle
    /// replays to line up.
    pub fn with_bm25(mut self, params: invidx_ir::Bm25Params) -> Self {
        self.bm25 = params;
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.readers.len()
    }

    /// The router's own counters.
    pub fn counters(&self) -> &RouterCounters {
        &self.counters
    }

    /// The per-shard primary services (the write path; replication
    /// sources).
    pub fn writers(&self) -> &[Arc<QueryService<E>>] {
        &self.writers
    }

    /// Total documents allocated across all shards.
    pub fn total_docs(&self) -> u64 {
        self.map.lock().total_docs()
    }

    /// Last observed epoch per shard.
    pub fn epochs(&self) -> Vec<u64> {
        self.shard_epochs.iter().map(|e| e.load(Ordering::Relaxed)).collect()
    }

    /// Refresh the router gauges and render the process-wide Prometheus
    /// exposition (the router server's `METRICS` verb). The exposition
    /// carries only `router_*`/`replica_*` series for the fan-out layer —
    /// per-shard serving counters live in the shards' own expositions.
    pub fn render_metrics(&self) -> String {
        for (i, e) in self.shard_epochs.iter().enumerate() {
            invidx_obs::registry()
                .gauge(&names::per_shard(names::ROUTER_SHARD_EPOCH, i))
                .set(e.load(Ordering::Relaxed) as i64);
        }
        invidx_obs::flush_events();
        invidx_obs::snapshot().to_prometheus()
    }

    /// Execute one client request: scatter, gather, merge.
    pub fn execute(&self, request: &Request) -> Result<RoutedResponse, ServeError> {
        self.counters.queries.inc();
        match request {
            Request::Boolean(_) | Request::Phrase(_) | Request::Near(_, _, _) => {
                let resps = self.fan_out(request)?;
                let payload = self.merge_docs(&resps)?;
                Ok(RoutedResponse { epochs: epochs_of(&resps), payload })
            }
            Request::Like(k, text) => self.like(*k, text),
            Request::Rank(k, text) => self.rank(*k, text),
            Request::WeightedLike(k, _) | Request::WeightedRank { k, .. } => {
                let resps = self.fan_out(request)?;
                let payload = self.merge_hits(&resps, *k)?;
                Ok(RoutedResponse { epochs: epochs_of(&resps), payload })
            }
            Request::Df(terms) => {
                let resps = self.fan_out(request)?;
                let (docs, tokens, dfs) = sum_dfs(&resps, terms.len())?;
                Ok(RoutedResponse {
                    epochs: epochs_of(&resps),
                    payload: Payload::Df { docs, tokens, dfs },
                })
            }
            Request::Doc(global) => self.doc(*global),
            Request::Stats => {
                let resps = self.fan_out(request)?;
                let payload = Payload::Stats(sum_stats(&resps)?);
                Ok(RoutedResponse { epochs: epochs_of(&resps), payload })
            }
            Request::Ping => {
                let resps = self.fan_out(request)?;
                Ok(RoutedResponse { epochs: epochs_of(&resps), payload: Payload::Pong })
            }
        }
    }

    /// Route one batch of documents: allocate global ids, deliver each
    /// document to its owning shard, flush every touched shard. Each
    /// shard's flush is batch-atomic (its readers see none or all of its
    /// slice); the batch as a whole becomes visible shard by shard, which
    /// the epoch vector makes observable rather than hiding. Returns the
    /// primaries' epoch vector after the flushes.
    ///
    /// The router is the single writer by contract; concurrent callers
    /// are serialized on the partition map, and the per-shard delivery
    /// order always matches the map's assignment order.
    pub fn ingest<S: AsRef<str>>(&self, texts: &[S]) -> Result<Vec<u64>, ServeError> {
        // Hold the map lock across assignment *and* delivery: local ids
        // are dense per shard, so a second batch must not interleave its
        // deliveries with ours.
        let mut map = self.map.lock();
        let mut per: Vec<Vec<&str>> = vec![Vec::new(); self.shards()];
        for text in texts {
            let (_global, shard, _local) = map.append();
            per[shard].push(text.as_ref());
        }
        for (shard, docs) in per.iter().enumerate() {
            if docs.is_empty() {
                continue;
            }
            let (_report, epoch) = self.writers[shard].ingest_batch(docs)?;
            self.shard_epochs[shard].store(epoch, Ordering::Relaxed);
        }
        self.counters.ingested_docs.add(texts.len() as u64);
        Ok(self.writers.iter().map(|w| w.epoch()).collect())
    }

    /// Fan one request out to every shard concurrently; fail if any shard
    /// fails after its replica set exhausted failover.
    fn fan_out(&self, request: &Request) -> Result<Vec<Response>, ServeError> {
        let results: Vec<(Result<Response, ServeError>, crate::backend::CallOutcome)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .readers
                    .iter()
                    .enumerate()
                    .map(|(shard, set)| {
                        scope.spawn(move || {
                            let started = Instant::now();
                            let out = set.call(request, &self.policy);
                            let ms = started.elapsed().as_secs_f64() * 1e3;
                            invidx_obs::registry()
                                .histogram(
                                    &names::per_shard(names::ROUTER_SHARD_LATENCY_MS, shard),
                                    invidx_obs::Buckets::time_ms(),
                                )
                                .record(ms);
                            out
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard fan-out thread")).collect()
            });
        let mut responses = Vec::with_capacity(results.len());
        let mut first_err = None;
        for (shard, (result, outcome)) in results.into_iter().enumerate() {
            self.counters.retries.add(outcome.retries);
            self.counters.hedges.add(outcome.hedges);
            self.counters.shard_errors[shard].add(outcome.errors);
            match result {
                Ok(resp) => {
                    self.shard_epochs[shard].store(resp.epoch, Ordering::Relaxed);
                    responses.push(resp);
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(responses),
        }
    }

    /// Point read: translate the global id and ask the owning shard.
    fn doc(&self, global: u32) -> Result<RoutedResponse, ServeError> {
        let located = self.map.lock().locate(global);
        let Some((shard, local)) = located else {
            // Never allocated: `None` at any epoch vector at or below the
            // primaries' current one; the cached vector qualifies.
            return Ok(RoutedResponse { epochs: self.epochs(), payload: Payload::Text(None) });
        };
        let (result, outcome) = self.readers[shard].call(&Request::Doc(local), &self.policy);
        self.counters.retries.add(outcome.retries);
        self.counters.hedges.add(outcome.hedges);
        self.counters.shard_errors[shard].add(outcome.errors);
        let resp = result?;
        self.shard_epochs[shard].store(resp.epoch, Ordering::Relaxed);
        let mut epochs = self.epochs();
        epochs[shard] = resp.epoch;
        Ok(RoutedResponse { epochs, payload: resp.payload })
    }

    /// The two-phase distributed LIKE (see the module docs for why this
    /// is bit-exact against an unsharded engine).
    fn like(&self, k: usize, text: &str) -> Result<RoutedResponse, ServeError> {
        self.two_phase(k, text, "LIKE", |k, terms, _totals| Request::WeightedLike(k, terms))
    }

    /// The two-phase distributed BM25 RANK: the same DF exchange as LIKE
    /// (idf is the identical expression), plus the summed token count —
    /// which makes the corpus-global average document length — and the
    /// router's `(k1, b)` shipped bit-exactly in the `WRANK` fan-out.
    fn rank(&self, k: usize, text: &str) -> Result<RoutedResponse, ServeError> {
        let params = self.bm25;
        self.two_phase(k, text, "RANK", move |k, terms, (total_docs, total_tokens)| {
            // The identical expression the unsharded ranker evaluates, so
            // shipped bits equal locally computed bits.
            let avgdl = invidx_ir::rank::avgdl(total_tokens, total_docs);
            Request::WeightedRank {
                k,
                k1_bits: params.k1.to_bits(),
                b_bits: params.b.to_bits(),
                avgdl_bits: avgdl.to_bits(),
                terms,
            }
        })
    }

    /// The shared two-phase scatter skeleton: sum deletion-filtered DFs
    /// across the disjoint shards, turn them into corpus-global idf bits,
    /// fan the weighted phase out, and retry the whole exchange whenever
    /// an ingest moved any shard between the phases.
    fn two_phase(
        &self,
        k: usize,
        text: &str,
        verb: &str,
        build: impl Fn(usize, Vec<(String, u64)>, (u64, u64)) -> Request,
    ) -> Result<RoutedResponse, ServeError> {
        // The canonical term order: sorted, deduplicated — identical to
        // what the unsharded engine's scorer iterates.
        let words = invidx_corpus::lexer::document_words(text);
        if words.is_empty() {
            let resps = self.fan_out(&Request::Ping)?;
            return Ok(RoutedResponse { epochs: epochs_of(&resps), payload: Payload::Hits(vec![]) });
        }
        for _ in 0..LIKE_PHASE_RETRIES {
            let df_resps = self.fan_out(&Request::Df(words.clone()))?;
            let df_epochs = epochs_of(&df_resps);
            let (total_docs, total_tokens, dfs) = sum_dfs(&df_resps, words.len())?;
            // A term contributes iff some shard holds a live posting for
            // it — exactly the unsharded condition (df summed over
            // disjoint shards is the global deletion-filtered df).
            let terms: Vec<(String, u64)> = words
                .iter()
                .zip(&dfs)
                .filter(|(_, &df)| df > 0)
                .map(|(word, &df)| {
                    // The same expression, operation for operation, as the
                    // local scorer's idf — bit-exact is the whole point.
                    let weight = (1.0 + total_docs as f64 / df as f64).ln();
                    (word.clone(), weight.to_bits())
                })
                .collect();
            if terms.is_empty() {
                return Ok(RoutedResponse { epochs: df_epochs, payload: Payload::Hits(vec![]) });
            }
            let weighted = build(k, terms, (total_docs, total_tokens));
            let wl_resps = self.fan_out(&weighted)?;
            let epochs = epochs_of(&wl_resps);
            if epochs != df_epochs {
                // An ingest landed between the phases: the weights were
                // computed against state the scores no longer reflect.
                // Retry the whole exchange at the newer state.
                continue;
            }
            let payload = self.merge_hits(&wl_resps, k)?;
            return Ok(RoutedResponse { epochs, payload });
        }
        Err(ServeError::Engine(format!(
            "{verb} epochs moved through {LIKE_PHASE_RETRIES} two-phase exchanges"
        )))
    }

    /// Merge disjoint sorted per-shard doc lists into one sorted list.
    fn merge_docs(&self, resps: &[Response]) -> Result<Payload, ServeError> {
        let map = self.map.lock();
        let mut lists: Vec<Vec<u32>> = Vec::with_capacity(resps.len());
        for (shard, resp) in resps.iter().enumerate() {
            let Payload::Docs(ids) = &resp.payload else {
                return Err(ServeError::Engine(format!(
                    "shard {shard} answered a doc query with {:?}",
                    resp.payload
                )));
            };
            lists.push(
                ids.iter()
                    .map(|&local| {
                        map.global(shard, local).ok_or_else(|| {
                            ServeError::Engine(format!(
                                "shard {shard} returned local doc {local} beyond the map"
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?,
            );
        }
        drop(map);
        Ok(Payload::Docs(kway_merge(lists)))
    }

    /// Merge per-shard top-k hit lists into the exact global top-k.
    fn merge_hits(&self, resps: &[Response], k: usize) -> Result<Payload, ServeError> {
        let map = self.map.lock();
        let mut all: Vec<(u32, f64)> = Vec::new();
        for (shard, resp) in resps.iter().enumerate() {
            let Payload::Hits(hits) = &resp.payload else {
                return Err(ServeError::Engine(format!(
                    "shard {shard} answered a ranked query with {:?}",
                    resp.payload
                )));
            };
            for &(local, score) in hits {
                let global = map.global(shard, local).ok_or_else(|| {
                    ServeError::Engine(format!(
                        "shard {shard} returned local hit {local} beyond the map"
                    ))
                })?;
                all.push((global, score));
            }
        }
        drop(map);
        // The same total order the engines rank by: score descending,
        // then smaller (global) doc id. Each shard sent its k best under
        // this order, so the union's k best are the global k best.
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        Ok(Payload::Hits(all))
    }
}

/// The epoch vector of a full fan-out, in shard order.
fn epochs_of(resps: &[Response]) -> Vec<u64> {
    resps.iter().map(|r| r.epoch).collect()
}

/// Sum per-shard `DF` answers: disjoint shards make the sums global —
/// documents, lexer tokens, and per-term frequencies alike.
fn sum_dfs(resps: &[Response], terms: usize) -> Result<(u64, u64, Vec<u64>), ServeError> {
    let mut total_docs = 0u64;
    let mut total_tokens = 0u64;
    let mut sums = vec![0u64; terms];
    for (shard, resp) in resps.iter().enumerate() {
        let Payload::Df { docs, tokens, dfs } = &resp.payload else {
            return Err(ServeError::Engine(format!(
                "shard {shard} answered DF with {:?}",
                resp.payload
            )));
        };
        if dfs.len() != terms {
            return Err(ServeError::Engine(format!(
                "shard {shard} answered {} dfs for {terms} terms",
                dfs.len()
            )));
        }
        total_docs += docs;
        total_tokens += tokens;
        for (sum, df) in sums.iter_mut().zip(dfs) {
            *sum += df;
        }
    }
    Ok((total_docs, total_tokens, sums))
}

/// Field-by-field sum of per-shard serving stats. The router's own
/// counters are *not* folded in — they live under `router_*` names.
fn sum_stats(resps: &[Response]) -> Result<ServeStats, ServeError> {
    let mut sum = ServeStats::default();
    for (shard, resp) in resps.iter().enumerate() {
        let Payload::Stats(s) = &resp.payload else {
            return Err(ServeError::Engine(format!(
                "shard {shard} answered STATS with {:?}",
                resp.payload
            )));
        };
        sum.docs += s.docs;
        sum.queries += s.queries;
        sum.cache_hits += s.cache_hits;
        sum.cache_misses += s.cache_misses;
        sum.cache_evictions += s.cache_evictions;
        sum.cache_stale_drops += s.cache_stale_drops;
        sum.shed += s.shed;
        sum.timeouts += s.timeouts;
        sum.batches += s.batches;
        sum.block_cache_hits += s.block_cache_hits;
        sum.block_cache_misses += s.block_cache_misses;
        sum.block_cache_evictions += s.block_cache_evictions;
    }
    Ok(sum)
}

/// Merge already-sorted, pairwise-disjoint ascending lists.
fn kway_merge(mut lists: Vec<Vec<u32>>) -> Vec<u32> {
    lists.retain(|l| !l.is_empty());
    let total = lists.iter().map(Vec::len).sum();
    let mut heads = vec![0usize; lists.len()];
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let (winner, _) = lists
            .iter()
            .zip(&heads)
            .enumerate()
            .filter(|(_, (list, &head))| head < list.len())
            .map(|(i, (list, &head))| (i, list[head]))
            .min_by_key(|&(_, value)| value)
            .expect("non-empty remainder");
        out.push(lists[winner][heads[winner]]);
        heads[winner] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kway_merge_interleaves_sorted_disjoint_lists() {
        assert_eq!(
            kway_merge(vec![vec![1, 4, 9], vec![2, 3], vec![], vec![5]]),
            vec![1, 2, 3, 4, 5, 9]
        );
        assert_eq!(kway_merge(vec![]), Vec::<u32>::new());
    }

    #[test]
    fn routed_response_wire_round_trips() {
        let cases = vec![
            RoutedResponse { epochs: vec![3, 0, 7], payload: Payload::Docs(vec![1, 5]) },
            RoutedResponse { epochs: vec![1], payload: Payload::Hits(vec![(4, 0.1f64 + 0.2)]) },
            RoutedResponse {
                epochs: vec![2, 2],
                payload: Payload::Df { docs: 10, tokens: 44, dfs: vec![3, 0] },
            },
            RoutedResponse { epochs: vec![0, 0], payload: Payload::Text(None) },
            RoutedResponse { epochs: vec![9, 9], payload: Payload::Pong },
        ];
        for resp in cases {
            let line = resp.to_wire();
            assert_eq!(parse_routed_response(&line).unwrap().unwrap(), resp);
        }
        let err = parse_routed_response("ERR overloaded queue full").unwrap().unwrap_err();
        assert_eq!(err.code(), "overloaded");
        assert!(parse_routed_response("OK 1,x PONG").is_err());
        assert!(parse_routed_response("NOPE").is_err());
    }
}
