//! Where a shard's reads go, and what happens when one stops answering.
//!
//! A [`ShardBackend`] is one place that can answer a serving [`Request`]:
//! the shard's own service in-process ([`LocalShard`]), an admission
//! front end with its bounded queue ([`FrontendShard`]), or a server on
//! the other end of the line protocol ([`RemoteShard`]). A [`ReplicaSet`]
//! is the router's per-shard view: the primary and its read replicas,
//! with reads spread round-robin and a [`ReadPolicy`] deciding when to
//! retry elsewhere and when to hedge.
//!
//! Failover semantics, precisely:
//!
//! * **Retry** — an attempt *failed* (transport error, shed, engine
//!   error); the next backend in rotation gets the request, while the
//!   total deadline keeps running.
//! * **Hedge** — an attempt has produced *nothing* for `hedge_after`; a
//!   duplicate is launched on the next backend and whichever answers
//!   first wins. The slow attempt is not cancelled (the line protocol has
//!   no cancel), it is simply ignored.
//! * **Deadline** — the per-shard budget for the whole dance. When it
//!   runs out with no success, the caller gets the last failure (or a
//!   timeout if nothing ever came back).

use invidx_serve::{parse_response, Frontend, QueryService, Request, Response, ServeEngine,
    ServeError};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// One place that can answer serving requests for a shard.
pub trait ShardBackend: Send + Sync {
    /// Execute one request to completion (or typed failure).
    fn execute(&self, request: &Request) -> Result<Response, ServeError>;
    /// A short name for telemetry and error messages.
    fn label(&self) -> &str;
}

/// A shard served directly by its in-process [`QueryService`] — no queue,
/// no shedding; reads go straight through the service's read lock.
pub struct LocalShard<E: ServeEngine> {
    service: Arc<QueryService<E>>,
    label: String,
}

impl<E: ServeEngine> LocalShard<E> {
    /// Wrap a service as a backend.
    pub fn new(service: Arc<QueryService<E>>, label: impl Into<String>) -> Self {
        Self { service, label: label.into() }
    }
}

impl<E: ServeEngine> ShardBackend for LocalShard<E> {
    fn execute(&self, request: &Request) -> Result<Response, ServeError> {
        self.service.execute(request)
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// A shard served through an admission [`Frontend`]: reads contend for
/// the replica's bounded reader pool and can be shed or time out — the
/// honest model of a replica with finite capacity, which is what the
/// scaling ablation measures.
pub struct FrontendShard<E: ServeEngine> {
    frontend: Arc<Frontend<E>>,
    label: String,
}

impl<E: ServeEngine> FrontendShard<E> {
    /// Wrap a front end as a backend.
    pub fn new(frontend: Arc<Frontend<E>>, label: impl Into<String>) -> Self {
        Self { frontend, label: label.into() }
    }
}

impl<E: ServeEngine> ShardBackend for FrontendShard<E> {
    fn execute(&self, request: &Request) -> Result<Response, ServeError> {
        self.frontend.call(request.clone())
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// A shard served over TCP by a [`invidx_serve::Server`]. One connection
/// per request: simple, self-healing (a dead server is a fresh
/// connection-refused, not a poisoned stream), and honest about failure
/// detection — exactly what the failover tests kill and restart.
pub struct RemoteShard {
    addr: SocketAddr,
    timeout: Duration,
    label: String,
}

impl RemoteShard {
    /// A backend speaking the line protocol to `addr`, bounding connect
    /// and read/write with `timeout`.
    pub fn new(addr: SocketAddr, timeout: Duration, label: impl Into<String>) -> Self {
        Self { addr, timeout, label: label.into() }
    }
}

impl ShardBackend for RemoteShard {
    fn execute(&self, request: &Request) -> Result<Response, ServeError> {
        let io_err = |e: std::io::Error| ServeError::Engine(format!("{}: {e}", self.label));
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        stream.set_read_timeout(Some(self.timeout)).map_err(io_err)?;
        stream.set_write_timeout(Some(self.timeout)).map_err(io_err)?;
        let mut writer = stream.try_clone().map_err(io_err)?;
        writeln!(writer, "{}", request.to_wire()).map_err(io_err)?;
        writer.flush().map_err(io_err)?;
        let mut line = String::new();
        let n = BufReader::new(stream).read_line(&mut line).map_err(io_err)?;
        if n == 0 {
            return Err(ServeError::Engine(format!("{}: connection closed", self.label)));
        }
        parse_response(&line)?
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// When to give up on a backend and try another.
#[derive(Debug, Clone, Copy)]
pub struct ReadPolicy {
    /// Total per-shard budget for one request, all attempts included.
    pub deadline: Duration,
    /// Launch a duplicate attempt after this much silence (`None`
    /// disables hedging).
    pub hedge_after: Option<Duration>,
    /// Maximum attempts launched per request (first + retries + hedges).
    pub max_attempts: usize,
}

impl Default for ReadPolicy {
    fn default() -> Self {
        Self { deadline: Duration::from_secs(2), hedge_after: None, max_attempts: 2 }
    }
}

/// What one [`ReplicaSet::call`] did beyond the answer — the router feeds
/// these into its per-shard counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CallOutcome {
    /// Attempts launched because an earlier one failed.
    pub retries: u64,
    /// Attempts launched because an earlier one was silent past the hedge
    /// threshold.
    pub hedges: u64,
    /// Failures observed across all attempts (a hedged call that
    /// ultimately succeeds can still have seen errors).
    pub errors: u64,
}

/// The read targets for one shard: backends in preference rotation.
pub struct ReplicaSet {
    backends: Vec<Arc<dyn ShardBackend>>,
    cursor: AtomicUsize,
}

impl ReplicaSet {
    /// A set over `backends`; must be non-empty.
    pub fn new(backends: Vec<Arc<dyn ShardBackend>>) -> Result<Self, ServeError> {
        if backends.is_empty() {
            return Err(ServeError::Config("replica set needs at least one backend".into()));
        }
        Ok(Self { backends, cursor: AtomicUsize::new(0) })
    }

    /// Backends in the set.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Whether the set is empty (never, by construction — for clippy).
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Execute `request` under `policy`: round-robin start, sequential
    /// failover on error, hedging on silence, all within one deadline.
    pub fn call(
        &self,
        request: &Request,
        policy: &ReadPolicy,
    ) -> (Result<Response, ServeError>, CallOutcome) {
        let started = Instant::now();
        let mut outcome = CallOutcome::default();
        let (tx, rx) = mpsc::channel::<Result<Response, ServeError>>();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        let launch = |attempt: usize| {
            let backend = Arc::clone(&self.backends[(start + attempt) % self.backends.len()]);
            let request = request.clone();
            let tx = tx.clone();
            // Detached on purpose: a hedged-out attempt finishes into a
            // channel nobody reads and the thread exits. Threads block at
            // most as long as the backend's own transport timeout.
            std::thread::spawn(move || {
                let _ = tx.send(backend.execute(&request));
            });
        };
        let max_attempts = policy.max_attempts.max(1);
        launch(0);
        let mut launched = 1usize;
        let mut outstanding = 1usize;
        let mut last_err: Option<ServeError> = None;
        while outstanding > 0 {
            let remaining = policy.deadline.saturating_sub(started.elapsed());
            if remaining.is_zero() {
                break;
            }
            // Wait only up to the hedge threshold when another attempt
            // could still be launched; otherwise ride out the deadline.
            let can_launch = launched < max_attempts;
            let wait = match policy.hedge_after {
                Some(h) if can_launch => h.min(remaining),
                _ => remaining,
            };
            match rx.recv_timeout(wait) {
                Ok(Ok(response)) => return (Ok(response), outcome),
                Ok(Err(e)) => {
                    outcome.errors += 1;
                    last_err = Some(e);
                    outstanding -= 1;
                    if can_launch {
                        outcome.retries += 1;
                        launch(launched);
                        launched += 1;
                        outstanding += 1;
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if can_launch && policy.hedge_after.is_some() {
                        outcome.hedges += 1;
                        launch(launched);
                        launched += 1;
                        outstanding += 1;
                    }
                    // Without hedging the timeout just consumed the whole
                    // remaining deadline; the loop exits above.
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        let err = last_err.unwrap_or(ServeError::Timeout {
            waited: started.elapsed(),
            deadline: policy.deadline,
        });
        if outcome.errors == 0 {
            outcome.errors = 1; // the deadline itself is the failure
        }
        (Err(err), outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invidx_serve::Payload;
    use std::sync::atomic::AtomicU64;

    /// A scriptable backend: fails the first `fail_first` calls, then
    /// answers after `delay`.
    struct Scripted {
        fail_first: u64,
        delay: Duration,
        calls: AtomicU64,
        label: String,
    }

    impl Scripted {
        fn new(fail_first: u64, delay: Duration, label: &str) -> Arc<Self> {
            Arc::new(Self {
                fail_first,
                delay,
                calls: AtomicU64::new(0),
                label: label.to_string(),
            })
        }
    }

    impl ShardBackend for Scripted {
        fn execute(&self, _request: &Request) -> Result<Response, ServeError> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst);
            if n < self.fail_first {
                return Err(ServeError::Engine(format!("{} scripted failure", self.label)));
            }
            std::thread::sleep(self.delay);
            Ok(Response { epoch: 7, payload: Payload::Pong })
        }

        fn label(&self) -> &str {
            &self.label
        }
    }

    #[test]
    fn failover_retries_on_error_within_deadline() {
        let dead = Scripted::new(u64::MAX, Duration::ZERO, "dead");
        let live = Scripted::new(0, Duration::ZERO, "live");
        let set = ReplicaSet::new(vec![dead, live]).unwrap();
        let policy = ReadPolicy {
            deadline: Duration::from_secs(2),
            hedge_after: None,
            max_attempts: 2,
        };
        // Both rotation starts must succeed: either the first attempt
        // lands on `live`, or it fails on `dead` and retries onto `live`.
        let mut retried = 0;
        for _ in 0..4 {
            let (resp, outcome) = set.call(&Request::Ping, &policy);
            assert_eq!(resp.unwrap().payload, Payload::Pong);
            retried += outcome.retries;
        }
        assert_eq!(retried, 2, "half the rotations start on the dead backend");
    }

    #[test]
    fn hedging_fires_on_silence_and_first_answer_wins() {
        let slow = Scripted::new(0, Duration::from_millis(300), "slow");
        let fast = Scripted::new(0, Duration::ZERO, "fast");
        let set = ReplicaSet::new(vec![slow, fast]).unwrap();
        let policy = ReadPolicy {
            deadline: Duration::from_secs(2),
            hedge_after: Some(Duration::from_millis(30)),
            max_attempts: 2,
        };
        // Pin the rotation so the slow backend goes first.
        set.cursor.store(0, Ordering::SeqCst);
        let started = Instant::now();
        let (resp, outcome) = set.call(&Request::Ping, &policy);
        assert_eq!(resp.unwrap().payload, Payload::Pong);
        assert_eq!(outcome.hedges, 1);
        assert!(
            started.elapsed() < Duration::from_millis(250),
            "the hedge, not the slow primary, must answer"
        );
    }

    #[test]
    fn exhausted_deadline_returns_last_failure() {
        let dead = Scripted::new(u64::MAX, Duration::ZERO, "dead");
        let set = ReplicaSet::new(vec![dead]).unwrap();
        let policy = ReadPolicy {
            deadline: Duration::from_millis(50),
            hedge_after: None,
            max_attempts: 2,
        };
        let (resp, outcome) = set.call(&Request::Ping, &policy);
        assert!(resp.is_err());
        assert!(outcome.errors >= 1);
        assert!(ReplicaSet::new(vec![]).is_err());
    }
}
