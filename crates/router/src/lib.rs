//! # invidx-router — multi-shard serving over the incremental index
//!
//! One engine behind one lock serves until a single machine's reads or
//! writes saturate. This crate is the horizontal step: partition the
//! document space into N independent shards (each a full engine with its
//! own WAL, checkpoint, and caches), front them with a scatter-gather
//! [`Router`], and scale the *read* path further with WAL-shipped read
//! replicas per shard.
//!
//! The layers:
//!
//! * [`Partitioner`] / [`PartitionMap`] — a deterministic assignment of
//!   global document ids to `(shard, local id)` pairs. Both partitioners
//!   keep the local↔global mapping **monotone per shard**, so a shard's
//!   sorted posting lists stay sorted after translation and the router can
//!   merge them exactly.
//! * [`ShardBackend`] / [`ReplicaSet`] — where a shard's reads go: an
//!   in-process service, an admission front end, or a remote server over
//!   the line protocol; a replica set spreads reads round-robin and fails
//!   over / hedges under a per-shard [`ReadPolicy`].
//! * [`Router`] — the scatter-gather core: fans `QUERY`/`PHRASE`/`NEAR`
//!   over every shard and merges disjoint doc lists; runs `LIKE` as a
//!   two-phase exchange (DF fan-out, then weight-shipped `WLIKE`) that
//!   reproduces the unsharded engine's scores **bit-exactly**; routes
//!   `DOC` point reads and all writes through the partition map. Every
//!   response carries a per-shard **epoch vector** instead of a single
//!   epoch.
//! * [`ReplicaTailer`] — the replication half: a replica polls its
//!   primary's `WALTAIL` endpoint, replays shipped records through its own
//!   update path, and reports lag as the epoch delta.
//! * [`RouterServer`] — the same line protocol one level up, with
//!   `OK <e0,e1,...> <payload>` responses.
//!
//! The correctness claim mirrors the single-shard serving layer's, lifted
//! to vectors: a routed response with epoch vector `(e_0..e_{N-1})` equals
//! the answer an **unsharded** engine would give over exactly the
//! documents visible at those per-shard epochs. The oracle property tests
//! and the `ablation_sharding` harness check it, LIKE scores included.

pub mod backend;
pub mod partition;
pub mod replica;
pub mod router;
pub mod server;

pub use backend::{
    CallOutcome, FrontendShard, LocalShard, ReadPolicy, RemoteShard, ReplicaSet, ShardBackend,
};
pub use partition::{PartitionMap, Partitioner};
pub use replica::{ReplicaTailer, TailerOptions};
pub use router::{parse_routed_response, RoutedResponse, Router, RouterCounters};
pub use server::RouterServer;
