//! The routed line protocol: the single-shard wire format, one level up.
//!
//! Same verbs as [`invidx_serve::Server`] (minus the durability plumbing
//! that belongs to each shard), same one-line-per-turn discipline — the
//! only visible difference is that `OK` replies carry a comma-joined
//! **epoch vector** instead of a single epoch:
//!
//! ```text
//! > QUERY cat and dog
//! < OK 4,3,4 DOCS 2 17
//! > ADD fresh document text
//! < OK 4,3,4 ADDED 1
//! > FLUSH
//! < OK 4,4,4 FLUSHED 1
//! ```
//!
//! `METRICS` is framed and queue-bypassing exactly like the single-shard
//! server's, and exposes the router-layer (`router_*`, `replica_*`)
//! series.

use crate::router::Router;
use invidx_serve::{error_to_wire, Request, ServeEngine, ServeError};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running routed TCP server; dropping it (or [`RouterServer::shutdown`])
/// stops the accept loop and joins every connection thread.
pub struct RouterServer<E: ServeEngine> {
    router: Arc<Router<E>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl<E: ServeEngine> RouterServer<E> {
    /// Bind `addr` (port 0 for ephemeral) and start serving `router`.
    pub fn bind(addr: &str, router: Arc<Router<E>>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("router-accept".into())
                .spawn(move || accept_loop(&listener, &router, &stop))
                .expect("spawn router accept thread")
        };
        Ok(Self { router, addr, stop, accept: Some(accept) })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router behind this server.
    pub fn router(&self) -> &Arc<Router<E>> {
        &self.router
    }

    /// Stop accepting, join all threads.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl<E: ServeEngine> Drop for RouterServer<E> {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

fn accept_loop<E: ServeEngine>(
    listener: &TcpListener,
    router: &Arc<Router<E>>,
    stop: &Arc<AtomicBool>,
) {
    let mut workers: Vec<(TcpStream, JoinHandle<()>)> = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_nodelay(true);
        let Ok(peer) = stream.try_clone() else { continue };
        let router = Arc::clone(router);
        let stop = Arc::clone(stop);
        let handle = std::thread::Builder::new()
            .name("router-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &router, &stop);
            })
            .expect("spawn router connection thread");
        workers.push((peer, handle));
    }
    for (peer, handle) in workers {
        let _ = peer.shutdown(std::net::Shutdown::Both);
        let _ = handle.join();
    }
}

fn epochs_wire(epochs: &[u64]) -> String {
    epochs.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
}

fn serve_connection<E: ServeEngine>(
    stream: TcpStream,
    router: &Router<E>,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    let mut staged: Vec<String> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if stop.load(Ordering::Acquire) {
            writeln!(writer, "{}", error_to_wire(&ServeError::Shutdown))?;
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v.to_ascii_uppercase(), r.trim()),
            None => (line.to_ascii_uppercase(), ""),
        };
        let reply = match verb.as_str() {
            "QUIT" => break,
            "ADD" => {
                if rest.is_empty() {
                    error_to_wire(&ServeError::BadRequest("ADD needs document text".into()))
                } else {
                    staged.push(rest.to_string());
                    format!("OK {} ADDED {}", epochs_wire(&router.epochs()), staged.len())
                }
            }
            "FLUSH" => match router.ingest(&staged) {
                Ok(epochs) => {
                    let n = staged.len();
                    staged.clear();
                    format!("OK {} FLUSHED {n}", epochs_wire(&epochs))
                }
                Err(e) => error_to_wire(&e),
            },
            "METRICS" => {
                let text = router.render_metrics();
                write!(
                    writer,
                    "OK {} METRICS {}\n{text}",
                    epochs_wire(&router.epochs()),
                    text.lines().count()
                )?;
                writer.flush()?;
                continue;
            }
            _ => match Request::parse(line) {
                Ok(request) => match router.execute(&request) {
                    Ok(response) => response.to_wire(),
                    Err(e) => error_to_wire(&e),
                },
                Err(e) => error_to_wire(&e),
            },
        };
        writeln!(writer, "{reply}")?;
    }
    Ok(())
}
