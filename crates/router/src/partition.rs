//! Document partitioning: who owns which document.
//!
//! A [`Partitioner`] is a pure function from global doc id to shard; the
//! [`PartitionMap`] materializes the two-way translation between global
//! ids (what clients see) and per-shard local ids (what each shard's
//! engine assigns). The map is rebuilt deterministically from nothing but
//! `(partitioner, total_docs)` — global ids are allocated densely in
//! ingest order and each shard's engine assigns local ids densely in its
//! own arrival order, so replaying `1..=total` reproduces the exact
//! assignment without persisting anything beyond the partitioner spec.
//!
//! Both partitioners make local↔global **monotone within a shard**: a
//! shard's documents, enumerated by local id, have ascending global ids.
//! That is the property the router's merge leans on — translating a
//! shard's sorted posting list to global ids keeps it sorted, so the
//! scatter-gather union of disjoint per-shard lists is an exact merge,
//! not a re-sort of unknown provenance.

use invidx_serve::ServeError;

/// The splitting constant of Fibonacci hashing (⌊2⁶⁴/φ⌋, odd): multiplies
/// sequential ids into well-spread high bits.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// A deterministic assignment of global document ids to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Contiguous ranges of `chunk` documents dealt to shards round-robin:
    /// docs 1..=chunk to shard 0, the next chunk to shard 1, and so on,
    /// wrapping. `chunk = 1` degenerates to plain round-robin; a large
    /// chunk approximates static range partitioning while still filling
    /// every shard eventually.
    Range {
        /// Number of shards.
        shards: usize,
        /// Consecutive documents per dealt range.
        chunk: u64,
    },
    /// Multiplicative hash of the global id — spreads any ingest order
    /// uniformly, at the cost of neighbouring docs landing on different
    /// shards.
    Hash {
        /// Number of shards.
        shards: usize,
    },
}

impl Partitioner {
    /// Number of shards this partitioner spreads over.
    pub fn shards(&self) -> usize {
        match *self {
            Self::Range { shards, .. } | Self::Hash { shards } => shards,
        }
    }

    /// The shard owning global document `global` (1-based, as engines
    /// assign them).
    pub fn shard_of(&self, global: u32) -> usize {
        debug_assert!(global >= 1, "doc ids are 1-based");
        match *self {
            Self::Range { shards, chunk } => {
                (((u64::from(global) - 1) / chunk) % shards as u64) as usize
            }
            Self::Hash { shards } => (u64::from(global).wrapping_mul(FIB) % shards as u64) as usize,
        }
    }

    /// Render as the one-line config form: `range <shards> <chunk>` or
    /// `hash <shards>`.
    pub fn to_wire(&self) -> String {
        match *self {
            Self::Range { shards, chunk } => format!("range {shards} {chunk}"),
            Self::Hash { shards } => format!("hash {shards}"),
        }
    }

    /// Parse the config form rendered by [`Self::to_wire`].
    pub fn parse(text: &str) -> Result<Self, ServeError> {
        let bad = |m: String| ServeError::Config(m);
        let parts: Vec<&str> = text.split_whitespace().collect();
        let parsed = match parts.as_slice() {
            ["range", shards, chunk] => Self::Range {
                shards: shards.parse().map_err(|e| bad(format!("range shards: {e}")))?,
                chunk: chunk.parse().map_err(|e| bad(format!("range chunk: {e}")))?,
            },
            ["hash", shards] => Self::Hash {
                shards: shards.parse().map_err(|e| bad(format!("hash shards: {e}")))?,
            },
            _ => return Err(bad(format!("partitioner spec {text:?}"))),
        };
        parsed.validate()?;
        Ok(parsed)
    }

    /// Shape check: at least one shard, non-zero chunk.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.shards() == 0 {
            return Err(ServeError::Config("partitioner needs at least one shard".into()));
        }
        if let Self::Range { chunk: 0, .. } = self {
            return Err(ServeError::Config("range chunk must be >= 1".into()));
        }
        Ok(())
    }
}

/// The materialized two-way id translation for one deployment.
#[derive(Debug, Clone)]
pub struct PartitionMap {
    partitioner: Partitioner,
    /// Indexed by `global - 1`: the owning shard and the local id the
    /// shard's engine assigned.
    owner: Vec<(u32, u32)>,
    /// Indexed by `[shard][local - 1]`: the global id. Ascending by
    /// construction (appends happen in global order).
    locals: Vec<Vec<u32>>,
}

impl PartitionMap {
    /// An empty map for a fresh deployment.
    pub fn new(partitioner: Partitioner) -> Self {
        Self { partitioner, owner: Vec::new(), locals: vec![Vec::new(); partitioner.shards()] }
    }

    /// Reconstruct the map for an existing deployment by replaying the
    /// dense global id sequence — the determinism that makes the map
    /// state-free on disk.
    pub fn rebuild(partitioner: Partitioner, total_docs: u64) -> Self {
        let mut map = Self::new(partitioner);
        for _ in 0..total_docs {
            map.append();
        }
        map
    }

    /// The partitioner this map materializes.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// Allocate the next global id and return `(global, shard, local)`.
    /// The caller (the router's single writer) must then actually deliver
    /// the document to that shard, in this order.
    pub fn append(&mut self) -> (u32, usize, u32) {
        let global = self.owner.len() as u32 + 1;
        let shard = self.partitioner.shard_of(global);
        self.locals[shard].push(global);
        let local = self.locals[shard].len() as u32;
        self.owner.push((shard as u32, local));
        (global, shard, local)
    }

    /// Total documents allocated.
    pub fn total_docs(&self) -> u64 {
        self.owner.len() as u64
    }

    /// Documents owned by `shard`.
    pub fn shard_docs(&self, shard: usize) -> u64 {
        self.locals[shard].len() as u64
    }

    /// `(shard, local)` for a global id, or `None` if never allocated.
    pub fn locate(&self, global: u32) -> Option<(usize, u32)> {
        let (shard, local) = *self.owner.get(global.checked_sub(1)? as usize)?;
        Some((shard as usize, local))
    }

    /// The global id of `(shard, local)`, or `None` if out of range.
    pub fn global(&self, shard: usize, local: u32) -> Option<u32> {
        self.locals.get(shard)?.get(local.checked_sub(1)? as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_deals_chunks_round_robin() {
        let p = Partitioner::Range { shards: 3, chunk: 2 };
        let shards: Vec<usize> = (1..=8).map(|g| p.shard_of(g)).collect();
        assert_eq!(shards, [0, 0, 1, 1, 2, 2, 0, 0]);
    }

    #[test]
    fn rebuild_matches_incremental_append() {
        for p in [
            Partitioner::Range { shards: 4, chunk: 3 },
            Partitioner::Hash { shards: 4 },
            Partitioner::Range { shards: 1, chunk: 1 },
        ] {
            let mut incremental = PartitionMap::new(p);
            for _ in 0..100 {
                incremental.append();
            }
            let rebuilt = PartitionMap::rebuild(p, 100);
            assert_eq!(incremental.owner, rebuilt.owner);
            assert_eq!(incremental.locals, rebuilt.locals);
        }
    }

    #[test]
    fn translation_round_trips_and_is_monotone() {
        for p in [Partitioner::Range { shards: 3, chunk: 2 }, Partitioner::Hash { shards: 3 }] {
            let map = PartitionMap::rebuild(p, 200);
            for g in 1..=200u32 {
                let (shard, local) = map.locate(g).unwrap();
                assert_eq!(map.global(shard, local), Some(g));
                assert_eq!(p.shard_of(g), shard);
            }
            // Per-shard global sequences ascend: sorted local posting
            // lists stay sorted after translation.
            for shard in 0..p.shards() {
                let globals: Vec<u32> =
                    (1..=map.shard_docs(shard) as u32).map(|l| map.global(shard, l).unwrap()).collect();
                assert!(globals.windows(2).all(|w| w[0] < w[1]));
            }
            assert_eq!(
                (0..p.shards()).map(|s| map.shard_docs(s)).sum::<u64>(),
                map.total_docs()
            );
        }
        assert_eq!(PartitionMap::new(Partitioner::Hash { shards: 2 }).locate(1), None);
        assert_eq!(PartitionMap::new(Partitioner::Hash { shards: 2 }).global(0, 1), None);
    }

    #[test]
    fn spec_round_trips_and_validates() {
        for p in [Partitioner::Range { shards: 4, chunk: 16 }, Partitioner::Hash { shards: 2 }] {
            assert_eq!(Partitioner::parse(&p.to_wire()).unwrap(), p);
        }
        for bad in ["", "range 0 4", "range 2 0", "hash 0", "hash", "modulo 3", "range 2"] {
            assert!(Partitioner::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
