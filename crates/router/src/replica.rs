//! WAL shipping, replica half: tail the primary's log, replay it locally.
//!
//! A read replica is just another engine (usually a `DurableEngine` over
//! its own directory) whose *only* writer is a [`ReplicaTailer`] thread.
//! The tailer polls the primary's `WALTAIL <from_batch>` endpoint over
//! the ordinary line protocol, decodes the shipped records, and applies
//! each through the replica's own update path
//! ([`QueryService::apply_replicated`]).
//!
//! Replaying through the update path — not copying bytes — is the same
//! argument the recovery path makes: a `Batch` record carries the
//! documents' text in its metadata, the replica re-lexes and re-interns
//! in the identical order, and therefore converges to the identical
//! index state. It also means every applied record lands in the
//! *replica's own* WAL, so a restarted replica recovers locally and
//! resumes tailing from wherever it got to — no snapshot transfer.
//!
//! Pull, not push: the replica knows what it has (its committed batch
//! count), so `from_batch` makes the poll idempotent and a torn
//! connection costs nothing but a retry. Replication **lag** is the
//! primary-epoch-minus-replica-epoch delta, published per shard as the
//! `replica_lag_batches` gauge.
//!
//! The primary must run with `checkpoint_every: 0` while serving
//! replicas — a checkpoint resets the primary's WAL, which would open a
//! gap a tailing replica can detect but not repair.

use invidx_durable::WalRecord;
use invidx_obs::names;
use invidx_serve::{from_hex, QueryService, ServeEngine};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for one tailer.
#[derive(Debug, Clone, Copy)]
pub struct TailerOptions {
    /// Sleep between polls that found nothing new (a poll that applied
    /// records re-polls immediately to drain a burst).
    pub poll: Duration,
    /// Transport timeout for connect/read/write against the primary.
    pub timeout: Duration,
    /// Shard index, for the per-shard lag gauge.
    pub shard: usize,
}

impl Default for TailerOptions {
    fn default() -> Self {
        Self { poll: Duration::from_millis(20), timeout: Duration::from_secs(2), shard: 0 }
    }
}

/// A background thread keeping one replica caught up with one primary.
pub struct ReplicaTailer {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ReplicaTailer {
    /// Start tailing `primary` into `service`. The service must be the
    /// replica's **only** writer while the tailer runs — the shipped
    /// batch sequence is dense, and an interloping local write would
    /// desynchronize it (and be caught as a gap on the next poll).
    pub fn start<E: ServeEngine>(
        service: Arc<QueryService<E>>,
        primary: SocketAddr,
        options: TailerOptions,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("replica-tailer-{}", options.shard))
            .spawn(move || tail_loop(&service, primary, options, &stop2))
            .expect("spawn replica tailer");
        Self { stop, handle: Some(handle) }
    }

    /// Stop polling and join the thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ReplicaTailer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn tail_loop<E: ServeEngine>(
    service: &QueryService<E>,
    primary: SocketAddr,
    options: TailerOptions,
    stop: &AtomicBool,
) {
    let applied = invidx_obs::registry().counter(names::REPLICA_APPLIED_RECORDS);
    let poll_errors = invidx_obs::registry().counter(names::REPLICA_POLL_ERRORS);
    let lag = invidx_obs::registry()
        .gauge(&names::per_shard(names::REPLICA_LAG_BATCHES, options.shard));
    while !stop.load(Ordering::Acquire) {
        match poll_once(service, primary, options.timeout) {
            Ok(polled) => {
                applied.add(polled.applied);
                lag.set(polled.primary_epoch.saturating_sub(service.epoch()) as i64);
                if polled.applied > 0 {
                    continue; // drain a burst without sleeping
                }
            }
            Err(_) => poll_errors.inc(),
        }
        // Sleep in slices so `stop` stays responsive.
        let mut remaining = options.poll;
        let slice = Duration::from_millis(5);
        while !remaining.is_zero() && !stop.load(Ordering::Acquire) {
            let nap = slice.min(remaining);
            std::thread::sleep(nap);
            remaining -= nap;
        }
    }
}

struct Polled {
    applied: u64,
    primary_epoch: u64,
}

/// One poll: ask for everything after our committed batch count, apply it.
fn poll_once<E: ServeEngine>(
    service: &QueryService<E>,
    primary: SocketAddr,
    timeout: Duration,
) -> Result<Polled, String> {
    let io_err = |e: std::io::Error| format!("waltail transport: {e}");
    let from = service.with_read(|_, engine| engine.batches());
    let stream = TcpStream::connect_timeout(&primary, timeout).map_err(io_err)?;
    stream.set_nodelay(true).map_err(io_err)?;
    stream.set_read_timeout(Some(timeout)).map_err(io_err)?;
    stream.set_write_timeout(Some(timeout)).map_err(io_err)?;
    let mut writer = stream.try_clone().map_err(io_err)?;
    writeln!(writer, "WALTAIL {from}").map_err(io_err)?;
    writer.flush().map_err(io_err)?;
    let mut reader = BufReader::new(stream);
    let mut header = String::new();
    reader.read_line(&mut header).map_err(io_err)?;
    let header = header.trim_end();
    // `OK <epoch> WALTAIL <n>` then n hex payload lines.
    let fields: Vec<&str> = header.split_whitespace().collect();
    let (primary_epoch, count): (u64, u64) = match fields.as_slice() {
        ["OK", epoch, "WALTAIL", n] => (
            epoch.parse().map_err(|e| format!("waltail epoch: {e}"))?,
            n.parse().map_err(|e| format!("waltail count: {e}"))?,
        ),
        _ => return Err(format!("waltail header {header:?}")),
    };
    let mut appliedcount = 0u64;
    for _ in 0..count {
        let mut line = String::new();
        if reader.read_line(&mut line).map_err(io_err)? == 0 {
            return Err("waltail body truncated".into());
        }
        let bytes = from_hex(&line).map_err(|e| e.to_string())?;
        let record = WalRecord::decode_payload(&bytes).map_err(|e| e.to_string())?;
        service.apply_replicated(&record).map_err(|e| e.to_string())?;
        appliedcount += 1;
    }
    Ok(Polled { applied: appliedcount, primary_epoch })
}
