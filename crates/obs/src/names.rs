//! The well-known metric names of the index pipeline, in one place so
//! instrumentation sites, sinks, and report consumers agree on them.
//!
//! Naming follows Prometheus conventions: `_total` for counters, a unit
//! suffix (`_ms`, `_blocks`) for histograms, labels embedded in the full
//! name (`disk_ops_total{disk="3"}`).

/// Batches flushed by `DualIndex::flush_batch`.
pub const CORE_FLUSH_BATCHES: &str = "core_flush_batches_total";
/// Posting lists fed into the in-memory index.
pub const CORE_MEM_LISTS: &str = "core_mem_lists_total";
/// Postings fed into the in-memory index.
pub const CORE_MEM_POSTINGS: &str = "core_mem_postings_total";
/// Bucket inserts that overflowed (evicted at least one list).
pub const CORE_BUCKET_OVERFLOWS: &str = "core_bucket_overflows_total";
/// Short lists migrated to long lists (eviction victims).
pub const CORE_MIGRATIONS: &str = "core_short_to_long_migrations_total";
/// Deletion sweeps performed.
pub const CORE_SWEEPS: &str = "core_sweeps_total";
/// Compaction passes performed.
pub const CORE_COMPACTIONS: &str = "core_compactions_total";
/// Bucket-space rebalances performed.
pub const CORE_REBALANCES: &str = "core_rebalances_total";
/// L0 resets performed after sealing into a segment.
pub const CORE_SEAL_RESETS: &str = "core_seal_resets_total";

/// Segments sealed from L0 contents.
pub const SEGMENT_SEALS: &str = "segment_seals_total";
/// Tiered merges performed by the compaction scheduler.
pub const SEGMENT_MERGES: &str = "segment_merges_total";
/// Device bytes written into sealed segments (seals + merges) — the
/// numerator of write amplification.
pub const SEGMENT_BYTES_WRITTEN: &str = "segment_bytes_written_total";
/// Segment chunk reads issued by the segmented read path.
pub const SEGMENT_READ_OPS: &str = "segment_read_ops_total";
/// Live segments across all levels (gauge).
pub const SEGMENT_LIVE: &str = "segment_live";
/// Manifest generations committed.
pub const SEGMENT_MANIFEST_COMMITS: &str = "segment_manifest_commits_total";
/// Merges deferred by the rate limiter (picked up on a later tick).
pub const SEGMENT_MERGE_DEFERRALS: &str = "segment_merge_deferrals_total";
/// Interrupted seals/merges rolled forward by recovery.
pub const SEGMENT_ROLLFORWARDS: &str = "segment_rollforwards_total";

/// Fresh long-list chunks allocated and written.
pub const LONG_CHUNK_ALLOCS: &str = "long_chunk_allocs_total";
/// Long lists rewritten to a new location (whole-style rewrites and
/// compaction), releasing their old chunks.
pub const LONG_CHUNK_RELOCATIONS: &str = "long_chunk_relocations_total";
/// In-place updates of a long list's last chunk.
pub const LONG_IN_PLACE_UPDATES: &str = "long_in_place_updates_total";
/// Chunk read operations issued by long-list reads.
pub const LONG_READ_OPS: &str = "long_read_ops_total";
/// Raw (uncompressed, 4 bytes/posting) size of postings written to
/// long-list storage. With [`POSTINGS_BYTES_STORED`] this exposes the
/// live compression ratio per scrape.
pub const POSTINGS_BYTES_RAW: &str = "postings_bytes_raw_total";
/// Encoded size of postings written to long-list storage (equals
/// [`POSTINGS_BYTES_RAW`] under the plain codec).
pub const POSTINGS_BYTES_STORED: &str = "postings_bytes_stored_total";

/// Batches applied through the parallel (captured per-disk) ingest path.
pub const INGEST_PARALLEL_BATCHES: &str = "ingest_parallel_batches_total";
/// Captured long-list writes executed per disk during parallel apply.
pub const INGEST_APPLY_WRITES: &str = "ingest_apply_writes_total";
/// Blocks written per disk during parallel apply.
pub const INGEST_APPLY_BLOCKS: &str = "ingest_apply_blocks_total";
/// Batches inverted by the sharded parallel inverter.
pub const INGEST_INVERT_BATCHES: &str = "ingest_invert_batches_total";
/// Postings accumulated per word shard by the parallel inverter.
pub const INGEST_SHARD_POSTINGS: &str = "ingest_shard_postings_total";
/// Documents lexed by the parallel tokenization pool.
pub const INGEST_LEXED_DOCS: &str = "ingest_lexed_docs_total";

/// Extent allocations served by a free list.
pub const FREELIST_ALLOCS: &str = "freelist_allocs_total";
/// Extents returned to a free list.
pub const FREELIST_FREES: &str = "freelist_frees_total";
/// Neighbour merges performed while freeing (0–2 per free).
pub const FREELIST_COALESCES: &str = "freelist_coalesces_total";
/// Extents examined per allocation scan (histogram).
pub const FREELIST_SCAN_LEN: &str = "freelist_scan_len";
/// Free-extent count observed at each allocation (histogram).
pub const FREELIST_FRAGMENTS: &str = "freelist_fragments";

/// Physical requests served, labelled per disk.
pub const DISK_OPS: &str = "disk_ops_total";
/// Blocks transferred, labelled per disk.
pub const DISK_BLOCKS: &str = "disk_blocks_total";
/// Seek distance in blocks per positioning request (histogram).
pub const DISK_SEEK_DISTANCE: &str = "disk_seek_distance_blocks";
/// Per-request service time in milliseconds, labelled per disk
/// (histogram).
pub const DISK_SERVICE_MS: &str = "disk_service_time_ms";
/// Per-batch queue imbalance: busiest-disk time over mean disk time
/// (histogram; 1.0 = perfectly balanced).
pub const DISK_QUEUE_IMBALANCE: &str = "disk_queue_imbalance_ratio";

/// WAL records appended (one per committed batch/sweep/compact/rebalance).
pub const WAL_APPENDS: &str = "wal_appends_total";
/// Bytes appended to the write-ahead log.
pub const WAL_BYTES: &str = "wal_bytes_total";
/// fsync calls issued on the write-ahead log.
pub const WAL_FSYNCS: &str = "wal_fsyncs_total";
/// Checkpoint snapshots committed (atomic renames).
pub const CHECKPOINT_WRITES: &str = "checkpoint_writes_total";
/// Bytes written per checkpoint snapshot.
pub const CHECKPOINT_BYTES: &str = "checkpoint_bytes_total";
/// WAL records replayed during recovery.
pub const RECOVERY_REPLAYED_RECORDS: &str = "recovery_replayed_records_total";
/// Torn/corrupt WAL tail bytes truncated during recovery.
pub const RECOVERY_TRUNCATED_BYTES: &str = "recovery_truncated_bytes_total";
/// Recovery runs that found and used a checkpoint.
pub const RECOVERY_OPENS: &str = "recovery_opens_total";

/// Block-cache lookups where every block of the chunk was resident (no
/// device read charged).
pub const CACHE_HITS: &str = "block_cache_hits_total";
/// Block-cache lookups that fell through to a full device read.
pub const CACHE_MISSES: &str = "block_cache_misses_total";
/// Frames evicted by CLOCK under budget pressure.
pub const CACHE_EVICTIONS: &str = "block_cache_evictions_total";
/// Inserts skipped because every candidate frame was pinned.
pub const CACHE_BYPASSES: &str = "block_cache_bypasses_total";
/// Resident blocks invalidated by write-through notifications.
pub const CACHE_INVALIDATIONS: &str = "block_cache_invalidations_total";
/// Bytes currently resident in the block cache (gauge).
pub const CACHE_BYTES_RESIDENT: &str = "block_cache_bytes_resident";
/// Highest simultaneous pinned-frame count observed (gauge).
pub const CACHE_PINNED_HIGH_WATER: &str = "block_cache_pinned_high_water";

/// Queries executed by the serving layer (cache hits included).
pub const SERVE_QUERIES: &str = "serve_queries_total";
/// Result-cache lookups that returned a current-epoch entry.
pub const SERVE_CACHE_HITS: &str = "serve_cache_hits_total";
/// Result-cache lookups that missed (absent entry).
pub const SERVE_CACHE_MISSES: &str = "serve_cache_misses_total";
/// Result-cache entries evicted by capacity pressure.
pub const SERVE_CACHE_EVICTIONS: &str = "serve_cache_evictions_total";
/// Result-cache entries lazily discarded because their epoch was stale.
pub const SERVE_CACHE_STALE_DROPS: &str = "serve_cache_stale_drops_total";
/// Requests rejected at admission because the queue passed its high-water
/// mark.
pub const SERVE_SHED: &str = "serve_shed_total";
/// Requests that expired in the queue past their deadline.
pub const SERVE_TIMEOUTS: &str = "serve_timeouts_total";
/// Batches ingested (added + flushed) by the serving writer.
pub const SERVE_BATCHES: &str = "serve_batches_total";
/// End-to-end request latency in milliseconds (queue wait + execution;
/// histogram).
pub const SERVE_LATENCY_MS: &str = "serve_latency_ms";
/// Requests currently admitted and waiting in the work queue (gauge;
/// incremented on admission, decremented on every exit path).
pub const SERVE_QUEUE_DEPTH: &str = "serve_queue_depth";
/// Time spent waiting in the admission queue, milliseconds (histogram).
pub const SERVE_QUEUE_WAIT_MS: &str = "serve_queue_wait_ms";
/// Requests whose end-to-end latency crossed the slow-query threshold,
/// plus every shed/timed-out request (always logged).
pub const SERVE_SLOW_QUERIES: &str = "serve_slow_queries_total";
/// Requests sampled for tracing (each produces a span tree on the event
/// stream).
pub const SERVE_TRACES: &str = "serve_traces_total";
/// Live p50 latency over the sliding window, microseconds (gauge).
pub const SERVE_P50_US: &str = "serve_latency_p50_us";
/// Live p95 latency over the sliding window, microseconds (gauge).
pub const SERVE_P95_US: &str = "serve_latency_p95_us";
/// Live p99 latency over the sliding window, microseconds (gauge).
pub const SERVE_P99_US: &str = "serve_latency_p99_us";
/// Current index epoch as seen by the serving layer (gauge).
pub const SERVE_EPOCH: &str = "serve_epoch";
/// Metric scrapes that could not refresh writer-owned gauges (the writer
/// held its lock); the last-known values were re-published instead, so
/// dashboards can tell "no WAL growth" from "scrape skipped".
pub const SERVE_GAUGE_SCRAPE_SKIPPED: &str = "serve_gauge_scrape_skipped_total";
/// Snapshot publications deferred because materialization failed after a
/// durable commit (both the incremental and the full-rebuild attempt).
/// The epoch still advances with the commit; readers keep serving the
/// previous snapshot until the next successful publication.
pub const SERVE_PUBLISH_DEFERRED: &str = "serve_publish_deferred_total";
/// Committed batches not yet visible to readers: current epoch minus the
/// published snapshot's epoch (gauge; nonzero only while a deferred
/// publication is pending).
pub const SERVE_PUBLISH_LAG: &str = "serve_publish_lag_batches";

/// Requests accounted against the SLO (served, shed, or reaped).
pub const SLO_REQUESTS: &str = "slo_requests_total";
/// Requests that violated the SLO (missed the latency target, shed, or
/// reaped).
pub const SLO_VIOLATIONS: &str = "slo_violations_total";
/// Error budget remaining, ppm of the budget (gauge; 1e6 = untouched,
/// 0 = exhausted, negative = overspent).
pub const SLO_BUDGET_REMAINING_PPM: &str = "slo_error_budget_remaining_ppm";
/// Error-budget burn rate ×1000 (gauge; 1000 = exactly sustainable).
pub const SLO_BURN_RATE_X1000: &str = "slo_burn_rate_x1000";

/// Bytes of write-ahead log not yet folded into a checkpoint (gauge);
/// the replay debt a crash would incur — "WAL lag".
pub const INDEX_WAL_BYTES: &str = "index_wal_bytes";

/// Client requests admitted by the scatter-gather router (its own
/// admission, distinct from the per-shard `serve_*` counters it fans out
/// to — keep the namespaces disjoint or aggregation double-counts).
pub const ROUTER_QUERIES: &str = "router_queries_total";
/// Documents routed to a shard by the router's single writer.
pub const ROUTER_INGESTED_DOCS: &str = "router_ingested_docs_total";
/// Per-shard request failures observed by the router (timeouts and
/// transport errors; label with [`per_shard`]).
pub const ROUTER_SHARD_ERRORS: &str = "router_shard_errors_total";
/// Failover retries: a shard read re-sent to another replica after a
/// failure or deadline miss.
pub const ROUTER_RETRIES: &str = "router_retries_total";
/// Hedged reads: duplicate shard requests launched because the first
/// exceeded the hedge threshold.
pub const ROUTER_HEDGES: &str = "router_hedges_total";
/// Per-shard fan-out latency in milliseconds (histogram; label with
/// [`per_shard`]).
pub const ROUTER_SHARD_LATENCY_MS: &str = "router_shard_latency_ms";
/// Committed epoch per shard as observed by the router (gauge; label with
/// [`per_shard`]).
pub const ROUTER_SHARD_EPOCH: &str = "router_shard_epoch";

/// WAL records applied by a tailing replica.
pub const REPLICA_APPLIED_RECORDS: &str = "replica_applied_records_total";
/// Replication lag in batches: primary epoch minus replica epoch (gauge;
/// label with [`per_shard`]).
pub const REPLICA_LAG_BATCHES: &str = "replica_lag_batches";
/// Tail polls that failed (connection refused, torn reply); the tailer
/// backs off and retries.
pub const REPLICA_POLL_ERRORS: &str = "replica_poll_errors_total";

/// Attach a `disk` label to a base metric name.
pub fn per_disk(base: &str, disk: u16) -> String {
    format!("{base}{{disk=\"{disk}\"}}")
}

/// Attach a `shard` label to a base metric name.
pub fn per_shard(base: &str, shard: usize) -> String {
    format!("{base}{{shard=\"{shard}\"}}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn per_disk_labels() {
        assert_eq!(super::per_disk(super::DISK_OPS, 3), "disk_ops_total{disk=\"3\"}");
    }

    #[test]
    fn per_shard_labels() {
        assert_eq!(
            super::per_shard(super::INGEST_SHARD_POSTINGS, 2),
            "ingest_shard_postings_total{shard=\"2\"}"
        );
    }
}
