//! NDJSON event stream and timestamped progress logging.
//!
//! An event is one JSON object per line:
//! `{"ts_ms":1723049212345,"elapsed_ms":12.5,"kind":"batch_done","batch":3}`
//! where `ts_ms` is wall-clock Unix time and `elapsed_ms` counts from
//! sink installation. With no sink installed, [`events_enabled`] is a
//! single relaxed atomic load and [`crate::event!`] does no work at all.

use crate::render::escape_json;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// A field value in a structured event.
#[derive(Debug, Clone)]
pub enum Field {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

macro_rules! field_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Field {
            fn from(v: $t) -> Self { Field::U64(v as u64) }
        }
    )*};
}
field_from_uint!(u8, u16, u32, u64, usize);

macro_rules! field_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Field {
            fn from(v: $t) -> Self { Field::I64(v as i64) }
        }
    )*};
}
field_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Field {
    fn from(v: f64) -> Self {
        Field::F64(v)
    }
}

impl From<f32> for Field {
    fn from(v: f32) -> Self {
        Field::F64(v as f64)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Self {
        Field::Str(v)
    }
}

impl From<bool> for Field {
    fn from(v: bool) -> Self {
        Field::Bool(v)
    }
}

impl Field {
    fn render(&self) -> String {
        match self {
            Field::U64(v) => v.to_string(),
            Field::I64(v) => v.to_string(),
            Field::F64(v) if v.is_finite() => format!("{v}"),
            Field::F64(v) => format!("\"{v}\""),
            Field::Str(s) => format!("\"{}\"", escape_json(s)),
            Field::Bool(b) => b.to_string(),
        }
    }
}

enum SinkWriter {
    File(BufWriter<File>),
    Memory(Vec<u8>),
}

struct Sink {
    writer: SinkWriter,
    epoch: Instant,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static Mutex<Option<Sink>> {
    static SINK: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Whether an event sink is installed. Cheap enough for hot paths.
#[inline]
pub fn events_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install an NDJSON event sink writing to `path` (truncates). Replaces
/// any previous sink.
pub fn init_event_sink(path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let file = File::create(path)?;
    *sink_slot().lock().unwrap() =
        Some(Sink { writer: SinkWriter::File(BufWriter::new(file)), epoch: Instant::now() });
    ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Install an in-memory event sink (for tests).
pub fn init_memory_event_sink() {
    *sink_slot().lock().unwrap() =
        Some(Sink { writer: SinkWriter::Memory(Vec::new()), epoch: Instant::now() });
    ENABLED.store(true, Ordering::Relaxed);
}

/// Uninstall the sink and return captured bytes if it was in-memory.
pub fn take_memory_events() -> Option<String> {
    ENABLED.store(false, Ordering::Relaxed);
    let sink = sink_slot().lock().unwrap().take()?;
    match sink.writer {
        SinkWriter::Memory(buf) => Some(String::from_utf8_lossy(&buf).into_owned()),
        SinkWriter::File(mut w) => {
            let _ = w.flush();
            None
        }
    }
}

/// Flush buffered events to disk (file sinks).
pub fn flush_events() {
    if let Some(sink) = sink_slot().lock().unwrap().as_mut() {
        if let SinkWriter::File(w) = &mut sink.writer {
            let _ = w.flush();
        }
    }
}

fn unix_ms() -> u128 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis()).unwrap_or(0)
}

/// Write one event line. Prefer the [`crate::event!`] macro, which skips
/// field construction when no sink is listening.
pub fn emit_event(kind: &str, fields: &[(&str, Field)]) {
    if !events_enabled() {
        return;
    }
    let mut guard = sink_slot().lock().unwrap();
    let Some(sink) = guard.as_mut() else { return };
    let elapsed_ms = sink.epoch.elapsed().as_secs_f64() * 1e3;
    let mut line = format!(
        "{{\"ts_ms\":{},\"elapsed_ms\":{:.3},\"kind\":\"{}\"",
        unix_ms(),
        elapsed_ms,
        escape_json(kind)
    );
    for (key, value) in fields {
        line.push_str(&format!(",\"{}\":{}", escape_json(key), value.render()));
    }
    line.push_str("}\n");
    let result = match &mut sink.writer {
        SinkWriter::File(w) => w.write_all(line.as_bytes()),
        SinkWriter::Memory(buf) => {
            buf.extend_from_slice(line.as_bytes());
            Ok(())
        }
    };
    if result.is_err() {
        // A dead sink (disk full, closed fd) must not take the pipeline
        // down; disable quietly.
        ENABLED.store(false, Ordering::Relaxed);
    }
}

/// Timestamped progress line on stderr, mirrored to the event stream.
/// This replaces ad-hoc `eprintln!` progress reporting: consistent
/// format for humans, machine-parseable copy for tools.
pub fn log_progress(target: &str, message: &str) {
    eprintln!("[{:>10.3}s {target}] {message}", process_elapsed().as_secs_f64());
    if events_enabled() {
        emit_event(
            "log",
            &[("target", Field::from(target)), ("message", Field::from(message))],
        );
    }
}

fn process_elapsed() -> std::time::Duration {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    // The sink is process-global; serialize tests that own it.
    static SINK_TEST_LOCK: TestMutex<()> = TestMutex::new(());

    #[test]
    fn disabled_sink_is_a_noop() {
        let _guard = SINK_TEST_LOCK.lock().unwrap();
        let _ = take_memory_events();
        assert!(!events_enabled());
        emit_event("ignored", &[("x", Field::from(1u64))]);
        crate::event!("also_ignored", { "x": 2u64 });
        assert!(take_memory_events().is_none());
    }

    #[test]
    fn memory_sink_captures_ndjson() {
        let _guard = SINK_TEST_LOCK.lock().unwrap();
        init_memory_event_sink();
        crate::event!("batch_done", {
            "batch": 3u64,
            "ms": 1.5,
            "policy": "fill/never/const",
            "ok": true,
            "delta": -2i64,
        });
        emit_event("plain", &[]);
        let text = take_memory_events().expect("memory sink");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"batch_done\""));
        assert!(lines[0].contains("\"batch\":3"));
        assert!(lines[0].contains("\"ms\":1.5"));
        assert!(lines[0].contains("\"policy\":\"fill/never/const\""));
        assert!(lines[0].contains("\"ok\":true"));
        assert!(lines[0].contains("\"delta\":-2"));
        assert!(lines[0].starts_with("{\"ts_ms\":"));
        assert!(lines[0].ends_with('}'));
        assert!(lines[1].contains("\"kind\":\"plain\""));
    }

    #[test]
    fn file_sink_writes_lines() {
        let _guard = SINK_TEST_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("invidx-obs-test");
        let path = dir.join("events.ndjson");
        init_event_sink(&path).unwrap();
        crate::event!("hello", { "n": 1u64 });
        flush_events();
        let _ = take_memory_events(); // closes/flushes the file sink
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"kind\":\"hello\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn field_rendering() {
        assert_eq!(Field::from(3u32).render(), "3");
        assert_eq!(Field::from(-3i32).render(), "-3");
        assert_eq!(Field::from(1.25f64).render(), "1.25");
        assert_eq!(Field::from("a\"b").render(), "\"a\\\"b\"");
        assert_eq!(Field::from(true).render(), "true");
    }
}
