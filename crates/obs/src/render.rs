//! Snapshot rendering: hand-rolled JSON and Prometheus text exposition.

/// One histogram's state inside a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Full metric name (may embed labels: `x_ms{disk="0"}`).
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// `(upper_bound, count)` per bucket, non-cumulative; the last bound
    /// is `+Inf`.
    pub buckets: Vec<(f64, u64)>,
}

/// Point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)`, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Escape a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_infinite() {
        // JSON has no Infinity; histograms use a string marker.
        "\"+Inf\"".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Split `name{label="x"}` into `(base, Some(label_body))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

impl Snapshot {
    /// Render the whole snapshot as one pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {v}", escape_json(name)));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {v}", escape_json(name)));
        }
        out.push_str(if self.gauges.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                escape_json(&h.name),
                h.count,
                json_f64(h.sum)
            ));
            for (j, (le, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{{\"le\": {}, \"count\": {n}}}", json_f64(*le)));
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() { "}\n" } else { "\n  }\n" });
        out.push('}');
        out.push('\n');
        out
    }

    /// Render in the Prometheus text exposition format. Histogram
    /// buckets become cumulative `_bucket{le=...}` series as the format
    /// requires.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_typed = String::new();
        let mut type_line = |out: &mut String, base: &str, kind: &str| {
            if last_typed != base {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                last_typed = base.to_string();
            }
        };
        for (name, v) in &self.counters {
            let (base, _) = split_labels(name);
            type_line(&mut out, base, "counter");
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let (base, _) = split_labels(name);
            type_line(&mut out, base, "gauge");
            out.push_str(&format!("{name} {v}\n"));
        }
        for h in &self.histograms {
            let (base, labels) = split_labels(&h.name);
            type_line(&mut out, base, "histogram");
            let mut cumulative = 0u64;
            for (le, n) in &h.buckets {
                cumulative += n;
                let le_text = if le.is_infinite() { "+Inf".to_string() } else { format!("{le}") };
                match labels {
                    Some(l) => out.push_str(&format!(
                        "{base}_bucket{{{l},le=\"{le_text}\"}} {cumulative}\n"
                    )),
                    None => {
                        out.push_str(&format!("{base}_bucket{{le=\"{le_text}\"}} {cumulative}\n"))
                    }
                }
            }
            let label_suffix = labels.map(|l| format!("{{{l}}}")).unwrap_or_default();
            out.push_str(&format!("{base}_sum{label_suffix} {}\n", h.sum));
            out.push_str(&format!("{base}_count{label_suffix} {}\n", h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![
                ("flushes_total".into(), 3),
                ("ops_total{disk=\"0\"}".into(), 10),
                ("ops_total{disk=\"1\"}".into(), 20),
            ],
            gauges: vec![("fragments".into(), -2)],
            histograms: vec![HistogramSnapshot {
                name: "svc_ms{disk=\"0\"}".into(),
                count: 3,
                sum: 7.5,
                buckets: vec![(1.0, 1), (10.0, 2), (f64::INFINITY, 0)],
            }],
        }
    }

    #[test]
    fn json_is_parseable_shape() {
        let j = sample().to_json();
        assert!(j.contains("\"flushes_total\": 3"));
        assert!(j.contains("\"ops_total{disk=\\\"0\\\"}\": 10"));
        assert!(j.contains("\"fragments\": -2"));
        assert!(j.contains("\"count\": 3, \"sum\": 7.5"));
        assert!(j.contains("{\"le\": \"+Inf\", \"count\": 0}"));
        // Balanced braces (crude but effective structural check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn prometheus_exposition_format() {
        let p = sample().to_prometheus();
        assert!(p.contains("# TYPE flushes_total counter\nflushes_total 3\n"));
        // One TYPE line for both labeled series.
        assert_eq!(p.matches("# TYPE ops_total counter").count(), 1);
        assert!(p.contains("ops_total{disk=\"0\"} 10"));
        assert!(p.contains("# TYPE svc_ms histogram"));
        // Buckets are cumulative and carry merged labels.
        assert!(p.contains("svc_ms_bucket{disk=\"0\",le=\"1\"} 1"));
        assert!(p.contains("svc_ms_bucket{disk=\"0\",le=\"10\"} 3"));
        assert!(p.contains("svc_ms_bucket{disk=\"0\",le=\"+Inf\"} 3"));
        assert!(p.contains("svc_ms_sum{disk=\"0\"} 7.5"));
        assert!(p.contains("svc_ms_count{disk=\"0\"} 3"));
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
