//! Snapshot rendering: hand-rolled JSON and Prometheus text exposition.

/// One histogram's state inside a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Full metric name (may embed labels: `x_ms{disk="0"}`).
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// `(upper_bound, count)` per bucket, non-cumulative; the last bound
    /// is `+Inf`.
    pub buckets: Vec<(f64, u64)>,
}

/// Point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)`, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Escape a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_infinite() {
        // JSON has no Infinity; histograms use a string marker.
        "\"+Inf\"".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Split `name{label="x"}` into `(base, Some(label_body))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

impl Snapshot {
    /// Render the whole snapshot as one pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {v}", escape_json(name)));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {v}", escape_json(name)));
        }
        out.push_str(if self.gauges.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                escape_json(&h.name),
                h.count,
                json_f64(h.sum)
            ));
            for (j, (le, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{{\"le\": {}, \"count\": {n}}}", json_f64(*le)));
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() { "}\n" } else { "\n  }\n" });
        out.push('}');
        out.push('\n');
        out
    }

    /// Render in the Prometheus text exposition format. Histogram
    /// buckets become cumulative `_bucket{le=...}` series as the format
    /// requires.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_typed = String::new();
        let mut type_line = |out: &mut String, base: &str, kind: &str| {
            if last_typed != base {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                last_typed = base.to_string();
            }
        };
        for (name, v) in &self.counters {
            let (base, _) = split_labels(name);
            type_line(&mut out, base, "counter");
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let (base, _) = split_labels(name);
            type_line(&mut out, base, "gauge");
            out.push_str(&format!("{name} {v}\n"));
        }
        for h in &self.histograms {
            let (base, labels) = split_labels(&h.name);
            type_line(&mut out, base, "histogram");
            let mut cumulative = 0u64;
            for (le, n) in &h.buckets {
                cumulative += n;
                let le_text = if le.is_infinite() { "+Inf".to_string() } else { format!("{le}") };
                match labels {
                    Some(l) => out.push_str(&format!(
                        "{base}_bucket{{{l},le=\"{le_text}\"}} {cumulative}\n"
                    )),
                    None => {
                        out.push_str(&format!("{base}_bucket{{le=\"{le_text}\"}} {cumulative}\n"))
                    }
                }
            }
            let label_suffix = labels.map(|l| format!("{{{l}}}")).unwrap_or_default();
            out.push_str(&format!("{base}_sum{label_suffix} {}\n", h.sum));
            out.push_str(&format!("{base}_count{label_suffix} {}\n", h.count));
        }
        out
    }
}

/// Parse Prometheus text exposition back into a [`Snapshot`]. The
/// inverse of [`Snapshot::to_prometheus`] for the dialect this crate
/// emits (every series preceded by a `# TYPE` line, label values without
/// embedded commas or spaces). Validates histogram well-formedness —
/// buckets cumulative and non-decreasing, a final `+Inf` bucket agreeing
/// with `_count` — and returns a description of the first malformation
/// found.
pub fn parse_prometheus(text: &str) -> Result<Snapshot, String> {
    use std::collections::BTreeMap;

    #[derive(Default)]
    struct HistAcc {
        sum: f64,
        count: Option<u64>,
        cum: Vec<(f64, u64)>,
    }

    let mut types: BTreeMap<String, &str> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, i64> = BTreeMap::new();
    let mut hists: BTreeMap<String, HistAcc> = BTreeMap::new();

    // Base name of a histogram owning this series suffix, if any.
    let hist_base = |types: &BTreeMap<String, &str>, base: &str, suffix: &str| -> Option<String> {
        let stem = base.strip_suffix(suffix)?;
        (types.get(stem).copied() == Some("histogram")).then(|| stem.to_string())
    };

    for (lineno, line) in text.lines().enumerate() {
        let err = |msg: String| Err(format!("line {}: {msg}", lineno + 1));
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some(base), Some(kind @ ("counter" | "gauge" | "histogram"))) => {
                    types.insert(base.to_string(), match kind {
                        "counter" => "counter",
                        "gauge" => "gauge",
                        _ => "histogram",
                    });
                }
                _ => return err(format!("malformed TYPE line: {line:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            return err(format!("no value on series line: {line:?}"));
        };
        let (base, labels) = split_labels(series);
        if let Some(stem) = hist_base(&types, base, "_bucket") {
            let Some(labels) = labels else {
                return err(format!("bucket series without le label: {series:?}"));
            };
            let mut le = None;
            let mut rest: Vec<&str> = Vec::new();
            for pair in labels.split(',') {
                match pair.strip_prefix("le=\"") {
                    Some(v) => le = Some(v.trim_end_matches('"')),
                    None => rest.push(pair),
                }
            }
            let Some(le) = le else {
                return err(format!("bucket series without le label: {series:?}"));
            };
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>().map_err(|e| format!("line {}: bad le {le:?}: {e}", lineno + 1))?
            };
            let cum: u64 = value
                .parse()
                .map_err(|e| format!("line {}: bad bucket count {value:?}: {e}", lineno + 1))?;
            let key = if rest.is_empty() {
                stem
            } else {
                format!("{stem}{{{}}}", rest.join(","))
            };
            hists.entry(key).or_default().cum.push((bound, cum));
        } else if let Some(stem) = hist_base(&types, base, "_sum") {
            let key = labels.map(|l| format!("{stem}{{{l}}}")).unwrap_or(stem);
            hists.entry(key).or_default().sum = value
                .parse()
                .map_err(|e| format!("line {}: bad sum {value:?}: {e}", lineno + 1))?;
        } else if let Some(stem) = hist_base(&types, base, "_count") {
            let key = labels.map(|l| format!("{stem}{{{l}}}")).unwrap_or(stem);
            hists.entry(key).or_default().count = Some(value.parse().map_err(|e| {
                format!("line {}: bad count {value:?}: {e}", lineno + 1)
            })?);
        } else {
            match types.get(base).copied() {
                Some("counter") => {
                    let v: u64 = value.parse().map_err(|e| {
                        format!("line {}: bad counter value {value:?}: {e}", lineno + 1)
                    })?;
                    counters.insert(series.to_string(), v);
                }
                Some("gauge") => {
                    let v: i64 = value.parse().map_err(|e| {
                        format!("line {}: bad gauge value {value:?}: {e}", lineno + 1)
                    })?;
                    gauges.insert(series.to_string(), v);
                }
                Some(other) => {
                    return err(format!("series {series:?} typed {other} used as scalar"));
                }
                None => return err(format!("series {series:?} has no TYPE line")),
            }
        }
    }

    let mut snap = Snapshot {
        counters: counters.into_iter().collect(),
        gauges: gauges.into_iter().collect(),
        histograms: Vec::new(),
    };
    for (name, acc) in hists {
        if acc.cum.is_empty() {
            return Err(format!("histogram {name:?} has no buckets"));
        }
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_cum = 0u64;
        let mut buckets = Vec::with_capacity(acc.cum.len());
        for (le, cum) in &acc.cum {
            if *le <= prev_le {
                return Err(format!("histogram {name:?}: le bounds not increasing"));
            }
            if *cum < prev_cum {
                return Err(format!("histogram {name:?}: cumulative counts decrease"));
            }
            buckets.push((*le, cum - prev_cum));
            prev_le = *le;
            prev_cum = *cum;
        }
        let (last_le, _) = *acc.cum.last().unwrap();
        if !last_le.is_infinite() {
            return Err(format!("histogram {name:?}: missing +Inf bucket"));
        }
        let count = acc.count.ok_or_else(|| format!("histogram {name:?}: missing _count"))?;
        if count != prev_cum {
            return Err(format!(
                "histogram {name:?}: _count {count} != +Inf cumulative {prev_cum}"
            ));
        }
        snap.histograms.push(HistogramSnapshot { name, count, sum: acc.sum, buckets });
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![
                ("flushes_total".into(), 3),
                ("ops_total{disk=\"0\"}".into(), 10),
                ("ops_total{disk=\"1\"}".into(), 20),
            ],
            gauges: vec![("fragments".into(), -2)],
            histograms: vec![HistogramSnapshot {
                name: "svc_ms{disk=\"0\"}".into(),
                count: 3,
                sum: 7.5,
                buckets: vec![(1.0, 1), (10.0, 2), (f64::INFINITY, 0)],
            }],
        }
    }

    #[test]
    fn json_is_parseable_shape() {
        let j = sample().to_json();
        assert!(j.contains("\"flushes_total\": 3"));
        assert!(j.contains("\"ops_total{disk=\\\"0\\\"}\": 10"));
        assert!(j.contains("\"fragments\": -2"));
        assert!(j.contains("\"count\": 3, \"sum\": 7.5"));
        assert!(j.contains("{\"le\": \"+Inf\", \"count\": 0}"));
        // Balanced braces (crude but effective structural check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn prometheus_exposition_format() {
        let p = sample().to_prometheus();
        assert!(p.contains("# TYPE flushes_total counter\nflushes_total 3\n"));
        // One TYPE line for both labeled series.
        assert_eq!(p.matches("# TYPE ops_total counter").count(), 1);
        assert!(p.contains("ops_total{disk=\"0\"} 10"));
        assert!(p.contains("# TYPE svc_ms histogram"));
        // Buckets are cumulative and carry merged labels.
        assert!(p.contains("svc_ms_bucket{disk=\"0\",le=\"1\"} 1"));
        assert!(p.contains("svc_ms_bucket{disk=\"0\",le=\"10\"} 3"));
        assert!(p.contains("svc_ms_bucket{disk=\"0\",le=\"+Inf\"} 3"));
        assert!(p.contains("svc_ms_sum{disk=\"0\"} 7.5"));
        assert!(p.contains("svc_ms_count{disk=\"0\"} 3"));
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn prometheus_round_trip() {
        let snap = sample();
        let text = snap.to_prometheus();
        let parsed = parse_prometheus(&text).expect("parses");
        assert_eq!(parsed.counters, snap.counters);
        assert_eq!(parsed.gauges, snap.gauges);
        assert_eq!(parsed.histograms.len(), 1);
        let (a, b) = (&parsed.histograms[0], &snap.histograms[0]);
        assert_eq!(a.name, b.name);
        assert_eq!(a.count, b.count);
        assert!((a.sum - b.sum).abs() < 1e-9);
        assert_eq!(a.buckets.len(), b.buckets.len());
        for ((le_a, n_a), (le_b, n_b)) in a.buckets.iter().zip(&b.buckets) {
            assert_eq!(n_a, n_b);
            assert!(le_a == le_b || (le_a.is_infinite() && le_b.is_infinite()));
        }
        // Round-tripping the parsed snapshot re-renders identically.
        assert_eq!(parsed.to_prometheus(), text);
    }

    #[test]
    fn parser_rejects_malformed_histograms() {
        // Missing +Inf bucket.
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1.5\nh_count 2\n";
        assert!(parse_prometheus(text).unwrap_err().contains("+Inf"));
        // Cumulative counts that decrease.
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 0\nh_count 3\n";
        assert!(parse_prometheus(text).unwrap_err().contains("decrease"));
        // _count disagreeing with the +Inf bucket.
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 0\nh_count 4\n";
        assert!(parse_prometheus(text).unwrap_err().contains("!="));
        // Series without a TYPE line.
        assert!(parse_prometheus("mystery_total 3\n").unwrap_err().contains("no TYPE"));
    }
}
