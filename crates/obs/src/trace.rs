//! Request-scoped tracing: a per-request span tree with near-zero cost
//! when sampling is off.
//!
//! A [`TraceCtx`] is allocated per *sampled* request at the serving
//! boundary and carried with the request. While the request executes on a
//! reader thread, the context is **installed** into a thread-local slot;
//! instrumentation sites anywhere below ([`stage`], [`add_bytes`],
//! [`add_blocks`], [`add_items`]) attach spans and per-stage byte/block
//! counts to whatever context is installed — no signature threading
//! through the engine, long-list store, block cache, or disk layers.
//!
//! The cost model, in order of how often each path runs:
//!
//! * **No trace installed anywhere** (sampling off — the production
//!   default): every instrumentation site is one relaxed atomic load and
//!   a branch.
//! * **A trace installed on some other thread**: one atomic load plus a
//!   thread-local probe that finds nothing.
//! * **A trace installed on this thread**: a `Vec` push and two
//!   `Instant` reads per span.
//!
//! On [`TraceCtx::finish`] the whole tree is emitted on the NDJSON event
//! stream: one `trace` event for the request plus one `tspan` event per
//! span, linked by `trace_id` and parent indices. Span 0 is always the
//! root `request` span; its duration is the end-to-end latency measured
//! from context creation (admission) to finish.

use crate::events::{emit_event, events_enabled, Field};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// One node of a span tree.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Stage name (`"queue"`, `"cache"`, `"engine"`, `"block_cache"`,
    /// `"disk"`, ...).
    pub name: &'static str,
    /// Index of the parent span in [`TraceCtx::spans`]; `-1` for the root.
    pub parent: i64,
    /// Start offset from the trace start, microseconds.
    pub start_us: u64,
    /// Duration, microseconds (filled when the span closes).
    pub dur_us: u64,
    /// Bytes attributed to this span (e.g. device bytes read).
    pub bytes: u64,
    /// Device blocks attributed to this span.
    pub blocks: u64,
    /// Generic item count (postings, cache lookups, ...).
    pub items: u64,
}

/// A request's span tree under construction. Span 0 (`request`) is opened
/// at creation and closed by [`TraceCtx::finish`].
#[derive(Debug)]
pub struct TraceCtx {
    trace_id: u64,
    started: Instant,
    spans: Vec<SpanRecord>,
    stack: Vec<usize>,
}

/// Number of contexts currently installed across all threads. The fast
/// no-trace bail-out in [`stage`] and the count helpers is a single
/// relaxed load of this.
static INSTALLED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CURRENT: RefCell<Option<TraceCtx>> = const { RefCell::new(None) };
}

/// Process-wide trace id allocator (monotonic, good enough to correlate
/// events within one NDJSON stream).
pub fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl TraceCtx {
    /// Begin a trace; the root `request` span starts now.
    pub fn start(trace_id: u64) -> Self {
        let mut spans = Vec::with_capacity(8);
        spans.push(SpanRecord {
            name: "request",
            parent: -1,
            start_us: 0,
            dur_us: 0,
            bytes: 0,
            blocks: 0,
            items: 0,
        });
        Self { trace_id, started: Instant::now(), spans, stack: vec![0] }
    }

    /// The trace id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The spans recorded so far (span 0 is the root).
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Record an already-measured span as a child of the innermost open
    /// span — used for intervals measured outside the installed window,
    /// like queue wait (`start_us` 0 = admission).
    pub fn add_span(&mut self, name: &'static str, start_us: u64, dur_us: u64) {
        let parent = *self.stack.last().unwrap_or(&0) as i64;
        self.spans.push(SpanRecord {
            name,
            parent,
            start_us,
            dur_us,
            bytes: 0,
            blocks: 0,
            items: 0,
        });
    }

    fn open_span(&mut self, name: &'static str) {
        let parent = *self.stack.last().unwrap_or(&0) as i64;
        let start_us = self.now_us();
        self.spans.push(SpanRecord {
            name,
            parent,
            start_us,
            dur_us: 0,
            bytes: 0,
            blocks: 0,
            items: 0,
        });
        self.stack.push(self.spans.len() - 1);
    }

    fn close_span(&mut self) {
        // The root (index 0) only closes via finish().
        if self.stack.len() > 1 {
            if let Some(idx) = self.stack.pop() {
                let end = self.now_us();
                self.spans[idx].dur_us = end.saturating_sub(self.spans[idx].start_us);
            }
        }
    }

    fn innermost(&mut self) -> &mut SpanRecord {
        let idx = *self.stack.last().unwrap_or(&0);
        &mut self.spans[idx]
    }

    /// Close the root span and emit the tree on the event stream (one
    /// `trace` event plus one `tspan` per span; a no-op stream-wise when
    /// no sink is installed). Returns the end-to-end duration in µs.
    pub fn finish(mut self, label: &str, outcome: &str) -> u64 {
        let total_us = self.now_us();
        self.spans[0].dur_us = total_us;
        if events_enabled() {
            emit_event(
                "trace",
                &[
                    ("trace_id", Field::U64(self.trace_id)),
                    ("req", Field::Str(label.to_string())),
                    ("outcome", Field::Str(outcome.to_string())),
                    ("total_us", Field::U64(total_us)),
                    ("spans", Field::U64(self.spans.len() as u64)),
                ],
            );
            for (id, s) in self.spans.iter().enumerate() {
                emit_event(
                    "tspan",
                    &[
                        ("trace_id", Field::U64(self.trace_id)),
                        ("id", Field::U64(id as u64)),
                        ("parent", Field::I64(s.parent)),
                        ("name", Field::Str(s.name.to_string())),
                        ("start_us", Field::U64(s.start_us)),
                        ("dur_us", Field::U64(s.dur_us)),
                        ("bytes", Field::U64(s.bytes)),
                        ("blocks", Field::U64(s.blocks)),
                        ("items", Field::U64(s.items)),
                    ],
                );
            }
        }
        total_us
    }
}

/// Install `ctx` as this thread's current trace. Subsequent [`stage`] /
/// `add_*` calls on this thread attach to it until [`uninstall`].
pub fn install(ctx: TraceCtx) {
    CURRENT.with(|cell| {
        let prev = cell.borrow_mut().replace(ctx);
        if prev.is_none() {
            INSTALLED.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Remove and return this thread's current trace (if any).
pub fn uninstall() -> Option<TraceCtx> {
    CURRENT.with(|cell| {
        let ctx = cell.borrow_mut().take();
        if ctx.is_some() {
            INSTALLED.fetch_sub(1, Ordering::Relaxed);
        }
        ctx
    })
}

/// Whether any thread currently has a trace installed (the cheap global
/// gate instrumentation sites check first).
#[inline]
pub fn trace_active() -> bool {
    INSTALLED.load(Ordering::Relaxed) > 0
}

/// RAII guard for a stage span opened by [`stage`]. Closes the span on
/// drop; a no-op when no trace was installed at open time.
pub struct StageGuard {
    open: bool,
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if self.open {
            CURRENT.with(|cell| {
                if let Some(ctx) = cell.borrow_mut().as_mut() {
                    ctx.close_span();
                }
            });
        }
    }
}

/// Open a stage span on the current thread's trace. When no trace is
/// installed this is one relaxed atomic load.
#[inline]
pub fn stage(name: &'static str) -> StageGuard {
    if !trace_active() {
        return StageGuard { open: false };
    }
    CURRENT.with(|cell| match cell.borrow_mut().as_mut() {
        Some(ctx) => {
            ctx.open_span(name);
            StageGuard { open: true }
        }
        None => StageGuard { open: false },
    })
}

#[inline]
fn with_innermost(f: impl FnOnce(&mut SpanRecord)) {
    if !trace_active() {
        return;
    }
    CURRENT.with(|cell| {
        if let Some(ctx) = cell.borrow_mut().as_mut() {
            f(ctx.innermost());
        }
    });
}

/// Attribute `n` bytes to the innermost open span of this thread's trace.
#[inline]
pub fn add_bytes(n: u64) {
    with_innermost(|s| s.bytes += n);
}

/// Attribute `n` device blocks to the innermost open span.
#[inline]
pub fn add_blocks(n: u64) {
    with_innermost(|s| s.blocks += n);
}

/// Attribute `n` items (postings, lookups, ...) to the innermost open
/// span.
#[inline]
pub fn add_items(n: u64) {
    with_innermost(|s| s.items += n);
}

/// 1-in-N request sampler. `every == 0` never samples, `1` samples
/// everything, `N` samples every Nth arrival (deterministic round-robin,
/// so load tests get an exact sampled fraction).
#[derive(Debug)]
pub struct Sampler {
    every: u32,
    ticket: AtomicU64,
}

impl Sampler {
    /// A sampler admitting one in `every` requests.
    pub fn new(every: u32) -> Self {
        Self { every, ticket: AtomicU64::new(0) }
    }

    /// The configured rate (0 = off).
    pub fn every(&self) -> u32 {
        self.every
    }

    /// Should this arrival be sampled?
    #[inline]
    pub fn hit(&self) -> bool {
        match self.every {
            0 => false,
            1 => true,
            n => self.ticket.fetch_add(1, Ordering::Relaxed).is_multiple_of(n as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_rates() {
        assert!(!Sampler::new(0).hit());
        let all = Sampler::new(1);
        assert!(all.hit() && all.hit());
        let s = Sampler::new(4);
        let hits = (0..16).filter(|_| s.hit()).count();
        assert_eq!(hits, 4);
    }

    #[test]
    fn stage_without_install_is_noop() {
        let before = trace_active();
        {
            let _g = stage("nothing");
            add_bytes(10);
        }
        assert_eq!(trace_active(), before);
    }

    #[test]
    fn span_tree_nests_and_annotates() {
        install(TraceCtx::start(next_trace_id()));
        {
            let _outer = stage("engine");
            {
                let _inner = stage("disk");
                add_blocks(4);
                add_bytes(4096);
            }
            {
                let _inner = stage("disk");
                add_blocks(2);
            }
            add_items(7);
        }
        let mut ctx = uninstall().expect("installed");
        ctx.add_span("queue", 0, 123);
        let spans = ctx.spans();
        assert_eq!(spans[0].name, "request");
        let engine = spans.iter().position(|s| s.name == "engine").unwrap();
        assert_eq!(spans[engine].parent, 0);
        assert_eq!(spans[engine].items, 7);
        let disks: Vec<_> = spans.iter().filter(|s| s.name == "disk").collect();
        assert_eq!(disks.len(), 2);
        assert!(disks.iter().all(|s| s.parent == engine as i64));
        assert_eq!(disks[0].blocks, 4);
        assert_eq!(disks[0].bytes, 4096);
        let queue = spans.iter().find(|s| s.name == "queue").unwrap();
        assert_eq!((queue.parent, queue.dur_us), (0, 123));
        assert!(!trace_active());
        let total = ctx.finish("QUERY x", "ok");
        let _ = total;
    }

    #[test]
    fn finish_emits_tree_on_event_stream() {
        // The sink is process-global; keep this self-contained and
        // tolerant of other tests by draining first.
        let _ = crate::take_memory_events();
        crate::init_memory_event_sink();
        install(TraceCtx::start(42));
        {
            let _s = stage("engine");
        }
        let ctx = uninstall().unwrap();
        ctx.finish("QUERY cat", "ok");
        let text = crate::take_memory_events().unwrap();
        let trace_lines: Vec<&str> =
            text.lines().filter(|l| l.contains("\"kind\":\"trace\"")).collect();
        assert_eq!(trace_lines.len(), 1);
        assert!(trace_lines[0].contains("\"trace_id\":42"));
        assert!(trace_lines[0].contains("\"req\":\"QUERY cat\""));
        let span_lines: Vec<&str> =
            text.lines().filter(|l| l.contains("\"kind\":\"tspan\"")).collect();
        assert_eq!(span_lines.len(), 2); // request + engine
        assert!(span_lines[0].contains("\"name\":\"request\""));
        assert!(span_lines[1].contains("\"name\":\"engine\""));
        assert!(span_lines[1].contains("\"parent\":0"));
    }
}
