//! Observability layer for the index pipeline: metrics, timing spans,
//! and structured event streams.
//!
//! Design goals, in order:
//!
//! 1. **Near-zero overhead when nothing is listening.** Counters and
//!    gauges are single relaxed atomic ops; histograms add a short
//!    linear scan over fixed bucket bounds; the event stream is a
//!    single relaxed `AtomicBool` load when no sink is installed.
//! 2. **No dependencies.** Counters, histograms, JSON, and the
//!    Prometheus text exposition are all hand-rolled on `std`.
//! 3. **One global registry.** Metrics are identified by name;
//!    instrumented code resolves a handle once (via [`counter!`] /
//!    [`histogram!`] static caching, or by holding the `Arc` across a
//!    loop) and then updates it lock-free.
//!
//! Label conventions: labels are embedded in the metric name in
//! Prometheus form, e.g. `disk_ops_total{disk="3"}`. The renderers
//! understand this and emit well-formed exposition text.
//!
//! Three sinks read the registry:
//! * [`snapshot`] → [`Snapshot::to_json`]: one JSON document;
//! * [`Snapshot::to_prometheus`]: Prometheus text exposition format;
//! * [`init_event_sink`] + [`event!`]: an NDJSON stream of structured
//!   events (one JSON object per line) written as they happen.

mod events;
pub mod names;
mod render;
mod sliding;
mod slo;
pub mod trace;

pub use events::{
    emit_event, events_enabled, flush_events, init_event_sink, init_memory_event_sink,
    log_progress, take_memory_events, Field,
};
pub use render::{escape_json, parse_prometheus, Snapshot};
pub use sliding::SlidingHistogram;
pub use slo::SloTracker;
pub use trace::{Sampler, SpanRecord, TraceCtx};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket layout for a [`Histogram`]: a sorted list of inclusive upper
/// bounds; an implicit `+Inf` bucket catches the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct Buckets(pub Vec<f64>);

impl Buckets {
    /// `count` buckets starting at `start`, each `factor` times the last.
    pub fn exponential(start: f64, factor: f64, count: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && count > 0);
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        Buckets(bounds)
    }

    /// Latency buckets in milliseconds: 10 µs .. ~84 s, factor 4.
    pub fn time_ms() -> Self {
        Self::exponential(0.01, 4.0, 12)
    }

    /// Size/count buckets: powers of two, 1 .. 2^19.
    pub fn pow2() -> Self {
        Self::exponential(1.0, 2.0, 20)
    }
}

/// Fixed-bucket histogram with lock-free recording.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>, // one per bound, plus +Inf at the end
    count: AtomicU64,
    /// Sum scaled by 1e6 so it can live in an integer atomic; gives
    /// micro-unit precision, ample for ms latencies and list lengths.
    sum_x1e6: AtomicU64,
}

impl Histogram {
    fn new(buckets: Buckets) -> Self {
        let bounds = buckets.0;
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be sorted");
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self { bounds, buckets, count: AtomicU64::new(0), sum_x1e6: AtomicU64::new(0) }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: f64) {
        let idx = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let scaled = if value <= 0.0 { 0 } else { (value * 1e6) as u64 };
        self.sum_x1e6.fetch_add(scaled, Ordering::Relaxed);
    }

    /// Record an integer observation (lengths, counts).
    #[inline]
    pub fn record_u64(&self, value: u64) {
        self.record(value as f64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum_x1e6.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// `(upper_bound, count)` per bucket; the final bound is
    /// `f64::INFINITY`. Counts are per-bucket, not cumulative.
    pub fn bucket_counts(&self) -> Vec<(f64, u64)> {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.buckets.iter().map(|b| b.load(Ordering::Relaxed)))
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_x1e6.store(0, Ordering::Relaxed);
    }
}

/// The global metric registry.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Get or create the named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Get or create the named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// Get or create the named histogram. The bucket layout is fixed by
    /// whoever registers first; later callers share it.
    pub fn histogram(&self, name: &str, buckets: Buckets) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new(buckets));
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    fn for_each_counter(&self, mut f: impl FnMut(&str, &Counter)) {
        for (name, c) in self.counters.lock().unwrap().iter() {
            f(name, c);
        }
    }

    fn for_each_gauge(&self, mut f: impl FnMut(&str, &Gauge)) {
        for (name, g) in self.gauges.lock().unwrap().iter() {
            f(name, g);
        }
    }

    fn for_each_histogram(&self, mut f: impl FnMut(&str, &Histogram)) {
        for (name, h) in self.histograms.lock().unwrap().iter() {
            f(name, h);
        }
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Current value of a counter, or 0 if it was never registered. Handy
/// for capturing before/after deltas without holding handles.
pub fn counter_value(name: &str) -> u64 {
    registry().counters.lock().unwrap().get(name).map(|c| c.get()).unwrap_or(0)
}

/// Zero every metric (registrations survive). Mainly for tests and for
/// isolating successive experiment runs in one process.
pub fn reset_metrics() {
    let r = registry();
    r.for_each_counter(|_, c| c.0.store(0, Ordering::Relaxed));
    r.for_each_gauge(|_, g| g.0.store(0, Ordering::Relaxed));
    r.for_each_histogram(|_, h| h.reset());
}

/// Collect a point-in-time [`Snapshot`] of every metric.
pub fn snapshot() -> Snapshot {
    let r = registry();
    let mut snap = Snapshot::default();
    r.for_each_counter(|name, c| snap.counters.push((name.to_string(), c.get())));
    r.for_each_gauge(|name, g| snap.gauges.push((name.to_string(), g.get())));
    r.for_each_histogram(|name, h| {
        snap.histograms.push(render::HistogramSnapshot {
            name: name.to_string(),
            count: h.count(),
            sum: h.sum(),
            buckets: h.bucket_counts(),
        });
    });
    snap
}

/// A compact snapshot of the pipeline's headline counters, cheap to
/// capture and subtract. Embedded in per-batch reports so every batch
/// carries the index- and allocator-level activity it caused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsDelta {
    /// Bucket inserts that overflowed.
    pub bucket_overflows: u64,
    /// Short lists migrated to long lists.
    pub migrations: u64,
    /// Fresh long-list chunks allocated.
    pub chunk_allocs: u64,
    /// Long lists relocated (whole rewrites + compaction).
    pub chunk_relocations: u64,
    /// In-place long-list updates.
    pub in_place_updates: u64,
    /// Free-list allocations served.
    pub freelist_allocs: u64,
    /// Free-list coalesce merges.
    pub freelist_coalesces: u64,
}

impl ObsDelta {
    /// Capture the current value of each headline counter.
    pub fn capture() -> Self {
        Self {
            bucket_overflows: counter_value(names::CORE_BUCKET_OVERFLOWS),
            migrations: counter_value(names::CORE_MIGRATIONS),
            chunk_allocs: counter_value(names::LONG_CHUNK_ALLOCS),
            chunk_relocations: counter_value(names::LONG_CHUNK_RELOCATIONS),
            in_place_updates: counter_value(names::LONG_IN_PLACE_UPDATES),
            freelist_allocs: counter_value(names::FREELIST_ALLOCS),
            freelist_coalesces: counter_value(names::FREELIST_COALESCES),
        }
    }

    /// Field-wise `self - earlier` (saturating, so a metrics reset
    /// between captures yields zeros rather than wrapping).
    pub fn since(&self, earlier: &ObsDelta) -> ObsDelta {
        ObsDelta {
            bucket_overflows: self.bucket_overflows.saturating_sub(earlier.bucket_overflows),
            migrations: self.migrations.saturating_sub(earlier.migrations),
            chunk_allocs: self.chunk_allocs.saturating_sub(earlier.chunk_allocs),
            chunk_relocations: self.chunk_relocations.saturating_sub(earlier.chunk_relocations),
            in_place_updates: self.in_place_updates.saturating_sub(earlier.in_place_updates),
            freelist_allocs: self.freelist_allocs.saturating_sub(earlier.freelist_allocs),
            freelist_coalesces: self.freelist_coalesces.saturating_sub(earlier.freelist_coalesces),
        }
    }
}

/// RAII timer: on drop, records elapsed wall time (ms) into the
/// histogram `span_<name>_ms` and, when an event sink is active, emits a
/// `span` event.
pub struct SpanGuard {
    name: &'static str,
    hist: Arc<Histogram>,
    start: Instant,
}

impl SpanGuard {
    /// Elapsed time so far, in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ms = self.elapsed_ms();
        self.hist.record(ms);
        if events_enabled() {
            emit_event("span", &[("name", Field::from(self.name)), ("ms", Field::from(ms))]);
        }
    }
}

/// Start a timing span. `name` should be a static identifier like
/// `"flush_batch"`; the backing histogram is `span_flush_batch_ms`.
pub fn span(name: &'static str) -> SpanGuard {
    let hist = registry().histogram(&format!("span_{name}_ms"), Buckets::time_ms());
    SpanGuard { name, hist, start: Instant::now() }
}

/// Resolve (once) and cache a counter handle at the call site.
///
/// ```
/// invidx_obs::counter!("demo_counter_total").inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().counter($name)).as_ref()
    }};
}

/// Resolve (once) and cache a gauge handle at the call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().gauge($name)).as_ref()
    }};
}

/// Resolve (once) and cache a histogram handle at the call site.
///
/// ```
/// invidx_obs::histogram!("demo_len", invidx_obs::Buckets::pow2());
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:expr, $buckets:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().histogram($name, $buckets)).as_ref()
    }};
}

/// Emit a structured event to the NDJSON sink, if one is active.
/// Field values are only constructed when a sink is listening.
///
/// ```
/// invidx_obs::event!("batch_done", { "batch": 3u64, "ms": 12.5 });
/// ```
#[macro_export]
macro_rules! event {
    ($kind:expr, { $($key:literal : $value:expr),* $(,)? }) => {
        if $crate::events_enabled() {
            $crate::emit_event($kind, &[$(($key, $crate::Field::from($value))),*]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = registry().counter("test_lib_counter_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(counter_value("test_lib_counter_total"), 5);
        assert_eq!(counter_value("test_lib_never_registered"), 0);

        let g = registry().gauge("test_lib_gauge");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = registry().histogram("test_lib_hist", Buckets(vec![1.0, 10.0, 100.0]));
        h.record(0.5);
        h.record(5.0);
        h.record(50.0);
        h.record(5000.0);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 5055.5).abs() < 1e-3);
        let buckets = h.bucket_counts();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (1.0, 1));
        assert_eq!(buckets[1], (10.0, 1));
        assert_eq!(buckets[2], (100.0, 1));
        assert_eq!(buckets[3].1, 1);
        assert!(buckets[3].0.is_infinite());
    }

    #[test]
    fn handles_are_shared_by_name() {
        let a = registry().counter("test_lib_shared_total");
        let b = registry().counter("test_lib_shared_total");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn macro_cached_handles() {
        for _ in 0..3 {
            counter!("test_lib_macro_total").inc();
        }
        assert_eq!(counter_value("test_lib_macro_total"), 3);
        histogram!("test_lib_macro_hist", Buckets::pow2()).record_u64(7);
        assert_eq!(
            registry().histogram("test_lib_macro_hist", Buckets::pow2()).count(),
            1
        );
    }

    #[test]
    fn span_records_into_histogram() {
        {
            let _s = span("test_lib_span");
        }
        let h = registry().histogram("span_test_lib_span_ms", Buckets::time_ms());
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let c = registry().counter("test_lib_reset_total");
        c.add(9);
        reset_metrics();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(counter_value("test_lib_reset_total"), 1);
    }

    #[test]
    fn exponential_bucket_shapes() {
        assert_eq!(Buckets::exponential(1.0, 2.0, 4).0, vec![1.0, 2.0, 4.0, 8.0]);
        assert_eq!(Buckets::pow2().0.len(), 20);
        assert_eq!(Buckets::time_ms().0.len(), 12);
    }
}
