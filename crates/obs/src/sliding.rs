//! Sliding-window histogram for *live* latency quantiles.
//!
//! The cumulative [`Histogram`](crate::Histogram) answers "what happened
//! since process start"; a dashboard wants "what is p99 **right now**".
//! [`SlidingHistogram`] keeps a ring of fixed-width time slots, each a
//! plain bucket array. `record` is lock-free in the steady state (one
//! stamp load + one bucket increment); a slot is zeroed lazily, under a
//! mutex, the first time a sample lands in a new time slot. Quantiles
//! merge the slots that are still inside the window and interpolate
//! within the winning log-bucket.

use crate::Buckets;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

struct Slot {
    /// Tick this slot's counts belong to; 0 = never used.
    stamp: AtomicU64,
    counts: Vec<AtomicU64>,
}

/// Log-bucket histogram over a sliding time window of `slots × slot_ms`.
pub struct SlidingHistogram {
    bounds: Vec<f64>,
    slot_ms: u64,
    slots: Vec<Slot>,
    rotate: Mutex<()>,
    epoch: Instant,
}

impl SlidingHistogram {
    /// A window of `slots` slots, each `slot_ms` wide, over `buckets`.
    pub fn new(buckets: Buckets, slots: usize, slot_ms: u64) -> Self {
        let bounds = buckets.0;
        let slots = slots.max(2);
        let slot_ms = slot_ms.max(1);
        let slots = (0..slots)
            .map(|_| Slot {
                stamp: AtomicU64::new(0),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            })
            .collect();
        Self { bounds, slot_ms, slots, rotate: Mutex::new(()), epoch: Instant::now() }
    }

    /// Window width in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.slot_ms * self.slots.len() as u64
    }

    /// Ticks start at 1 so stamp 0 can mean "never used".
    fn tick(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64 / self.slot_ms + 1
    }

    /// Record one sample.
    pub fn record(&self, value: f64) {
        let tick = self.tick();
        let slot = &self.slots[(tick % self.slots.len() as u64) as usize];
        if slot.stamp.load(Ordering::Acquire) != tick {
            let _g = self.rotate.lock().unwrap();
            if slot.stamp.load(Ordering::Acquire) != tick {
                for c in &slot.counts {
                    c.store(0, Ordering::Relaxed);
                }
                slot.stamp.store(tick, Ordering::Release);
            }
        }
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        slot.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Merge the live slots into one bucket array.
    fn merged(&self) -> Vec<u64> {
        let tick = self.tick();
        let len = self.slots.len() as u64;
        let mut out = vec![0u64; self.bounds.len() + 1];
        for slot in &self.slots {
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp != 0 && tick.saturating_sub(stamp) < len {
                for (o, c) in out.iter_mut().zip(&slot.counts) {
                    *o += c.load(Ordering::Relaxed);
                }
            }
        }
        out
    }

    /// Samples currently inside the window.
    pub fn count(&self) -> u64 {
        self.merged().iter().sum()
    }

    /// Quantile estimate over the window (`q` in `[0, 1]`), linearly
    /// interpolated within the winning bucket. Returns 0 when the window
    /// is empty; samples above the top bound report the top bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let merged = self.merged();
        let total: u64 = merged.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in merged.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            if seen + c >= rank {
                if i == self.bounds.len() {
                    // Overflow bucket: no upper bound to interpolate
                    // toward; report the top finite bound.
                    return *self.bounds.last().unwrap_or(&0.0);
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let frac = (rank - seen) as f64 / *c as f64;
                return lo + (hi - lo) * frac;
            }
            seen += c;
        }
        *self.bounds.last().unwrap_or(&0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_interpolate() {
        let h = SlidingHistogram::new(Buckets(vec![1.0, 2.0, 4.0, 8.0]), 6, 10_000);
        for _ in 0..90 {
            h.record(0.5);
        }
        for _ in 0..10 {
            h.record(6.0);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!(p50 <= 1.0, "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((4.0..=8.0).contains(&p99), "p99={p99}");
    }

    #[test]
    fn empty_window_is_zero() {
        let h = SlidingHistogram::new(Buckets::time_ms(), 6, 10_000);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn overflow_reports_top_bound() {
        let h = SlidingHistogram::new(Buckets(vec![1.0, 2.0]), 4, 10_000);
        h.record(100.0);
        assert_eq!(h.quantile(0.99), 2.0);
    }

    #[test]
    fn stale_slots_age_out() {
        // 2-slot window, 1 ms slots: after sleeping past the window the
        // old samples must not count.
        let h = SlidingHistogram::new(Buckets(vec![1.0]), 2, 1);
        h.record(0.5);
        assert!(h.count() >= 1);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(h.count(), 0);
    }
}
