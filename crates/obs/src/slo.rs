//! SLO accounting: a latency target, an availability objective, and the
//! error-budget arithmetic on top of two atomic counters.
//!
//! The tracker classifies every finished request as *good* (served within
//! the target) or *bad* (slower than the target, shed, reaped, or
//! failed). With an objective of `O` ppm good, the error budget is the
//! `(1e6 - O)` ppm of traffic allowed to be bad; [`budget_remaining_ppm`]
//! reports how much of that allowance is left (1e6 = untouched, 0 =
//! exhausted, negative = overspent) and [`burn_rate_x1000`] how fast it
//! is being consumed (1000 = exactly at the sustainable rate).
//!
//! [`budget_remaining_ppm`]: SloTracker::budget_remaining_ppm
//! [`burn_rate_x1000`]: SloTracker::burn_rate_x1000

use std::sync::atomic::{AtomicU64, Ordering};

/// Error-budget accountant for one latency SLO.
#[derive(Debug)]
pub struct SloTracker {
    target_ms: f64,
    objective_ppm: u32,
    good: AtomicU64,
    bad: AtomicU64,
}

impl SloTracker {
    /// A tracker for "`objective_ppm` ppm of requests complete within
    /// `target_ms` ms". `objective_ppm` is clamped to `[1, 999_999]` so
    /// the budget is never zero-width.
    pub fn new(target_ms: f64, objective_ppm: u32) -> Self {
        Self {
            target_ms,
            objective_ppm: objective_ppm.clamp(1, 999_999),
            good: AtomicU64::new(0),
            bad: AtomicU64::new(0),
        }
    }

    /// The latency target in milliseconds.
    pub fn target_ms(&self) -> f64 {
        self.target_ms
    }

    /// The availability objective in ppm.
    pub fn objective_ppm(&self) -> u32 {
        self.objective_ppm
    }

    /// Record a served request; returns whether it met the target.
    pub fn observe(&self, latency_ms: f64) -> bool {
        let ok = latency_ms <= self.target_ms;
        if ok {
            self.good.fetch_add(1, Ordering::Relaxed);
        } else {
            self.bad.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Record a request that never produced a result (shed, reaped,
    /// failed) — always budget-consuming.
    pub fn observe_failure(&self) {
        self.bad.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests accounted.
    pub fn total(&self) -> u64 {
        self.good.load(Ordering::Relaxed) + self.bad.load(Ordering::Relaxed)
    }

    /// Requests that violated the SLO.
    pub fn violations(&self) -> u64 {
        self.bad.load(Ordering::Relaxed)
    }

    /// Fraction of the error budget remaining, in ppm of the budget
    /// itself: 1_000_000 = untouched, 0 = exhausted, negative =
    /// overspent. An empty window reports a full budget.
    pub fn budget_remaining_ppm(&self) -> i64 {
        let bad = self.bad.load(Ordering::Relaxed) as f64;
        let total = self.total() as f64;
        if total == 0.0 {
            return 1_000_000;
        }
        let allowed = total * (1_000_000 - self.objective_ppm) as f64 / 1e6;
        (((allowed - bad) / allowed) * 1e6) as i64
    }

    /// Budget burn rate ×1000: the observed bad fraction over the allowed
    /// bad fraction. 1000 means bad requests arrive exactly at the rate
    /// the objective tolerates; 2000 means the budget drains twice as
    /// fast as it accrues; 0 means no violations.
    pub fn burn_rate_x1000(&self) -> i64 {
        let total = self.total() as f64;
        if total == 0.0 {
            return 0;
        }
        let bad_frac = self.bad.load(Ordering::Relaxed) as f64 / total;
        let allowed_frac = (1_000_000 - self.objective_ppm) as f64 / 1e6;
        (bad_frac / allowed_frac * 1000.0) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_has_full_budget() {
        let t = SloTracker::new(50.0, 999_000);
        assert_eq!(t.budget_remaining_ppm(), 1_000_000);
        assert_eq!(t.burn_rate_x1000(), 0);
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn classification_and_counts() {
        let t = SloTracker::new(10.0, 990_000);
        assert!(t.observe(5.0));
        assert!(!t.observe(50.0));
        t.observe_failure();
        assert_eq!(t.total(), 3);
        assert_eq!(t.violations(), 2);
    }

    #[test]
    fn budget_arithmetic() {
        // Objective 99% good → 1% budget. 100 requests, 1 bad: budget
        // exactly exhausted; burn rate exactly 1000.
        let t = SloTracker::new(10.0, 990_000);
        for _ in 0..99 {
            t.observe(1.0);
        }
        t.observe(100.0);
        assert_eq!(t.budget_remaining_ppm(), 0);
        assert_eq!(t.burn_rate_x1000(), 1000);
    }

    #[test]
    fn overspend_goes_negative() {
        let t = SloTracker::new(10.0, 990_000);
        for _ in 0..98 {
            t.observe(1.0);
        }
        t.observe(100.0);
        t.observe(100.0);
        assert!(t.budget_remaining_ppm() < 0);
        assert!(t.burn_rate_x1000() > 1000);
    }

    #[test]
    fn objective_is_clamped() {
        let t = SloTracker::new(10.0, 1_000_000);
        assert_eq!(t.objective_ppm(), 999_999);
        let t = SloTracker::new(10.0, 0);
        assert_eq!(t.objective_ppm(), 1);
    }
}
