//! Checkpoint files: the full index state in one atomically-renamed file.
//!
//! A checkpoint captures everything the WAL would otherwise have to replay
//! from the beginning of time: the long-list directory and extent map, the
//! serialized bucket pages, the free-list state (as a per-disk free-block
//! verification count), and an opaque metadata blob for higher layers. The
//! on-disk layout is
//!
//! ```text
//! "IVXCKPT1" | u32 version | geometry | snapshot | free-verify | meta | crc
//! ```
//!
//! with the trailing CRC32 covering every preceding byte. Writing uses the
//! classic atomic pattern: serialize to `<path>.tmp`, fsync, rename over
//! `<path>`, fsync the parent directory. A crash at any point leaves either
//! the old checkpoint or the new one — never a mix — and a torn temp file
//! is simply ignored at recovery because the rename never happened.

use crate::crc::crc32;
use crate::error::{DurableError, Result};
use crate::fault::{DurableFile, FaultInjector, FaultPoint};
use invidx_core::IndexSnapshot;
use std::path::Path;

const MAGIC: &[u8; 8] = b"IVXCKPT1";
const VERSION: u32 = 1;

/// Physical shape of the block store, recorded in the checkpoint so
/// recovery can re-open the same devices without external configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreGeometry {
    /// Number of disks in the array.
    pub disks: u16,
    /// Blocks per disk (the array is homogeneous).
    pub blocks_per_disk: u64,
    /// Block size in bytes.
    pub block_size: u32,
}

/// A decoded checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Device shape at checkpoint time.
    pub geometry: StoreGeometry,
    /// Full logical index state (directory, buckets, extent map, deletions).
    pub snapshot: IndexSnapshot,
    /// Per-disk free-block counts at checkpoint time, with quarantined
    /// (deferred-free) blocks counted as free — the state the allocators
    /// will be in after restore re-reserves the live extents. Used as a
    /// verification that restore rebuilt the free lists exactly.
    pub free_per_disk: Vec<u64>,
    /// Opaque higher-layer metadata (the IR engine stores its vocabulary
    /// and document-store directory here). May be empty.
    pub meta: Vec<u8>,
}

impl Checkpoint {
    /// Batch number this checkpoint covers.
    pub fn batch_no(&self) -> u64 {
        self.snapshot.batch_no
    }

    /// Encode to the on-disk byte layout (including magic and CRC).
    pub fn encode(&self) -> Vec<u8> {
        let snap = self.snapshot.serialize();
        let mut out = Vec::with_capacity(64 + snap.len() + self.meta.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.geometry.disks.to_le_bytes());
        out.extend_from_slice(&self.geometry.blocks_per_disk.to_le_bytes());
        out.extend_from_slice(&self.geometry.block_size.to_le_bytes());
        out.extend_from_slice(&(snap.len() as u64).to_le_bytes());
        out.extend_from_slice(&snap);
        out.extend_from_slice(&(self.free_per_disk.len() as u16).to_le_bytes());
        for f in &self.free_per_disk {
            out.extend_from_slice(&f.to_le_bytes());
        }
        out.extend_from_slice(&(self.meta.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.meta);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode and verify a checkpoint file's bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < MAGIC.len() + 4 + 4 {
            return Err(DurableError::Corrupt("checkpoint file too short".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().unwrap());
        if crc32(body) != stored {
            return Err(DurableError::Corrupt("checkpoint CRC mismatch".into()));
        }
        let mut cur = Cur { bytes: body, pos: 0 };
        if cur.take(8)? != MAGIC {
            return Err(DurableError::Corrupt("bad checkpoint magic".into()));
        }
        let version = cur.u32le()?;
        if version != VERSION {
            return Err(DurableError::Corrupt(format!("unsupported checkpoint version {version}")));
        }
        let geometry = StoreGeometry {
            disks: cur.u16le()?,
            blocks_per_disk: cur.u64le()?,
            block_size: cur.u32le()?,
        };
        let snap_len = cur.u64le()? as usize;
        let snapshot = IndexSnapshot::deserialize(cur.take(snap_len)?)?;
        let nfree = cur.u16le()? as usize;
        let mut free_per_disk = Vec::with_capacity(nfree);
        for _ in 0..nfree {
            free_per_disk.push(cur.u64le()?);
        }
        let meta_len = cur.u32le()? as usize;
        let meta = cur.take(meta_len)?.to_vec();
        if cur.pos != body.len() {
            return Err(DurableError::Corrupt("trailing bytes in checkpoint".into()));
        }
        Ok(Self { geometry, snapshot, free_per_disk, meta })
    }

    /// Atomically write this checkpoint to `path`: temp file → fsync →
    /// rename → parent-dir fsync. Injected faults strike at
    /// [`FaultPoint::CheckpointWrite`], [`FaultPoint::CheckpointFsync`]
    /// and [`FaultPoint::CheckpointRename`]. Returns the encoded size.
    pub fn write(&self, path: &Path, injector: &FaultInjector) -> Result<u64> {
        let bytes = self.encode();
        let tmp = path.with_extension("ckpt.tmp");
        // Start the temp file from scratch each time.
        std::fs::remove_file(&tmp).ok();
        let mut f = DurableFile::open_append(
            &tmp,
            injector.clone(),
            FaultPoint::CheckpointWrite,
            FaultPoint::CheckpointFsync,
        )?;
        f.append(&bytes)?;
        f.sync()?;
        drop(f);
        injector.check_event(FaultPoint::CheckpointRename)?;
        std::fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            std::fs::File::open(parent)?.sync_all()?;
        }
        Ok(bytes.len() as u64)
    }

    /// Load the checkpoint at `path`. `Ok(None)` when the file does not
    /// exist; `Err(Corrupt)` when it exists but fails verification.
    pub fn load(path: &Path) -> Result<Option<Self>> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Self::decode(&bytes).map(Some)
    }
}

struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(DurableError::Corrupt("truncated checkpoint".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16le(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32le(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64le(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            geometry: StoreGeometry { disks: 3, blocks_per_disk: 1000, block_size: 256 },
            snapshot: IndexSnapshot {
                batch_no: 5,
                doc_ceiling: 42,
                num_buckets: 2,
                bucket_capacity_units: 40,
                block_postings: 64,
                codec: Default::default(),
                deleted: vec![7, 9],
                directory: b"dir-bytes".to_vec(),
                buckets: vec![b"b0".to_vec(), b"b1".to_vec()],
            },
            free_per_disk: vec![990, 1000, 999],
            meta: b"vocab".to_vec(),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let ck = sample();
        assert_eq!(Checkpoint::decode(&ck.encode()).unwrap(), ck);
    }

    #[test]
    fn decode_rejects_bit_flip_anywhere() {
        let bytes = sample().encode();
        for pos in [0, 9, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            assert!(Checkpoint::decode(&bad).is_err(), "flip at {pos} must be caught");
        }
    }

    #[test]
    fn atomic_write_and_load() {
        let dir = std::env::temp_dir().join(format!("invidx-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.ckpt");
        std::fs::remove_file(&path).ok();
        assert!(Checkpoint::load(&path).unwrap().is_none());
        let inj = FaultInjector::new();
        let ck = sample();
        ck.write(&path, &inj).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap().unwrap(), ck);
        // A crash during the next write must leave the old file intact.
        let mut newer = sample();
        newer.snapshot.batch_no = 6;
        inj.arm(crate::fault::Fault::at(FaultPoint::CheckpointFsync));
        assert!(newer.write(&path, &inj).unwrap_err().is_injected());
        assert_eq!(Checkpoint::load(&path).unwrap().unwrap().batch_no(), 5);
        std::fs::remove_file(&path).ok();
    }
}
