//! Durability layer for the dual-structure inverted index.
//!
//! The paper motivates incremental updates with "7 days a week, 24 hours a
//! day continuous operation" (§1) and notes that "the algorithms and data
//! structures are constructed so that the incremental update of the index
//! can be restarted if it is aborted". The core crate's shadow-paged flush
//! already gives per-batch atomicity, but it pays a full bucket + directory
//! rewrite *every batch*. This crate trades that for the classic WAL
//! discipline:
//!
//! ```text
//! flush  =  log (append + CRC + fsync)  →  apply  →  (periodic) checkpoint
//! ```
//!
//! * [`wal`] — length-prefixed, CRC32-checksummed records with
//!   fsync-on-commit; torn or corrupt tails are detected and truncated.
//! * [`checkpoint`] — the directory, bucket pages, extent map and free-list
//!   state serialized into an atomically-renamed snapshot file.
//! * [`DurableIndex`] — the wrapper over [`invidx_core::DualIndex`] that
//!   performs log → apply → checkpoint and recovers by loading the latest
//!   valid checkpoint and replaying WAL records past it.
//! * [`fault`] — a fault-injection harness ([`FaultPoint`],
//!   [`DurableFile`], [`FaultDevice`]) that can kill the pipeline at every
//!   write site, drop fsyncs, or corrupt records, so tests can prove the
//!   crash-consistency property: recovery restores exactly the last
//!   committed batch.
//!
//! Replay safety rests on two invariants (see DESIGN.md "Durability"):
//! freed extents are quarantined until the next checkpoint commits
//! ([`invidx_disk::DiskArray::defer_frees`]), and restore re-reserves
//! exactly the live extents so replay allocates just as the original run
//! did.

pub mod checkpoint;
mod crc;
pub mod error;
pub mod fault;
mod index;
pub mod wal;

pub use checkpoint::{Checkpoint, StoreGeometry};
pub use crc::crc32;
pub use error::{DurableError, Result};
pub use fault::{DurableFile, Fault, FaultDevice, FaultInjector, FaultMode, FaultPoint};
pub use index::{DurableIndex, DurableOptions, DurableOptionsBuilder, RecoveryHooks, RecoveryInfo};
pub use wal::{WalReader, WalRecord, WalWriter};
