//! Error types for the durability layer.

use crate::fault::FaultPoint;
use invidx_core::IndexError;
use std::fmt;

/// Result alias for durable operations.
pub type Result<T> = std::result::Result<T, DurableError>;

/// Errors raised by the WAL, checkpoint, and recovery machinery.
#[derive(Debug)]
pub enum DurableError {
    /// An index-level failure while applying or restoring state.
    Index(IndexError),
    /// File I/O failure on the WAL or checkpoint files.
    Io(std::io::Error),
    /// A simulated crash fired by the fault-injection harness.
    Injected(FaultPoint),
    /// Corrupt WAL/checkpoint contents that CRC or structure checks caught.
    Corrupt(String),
    /// The durable store hit an earlier error and refuses further writes
    /// until reopened (recovery is the only safe path out).
    Poisoned,
}

impl DurableError {
    /// Is this a simulated crash from the fault harness?
    pub fn is_injected(&self) -> bool {
        matches!(self, Self::Injected(_))
    }
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Index(e) => write!(f, "index error: {e}"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Injected(p) => write!(f, "injected fault at {p:?}"),
            Self::Corrupt(msg) => write!(f, "corrupt durable state: {msg}"),
            Self::Poisoned => write!(f, "durable store poisoned by an earlier error; reopen to recover"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Index(e) => Some(e),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IndexError> for DurableError {
    fn from(e: IndexError) -> Self {
        Self::Index(e)
    }
}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<invidx_disk::DiskError> for DurableError {
    fn from(e: invidx_disk::DiskError) -> Self {
        Self::Index(IndexError::from(e))
    }
}
