//! CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
//! guarding WAL records and checkpoint files. Implemented locally because
//! the build environment vendors no checksum crate; the table is the
//! standard one zlib/gzip/PNG use, so values match any `crc32` tool.

/// Compute the CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
