//! [`DurableIndex`]: WAL + checkpoint discipline over
//! [`invidx_core::DualIndex`].
//!
//! Every mutating operation follows the same shape:
//!
//! ```text
//! 1. encode a WAL record and append it           (not yet durable)
//! 2. fsync the WAL                               (COMMIT POINT)
//! 3. apply the operation to the in-place index   (redo on crash)
//! 4. every `checkpoint_every` records: checkpoint + reset the WAL
//! ```
//!
//! A crash before step 2 completes loses the operation entirely — recovery
//! truncates the torn record and the store reflects the previous batch. A
//! crash anywhere after step 2 replays the record against the last
//! checkpoint, and the deterministic-replay invariants (freed-extent
//! quarantine, exact extent re-reservation at restore) guarantee the replay
//! reproduces the original run block for block.
//!
//! Any error in steps 2–4 — injected or real — poisons the handle: the
//! in-place structures may be ahead of or behind the log, so the only safe
//! continuation is to drop the handle and re-open (recover) the store.

use crate::checkpoint::{Checkpoint, StoreGeometry};
use crate::error::{DurableError, Result};
use crate::fault::{FaultDevice, FaultInjector};
use crate::wal::{WalReader, WalRecord, WalWriter};
use invidx_core::{
    BatchReport, CompactReport, DocId, DualIndex, IndexConfig, IndexError, PostingList,
    RebalanceReport, SweepReport, WordId,
};
use invidx_disk::{Disk, DiskArray, FileDevice, FitStrategy, FreeList, IoOp, OpKind, Payload};
use invidx_obs::names;
use std::path::{Path, PathBuf};

/// WAL file name inside a durable store directory.
pub const WAL_FILE: &str = "wal.log";
/// Checkpoint file name inside a durable store directory.
pub const CKPT_FILE: &str = "index.ckpt";

/// Tuning knobs for the durability discipline.
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Checkpoint after this many committed WAL records (0 = only on
    /// explicit [`DurableIndex::checkpoint`] calls).
    pub checkpoint_every: u64,
    /// fsync the WAL at each commit. Turning this off surrenders the
    /// commit point to the OS page cache — only the durability-overhead
    /// ablation should do that.
    pub fsync_wal: bool,
    /// Record WAL appends and checkpoint writes in the array's I/O trace
    /// (as [`Payload::Wal`] / [`Payload::Checkpoint`] ops) so experiments
    /// can count durability I/O alongside index I/O.
    pub trace_durability_ops: bool,
    /// Overlap each flush's WAL append + fsync with the in-place batch
    /// apply on a background thread, joining before the flush returns.
    /// Crash-safe: if the process dies before the fsync lands, the record
    /// is lost and recovery sees the previous batch — the apply's device
    /// writes only touched blocks the checkpoint considers free or bytes
    /// past the committed posting counts, both invisible after recovery.
    /// Incompatible with deterministically ordered fault injection at the
    /// WAL fault points, so the kill-matrix tests leave it off.
    pub pipelined_wal: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self {
            checkpoint_every: 8,
            fsync_wal: true,
            trace_durability_ops: false,
            pipelined_wal: false,
        }
    }
}

impl DurableOptions {
    /// Start building options from the defaults; finish with
    /// [`DurableOptionsBuilder::build`].
    pub fn builder() -> DurableOptionsBuilder {
        DurableOptionsBuilder { opts: Self::default() }
    }
}

/// Builder for [`DurableOptions`]; obtain via [`DurableOptions::builder`].
#[derive(Debug, Clone)]
pub struct DurableOptionsBuilder {
    opts: DurableOptions,
}

impl DurableOptionsBuilder {
    /// Checkpoint after this many committed WAL records (0 = explicit
    /// checkpoints only).
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.opts.checkpoint_every = every;
        self
    }

    /// fsync the WAL at each commit.
    pub fn fsync_wal(mut self, on: bool) -> Self {
        self.opts.fsync_wal = on;
        self
    }

    /// Record WAL/checkpoint ops in the array's I/O trace.
    pub fn trace_durability_ops(mut self, on: bool) -> Self {
        self.opts.trace_durability_ops = on;
        self
    }

    /// Overlap WAL append + fsync with the in-place batch apply.
    pub fn pipelined_wal(mut self, on: bool) -> Self {
        self.opts.pipelined_wal = on;
        self
    }

    /// Validate and return the options. (All current combinations are
    /// valid; validation exists so future invariants have a home and the
    /// builder matches [`invidx_core::IndexConfig::builder`]'s shape.)
    pub fn build(self) -> Result<DurableOptions> {
        Ok(self.opts)
    }
}

/// Hooks that let a higher layer (the IR engine) participate in recovery.
///
/// The engine stores state outside the index proper — a document store and
/// a vocabulary, both living in extents of the same disk array. Those
/// extents must be re-reserved from checkpoint metadata *before* WAL
/// replay applies index writes (`on_checkpoint_meta`), and each batch's
/// document appends must be redone *before* that batch's index postings
/// are applied (`before_apply`), because that is the order the original
/// run allocated in. Replay determinism depends on it.
pub trait RecoveryHooks {
    /// Called once, after the checkpoint snapshot restored the index and
    /// before any WAL record is replayed. `meta` is the blob passed to
    /// [`DurableIndex::set_checkpoint_meta`].
    fn on_checkpoint_meta(&mut self, meta: &[u8], index: &mut DualIndex) -> Result<()> {
        let _ = (meta, index);
        Ok(())
    }

    /// Called for each WAL record about to be replayed, before its index
    /// mutations are applied.
    fn before_apply(&mut self, record: &WalRecord, index: &mut DualIndex) -> Result<()> {
        let _ = (record, index);
        Ok(())
    }
}

/// The trivial hook set for stores with no higher-layer state.
impl RecoveryHooks for () {}

/// What recovery found and did while opening a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Batch number of the checkpoint the store was restored from.
    pub checkpoint_batch: u64,
    /// WAL records replayed past the checkpoint.
    pub replayed_records: u64,
    /// Stale records skipped because the checkpoint already covered them
    /// (a crash hit between the checkpoint rename and the WAL reset).
    pub skipped_records: u64,
    /// Torn/corrupt tail bytes truncated from the WAL.
    pub truncated_bytes: u64,
}

/// A crash-safe index: [`DualIndex`] plus WAL, checkpoints, and recovery.
pub struct DurableIndex {
    inner: DualIndex,
    wal: WalWriter,
    ckpt_path: PathBuf,
    injector: FaultInjector,
    opts: DurableOptions,
    geometry: StoreGeometry,
    /// Deletions issued since the last WAL record (they ride in the next
    /// `Batch` or `Sweep` record).
    pending_deletes: Vec<DocId>,
    /// Higher-layer blob stored in every checkpoint (vocabulary, document
    /// store directory, ...).
    ckpt_meta: Vec<u8>,
    records_since_ckpt: u64,
    last_ckpt_batch: u64,
    poisoned: bool,
    recovery: Option<RecoveryInfo>,
}

fn build_array(
    dir: &Path,
    geometry: StoreGeometry,
    injector: &FaultInjector,
    create: bool,
) -> Result<DiskArray> {
    let bs = geometry.block_size as usize;
    let mut disks = Vec::with_capacity(geometry.disks as usize);
    for i in 0..geometry.disks {
        let path = dir.join(format!("disk-{i}.dat"));
        let dev = if create {
            FileDevice::create(&path, geometry.blocks_per_disk, bs)?
        } else {
            FileDevice::open(&path, bs)?
        };
        disks.push(Disk {
            device: Box::new(FaultDevice::new(dev, injector.clone())),
            alloc: Box::new(FreeList::new(geometry.blocks_per_disk, FitStrategy::FirstFit)),
        });
    }
    Ok(DiskArray::new(disks))
}

impl DurableIndex {
    /// Create a fresh durable store in `dir`: device files, an initial
    /// batch-0 checkpoint, and an empty WAL.
    pub fn create(
        dir: &Path,
        config: IndexConfig,
        geometry: StoreGeometry,
        opts: DurableOptions,
    ) -> Result<Self> {
        Self::create_with(dir, config, geometry, opts, FaultInjector::new())
    }

    /// [`Self::create`] with a caller-supplied fault injector (tests).
    pub fn create_with(
        dir: &Path,
        config: IndexConfig,
        geometry: StoreGeometry,
        opts: DurableOptions,
        injector: FaultInjector,
    ) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let array = build_array(dir, geometry, &injector, true)?;
        let mut inner = DualIndex::create(array, config)?;
        inner.set_defer_frees(true);
        let wal = WalWriter::open(&dir.join(WAL_FILE), injector.clone())?;
        let mut me = Self {
            inner,
            wal,
            ckpt_path: dir.join(CKPT_FILE),
            injector,
            opts,
            geometry,
            pending_deletes: Vec::new(),
            ckpt_meta: Vec::new(),
            records_since_ckpt: 0,
            last_ckpt_batch: 0,
            poisoned: false,
            recovery: None,
        };
        // An initial checkpoint so recovery always has a base to restore.
        me.checkpoint()?;
        Ok(me)
    }

    /// Open (recover) the store in `dir`: load the latest checkpoint,
    /// replay the WAL past it, truncate any torn tail.
    pub fn open(dir: &Path, config: IndexConfig, opts: DurableOptions) -> Result<Self> {
        Self::open_with(dir, config, opts, FaultInjector::new(), &mut ())
    }

    /// [`Self::open`] with a fault injector and recovery hooks.
    pub fn open_with(
        dir: &Path,
        config: IndexConfig,
        opts: DurableOptions,
        injector: FaultInjector,
        hooks: &mut dyn RecoveryHooks,
    ) -> Result<Self> {
        let _span = invidx_obs::span("recovery");
        invidx_obs::counter!(names::RECOVERY_OPENS).inc();
        let ckpt_path = dir.join(CKPT_FILE);
        // A temp file is a checkpoint attempt whose rename never happened.
        std::fs::remove_file(dir.join(format!("{CKPT_FILE}.tmp"))).ok();
        let ck = Checkpoint::load(&ckpt_path)?.ok_or_else(|| {
            DurableError::Corrupt(format!("no checkpoint at {}", ckpt_path.display()))
        })?;
        let geometry = ck.geometry;
        let array = build_array(dir, geometry, &injector, false)?;
        let mut inner = DualIndex::restore(array, config, &ck.snapshot)?;
        hooks.on_checkpoint_meta(&ck.meta, &mut inner)?;
        // Free-space verification: restore plus hooks must have re-reserved
        // exactly the live extents the checkpoint knew about.
        let usage = inner.array().per_disk_usage();
        if usage.len() != ck.free_per_disk.len() {
            return Err(DurableError::Corrupt(format!(
                "checkpoint records {} disks, array has {}",
                ck.free_per_disk.len(),
                usage.len()
            )));
        }
        for (i, (&(free, _), &want)) in usage.iter().zip(&ck.free_per_disk).enumerate() {
            if free != want {
                return Err(DurableError::Corrupt(format!(
                    "disk {i}: {free} free blocks after restore, checkpoint recorded {want}"
                )));
            }
        }
        inner.set_defer_frees(true);

        let mut wal = WalWriter::open(&dir.join(WAL_FILE), injector.clone())?;
        let scan = WalReader::scan(&wal.read_all()?);
        let mut info = RecoveryInfo {
            checkpoint_batch: ck.batch_no(),
            truncated_bytes: scan.truncated,
            ..RecoveryInfo::default()
        };
        for rec in &scan.records {
            if rec.batch() <= ck.batch_no() {
                info.skipped_records += 1;
                continue;
            }
            hooks.before_apply(rec, &mut inner)?;
            Self::replay(&mut inner, rec)?;
            info.replayed_records += 1;
        }
        if scan.truncated > 0 {
            wal.truncate_to(scan.valid_len)?;
            invidx_obs::counter!(names::RECOVERY_TRUNCATED_BYTES).add(scan.truncated);
        }
        if info.skipped_records > 0 && info.replayed_records == 0 {
            // The whole log predates the checkpoint: the crash hit between
            // the checkpoint rename and the WAL reset. Finish the reset.
            wal.truncate_to(0)?;
        }
        invidx_obs::counter!(names::RECOVERY_REPLAYED_RECORDS).add(info.replayed_records);
        invidx_obs::event!("recovery", {
            "checkpoint_batch": info.checkpoint_batch,
            "replayed_records": info.replayed_records,
            "skipped_records": info.skipped_records,
            "truncated_bytes": info.truncated_bytes,
        });
        Ok(Self {
            inner,
            wal,
            ckpt_path,
            injector,
            opts,
            geometry,
            pending_deletes: Vec::new(),
            ckpt_meta: ck.meta,
            records_since_ckpt: info.replayed_records,
            last_ckpt_batch: info.checkpoint_batch,
            poisoned: false,
            recovery: Some(info),
        })
    }

    fn replay(inner: &mut DualIndex, rec: &WalRecord) -> Result<()> {
        match rec {
            WalRecord::Batch { lists, deletes, .. } => {
                for &d in deletes {
                    inner.delete_document(d);
                }
                for (w, docs) in lists {
                    inner.insert_list(*w, &PostingList::from_sorted(docs.clone()))?;
                }
                inner.apply_batch()?;
            }
            WalRecord::Sweep { deletes, .. } => {
                for &d in deletes {
                    inner.delete_document(d);
                }
                inner.sweep()?;
                inner.free_released()?;
                inner.bump_batch();
            }
            WalRecord::Compact { .. } => {
                inner.compact_lists()?;
                inner.bump_batch();
            }
            WalRecord::Rebalance { num_buckets, capacity_units, .. } => {
                inner.rebalance_core(*num_buckets as usize, *capacity_units as u64)?;
                inner.free_released()?;
                inner.bump_batch();
            }
        }
        if inner.batches() != rec.batch() {
            return Err(DurableError::Corrupt(format!(
                "replay produced batch {}, record says {}",
                inner.batches(),
                rec.batch()
            )));
        }
        Ok(())
    }

    // ----- the update path -----

    /// Add a document to the current (unflushed, volatile) batch.
    pub fn insert_document<I>(&mut self, doc: DocId, words: I) -> Result<()>
    where
        I: IntoIterator<Item = WordId>,
    {
        self.check_poison()?;
        Ok(self.inner.insert_document(doc, words)?)
    }

    /// Add a whole batch of documents, inverted in parallel across the
    /// configured worker pool (see [`DualIndex::insert_documents`]).
    pub fn insert_documents(&mut self, docs: Vec<(DocId, Vec<WordId>)>, threads: usize) -> Result<()> {
        self.check_poison()?;
        Ok(self.inner.insert_documents(docs, threads)?)
    }

    /// Logically delete a document. Rides in the next WAL record.
    pub fn delete_document(&mut self, doc: DocId) {
        self.inner.delete_document(doc);
        self.pending_deletes.push(doc);
    }

    /// Flush the buffered batch through the WAL: log, commit, apply.
    pub fn flush(&mut self) -> Result<BatchReport> {
        self.flush_with_meta(Vec::new())
    }

    /// [`Self::flush`] carrying an opaque higher-layer blob in the WAL
    /// record (the IR engine logs its per-batch vocabulary and document
    /// store growth here, so recovery hooks can redo it).
    pub fn flush_with_meta(&mut self, meta: Vec<u8>) -> Result<BatchReport> {
        self.check_poison()?;
        let _span = invidx_obs::span("durable_flush");
        let lists: Vec<(WordId, Vec<DocId>)> =
            self.inner.mem().iter().map(|(w, l)| (w, l.docs().to_vec())).collect();
        let record = WalRecord::Batch {
            batch: self.inner.batches() + 1,
            lists,
            deletes: self.pending_deletes.clone(),
            meta,
        };
        if !self.opts.pipelined_wal {
            self.commit_record(&record)?;
            self.pending_deletes.clear();
            let report = match self.inner.apply_batch() {
                Ok(r) => r,
                Err(e) => return Err(self.poison(e.into())),
            };
            self.after_record()?;
            return Ok(report);
        }

        // Pipelined flush: serialize the record here, then overlap the
        // log append + fsync with the in-place apply. The join lands
        // before anything observable happens — the caller only sees `Ok`
        // (and `pending_deletes` only clears, a checkpoint only runs)
        // once the record is durable AND the apply finished. A crash in
        // the window loses the record: the apply's stray device writes
        // touched only blocks the last checkpoint considers free, or
        // bytes past the committed posting counts, so recovery never
        // reads them.
        let frame = record.encode_frame();
        if self.opts.trace_durability_ops {
            let bs = self.inner.array().block_size() as u64;
            self.inner.array().trace_push(IoOp {
                kind: OpKind::Write,
                disk: 0,
                start: record.batch(),
                blocks: (frame.len() as u64).div_ceil(bs).max(1),
                payload: Payload::Wal,
            });
        }
        let fsync = self.opts.fsync_wal;
        let wal = &mut self.wal;
        let inner = &mut self.inner;
        let (wal_result, apply_result) = std::thread::scope(|s| {
            let logger = s.spawn(move || -> Result<u64> {
                let bytes = wal.append_frame(&frame)?;
                if fsync {
                    wal.sync()?;
                }
                Ok(bytes)
            });
            let apply = inner.apply_batch();
            let logged = match logger.join() {
                Ok(r) => r,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            (logged, apply)
        });
        let bytes = match wal_result {
            Ok(b) => b,
            Err(e) => return Err(self.poison(e)),
        };
        invidx_obs::counter!(names::WAL_APPENDS).inc();
        invidx_obs::counter!(names::WAL_BYTES).add(bytes);
        if fsync {
            invidx_obs::counter!(names::WAL_FSYNCS).inc();
        }
        self.pending_deletes.clear();
        let report = match apply_result {
            Ok(r) => r,
            Err(e) => return Err(self.poison(e.into())),
        };
        self.after_record()?;
        Ok(report)
    }

    /// Physically remove deleted documents' postings (§3's background
    /// sweep), as a logged, replayable operation.
    pub fn sweep(&mut self) -> Result<SweepReport> {
        self.check_poison()?;
        if self.inner.pending_deletions() == 0 {
            return Ok(SweepReport::default());
        }
        let record = WalRecord::Sweep {
            batch: self.inner.batches() + 1,
            deletes: self.inner.deleted_docs().collect(),
        };
        self.commit_record(&record)?;
        self.pending_deletes.clear();
        let report = match self.inner.sweep().and_then(|r| {
            self.inner.free_released()?;
            Ok(r)
        }) {
            Ok(r) => r,
            Err(e) => return Err(self.poison(e.into())),
        };
        self.inner.bump_batch();
        self.after_record()?;
        Ok(report)
    }

    /// Rewrite fragmented long lists contiguously, as a logged operation.
    /// Requires a batch boundary (flush first).
    pub fn compact(&mut self) -> Result<CompactReport> {
        self.check_poison()?;
        self.require_boundary("compaction")?;
        let record = WalRecord::Compact { batch: self.inner.batches() + 1 };
        self.commit_record(&record)?;
        let report = match self.inner.compact_lists() {
            Ok(r) => r,
            Err(e) => return Err(self.poison(e.into())),
        };
        self.inner.bump_batch();
        self.after_record()?;
        Ok(report)
    }

    /// Rehash the bucket space to a new geometry, as a logged operation.
    /// Requires a batch boundary (flush first).
    pub fn rebalance(&mut self, num_buckets: usize, capacity_units: u64) -> Result<RebalanceReport> {
        self.check_poison()?;
        self.require_boundary("rebalance")?;
        let record = WalRecord::Rebalance {
            batch: self.inner.batches() + 1,
            num_buckets: num_buckets as u32,
            capacity_units: capacity_units as u32,
        };
        self.commit_record(&record)?;
        let report = match self.inner.rebalance_core(num_buckets, capacity_units).and_then(|r| {
            self.inner.free_released()?;
            Ok(r)
        }) {
            Ok(r) => r,
            Err(e) => return Err(self.poison(e.into())),
        };
        self.inner.bump_batch();
        self.after_record()?;
        Ok(report)
    }

    fn require_boundary(&self, what: &str) -> Result<()> {
        if !self.inner.mem().is_empty() {
            return Err(DurableError::Index(IndexError::InvalidConfig(format!(
                "{what} requires a batch boundary (flush first)"
            ))));
        }
        Ok(())
    }

    fn commit_record(&mut self, record: &WalRecord) -> Result<()> {
        let bytes = match self.wal.append(record) {
            Ok(b) => b,
            Err(e) => return Err(self.poison(e)),
        };
        invidx_obs::counter!(names::WAL_APPENDS).inc();
        invidx_obs::counter!(names::WAL_BYTES).add(bytes);
        if self.opts.fsync_wal {
            if let Err(e) = self.wal.sync() {
                return Err(self.poison(e));
            }
            invidx_obs::counter!(names::WAL_FSYNCS).inc();
        }
        if self.opts.trace_durability_ops {
            let bs = self.inner.array().block_size() as u64;
            self.inner.array().trace_push(IoOp {
                kind: OpKind::Write,
                disk: 0,
                start: record.batch(),
                blocks: bytes.div_ceil(bs).max(1),
                payload: Payload::Wal,
            });
        }
        Ok(())
    }

    fn after_record(&mut self) -> Result<()> {
        self.records_since_ckpt += 1;
        if self.opts.checkpoint_every > 0 && self.records_since_ckpt >= self.opts.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(())
    }

    // ----- checkpointing -----

    /// Stage the higher-layer blob stored in every subsequent checkpoint.
    pub fn set_checkpoint_meta(&mut self, meta: Vec<u8>) {
        self.ckpt_meta = meta;
    }

    /// Write a checkpoint now, reset the WAL, and release quarantined
    /// extents. Returns the checkpoint size in bytes.
    pub fn checkpoint(&mut self) -> Result<u64> {
        self.check_poison()?;
        match self.checkpoint_inner() {
            Ok(b) => Ok(b),
            Err(e) => Err(self.poison(e)),
        }
    }

    fn checkpoint_inner(&mut self) -> Result<u64> {
        let _span = invidx_obs::span("checkpoint");
        // Everything the apply phase wrote must be on the platter before
        // the checkpoint can reference it.
        self.inner.flush_devices()?;
        let snapshot = self.inner.snapshot()?;
        let free_per_disk: Vec<u64> = self
            .inner
            .array()
            .per_disk_usage()
            .iter()
            .zip(self.inner.array().deferred_blocks_per_disk())
            .map(|(&(free, _), deferred)| free + deferred)
            .collect();
        let ck = Checkpoint {
            geometry: self.geometry,
            snapshot,
            free_per_disk,
            meta: self.ckpt_meta.clone(),
        };
        let batch = ck.batch_no();
        let bytes = ck.write(&self.ckpt_path, &self.injector)?;
        invidx_obs::counter!(names::CHECKPOINT_WRITES).inc();
        invidx_obs::counter!(names::CHECKPOINT_BYTES).add(bytes);
        if self.opts.trace_durability_ops {
            let bs = self.inner.array().block_size() as u64;
            self.inner.array().trace_push(IoOp {
                kind: OpKind::Write,
                disk: 0,
                start: batch,
                blocks: bytes.div_ceil(bs).max(1),
                payload: Payload::Checkpoint,
            });
        }
        // The checkpoint is committed: records covering batches <= `batch`
        // are dead, and nothing can replay reads against quarantined
        // extents anymore.
        self.wal.truncate(&self.injector)?;
        self.inner.release_deferred_frees()?;
        self.last_ckpt_batch = batch;
        self.records_since_ckpt = 0;
        invidx_obs::event!("checkpoint", { "batch": batch, "bytes": bytes });
        Ok(bytes)
    }

    fn poison(&mut self, e: DurableError) -> DurableError {
        self.poisoned = true;
        e
    }

    fn check_poison(&self) -> Result<()> {
        if self.poisoned {
            return Err(DurableError::Poisoned);
        }
        Ok(())
    }

    // ----- read path and introspection -----

    /// The full posting list for a word (stored + unflushed, deletion
    /// filtered).
    pub fn postings(&self, word: WordId) -> Result<PostingList> {
        Ok(self.inner.postings(word)?)
    }

    /// Completed batches.
    pub fn batches(&self) -> u64 {
        self.inner.batches()
    }

    /// Current WAL size in bytes.
    pub fn wal_size(&self) -> u64 {
        self.wal.len()
    }

    /// Committed WAL records with batch numbers above `from_batch`,
    /// decoded from the live log — the WAL-shipping read path. `&self` on
    /// purpose: a serving layer answers tail requests under its read lock
    /// while the single writer appends. A torn tail (a record mid-append
    /// on the other side of the lock) is simply not yet visible; the
    /// tailer picks it up on its next poll.
    ///
    /// Only useful on stores running `checkpoint_every: 0`: a checkpoint
    /// resets the WAL, so records at or below the checkpoint batch are
    /// gone and a lagging replica would see a gap it cannot replay across.
    pub fn wal_records_from(&self, from_batch: u64) -> Result<Vec<WalRecord>> {
        let scan = WalReader::scan(&self.wal.read_all()?);
        Ok(scan.records.into_iter().filter(|r| r.batch() > from_batch).collect())
    }

    /// Batch number the latest checkpoint covers.
    pub fn last_checkpoint_batch(&self) -> u64 {
        self.last_ckpt_batch
    }

    /// What recovery did when this handle was opened (None for freshly
    /// created stores).
    pub fn recovery(&self) -> Option<&RecoveryInfo> {
        self.recovery.as_ref()
    }

    /// Device shape of the store.
    pub fn geometry(&self) -> StoreGeometry {
        self.geometry
    }

    /// The fault injector wired through every write site.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Block-cache counters of the underlying index, if configured.
    pub fn cache_stats(&self) -> Option<invidx_core::cache::CacheStats> {
        self.inner.cache_stats()
    }

    /// Borrow the underlying index (queries, statistics).
    pub fn inner(&self) -> &DualIndex {
        &self.inner
    }

    /// Mutable access to the underlying index, for higher layers that keep
    /// their own state in the same disk array (the IR engine's document
    /// store). Mutations made here bypass the WAL: callers must make them
    /// replayable via [`RecoveryHooks`] and WAL-record/checkpoint metadata.
    pub fn inner_mut(&mut self) -> &mut DualIndex {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> StoreGeometry {
        StoreGeometry { disks: 3, blocks_per_disk: 20_000, block_size: 256 }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("invidx-durable-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn load(ix: &mut DurableIndex, docs: std::ops::Range<u32>, words: u64) {
        for d in docs {
            let ws = (1..=words).filter(|w| (d as u64).is_multiple_of(*w)).map(WordId);
            ix.insert_document(DocId(d), ws).unwrap();
        }
    }

    #[test]
    fn create_flush_reopen_round_trip() {
        let dir = tmpdir("roundtrip");
        let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
        let mut ix = DurableIndex::create(&dir, IndexConfig::small(), geom(), opts).unwrap();
        load(&mut ix, 1..40, 10);
        ix.flush().unwrap();
        load(&mut ix, 40..60, 10);
        ix.flush().unwrap();
        assert_eq!(ix.batches(), 2);
        assert!(ix.wal_size() > 0, "no checkpoint ran, both records still logged");
        let expect: Vec<_> =
            (1..=10u64).map(|w| ix.postings(WordId(w)).unwrap()).collect();
        drop(ix);
        // Reopen: batch 0 checkpoint + 2 replayed records.
        let ix = DurableIndex::open(&dir, IndexConfig::small(), opts).unwrap();
        let info = *ix.recovery().unwrap();
        assert_eq!(info.checkpoint_batch, 0);
        assert_eq!(info.replayed_records, 2);
        assert_eq!(info.truncated_bytes, 0);
        assert_eq!(ix.batches(), 2);
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(&ix.postings(WordId(i as u64 + 1)).unwrap(), want);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_resets_wal_and_survives_reopen() {
        let dir = tmpdir("ckpt");
        let opts = DurableOptions { checkpoint_every: 2, ..Default::default() };
        let mut ix = DurableIndex::create(&dir, IndexConfig::small(), geom(), opts).unwrap();
        for b in 0..4u32 {
            load(&mut ix, b * 25 + 1..(b + 1) * 25 + 1, 8);
            ix.flush().unwrap();
        }
        // checkpoint_every=2 → checkpoints at batches 2 and 4, WAL empty.
        assert_eq!(ix.last_checkpoint_batch(), 4);
        assert_eq!(ix.wal_size(), 0);
        let want = ix.postings(WordId(1)).unwrap();
        drop(ix);
        let ix = DurableIndex::open(&dir, IndexConfig::small(), opts).unwrap();
        assert_eq!(ix.recovery().unwrap().replayed_records, 0);
        assert_eq!(ix.batches(), 4);
        assert_eq!(ix.postings(WordId(1)).unwrap(), want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn maintenance_operations_replay() {
        let dir = tmpdir("maint");
        let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
        let mut ix = DurableIndex::create(&dir, IndexConfig::small(), geom(), opts).unwrap();
        for b in 0..3u32 {
            load(&mut ix, b * 40 + 1..(b + 1) * 40 + 1, 8);
            ix.flush().unwrap();
        }
        ix.delete_document(DocId(7));
        ix.delete_document(DocId(14));
        ix.sweep().unwrap();
        ix.compact().unwrap();
        ix.rebalance(24, 60).unwrap();
        let batches = ix.batches();
        assert_eq!(batches, 6, "three flushes + sweep + compact + rebalance");
        let expect: Vec<_> =
            (1..=8u64).map(|w| ix.postings(WordId(w)).unwrap()).collect();
        drop(ix);
        let ix = DurableIndex::open(&dir, IndexConfig::small(), opts).unwrap();
        assert_eq!(ix.recovery().unwrap().replayed_records, 6);
        assert_eq!(ix.batches(), batches);
        assert_eq!(ix.inner().config().num_buckets, 24);
        for (i, want) in expect.iter().enumerate() {
            let got = ix.postings(WordId(i as u64 + 1)).unwrap();
            assert_eq!(&got, want, "word {} differs after replay", i + 1);
            assert!(!got.docs().contains(&DocId(7)));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poisoned_handle_refuses_work() {
        let dir = tmpdir("poison");
        let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
        let inj = FaultInjector::new();
        let mut ix = DurableIndex::create_with(
            &dir,
            IndexConfig::small(),
            geom(),
            opts,
            inj.clone(),
        )
        .unwrap();
        load(&mut ix, 1..20, 6);
        inj.arm(crate::fault::Fault::at(crate::fault::FaultPoint::WalFsync));
        assert!(ix.flush().unwrap_err().is_injected());
        assert!(matches!(ix.flush().unwrap_err(), DurableError::Poisoned));
        assert!(matches!(ix.checkpoint().unwrap_err(), DurableError::Poisoned));
        std::fs::remove_dir_all(&dir).ok();
    }
}
