//! Write-ahead log: length-prefixed, CRC32-checksummed records with
//! fsync-on-commit.
//!
//! Framing on disk is
//!
//! ```text
//! u32 len | u32 crc32(payload) | payload          (all little-endian)
//! ```
//!
//! where the payload starts with a one-byte record kind. The WAL fsync is
//! the **commit point** of a batch: once [`WalWriter::sync`] returns, the
//! batch survives any crash; before it, the batch never happened. Recovery
//! ([`WalReader::scan`]) walks records front to back and stops at the first
//! frame that is short (torn write) or fails its CRC (corrupt write) — that
//! prefix property is what lets the scanner treat "first bad frame" as
//! "end of committed history" and truncate the tail rather than replay it.

use crate::crc::crc32;
use crate::error::{DurableError, Result};
use crate::fault::{DurableFile, FaultInjector, FaultPoint};
use invidx_core::{DocId, WordId};
use std::path::Path;

const KIND_BATCH: u8 = 1;
const KIND_SWEEP: u8 = 2;
const KIND_COMPACT: u8 = 3;
const KIND_REBALANCE: u8 = 4;

/// One logical WAL record. Every variant carries the batch number it
/// produces, so replay can skip records already covered by a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A flushed update batch: the full in-memory index content at flush
    /// time (per-word sorted doc ids), the documents marked deleted in this
    /// batch, and an opaque blob for higher layers (the IR engine logs its
    /// vocabulary growth and document store appends here).
    Batch {
        /// Batch number this flush produces.
        batch: u64,
        /// Per-word postings accumulated since the previous flush.
        lists: Vec<(WordId, Vec<DocId>)>,
        /// Documents marked deleted in this batch.
        deletes: Vec<DocId>,
        /// Opaque higher-layer metadata (may be empty).
        meta: Vec<u8>,
    },
    /// A deletion sweep that physically removed these documents' postings.
    Sweep {
        /// Batch number the sweep produces.
        batch: u64,
        /// The deleted-doc set the sweep folded in.
        deletes: Vec<DocId>,
    },
    /// A long-list compaction pass.
    Compact {
        /// Batch number the compaction produces.
        batch: u64,
    },
    /// A bucket rebalance to a new geometry.
    Rebalance {
        /// Batch number the rebalance produces.
        batch: u64,
        /// New bucket count.
        num_buckets: u32,
        /// New per-bucket capacity in allocation units.
        capacity_units: u32,
    },
}

impl WalRecord {
    /// The batch number this record produces when applied.
    pub fn batch(&self) -> u64 {
        match self {
            Self::Batch { batch, .. }
            | Self::Sweep { batch, .. }
            | Self::Compact { batch }
            | Self::Rebalance { batch, .. } => *batch,
        }
    }

    /// Encode the payload (kind byte + body, no framing).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Self::Batch { batch, lists, deletes, meta } => {
                out.push(KIND_BATCH);
                out.extend_from_slice(&batch.to_le_bytes());
                out.extend_from_slice(&(lists.len() as u32).to_le_bytes());
                for (word, docs) in lists {
                    out.extend_from_slice(&word.0.to_le_bytes());
                    out.extend_from_slice(&(docs.len() as u32).to_le_bytes());
                    for d in docs {
                        out.extend_from_slice(&d.0.to_le_bytes());
                    }
                }
                out.extend_from_slice(&(deletes.len() as u32).to_le_bytes());
                for d in deletes {
                    out.extend_from_slice(&d.0.to_le_bytes());
                }
                out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
                out.extend_from_slice(meta);
            }
            Self::Sweep { batch, deletes } => {
                out.push(KIND_SWEEP);
                out.extend_from_slice(&batch.to_le_bytes());
                out.extend_from_slice(&(deletes.len() as u32).to_le_bytes());
                for d in deletes {
                    out.extend_from_slice(&d.0.to_le_bytes());
                }
            }
            Self::Compact { batch } => {
                out.push(KIND_COMPACT);
                out.extend_from_slice(&batch.to_le_bytes());
            }
            Self::Rebalance { batch, num_buckets, capacity_units } => {
                out.push(KIND_REBALANCE);
                out.extend_from_slice(&batch.to_le_bytes());
                out.extend_from_slice(&num_buckets.to_le_bytes());
                out.extend_from_slice(&capacity_units.to_le_bytes());
            }
        }
        out
    }

    /// Decode a payload produced by [`WalRecord::encode_payload`].
    pub fn decode_payload(bytes: &[u8]) -> Result<Self> {
        let mut cur = Cursor { bytes, pos: 0 };
        let kind = cur.u8()?;
        let rec = match kind {
            KIND_BATCH => {
                let batch = cur.u64le()?;
                let nwords = cur.u32le()? as usize;
                let mut lists = Vec::with_capacity(nwords.min(1 << 20));
                for _ in 0..nwords {
                    let word = WordId(cur.u64le()?);
                    let ndocs = cur.u32le()? as usize;
                    let mut docs = Vec::with_capacity(ndocs.min(1 << 20));
                    for _ in 0..ndocs {
                        docs.push(DocId(cur.u32le()?));
                    }
                    lists.push((word, docs));
                }
                let ndel = cur.u32le()? as usize;
                let mut deletes = Vec::with_capacity(ndel.min(1 << 20));
                for _ in 0..ndel {
                    deletes.push(DocId(cur.u32le()?));
                }
                let mlen = cur.u32le()? as usize;
                let meta = cur.take(mlen)?.to_vec();
                Self::Batch { batch, lists, deletes, meta }
            }
            KIND_SWEEP => {
                let batch = cur.u64le()?;
                let ndel = cur.u32le()? as usize;
                let mut deletes = Vec::with_capacity(ndel.min(1 << 20));
                for _ in 0..ndel {
                    deletes.push(DocId(cur.u32le()?));
                }
                Self::Sweep { batch, deletes }
            }
            KIND_COMPACT => Self::Compact { batch: cur.u64le()? },
            KIND_REBALANCE => Self::Rebalance {
                batch: cur.u64le()?,
                num_buckets: cur.u32le()?,
                capacity_units: cur.u32le()?,
            },
            k => return Err(DurableError::Corrupt(format!("unknown WAL record kind {k}"))),
        };
        if cur.pos != bytes.len() {
            return Err(DurableError::Corrupt(format!(
                "WAL record has {} trailing bytes",
                bytes.len() - cur.pos
            )));
        }
        Ok(rec)
    }

    /// Encode the full on-disk frame: `len | crc | payload`.
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(8 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(DurableError::Corrupt("WAL record truncated mid-field".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32le(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64le(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Appends framed records to the log file; [`WalWriter::sync`] is the
/// commit point.
#[derive(Debug)]
pub struct WalWriter {
    file: DurableFile,
}

impl WalWriter {
    /// Open (creating if absent) the log at `path`. Injected faults strike
    /// at [`FaultPoint::WalAppend`] / [`FaultPoint::WalFsync`].
    pub fn open(path: &Path, injector: FaultInjector) -> Result<Self> {
        let file =
            DurableFile::open_append(path, injector, FaultPoint::WalAppend, FaultPoint::WalFsync)?;
        Ok(Self { file })
    }

    /// Append one record (not yet durable). Returns the frame size in
    /// bytes.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64> {
        self.append_frame(&record.encode_frame())
    }

    /// Append an already-encoded frame (the pipelined flush serializes the
    /// record on the caller's thread and ships the bytes to a background
    /// append+fsync). Returns the frame size in bytes.
    pub fn append_frame(&mut self, frame: &[u8]) -> Result<u64> {
        self.file.append(frame)?;
        Ok(frame.len() as u64)
    }

    /// fsync — the commit point.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync()
    }

    /// Current log size in bytes.
    pub fn len(&self) -> u64 {
        self.file.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.file.is_empty()
    }

    /// Reset the log after a committed checkpoint. An armed
    /// [`FaultPoint::WalTruncate`] fault fires *before* the truncation, so
    /// the crash leaves the full log alongside the new checkpoint.
    pub fn truncate(&mut self, injector: &FaultInjector) -> Result<()> {
        injector.check_event(FaultPoint::WalTruncate)?;
        self.file.truncate(0)
    }

    /// Cut the log at `to` bytes — recovery's torn-tail removal. Not a
    /// fault point: it runs during open, before any new commits.
    pub fn truncate_to(&mut self, to: u64) -> Result<()> {
        self.file.truncate(to)
    }

    /// Read the raw log bytes (for recovery scans).
    pub fn read_all(&self) -> Result<Vec<u8>> {
        self.file.read_all()
    }
}

/// Result of scanning a log: the committed records plus how much tail was
/// discarded as torn or corrupt.
#[derive(Debug)]
pub struct WalScan {
    /// Records that passed framing and CRC checks, in log order.
    pub records: Vec<WalRecord>,
    /// Byte offset of the end of the last valid record — the length the
    /// log should be truncated to.
    pub valid_len: u64,
    /// Bytes past `valid_len` that were discarded.
    pub truncated: u64,
}

/// Scanner for the recovery path.
pub struct WalReader;

impl WalReader {
    /// Walk `bytes` front to back, returning every whole, checksum-valid
    /// record and stopping at the first torn or corrupt frame.
    pub fn scan(bytes: &[u8]) -> WalScan {
        let mut records = Vec::new();
        let mut pos = 0usize;
        loop {
            let rest = &bytes[pos..];
            if rest.len() < 8 {
                break; // torn frame header (or clean EOF at 0)
            }
            let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
            if rest.len() < 8 + len {
                break; // torn payload
            }
            let payload = &rest[8..8 + len];
            if crc32(payload) != crc {
                break; // corrupt payload: stop, do not replay
            }
            match WalRecord::decode_payload(payload) {
                Ok(rec) => records.push(rec),
                Err(_) => break, // CRC passed but structure is nonsense
            }
            pos += 8 + len;
        }
        WalScan {
            records,
            valid_len: pos as u64,
            truncated: (bytes.len() - pos) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch(batch: u64) -> WalRecord {
        WalRecord::Batch {
            batch,
            lists: vec![
                (WordId(1), vec![DocId(1), DocId(2), DocId(9)]),
                (WordId(u64::MAX), vec![DocId(u32::MAX)]),
            ],
            deletes: vec![DocId(4)],
            meta: b"engine-meta".to_vec(),
        }
    }

    #[test]
    fn payload_round_trip_all_kinds() {
        let records = [
            sample_batch(7),
            WalRecord::Batch { batch: 0, lists: vec![], deletes: vec![], meta: vec![] },
            WalRecord::Sweep { batch: 3, deletes: vec![DocId(1), DocId(2)] },
            WalRecord::Compact { batch: 9 },
            WalRecord::Rebalance { batch: 11, num_buckets: 64, capacity_units: 12 },
        ];
        for rec in records {
            let payload = rec.encode_payload();
            assert_eq!(WalRecord::decode_payload(&payload).unwrap(), rec);
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes_and_bad_kind() {
        let mut payload = WalRecord::Compact { batch: 1 }.encode_payload();
        payload.push(0);
        assert!(WalRecord::decode_payload(&payload).is_err());
        assert!(WalRecord::decode_payload(&[99]).is_err());
        assert!(WalRecord::decode_payload(&[]).is_err());
    }

    #[test]
    fn scan_stops_at_torn_tail() {
        let mut log = Vec::new();
        log.extend_from_slice(&sample_batch(1).encode_frame());
        log.extend_from_slice(&sample_batch(2).encode_frame());
        let full = log.len();
        let torn = &sample_batch(3).encode_frame();
        log.extend_from_slice(&torn[..torn.len() / 2]);
        let scan = WalReader::scan(&log);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.valid_len as usize, full);
        assert_eq!(scan.truncated as usize, torn.len() / 2);
    }

    #[test]
    fn scan_stops_at_corrupt_record() {
        let mut log = Vec::new();
        log.extend_from_slice(&sample_batch(1).encode_frame());
        let keep = log.len();
        let mut bad = sample_batch(2).encode_frame();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        log.extend_from_slice(&bad);
        // A corrupt record hides any records after it: that is the prefix
        // property — nothing past the first bad frame is trusted.
        log.extend_from_slice(&sample_batch(3).encode_frame());
        let scan = WalReader::scan(&log);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len as usize, keep);
    }

    #[test]
    fn writer_appends_and_scans_back() {
        let dir = std::env::temp_dir().join(format!("invidx-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        std::fs::remove_file(&path).ok();
        let inj = FaultInjector::new();
        let mut w = WalWriter::open(&path, inj.clone()).unwrap();
        assert!(w.is_empty());
        w.append(&sample_batch(1)).unwrap();
        w.append(&WalRecord::Compact { batch: 2 }).unwrap();
        w.sync().unwrap();
        let scan = WalReader::scan(&w.read_all().unwrap());
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1], WalRecord::Compact { batch: 2 });
        assert_eq!(scan.truncated, 0);
        w.truncate(&inj).unwrap();
        assert_eq!(w.len(), 0);
        std::fs::remove_file(&path).ok();
    }
}
