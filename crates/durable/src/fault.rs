//! Fault injection: kill the durability pipeline at every write site.
//!
//! A [`FaultInjector`] is a small shared control block that test harnesses
//! arm with one [`Fault`]. The injectable writers consult it:
//!
//! * [`DurableFile`] — the append-only file wrapper used for the WAL and
//!   checkpoint temp files. It can die after N bytes of a write, drop the
//!   unsynced tail (modelling lost page cache on power failure), or corrupt
//!   a byte of the record being written.
//! * [`FaultDevice`] — a [`BlockDevice`] wrapper that dies after N block
//!   writes or at flush, killing the *apply* phase between WAL commit and
//!   checkpoint.
//!
//! When a fault fires it also applies the crash's effect on the file state
//! (truncation to the durable watermark for lost-fsync modes), so the test
//! can simply drop the store and re-open it: the files look exactly as they
//! would after a real power cut at that point.

use crate::error::{DurableError, Result};
use invidx_disk::{BlockDevice, DiskError};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Every write site in the durable pipeline where a crash can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// During the WAL record append (before the commit fsync).
    WalAppend,
    /// At the WAL commit fsync.
    WalFsync,
    /// During a device block write in the apply phase (after WAL commit).
    ApplyWrite,
    /// At the device flush that precedes a checkpoint.
    DeviceFlush,
    /// During the checkpoint temp-file write.
    CheckpointWrite,
    /// At the checkpoint temp-file fsync.
    CheckpointFsync,
    /// At the atomic rename that commits the checkpoint.
    CheckpointRename,
    /// At the WAL truncation that follows a committed checkpoint.
    WalTruncate,
}

impl FaultPoint {
    /// All points, for building test matrices.
    pub const ALL: [FaultPoint; 8] = [
        FaultPoint::WalAppend,
        FaultPoint::WalFsync,
        FaultPoint::ApplyWrite,
        FaultPoint::DeviceFlush,
        FaultPoint::CheckpointWrite,
        FaultPoint::CheckpointFsync,
        FaultPoint::CheckpointRename,
        FaultPoint::WalTruncate,
    ];

    /// Does a fault at this point strike BEFORE the WAL commit fsync
    /// completes? If so, the in-flight batch is uncommitted and recovery
    /// must restore the previous batch; otherwise the batch is committed
    /// and recovery must replay it.
    pub fn before_commit(self) -> bool {
        matches!(self, FaultPoint::WalAppend | FaultPoint::WalFsync)
    }
}

/// How the injected crash mangles the bytes in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The write partially reaches the platter: a torn tail remains.
    Torn,
    /// Everything since the last fsync is lost (page cache never flushed).
    LoseUnsynced,
    /// The record lands full-length but with a flipped byte.
    CorruptByte,
}

/// An armed fault: where, when, and how.
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    /// The write site to strike.
    pub point: FaultPoint,
    /// For byte-stream points: bytes of the current write allowed through
    /// before dying. For [`FaultPoint::ApplyWrite`]: device block writes
    /// allowed before dying. Ignored for pure event points (fsync, rename,
    /// truncate, flush).
    pub after: u64,
    /// Crash effect on the in-flight bytes.
    pub mode: FaultMode,
}

impl Fault {
    /// A fault at `point` with default byte budget 0 and torn-write mode.
    pub fn at(point: FaultPoint) -> Self {
        Self { point, after: 0, mode: FaultMode::Torn }
    }

    /// Set the byte/write budget.
    pub fn after(mut self, n: u64) -> Self {
        self.after = n;
        self
    }

    /// Set the crash mode.
    pub fn mode(mut self, mode: FaultMode) -> Self {
        self.mode = mode;
        self
    }
}

#[derive(Debug, Default)]
struct InjectorState {
    armed: Option<Fault>,
    fired: Option<FaultPoint>,
}

/// Shared, cloneable fault control block.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector(Arc<Mutex<InjectorState>>);

impl FaultInjector {
    /// A disarmed injector (the production configuration).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm one fault. Replaces any previously armed fault and clears the
    /// fired flag.
    pub fn arm(&self, fault: Fault) {
        let mut st = self.0.lock();
        st.armed = Some(fault);
        st.fired = None;
    }

    /// Reset the injector: clear any armed fault and the fired flag.
    pub fn disarm(&self) {
        let mut st = self.0.lock();
        st.armed = None;
        st.fired = None;
    }

    /// The point whose fault fired, if any.
    pub fn fired(&self) -> Option<FaultPoint> {
        self.0.lock().fired
    }

    /// Consume an armed byte-stream fault at `point`, returning the crash
    /// parameters. Disarms and records the firing.
    fn take_write_fault(&self, point: FaultPoint) -> Option<Fault> {
        let mut st = self.0.lock();
        match st.armed {
            Some(f) if f.point == point => {
                st.armed = None;
                st.fired = Some(point);
                Some(f)
            }
            _ => None,
        }
    }

    /// Fire an armed event fault (fsync/rename/truncate/flush) at `point`.
    fn take_event_fault(&self, point: FaultPoint) -> bool {
        let mut st = self.0.lock();
        match st.armed {
            Some(f) if f.point == point => {
                st.armed = None;
                st.fired = Some(point);
                true
            }
            _ => None::<()>.is_some(),
        }
    }

    /// Count one device block write against an armed
    /// [`FaultPoint::ApplyWrite`] budget; true means "die now".
    fn count_device_write(&self) -> bool {
        let mut st = self.0.lock();
        match &mut st.armed {
            Some(f) if f.point == FaultPoint::ApplyWrite => {
                if f.after == 0 {
                    st.armed = None;
                    st.fired = Some(FaultPoint::ApplyWrite);
                    true
                } else {
                    f.after -= 1;
                    false
                }
            }
            _ => false,
        }
    }

    /// Public hook for custom write sites in tests.
    pub fn check_event(&self, point: FaultPoint) -> Result<()> {
        if self.take_event_fault(point) {
            return Err(DurableError::Injected(point));
        }
        Ok(())
    }
}

/// An append-only file with a durable watermark and injectable crashes —
/// the writer used for the WAL and for checkpoint temp files.
///
/// `len` tracks the logical end of file; `synced_len` tracks how much is
/// known durable (advanced only by [`DurableFile::sync`]). When an
/// injected crash fires in a mode that loses the page cache, the file is
/// physically truncated back to `synced_len`, so a subsequent re-open sees
/// exactly what a power cut would have left.
#[derive(Debug)]
pub struct DurableFile {
    file: File,
    path: PathBuf,
    len: u64,
    synced_len: u64,
    injector: FaultInjector,
    write_point: FaultPoint,
    fsync_point: FaultPoint,
}

impl DurableFile {
    /// Open (creating if absent) for appends. Existing contents are assumed
    /// durable.
    pub fn open_append(
        path: &Path,
        injector: FaultInjector,
        write_point: FaultPoint,
        fsync_point: FaultPoint,
    ) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            file,
            path: path.to_path_buf(),
            len,
            synced_len: len,
            injector,
            write_point,
            fsync_point,
        })
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Logical length (bytes appended so far).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes known durable.
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// Append `data` at the end of the file.
    pub fn append(&mut self, data: &[u8]) -> Result<()> {
        if let Some(fault) = self.injector.take_write_fault(self.write_point) {
            let allow = (fault.after as usize).min(data.len());
            match fault.mode {
                FaultMode::Torn => {
                    // Part of the write hits the platter, then power dies.
                    self.file.write_all_at(&data[..allow], self.len)?;
                    self.file.sync_data()?;
                }
                FaultMode::LoseUnsynced => {
                    self.file.write_all_at(&data[..allow], self.len)?;
                    self.file.set_len(self.synced_len)?;
                    self.file.sync_data()?;
                }
                FaultMode::CorruptByte => {
                    let mut bad = data.to_vec();
                    if !bad.is_empty() {
                        let i = allow.min(bad.len() - 1);
                        bad[i] ^= 0xFF;
                    }
                    self.file.write_all_at(&bad, self.len)?;
                    self.file.sync_data()?;
                }
            }
            return Err(DurableError::Injected(self.write_point));
        }
        self.file.write_all_at(data, self.len)?;
        self.len += data.len() as u64;
        Ok(())
    }

    /// fsync: advance the durable watermark. An injected crash here loses
    /// the unsynced tail (the classic "fsync failure is fatal" semantics).
    pub fn sync(&mut self) -> Result<()> {
        if self.injector.take_event_fault(self.fsync_point) {
            self.file.set_len(self.synced_len)?;
            self.file.sync_data()?;
            self.len = self.synced_len;
            return Err(DurableError::Injected(self.fsync_point));
        }
        self.file.sync_data()?;
        self.synced_len = self.len;
        Ok(())
    }

    /// Truncate to `to` bytes and fsync (WAL reset after a checkpoint).
    pub fn truncate(&mut self, to: u64) -> Result<()> {
        self.file.set_len(to)?;
        self.file.sync_data()?;
        self.len = to;
        self.synced_len = self.synced_len.min(to);
        Ok(())
    }

    /// Read the whole file (recovery scan).
    pub fn read_all(&self) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; self.len as usize];
        self.file.read_exact_at(&mut buf, 0)?;
        Ok(buf)
    }
}

/// A [`BlockDevice`] wrapper that can die after N block writes or at
/// flush — crashes in the apply phase, between WAL commit and checkpoint.
pub struct FaultDevice<D> {
    inner: D,
    injector: FaultInjector,
}

impl<D: BlockDevice> FaultDevice<D> {
    /// Wrap a device.
    pub fn new(inner: D, injector: FaultInjector) -> Self {
        Self { inner, injector }
    }
}

impl<D: BlockDevice> BlockDevice for FaultDevice<D> {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read(&self, start: u64, buf: &mut [u8]) -> invidx_disk::Result<()> {
        self.inner.read(start, buf)
    }

    fn write(&mut self, start: u64, data: &[u8]) -> invidx_disk::Result<()> {
        if self.injector.count_device_write() {
            return Err(DiskError::Io(std::io::Error::other("injected crash (apply write)")));
        }
        self.inner.write(start, data)
    }

    fn flush(&mut self) -> invidx_disk::Result<()> {
        if self.injector.take_event_fault(FaultPoint::DeviceFlush) {
            return Err(DiskError::Io(std::io::Error::other("injected crash (device flush)")));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("invidx-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn torn_write_leaves_partial_tail() {
        let path = tmp("torn.log");
        std::fs::remove_file(&path).ok();
        let inj = FaultInjector::new();
        let mut f =
            DurableFile::open_append(&path, inj.clone(), FaultPoint::WalAppend, FaultPoint::WalFsync)
                .unwrap();
        f.append(b"committed").unwrap();
        f.sync().unwrap();
        inj.arm(Fault::at(FaultPoint::WalAppend).after(3));
        let err = f.append(b"torn-record").unwrap_err();
        assert!(err.is_injected());
        assert_eq!(inj.fired(), Some(FaultPoint::WalAppend));
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk, b"committedtor");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lost_fsync_rolls_back_to_watermark() {
        let path = tmp("lost.log");
        std::fs::remove_file(&path).ok();
        let inj = FaultInjector::new();
        let mut f =
            DurableFile::open_append(&path, inj.clone(), FaultPoint::WalAppend, FaultPoint::WalFsync)
                .unwrap();
        f.append(b"durable").unwrap();
        f.sync().unwrap();
        f.append(b"in-cache").unwrap();
        inj.arm(Fault::at(FaultPoint::WalFsync));
        assert!(f.sync().unwrap_err().is_injected());
        assert_eq!(std::fs::read(&path).unwrap(), b"durable");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_byte_keeps_length() {
        let path = tmp("corrupt.log");
        std::fs::remove_file(&path).ok();
        let inj = FaultInjector::new();
        let mut f =
            DurableFile::open_append(&path, inj.clone(), FaultPoint::WalAppend, FaultPoint::WalFsync)
                .unwrap();
        inj.arm(Fault::at(FaultPoint::WalAppend).after(2).mode(FaultMode::CorruptByte));
        assert!(f.append(b"abcdef").unwrap_err().is_injected());
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk.len(), 6);
        assert_ne!(on_disk, b"abcdef");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn device_write_budget_counts_down() {
        let inj = FaultInjector::new();
        let mut dev = FaultDevice::new(invidx_disk::MemDevice::new(16, 64), inj.clone());
        inj.arm(Fault::at(FaultPoint::ApplyWrite).after(2));
        let block = vec![0u8; 64];
        dev.write(0, &block).unwrap();
        dev.write(1, &block).unwrap();
        assert!(dev.write(2, &block).is_err());
        assert_eq!(inj.fired(), Some(FaultPoint::ApplyWrite));
        // After firing the device works again (the "next life").
        dev.write(3, &block).unwrap();
    }
}
