//! The crash-consistency matrix: kill the durability pipeline at every
//! write site ([`FaultPoint::ALL`]), in every applicable failure mode,
//! then recover and prove the store holds *exactly* the last committed
//! batch — by diffing the full posting list of every word against an
//! independent model.

use invidx_core::{DocId, IndexConfig, PostingList, WordId};
use invidx_durable::{
    DurableIndex, DurableOptions, Fault, FaultInjector, FaultMode, FaultPoint, StoreGeometry,
};
use std::collections::BTreeSet;
use std::path::PathBuf;

const DOCS_PER_BATCH: u32 = 60;
const WORDS: u64 = 10;
/// Docs deleted while building batch 2 (they ride in record 2).
const DELETED: [u32; 2] = [3, 10];

fn geom() -> StoreGeometry {
    StoreGeometry { disks: 3, blocks_per_disk: 20_000, block_size: 256 }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("invidx-faults-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Word w appears in doc d iff d % w == 0 — deterministic and Zipf-ish.
fn insert_batch(ix: &mut DurableIndex, batch: u32) {
    let lo = (batch - 1) * DOCS_PER_BATCH + 1;
    let hi = batch * DOCS_PER_BATCH + 1;
    for d in lo..hi {
        let words = (1..=WORDS).filter(|w| (d as u64).is_multiple_of(*w)).map(WordId);
        ix.insert_document(DocId(d), words).unwrap();
    }
}

/// The model: expected postings for `word` after `batches` committed
/// batches (deletes apply from batch 2 on).
fn expected(word: u64, batches: u64) -> PostingList {
    let deleted: BTreeSet<u32> = if batches >= 2 { DELETED.into_iter().collect() } else { BTreeSet::new() };
    let hi = batches as u32 * DOCS_PER_BATCH;
    PostingList::from_sorted(
        (1..=hi)
            .filter(|d| (*d as u64).is_multiple_of(word) && !deleted.contains(d))
            .map(DocId)
            .collect(),
    )
}

fn verify_all_words(ix: &DurableIndex, batches: u64, tag: &str) {
    for w in 1..=WORDS {
        let got = ix.postings(WordId(w)).unwrap();
        let want = expected(w, batches);
        assert_eq!(
            got, want,
            "[{tag}] word {w} differs after recovery to batch {batches}: \
             got {} postings, want {}",
            got.len(),
            want.len()
        );
    }
    // And a word that never existed stays absent.
    assert!(ix.postings(WordId(999)).unwrap().is_empty(), "[{tag}] ghost word appeared");
}

/// Run the scenario: two committed batches, then batch 3 under an armed
/// fault (batch 3's flush also triggers the auto-checkpoint, so every
/// fault point has a write site to strike). Returns after proving the
/// recovered store matches the expected committed state AND accepts new
/// batches.
fn crash_and_recover(fault: Fault) {
    let tag = format!("{:?}-{:?}-{}", fault.point, fault.mode, fault.after);
    let dir = tmpdir(&tag);
    let inj = FaultInjector::new();
    let opts = DurableOptions { checkpoint_every: 3, ..Default::default() };
    let mut ix = DurableIndex::create_with(&dir, IndexConfig::small(), geom(), opts, inj.clone())
        .expect("create");

    insert_batch(&mut ix, 1);
    ix.flush().unwrap();
    for d in DELETED {
        ix.delete_document(DocId(d));
    }
    insert_batch(&mut ix, 2);
    ix.flush().unwrap();

    insert_batch(&mut ix, 3);
    inj.arm(fault);
    let err = ix.flush().expect_err(&format!("[{tag}] armed fault did not break the flush"));
    assert_eq!(
        inj.fired(),
        Some(fault.point),
        "[{tag}] flush failed ({err}) but not from the armed fault"
    );
    drop(ix);
    inj.disarm();

    // Recover. Faults before the WAL commit lose batch 3 entirely; faults
    // after it replay batch 3.
    let committed = if fault.point.before_commit() { 2 } else { 3 };
    let ix = DurableIndex::open_with(&dir, IndexConfig::small(), opts, inj.clone(), &mut ())
        .unwrap_or_else(|e| panic!("[{tag}] recovery failed: {e}"));
    assert_eq!(ix.batches(), committed, "[{tag}] wrong batch count after recovery");
    assert_eq!(inj.fired(), None, "[{tag}] injector fired during recovery");
    verify_all_words(&ix, committed, &tag);

    // The recovered store must keep working: commit another batch and
    // survive one more clean reopen.
    let mut ix = ix;
    insert_batch(&mut ix, committed as u32 + 1);
    ix.flush().unwrap_or_else(|e| panic!("[{tag}] post-recovery flush failed: {e}"));
    verify_all_words(&ix, committed + 1, &tag);
    drop(ix);
    let ix = DurableIndex::open(&dir, IndexConfig::small(), opts)
        .unwrap_or_else(|e| panic!("[{tag}] second recovery failed: {e}"));
    verify_all_words(&ix, committed + 1, &tag);
    drop(ix);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_at_wal_append_torn() {
    crash_and_recover(Fault::at(FaultPoint::WalAppend).after(5).mode(FaultMode::Torn));
}

#[test]
fn kill_at_wal_append_nothing_written() {
    crash_and_recover(Fault::at(FaultPoint::WalAppend).after(0).mode(FaultMode::Torn));
}

#[test]
fn kill_at_wal_append_lost_page_cache() {
    crash_and_recover(Fault::at(FaultPoint::WalAppend).after(64).mode(FaultMode::LoseUnsynced));
}

#[test]
fn kill_at_wal_append_corrupt_record() {
    crash_and_recover(Fault::at(FaultPoint::WalAppend).after(20).mode(FaultMode::CorruptByte));
}

#[test]
fn kill_at_wal_fsync() {
    crash_and_recover(Fault::at(FaultPoint::WalFsync));
}

#[test]
fn kill_at_first_apply_write() {
    crash_and_recover(Fault::at(FaultPoint::ApplyWrite).after(0));
}

#[test]
fn kill_mid_apply() {
    crash_and_recover(Fault::at(FaultPoint::ApplyWrite).after(1));
}

#[test]
fn kill_at_device_flush() {
    crash_and_recover(Fault::at(FaultPoint::DeviceFlush));
}

#[test]
fn kill_during_checkpoint_write() {
    crash_and_recover(Fault::at(FaultPoint::CheckpointWrite).after(100).mode(FaultMode::Torn));
}

#[test]
fn kill_during_checkpoint_write_corrupt() {
    crash_and_recover(Fault::at(FaultPoint::CheckpointWrite).after(40).mode(FaultMode::CorruptByte));
}

#[test]
fn kill_at_checkpoint_fsync() {
    crash_and_recover(Fault::at(FaultPoint::CheckpointFsync));
}

#[test]
fn kill_at_checkpoint_rename() {
    crash_and_recover(Fault::at(FaultPoint::CheckpointRename));
}

#[test]
fn kill_at_wal_truncate() {
    crash_and_recover(Fault::at(FaultPoint::WalTruncate));
}

/// Every fault point is exercised by the named tests above; this guards
/// against the matrix silently falling out of sync with the enum.
#[test]
fn matrix_covers_every_fault_point() {
    let covered = [
        FaultPoint::WalAppend,
        FaultPoint::WalFsync,
        FaultPoint::ApplyWrite,
        FaultPoint::DeviceFlush,
        FaultPoint::CheckpointWrite,
        FaultPoint::CheckpointFsync,
        FaultPoint::CheckpointRename,
        FaultPoint::WalTruncate,
    ];
    assert_eq!(covered, FaultPoint::ALL);
}

/// A crash while a *later* batch was being logged must not disturb state
/// already covered by a mid-stream checkpoint (restore-then-replay path,
/// not just restore).
#[test]
fn recovery_from_mid_stream_checkpoint_plus_replay() {
    let dir = tmpdir("midstream");
    let inj = FaultInjector::new();
    let opts = DurableOptions { checkpoint_every: 2, ..Default::default() };
    let mut ix =
        DurableIndex::create_with(&dir, IndexConfig::small(), geom(), opts, inj.clone()).unwrap();
    insert_batch(&mut ix, 1);
    ix.flush().unwrap();
    for d in DELETED {
        ix.delete_document(DocId(d));
    }
    insert_batch(&mut ix, 2);
    ix.flush().unwrap(); // auto-checkpoint at batch 2
    assert_eq!(ix.last_checkpoint_batch(), 2);
    insert_batch(&mut ix, 3);
    ix.flush().unwrap(); // logged past the checkpoint
    insert_batch(&mut ix, 4);
    inj.arm(Fault::at(FaultPoint::WalFsync));
    ix.flush().unwrap_err();
    drop(ix);
    inj.disarm();

    let ix = DurableIndex::open(&dir, IndexConfig::small(), opts).unwrap();
    let info = *ix.recovery().unwrap();
    assert_eq!(info.checkpoint_batch, 2);
    assert_eq!(info.replayed_records, 1, "batch 3 replays on top of the checkpoint");
    assert_eq!(ix.batches(), 3);
    verify_all_words(&ix, 3, "midstream");
    std::fs::remove_dir_all(&dir).ok();
}

/// Garbage appended to the WAL by outside forces is CRC-detected,
/// truncated, and never replayed.
#[test]
fn external_garbage_tail_is_truncated_not_replayed() {
    let dir = tmpdir("garbage");
    let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
    let mut ix = DurableIndex::create(&dir, IndexConfig::small(), geom(), opts).unwrap();
    insert_batch(&mut ix, 1);
    ix.flush().unwrap();
    drop(ix);
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    let clean = bytes.len() as u64;
    bytes.extend_from_slice(&[0xAB; 37]); // torn header + junk
    std::fs::write(&wal, &bytes).unwrap();

    let ix = DurableIndex::open(&dir, IndexConfig::small(), opts).unwrap();
    let info = *ix.recovery().unwrap();
    assert_eq!(info.truncated_bytes, 37);
    assert_eq!(info.replayed_records, 1);
    assert_eq!(ix.batches(), 1);
    verify_all_words(&ix, 1, "garbage");
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), clean, "tail physically removed");
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupted checkpoint file must be reported as corruption, not
/// silently misread.
#[test]
fn corrupt_checkpoint_is_detected() {
    let dir = tmpdir("badckpt");
    let opts = DurableOptions::default();
    let mut ix = DurableIndex::create(&dir, IndexConfig::small(), geom(), opts).unwrap();
    insert_batch(&mut ix, 1);
    ix.flush().unwrap();
    ix.checkpoint().unwrap();
    drop(ix);
    let path = dir.join("index.ckpt");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let err = match DurableIndex::open(&dir, IndexConfig::small(), opts) {
        Err(e) => e,
        Ok(_) => panic!("corrupted checkpoint was accepted"),
    };
    assert!(
        err.to_string().contains("corrupt"),
        "expected a corruption error, got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Maintenance operations (sweep, compact, rebalance) under fire: a crash
/// right after the sweep's WAL commit must replay the sweep.
#[test]
fn sweep_replays_after_apply_crash() {
    let dir = tmpdir("sweepcrash");
    let inj = FaultInjector::new();
    let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
    let mut ix =
        DurableIndex::create_with(&dir, IndexConfig::small(), geom(), opts, inj.clone()).unwrap();
    insert_batch(&mut ix, 1);
    ix.flush().unwrap();
    for d in DELETED {
        ix.delete_document(DocId(d));
    }
    insert_batch(&mut ix, 2);
    ix.flush().unwrap();
    // The sweep rewrites long lists; kill its first device write.
    inj.arm(Fault::at(FaultPoint::ApplyWrite).after(0));
    ix.sweep().unwrap_err();
    assert_eq!(inj.fired(), Some(FaultPoint::ApplyWrite));
    drop(ix);
    inj.disarm();

    let ix = DurableIndex::open(&dir, IndexConfig::small(), opts).unwrap();
    assert_eq!(ix.batches(), 3, "sweep record committed, so recovery replays it");
    assert_eq!(ix.inner().pending_deletions(), 0, "sweep consumed the deletion filter");
    verify_all_words(&ix, 2, "sweepcrash");
    std::fs::remove_dir_all(&dir).ok();
}
