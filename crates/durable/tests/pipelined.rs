//! Pipelined WAL equivalence: overlapping the WAL append/fsync with the
//! in-place apply must not change anything observable — the committed
//! index state, the batch reports, the recovery outcome, or the parallel
//! ingest path layered on top.

use invidx_core::{DocId, IndexConfig, WordId};
use invidx_durable::{DurableIndex, DurableOptions, StoreGeometry};
use std::path::PathBuf;

const DOCS_PER_BATCH: u32 = 40;
const WORDS: u64 = 12;
const BATCHES: u32 = 6;

fn geom() -> StoreGeometry {
    StoreGeometry { disks: 3, blocks_per_disk: 20_000, block_size: 256 }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("invidx-pipelined-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn batch_docs(batch: u32) -> Vec<(DocId, Vec<WordId>)> {
    let lo = (batch - 1) * DOCS_PER_BATCH + 1;
    let hi = batch * DOCS_PER_BATCH + 1;
    (lo..hi)
        .map(|d| {
            let words =
                (1..=WORDS).filter(|w| (d as u64).is_multiple_of(*w)).map(WordId).collect::<Vec<_>>();
            (DocId(d), words)
        })
        .collect()
}

fn run(tag: &str, options: DurableOptions, ingest_threads: usize) -> (PathBuf, Vec<String>) {
    let dir = tmpdir(tag);
    let config = IndexConfig { ingest_threads, ..IndexConfig::small() };
    let mut ix = DurableIndex::create(&dir, config, geom(), options).expect("create");
    let mut reports = Vec::new();
    for b in 1..=BATCHES {
        ix.insert_documents(batch_docs(b), ingest_threads).expect("insert");
        if b == 3 {
            ix.delete_document(DocId(5));
            ix.delete_document(DocId(17));
        }
        let r = ix.flush().expect("flush");
        reports.push(format!(
            "batch={} words={} postings={} new={} evictions={} long_appends={}",
            r.batch, r.words, r.postings, r.new_words, r.evictions, r.long_appends
        ));
    }
    drop(ix);
    (dir, reports)
}

fn word_lists(dir: &std::path::Path, options: DurableOptions) -> Vec<(u64, Vec<u32>)> {
    let ix = DurableIndex::open(dir, IndexConfig::small(), options).expect("open");
    assert_eq!(ix.batches(), BATCHES as u64);
    (1..=WORDS)
        .map(|w| {
            let list = ix.postings(WordId(w)).expect("read");
            (w, list.docs().iter().map(|d| d.0).collect())
        })
        .collect()
}

#[test]
fn pipelined_flush_matches_sequential_flush() {
    let plain = DurableOptions::default();
    let pipelined = DurableOptions { pipelined_wal: true, ..Default::default() };

    let (dir_a, reports_a) = run("plain", plain, 1);
    let (dir_b, reports_b) = run("pipelined", pipelined, 1);
    // Same reports batch for batch, and — after an independent recovery
    // from each store's WAL + checkpoints — identical posting lists.
    assert_eq!(reports_a, reports_b);
    assert_eq!(word_lists(&dir_a, plain), word_lists(&dir_b, pipelined));
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn pipelined_flush_composes_with_parallel_ingest() {
    let plain = DurableOptions::default();
    let both = DurableOptions { pipelined_wal: true, ..Default::default() };

    let (dir_a, reports_a) = run("seq-ingest", plain, 1);
    let (dir_b, reports_b) = run("par-ingest", both, 4);
    assert_eq!(reports_a, reports_b);
    assert_eq!(word_lists(&dir_a, plain), word_lists(&dir_b, both));
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}
