//! Property-based tests for the durability layer: WAL record and
//! checkpoint codecs round-trip for arbitrary contents (including empty
//! batches and maximum-width word ids), and the WAL scanner never replays
//! past damage, wherever it lands.

use invidx_core::{DocId, IndexSnapshot, WordId};
use invidx_durable::{crc32, Checkpoint, StoreGeometry, WalReader, WalRecord};
use proptest::prelude::*;

fn arb_lists() -> impl Strategy<Value = Vec<(WordId, Vec<DocId>)>> {
    prop::collection::vec(
        (
            // Include the extremes: word 1 and the maximum-width id.
            prop_oneof![Just(1u64), Just(u64::MAX), 2u64..1_000_000],
            prop::collection::btree_set(0u32..100_000, 0..40)
                .prop_map(|s| s.into_iter().map(DocId).collect::<Vec<_>>()),
        )
            .prop_map(|(w, docs)| (WordId(w), docs)),
        0..12,
    )
}

fn arb_deletes() -> impl Strategy<Value = Vec<DocId>> {
    prop::collection::vec((0u32..100_000).prop_map(DocId), 0..16)
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (any::<u64>(), arb_lists(), arb_deletes(), prop::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(batch, lists, deletes, meta)| WalRecord::Batch {
                batch,
                lists,
                deletes,
                meta
            }),
        (any::<u64>(), arb_deletes())
            .prop_map(|(batch, deletes)| WalRecord::Sweep { batch, deletes }),
        any::<u64>().prop_map(|batch| WalRecord::Compact { batch }),
        (any::<u64>(), 1u32..10_000, 1u32..100_000).prop_map(
            |(batch, num_buckets, capacity_units)| WalRecord::Rebalance {
                batch,
                num_buckets,
                capacity_units
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wal_record_round_trips(rec in arb_record()) {
        let payload = rec.encode_payload();
        prop_assert_eq!(WalRecord::decode_payload(&payload).unwrap(), rec);
    }

    /// A log of whole frames scans back exactly; appending any partial
    /// frame on top never adds a record and never loses one.
    #[test]
    fn scan_recovers_full_prefix_for_any_torn_tail(
        recs in prop::collection::vec(arb_record(), 0..6),
        tail in arb_record(),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut log = Vec::new();
        for r in &recs {
            log.extend_from_slice(&r.encode_frame());
        }
        let clean = log.len();
        let frame = tail.encode_frame();
        let cut = ((frame.len() - 1) as f64 * cut_frac) as usize;
        log.extend_from_slice(&frame[..cut]);
        let scan = WalReader::scan(&log);
        prop_assert_eq!(scan.records.len(), recs.len());
        prop_assert_eq!(scan.valid_len as usize, clean);
        prop_assert_eq!(scan.truncated as usize, cut);
        for (got, want) in scan.records.iter().zip(&recs) {
            prop_assert_eq!(got, want);
        }
    }

    /// Flipping any single byte of a one-record log kills that record (the
    /// CRC catches it) without inventing a different one.
    #[test]
    fn scan_never_replays_a_flipped_byte(rec in arb_record(), pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let mut log = rec.encode_frame();
        let pos = ((log.len() - 1) as f64 * pos_frac) as usize;
        log[pos] ^= flip;
        let scan = WalReader::scan(&log);
        // Either the frame is rejected outright, or — when the flip hit the
        // length prefix and made the frame "short" — it reads as torn.
        // Never a successfully decoded record.
        prop_assert!(scan.records.is_empty(), "flipped byte at {pos} produced a record");
        prop_assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn crc32_detects_any_single_byte_change(data in prop::collection::vec(any::<u8>(), 1..256), pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let pos = ((data.len() - 1) as f64 * pos_frac) as usize;
        let mut changed = data.clone();
        changed[pos] ^= flip;
        prop_assert_ne!(crc32(&data), crc32(&changed));
    }

    #[test]
    fn checkpoint_round_trips(
        header in (any::<u64>(), any::<u64>()),
        deleted in prop::collection::btree_set(0u32..100_000, 0..20),
        directory in prop::collection::vec(any::<u8>(), 0..200),
        buckets in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..8),
        free in prop::collection::vec(0u64..1_000_000, 1..6),
        meta in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let (batch_no, doc_ceiling) = header;
        let ck = Checkpoint {
            geometry: StoreGeometry {
                disks: free.len() as u16,
                blocks_per_disk: 10_000,
                block_size: 256,
            },
            snapshot: IndexSnapshot {
                batch_no,
                doc_ceiling,
                num_buckets: buckets.len() as u64,
                bucket_capacity_units: 40,
                block_postings: 10,
                codec: Default::default(),
                deleted: deleted.into_iter().collect(),
                directory,
                buckets,
            },
            free_per_disk: free,
            meta,
        };
        prop_assert_eq!(Checkpoint::decode(&ck.encode()).unwrap(), ck);
    }
}
