//! A page-based on-disk B+-tree.
//!
//! Traditional retrieval systems "built a B-tree that maps each word to
//! the locations of its list on disk" (paper §1), and Cutting & Pedersen's
//! incremental scheme stores short inverted lists directly in the B-tree's
//! leaves (§6). This module provides that substrate: fixed-size pages on a
//! (traced) disk array, `u64` keys, variable-length byte values, leaf
//! chaining for range scans, and a write-back page cache standing in for
//! the buffer pool that keeps the tree's interior memory-resident.
//!
//! Deletion removes keys without rebalancing (underfull pages are
//! tolerated and reclaimed only when empty) — sufficient for index
//! workloads, documented as a non-goal beyond that.

use crate::cache::{PageCache, PageId};
use invidx_core::types::{IndexError, Result};
use invidx_disk::DiskArray;

const LEAF: u8 = 1;
const INTERNAL: u8 = 2;
/// Header: type(1) + count(2) + next/child0 PageId(10).
const HEADER: usize = 13;
/// PageId on disk: disk u16 + block u64.
const PAGE_REF: usize = 10;
/// Leaf cell header: key u64 + vlen u16.
const CELL_HDR: usize = 10;
/// Internal cell: key u64 + child PageId.
const INTERNAL_CELL: usize = 8 + PAGE_REF;
/// "No page" sentinel disk id.
const NO_PAGE: u16 = u16::MAX;

fn encode_ref(out: &mut Vec<u8>, id: Option<PageId>) {
    match id {
        Some(p) => {
            out.extend_from_slice(&p.disk.to_le_bytes());
            out.extend_from_slice(&p.block.to_le_bytes());
        }
        None => {
            out.extend_from_slice(&NO_PAGE.to_le_bytes());
            out.extend_from_slice(&0u64.to_le_bytes());
        }
    }
}

fn decode_ref(bytes: &[u8]) -> Option<PageId> {
    let disk = u16::from_le_bytes(bytes[0..2].try_into().expect("2"));
    let block = u64::from_le_bytes(bytes[2..10].try_into().expect("8"));
    (disk != NO_PAGE).then_some(PageId { disk, block })
}

/// Decoded leaf node.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Leaf {
    next: Option<PageId>,
    cells: Vec<(u64, Vec<u8>)>,
}

impl Leaf {
    fn used_bytes(&self) -> usize {
        HEADER + self.cells.iter().map(|(_, v)| CELL_HDR + v.len()).sum::<usize>()
    }

    fn encode(&self, bs: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(bs);
        out.push(LEAF);
        out.extend_from_slice(&(self.cells.len() as u16).to_le_bytes());
        encode_ref(&mut out, self.next);
        for (k, v) in &self.cells {
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&(v.len() as u16).to_le_bytes());
            out.extend_from_slice(v);
        }
        debug_assert!(out.len() <= bs, "leaf overflow: {} > {bs}", out.len());
        out.resize(bs, 0);
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        let count = u16::from_le_bytes(bytes[1..3].try_into().expect("2")) as usize;
        let next = decode_ref(&bytes[3..13]);
        let mut cells = Vec::with_capacity(count);
        let mut pos = HEADER;
        for _ in 0..count {
            if pos + CELL_HDR > bytes.len() {
                return Err(IndexError::Corruption("leaf cell truncated".into()));
            }
            let key = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8"));
            let vlen =
                u16::from_le_bytes(bytes[pos + 8..pos + 10].try_into().expect("2")) as usize;
            pos += CELL_HDR;
            if pos + vlen > bytes.len() {
                return Err(IndexError::Corruption("leaf value truncated".into()));
            }
            cells.push((key, bytes[pos..pos + vlen].to_vec()));
            pos += vlen;
        }
        Ok(Self { next, cells })
    }
}

/// Decoded internal node: `children[i]` covers keys < `keys[i]`;
/// `children[last]` covers the rest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Internal {
    keys: Vec<u64>,
    children: Vec<PageId>,
}

impl Internal {
    fn encode(&self, bs: usize) -> Vec<u8> {
        debug_assert_eq!(self.children.len(), self.keys.len() + 1);
        let mut out = Vec::with_capacity(bs);
        out.push(INTERNAL);
        out.extend_from_slice(&(self.keys.len() as u16).to_le_bytes());
        encode_ref(&mut out, Some(self.children[0]));
        for (k, c) in self.keys.iter().zip(&self.children[1..]) {
            out.extend_from_slice(&k.to_le_bytes());
            encode_ref(&mut out, Some(*c));
        }
        debug_assert!(out.len() <= bs, "internal overflow");
        out.resize(bs, 0);
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        let count = u16::from_le_bytes(bytes[1..3].try_into().expect("2")) as usize;
        let first = decode_ref(&bytes[3..13])
            .ok_or_else(|| IndexError::Corruption("internal without child0".into()))?;
        let mut keys = Vec::with_capacity(count);
        let mut children = vec![first];
        let mut pos = HEADER;
        for _ in 0..count {
            if pos + INTERNAL_CELL > bytes.len() {
                return Err(IndexError::Corruption("internal cell truncated".into()));
            }
            keys.push(u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8")));
            children.push(
                decode_ref(&bytes[pos + 8..pos + 18])
                    .ok_or_else(|| IndexError::Corruption("internal null child".into()))?,
            );
            pos += INTERNAL_CELL;
        }
        Ok(Self { keys, children })
    }

    /// Index of the child covering `key`.
    fn child_for(&self, key: u64) -> usize {
        self.keys.partition_point(|&k| k <= key)
    }
}

enum Node {
    Leaf(Leaf),
    Internal(Internal),
}

fn decode_node(bytes: &[u8]) -> Result<Node> {
    match bytes.first() {
        Some(&LEAF) => Ok(Node::Leaf(Leaf::decode(bytes)?)),
        Some(&INTERNAL) => Ok(Node::Internal(Internal::decode(bytes)?)),
        other => Err(IndexError::Corruption(format!("bad node tag {other:?}"))),
    }
}

/// Result of an insert one level down: the old value (if the key existed)
/// and a split (separator key + new right page), if any.
struct InsertOutcome {
    old: Option<Vec<u8>>,
    split: Option<(u64, PageId)>,
}

/// A B+-tree over a disk array.
///
/// ```
/// use invidx_btree::BTree;
/// use invidx_disk::sparse_array;
///
/// let mut array = sparse_array(2, 10_000, 256);
/// let mut tree = BTree::create(&mut array, 16).unwrap();
/// tree.insert(&mut array, 42, b"answer").unwrap();
/// assert_eq!(tree.get(&mut array, 42).unwrap().as_deref(), Some(b"answer".as_slice()));
/// assert_eq!(tree.get(&mut array, 7).unwrap(), None);
/// tree.flush(&mut array).unwrap(); // dirty pages reach the device
/// ```
pub struct BTree {
    root: PageId,
    height: u32,
    len: u64,
    cache: PageCache,
    block_size: usize,
}

impl BTree {
    /// Largest value accepted for a given block size. Bounded so any leaf
    /// split is guaranteed to produce two fitting halves (each cell stays
    /// under a third of the payload capacity).
    pub fn max_value(block_size: usize) -> usize {
        (block_size - HEADER) / 3 - CELL_HDR
    }

    /// Create an empty tree; allocates the root leaf.
    pub fn create(array: &mut DiskArray, cache_pages: usize) -> Result<Self> {
        let block_size = array.block_size();
        if Self::max_value(block_size) < 8 {
            return Err(IndexError::InvalidConfig(format!(
                "block size {block_size} too small for a B-tree page"
            )));
        }
        let mut tree = Self {
            root: PageId { disk: 0, block: 0 },
            height: 0,
            len: 0,
            cache: PageCache::new(cache_pages),
            block_size,
        };
        let root = tree.alloc_page(array)?;
        let leaf = Leaf { next: None, cells: Vec::new() };
        tree.cache.write(array, root, leaf.encode(block_size))?;
        tree.root = root;
        Ok(tree)
    }

    fn alloc_page(&mut self, array: &mut DiskArray) -> Result<PageId> {
        let disk = array.next_disk();
        let block = array.alloc_on(disk, 1)?;
        Ok(PageId { disk, block })
    }

    /// Number of keys stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (0 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Cache statistics `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// Write all dirty pages to the device.
    pub fn flush(&mut self, array: &mut DiskArray) -> Result<()> {
        self.cache.flush(array)
    }

    fn load(&mut self, array: &mut DiskArray, id: PageId) -> Result<Node> {
        let bytes = self.cache.read(array, id)?;
        decode_node(&bytes)
    }

    /// Look up a key.
    pub fn get(&mut self, array: &mut DiskArray, key: u64) -> Result<Option<Vec<u8>>> {
        let mut page = self.root;
        loop {
            match self.load(array, page)? {
                Node::Internal(node) => page = node.children[node.child_for(key)],
                Node::Leaf(leaf) => {
                    return Ok(leaf
                        .cells
                        .iter()
                        .find(|(k, _)| *k == key)
                        .map(|(_, v)| v.clone()));
                }
            }
        }
    }

    /// Insert or replace; returns the previous value if the key existed.
    pub fn insert(&mut self, array: &mut DiskArray, key: u64, value: &[u8]) -> Result<Option<Vec<u8>>> {
        if value.len() > Self::max_value(self.block_size) {
            return Err(IndexError::InvalidConfig(format!(
                "value of {} bytes exceeds the {}-byte B-tree limit",
                value.len(),
                Self::max_value(self.block_size)
            )));
        }
        let root = self.root;
        let outcome = self.insert_rec(array, root, key, value)?;
        if let Some((sep, right)) = outcome.split {
            // Grow the tree: a new root over the two halves.
            let new_root = self.alloc_page(array)?;
            let node = Internal { keys: vec![sep], children: vec![self.root, right] };
            self.cache.write(array, new_root, node.encode(self.block_size))?;
            self.root = new_root;
            self.height += 1;
        }
        if outcome.old.is_none() {
            self.len += 1;
        }
        Ok(outcome.old)
    }

    fn insert_rec(
        &mut self,
        array: &mut DiskArray,
        page: PageId,
        key: u64,
        value: &[u8],
    ) -> Result<InsertOutcome> {
        match self.load(array, page)? {
            Node::Leaf(mut leaf) => {
                let old = match leaf.cells.binary_search_by_key(&key, |(k, _)| *k) {
                    Ok(i) => Some(std::mem::replace(&mut leaf.cells[i].1, value.to_vec())),
                    Err(i) => {
                        leaf.cells.insert(i, (key, value.to_vec()));
                        None
                    }
                };
                if leaf.used_bytes() <= self.block_size {
                    self.cache.write(array, page, leaf.encode(self.block_size))?;
                    return Ok(InsertOutcome { old, split: None });
                }
                // Split by bytes so both halves fit.
                let total: usize = leaf.cells.iter().map(|(_, v)| CELL_HDR + v.len()).sum();
                let mut acc = 0usize;
                let mut cut = leaf.cells.len() - 1;
                for (i, (_, v)) in leaf.cells.iter().enumerate() {
                    acc += CELL_HDR + v.len();
                    if acc >= total / 2 {
                        cut = (i + 1).min(leaf.cells.len() - 1);
                        break;
                    }
                }
                let right_cells = leaf.cells.split_off(cut);
                let sep = right_cells[0].0;
                let right_id = self.alloc_page(array)?;
                let right = Leaf { next: leaf.next, cells: right_cells };
                leaf.next = Some(right_id);
                debug_assert!(leaf.used_bytes() <= self.block_size);
                debug_assert!(right.used_bytes() <= self.block_size);
                self.cache.write(array, right_id, right.encode(self.block_size))?;
                self.cache.write(array, page, leaf.encode(self.block_size))?;
                Ok(InsertOutcome { old, split: Some((sep, right_id)) })
            }
            Node::Internal(mut node) => {
                let idx = node.child_for(key);
                let child = node.children[idx];
                let outcome = self.insert_rec(array, child, key, value)?;
                let Some((sep, right)) = outcome.split else {
                    return Ok(outcome);
                };
                node.keys.insert(idx, sep);
                node.children.insert(idx + 1, right);
                let capacity = (self.block_size - HEADER) / INTERNAL_CELL;
                if node.keys.len() <= capacity {
                    self.cache.write(array, page, node.encode(self.block_size))?;
                    return Ok(InsertOutcome { old: outcome.old, split: None });
                }
                // Split the internal node; the middle key moves up.
                let mid = node.keys.len() / 2;
                let up_key = node.keys[mid];
                let right_keys = node.keys.split_off(mid + 1);
                node.keys.pop(); // up_key
                let right_children = node.children.split_off(mid + 1);
                let right_id = self.alloc_page(array)?;
                let right_node = Internal { keys: right_keys, children: right_children };
                self.cache.write(array, right_id, right_node.encode(self.block_size))?;
                self.cache.write(array, page, node.encode(self.block_size))?;
                Ok(InsertOutcome { old: outcome.old, split: Some((up_key, right_id)) })
            }
        }
    }

    /// Remove a key; returns its value if present. Pages are not
    /// rebalanced (underfull leaves are tolerated).
    pub fn remove(&mut self, array: &mut DiskArray, key: u64) -> Result<Option<Vec<u8>>> {
        let mut page = self.root;
        loop {
            match self.load(array, page)? {
                Node::Internal(node) => page = node.children[node.child_for(key)],
                Node::Leaf(mut leaf) => {
                    match leaf.cells.binary_search_by_key(&key, |(k, _)| *k) {
                        Ok(i) => {
                            let (_, v) = leaf.cells.remove(i);
                            self.cache.write(array, page, leaf.encode(self.block_size))?;
                            self.len -= 1;
                            return Ok(Some(v));
                        }
                        Err(_) => return Ok(None),
                    }
                }
            }
        }
    }

    /// All `(key, value)` pairs with `lo <= key < hi`, via the leaf chain.
    pub fn range(&mut self, array: &mut DiskArray, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        let mut out = Vec::new();
        // Descend to the leaf covering `lo`.
        let mut page = self.root;
        while let Node::Internal(node) = self.load(array, page)? {
            page = node.children[node.child_for(lo)];
        }
        let mut current = Some(page);
        while let Some(id) = current {
            let Node::Leaf(leaf) = self.load(array, id)? else {
                return Err(IndexError::Corruption("leaf chain hit an internal node".into()));
            };
            for (k, v) in &leaf.cells {
                if *k >= hi {
                    return Ok(out);
                }
                if *k >= lo {
                    out.push((*k, v.clone()));
                }
            }
            current = leaf.next;
        }
        Ok(out)
    }

    /// Every key/value pair in key order.
    pub fn scan_all(&mut self, array: &mut DiskArray) -> Result<Vec<(u64, Vec<u8>)>> {
        self.range(array, 0, u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invidx_disk::sparse_array;

    fn setup(bs: usize) -> (BTree, DiskArray) {
        let mut array = sparse_array(2, 100_000, bs);
        let tree = BTree::create(&mut array, 64).unwrap();
        (tree, array)
    }

    #[test]
    fn insert_get_remove_cycle() {
        let (mut t, mut a) = setup(256);
        assert!(t.is_empty());
        assert_eq!(t.insert(&mut a, 5, b"five").unwrap(), None);
        assert_eq!(t.insert(&mut a, 2, b"two").unwrap(), None);
        assert_eq!(t.get(&mut a, 5).unwrap().as_deref(), Some(b"five".as_slice()));
        assert_eq!(t.get(&mut a, 3).unwrap(), None);
        // Replace returns the old value.
        assert_eq!(t.insert(&mut a, 5, b"FIVE").unwrap().as_deref(), Some(b"five".as_slice()));
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(&mut a, 5).unwrap().as_deref(), Some(b"FIVE".as_slice()));
        assert_eq!(t.remove(&mut a, 5).unwrap(), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn thousands_of_keys_split_and_stay_sorted() {
        let (mut t, mut a) = setup(256);
        let n = 3000u64;
        // Insert in a scrambled order.
        for i in 0..n {
            let k = (i * 7919) % n;
            t.insert(&mut a, k, format!("v{k}").as_bytes()).unwrap();
        }
        assert_eq!(t.len(), n);
        assert!(t.height() >= 2, "expected real splits, height {}", t.height());
        for k in [0u64, 1, 1499, n - 1] {
            assert_eq!(t.get(&mut a, k).unwrap().unwrap(), format!("v{k}").into_bytes());
        }
        let all = t.scan_all(&mut a).unwrap();
        assert_eq!(all.len(), n as usize);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn range_scan_bounds() {
        let (mut t, mut a) = setup(256);
        for k in (0..100u64).map(|i| i * 2) {
            t.insert(&mut a, k, &k.to_le_bytes()).unwrap();
        }
        let r = t.range(&mut a, 10, 21).unwrap();
        let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![10, 12, 14, 16, 18, 20]);
        assert!(t.range(&mut a, 300, 400).unwrap().is_empty());
    }

    #[test]
    fn variable_length_values_with_splits() {
        let (mut t, mut a) = setup(512);
        let maxv = BTree::max_value(512);
        for k in 0..200u64 {
            let v = vec![k as u8; 1 + (k as usize * 13) % maxv];
            t.insert(&mut a, k, &v).unwrap();
        }
        for k in 0..200u64 {
            let v = t.get(&mut a, k).unwrap().unwrap();
            assert_eq!(v.len(), 1 + (k as usize * 13) % maxv);
            assert!(v.iter().all(|&b| b == k as u8));
        }
    }

    #[test]
    fn oversized_value_rejected() {
        let (mut t, mut a) = setup(256);
        let big = vec![0u8; BTree::max_value(256) + 1];
        assert!(t.insert(&mut a, 1, &big).is_err());
    }

    #[test]
    fn survives_flush_and_cold_cache() {
        let mut array = sparse_array(2, 100_000, 256);
        let mut t = BTree::create(&mut array, 64).unwrap();
        for k in 0..500u64 {
            t.insert(&mut array, k, &k.to_le_bytes()).unwrap();
        }
        t.flush(&mut array).unwrap();
        // A fresh zero-capacity cache forces all reads from the device.
        let mut cold = BTree {
            root: t.root,
            height: t.height,
            len: t.len,
            cache: PageCache::new(0),
            block_size: 256,
        };
        for k in [0u64, 250, 499] {
            assert_eq!(cold.get(&mut array, k).unwrap().unwrap(), k.to_le_bytes());
        }
        assert_eq!(cold.scan_all(&mut array).unwrap().len(), 500);
    }

    #[test]
    fn io_trace_contains_page_writes_on_flush() {
        let mut array = sparse_array(2, 100_000, 256);
        array.start_trace();
        let mut t = BTree::create(&mut array, 1024).unwrap();
        for k in 0..300u64 {
            t.insert(&mut array, k, b"x").unwrap();
        }
        assert!(
            array.with_trace(|t| t.unwrap().ops.is_empty()),
            "write-back cache defers I/O"
        );
        t.flush(&mut array).unwrap();
        let trace = array.take_trace();
        assert!(!trace.ops.is_empty());
        assert!(trace.ops.iter().all(|op| op.blocks == 1));
    }
}
