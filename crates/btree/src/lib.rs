//! # invidx-btree — on-disk B+-tree substrate + the Cutting–Pedersen baseline
//!
//! The paper's related work (§6) compares against Cutting & Pedersen's
//! incremental scheme: "a B-tree is used to organize the vocabulary.
//! Updates are optimized by storing short inverted lists directly in the
//! B-tree. [...] Cutting and Pedersen also described a buddy system for
//! the allocation of long lists." The paper argues its fewer/larger
//! buckets beat the per-word B-tree granularity, and that the buddy
//! system's "expected space utilization is lower than the methods
//! presented here; however it may offer better update performance."
//!
//! This crate makes that comparison executable:
//!
//! * [`cache`] — a write-back page cache (the buffer pool);
//! * [`tree`] — a page-based B+-tree over a traced disk array;
//! * [`cp`] — [`cp::CpIndex`]: the Cutting–Pedersen-style index — short
//!   lists inline in B-tree leaves, long lists in buddy-allocated chunks —
//!   driving the same batch updates as the dual-structure index.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod cp;
pub mod tree;

pub use cache::{PageCache, PageId};
pub use cp::{CpConfig, CpIndex, CpStats};
pub use tree::BTree;
