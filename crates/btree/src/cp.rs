//! The Cutting–Pedersen-style baseline index (paper §6, reference [1]).
//!
//! "Cutting and Pedersen consider incremental updates of inverted lists
//! where a B-tree is used to organize the vocabulary. Updates are
//! optimized by storing short inverted lists directly in the B-tree. In
//! our framework this optimization can be represented by a very small
//! bucket for approximately each word. [...] Cutting and Pedersen also
//! described a buddy system for the allocation of long lists."
//!
//! [`CpIndex`] implements exactly that: every word maps through the
//! on-disk B+-tree; short lists live *inline in the leaf cell*; lists
//! beyond the inline threshold spill to a power-of-two chunk (the buddy
//! discipline: grow by doubling, copying the list). The comparison bench
//! runs it against the dual-structure index on identical batch updates.

use crate::tree::BTree;
use invidx_core::postings::{fixed, varint, PostingList};
use invidx_core::types::{DocId, IndexError, Result, WordId};
use invidx_disk::{DiskArray, IoOp, OpKind, Payload};

const TAG_INLINE: u8 = 1;
const TAG_CHUNK: u8 = 2;

/// Configuration of the baseline.
#[derive(Debug, Clone, Copy)]
pub struct CpConfig {
    /// Postings per block (the same compression model as the
    /// dual-structure index).
    pub block_postings: u64,
    /// Lists up to this many postings stay inline in the B-tree leaf.
    pub inline_threshold: u64,
    /// Page-cache capacity (the buffer pool holding the tree's interior).
    pub cache_pages: usize,
}

impl CpConfig {
    /// Validate against a block size: an inline list at the threshold must
    /// fit a leaf cell.
    pub fn validate(&self, block_size: usize) -> Result<()> {
        if self.block_postings == 0 || self.block_postings as usize * 4 > block_size {
            return Err(IndexError::InvalidConfig("bad block_postings".into()));
        }
        // Varint worst case ~5 bytes/posting + tag + count.
        let worst = 2 + 5 * (self.inline_threshold as usize + 1);
        if worst > BTree::max_value(block_size) {
            return Err(IndexError::InvalidConfig(format!(
                "inline threshold {} cannot fit a {}-byte leaf cell",
                self.inline_threshold,
                BTree::max_value(block_size)
            )));
        }
        Ok(())
    }
}

/// On-disk location of a spilled list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Chunk {
    disk: u16,
    start: u64,
    /// Allocated blocks (a power of two — the buddy discipline).
    blocks: u64,
    postings: u64,
}

impl Chunk {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(27);
        out.push(TAG_CHUNK);
        out.extend_from_slice(&self.disk.to_le_bytes());
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.blocks.to_le_bytes());
        out.extend_from_slice(&self.postings.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 27 {
            return Err(IndexError::Corruption("chunk ref truncated".into()));
        }
        Ok(Self {
            disk: u16::from_le_bytes(bytes[1..3].try_into().expect("2")),
            start: u64::from_le_bytes(bytes[3..11].try_into().expect("8")),
            blocks: u64::from_le_bytes(bytes[11..19].try_into().expect("8")),
            postings: u64::from_le_bytes(bytes[19..27].try_into().expect("8")),
        })
    }
}

/// Lifetime counters for the baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpStats {
    /// Updates applied entirely inside a leaf cell.
    pub inline_updates: u64,
    /// Lists spilled from inline to a chunk.
    pub spills: u64,
    /// In-place chunk appends (fit the buddy slack).
    pub in_place_updates: u64,
    /// Whole-chunk copies to a doubled allocation.
    pub chunk_regrows: u64,
}

/// The Cutting–Pedersen baseline index.
pub struct CpIndex {
    tree: BTree,
    config: CpConfig,
    stats: CpStats,
    block_size: usize,
}

impl CpIndex {
    /// Create over a disk array (whose allocators should be buddy
    /// allocators for the faithful comparison — any [`ExtentAllocator`]
    /// works functionally).
    ///
    /// [`ExtentAllocator`]: invidx_disk::ExtentAllocator
    pub fn create(array: &mut DiskArray, config: CpConfig) -> Result<Self> {
        config.validate(array.block_size())?;
        let block_size = array.block_size();
        Ok(Self {
            tree: BTree::create(array, config.cache_pages)?,
            config,
            stats: CpStats::default(),
            block_size,
        })
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CpStats {
        self.stats
    }

    /// The vocabulary tree (inspection).
    pub fn tree(&self) -> &BTree {
        &self.tree
    }

    /// Number of indexed words.
    pub fn words(&self) -> u64 {
        self.tree.len()
    }

    /// Flush the tree's dirty pages (end of a batch).
    pub fn flush(&mut self, array: &mut DiskArray) -> Result<()> {
        self.tree.flush(array)
    }

    /// Append an in-memory list to a word.
    pub fn append(&mut self, array: &mut DiskArray, word: WordId, postings: &PostingList) -> Result<()> {
        if postings.is_empty() {
            return Ok(());
        }
        match self.tree.get(array, word.0)? {
            None => self.store_fresh(array, word, postings.docs().to_vec()),
            Some(value) => match value.first() {
                Some(&TAG_INLINE) => {
                    let mut docs = varint::decode(&value[1..])?;
                    check_order(word, docs.last(), postings)?;
                    docs.extend_from_slice(postings.docs());
                    if docs.len() as u64 <= self.config.inline_threshold {
                        self.stats.inline_updates += 1;
                        self.put_inline(array, word, &docs)
                    } else {
                        self.stats.spills += 1;
                        self.put_chunk(array, word, &docs, None)
                    }
                }
                Some(&TAG_CHUNK) => {
                    let chunk = Chunk::decode(&value)?;
                    self.append_chunk(array, word, chunk, postings)
                }
                other => Err(IndexError::Corruption(format!("bad CP tag {other:?}"))),
            },
        }
    }

    fn store_fresh(&mut self, array: &mut DiskArray, word: WordId, docs: Vec<DocId>) -> Result<()> {
        if docs.len() as u64 <= self.config.inline_threshold {
            self.stats.inline_updates += 1;
            self.put_inline(array, word, &docs)
        } else {
            self.put_chunk(array, word, &docs, None)
        }
    }

    fn put_inline(&mut self, array: &mut DiskArray, word: WordId, docs: &[DocId]) -> Result<()> {
        let mut value = vec![TAG_INLINE];
        value.extend_from_slice(&varint::encode(docs));
        self.tree.insert(array, word.0, &value)?;
        Ok(())
    }

    /// Write `docs` to a fresh power-of-two chunk, freeing `old` if given.
    fn put_chunk(
        &mut self,
        array: &mut DiskArray,
        word: WordId,
        docs: &[DocId],
        old: Option<Chunk>,
    ) -> Result<()> {
        let bp = self.config.block_postings;
        let blocks = (docs.len() as u64).div_ceil(bp).next_power_of_two();
        let disk = array.next_disk();
        let start = array.alloc_on(disk, blocks)?;
        self.write_chunk_range(array, word, disk, start, docs, 0)?;
        if let Some(c) = old {
            array.free_on(c.disk, c.start, c.blocks)?;
        }
        let chunk = Chunk { disk, start, blocks, postings: docs.len() as u64 };
        self.tree.insert(array, word.0, &chunk.encode())?;
        Ok(())
    }

    /// Append to an existing chunk: in place while the buddy slack lasts,
    /// otherwise read-copy-double.
    fn append_chunk(
        &mut self,
        array: &mut DiskArray,
        word: WordId,
        chunk: Chunk,
        postings: &PostingList,
    ) -> Result<()> {
        let bp = self.config.block_postings;
        let total = chunk.postings + postings.len() as u64;
        if total <= chunk.blocks * bp {
            // Fits the slack: read the partial tail block, append.
            let partial = chunk.postings % bp;
            if partial > 0 {
                let block = chunk.postings / bp;
                let mut buf = vec![0u8; self.block_size];
                array.read_op(
                    IoOp {
                        kind: OpKind::Read,
                        disk: chunk.disk,
                        start: chunk.start + block,
                        blocks: 1,
                        payload: Payload::LongList { word: word.0, postings: 0 },
                    },
                    &mut buf,
                )?;
                let existing = fixed::decode(&buf, partial as usize)?;
                check_order(word, existing.last(), postings)?;
            }
            self.write_chunk_range(array, word, chunk.disk, chunk.start, postings.docs(), chunk.postings)?;
            self.stats.in_place_updates += 1;
            let updated = Chunk { postings: total, ..chunk };
            self.tree.insert(array, word.0, &updated.encode())?;
            Ok(())
        } else {
            // Read the whole list, reallocate at the next power of two.
            let docs = self.read_chunk(array, word, chunk)?;
            check_order(word, docs.last(), postings)?;
            let mut all = docs;
            all.extend_from_slice(postings.docs());
            self.stats.chunk_regrows += 1;
            self.put_chunk(array, word, &all, Some(chunk))
        }
    }

    /// Write `docs` into a chunk starting at posting offset `offset`,
    /// packed `block_postings` per block, as one operation.
    fn write_chunk_range(
        &mut self,
        array: &mut DiskArray,
        word: WordId,
        disk: u16,
        chunk_start: u64,
        docs: &[DocId],
        offset: u64,
    ) -> Result<()> {
        let bp = self.config.block_postings;
        let bs = self.block_size;
        let first_block = offset / bp;
        let last_block = (offset + docs.len() as u64 - 1) / bp;
        let nblocks = last_block - first_block + 1;
        let mut buf = vec![0u8; nblocks as usize * bs];
        // Preserve the partial first block's existing postings.
        let partial = offset % bp;
        if partial > 0 {
            array.read_untraced(disk, chunk_start + first_block, &mut buf[..bs])?;
            // (The traced read was already charged by the caller.)
        }
        for (j, d) in docs.iter().enumerate() {
            let global = offset + j as u64;
            let block = global / bp - first_block;
            let off = block as usize * bs + ((global % bp) as usize) * 4;
            buf[off..off + 4].copy_from_slice(&d.0.to_le_bytes());
        }
        array.write_op(
            IoOp {
                kind: OpKind::Write,
                disk,
                start: chunk_start + first_block,
                blocks: nblocks,
                payload: Payload::LongList { word: word.0, postings: docs.len() as u64 },
            },
            &buf,
        )?;
        Ok(())
    }

    fn read_chunk(&mut self, array: &mut DiskArray, word: WordId, chunk: Chunk) -> Result<Vec<DocId>> {
        let bp = self.config.block_postings;
        let bs = self.block_size;
        let data_blocks = chunk.postings.div_ceil(bp);
        let mut buf = vec![0u8; data_blocks as usize * bs];
        array.read_op(
            IoOp {
                kind: OpKind::Read,
                disk: chunk.disk,
                start: chunk.start,
                blocks: data_blocks,
                payload: Payload::LongList { word: word.0, postings: chunk.postings },
            },
            &mut buf,
        )?;
        let mut docs = Vec::with_capacity(chunk.postings as usize);
        let mut remaining = chunk.postings as usize;
        for block in buf.chunks(bs) {
            let take = remaining.min(bp as usize);
            docs.extend(fixed::decode(block, take)?);
            remaining -= take;
            if remaining == 0 {
                break;
            }
        }
        Ok(docs)
    }

    /// The complete posting list for a word.
    pub fn read_list(&mut self, array: &mut DiskArray, word: WordId) -> Result<PostingList> {
        match self.tree.get(array, word.0)? {
            None => Ok(PostingList::new()),
            Some(value) => match value.first() {
                Some(&TAG_INLINE) => Ok(PostingList::from_sorted(varint::decode(&value[1..])?)),
                Some(&TAG_CHUNK) => {
                    let chunk = Chunk::decode(&value)?;
                    let docs = self.read_chunk(array, word, chunk)?;
                    if !docs.windows(2).all(|w| w[0] < w[1]) {
                        return Err(IndexError::Corruption(format!("unsorted CP list {word}")));
                    }
                    Ok(PostingList::from_sorted(docs))
                }
                other => Err(IndexError::Corruption(format!("bad CP tag {other:?}"))),
            },
        }
    }

    /// Blocks currently allocated to spilled chunks plus tree pages — the
    /// space-accounting counterpart of the dual index's directory stats.
    /// Derived by scanning the vocabulary (O(words)).
    pub fn space_stats(&mut self, array: &mut DiskArray) -> Result<(u64, u64)> {
        let mut chunk_blocks = 0u64;
        let mut chunk_postings = 0u64;
        for (_, value) in self.tree.scan_all(array)? {
            if value.first() == Some(&TAG_CHUNK) {
                let c = Chunk::decode(&value)?;
                chunk_blocks += c.blocks;
                chunk_postings += c.postings;
            }
        }
        Ok((chunk_blocks, chunk_postings))
    }
}

fn check_order(word: WordId, last: Option<&DocId>, postings: &PostingList) -> Result<()> {
    if let (Some(&last), Some(&first)) = (last, postings.docs().first()) {
        if first <= last {
            return Err(IndexError::OutOfOrderAppend { word, have: last, new: first });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use invidx_disk::{BuddyAllocator, Disk, DiskArray, SparseDevice};

    fn buddy_array(n: u16, blocks: u64, bs: usize) -> DiskArray {
        let disks = (0..n)
            .map(|_| Disk {
                device: Box::new(SparseDevice::new(blocks.next_power_of_two(), bs)),
                alloc: Box::new(BuddyAllocator::covering(blocks)),
            })
            .collect();
        DiskArray::new(disks)
    }

    fn setup() -> (CpIndex, DiskArray) {
        let mut array = buddy_array(2, 100_000, 512);
        let config = CpConfig { block_postings: 20, inline_threshold: 16, cache_pages: 64 };
        let index = CpIndex::create(&mut array, config).unwrap();
        (index, array)
    }

    fn pl(range: std::ops::Range<u32>) -> PostingList {
        PostingList::from_sorted(range.map(DocId).collect())
    }

    #[test]
    fn inline_lists_round_trip() {
        let (mut ix, mut a) = setup();
        ix.append(&mut a, WordId(5), &pl(0..4)).unwrap();
        ix.append(&mut a, WordId(5), &pl(4..9)).unwrap();
        assert_eq!(ix.read_list(&mut a, WordId(5)).unwrap(), pl(0..9));
        assert_eq!(ix.stats().spills, 0);
        assert!(ix.stats().inline_updates >= 2);
    }

    #[test]
    fn spill_to_chunk_and_keep_growing() {
        let (mut ix, mut a) = setup();
        let w = WordId(7);
        for i in 0..10u32 {
            ix.append(&mut a, w, &pl(i * 10..(i + 1) * 10)).unwrap();
        }
        assert_eq!(ix.read_list(&mut a, w).unwrap(), pl(0..100));
        let s = ix.stats();
        assert_eq!(s.spills, 1);
        assert!(s.chunk_regrows >= 1, "power-of-two growth must copy");
        assert!(s.in_place_updates >= 1, "buddy slack must absorb some updates");
    }

    #[test]
    fn chunks_are_power_of_two() {
        let (mut ix, mut a) = setup();
        let w = WordId(1);
        ix.append(&mut a, w, &pl(0..130)).unwrap(); // 130 postings, 7 blocks -> 8
        let (blocks, postings) = ix.space_stats(&mut a).unwrap();
        assert_eq!(postings, 130);
        assert!(blocks.is_power_of_two());
        assert_eq!(blocks, 8);
    }

    #[test]
    fn many_words_round_trip_cold() {
        let (mut ix, mut a) = setup();
        for w in 1..=300u64 {
            let n = (w % 60) as u32 + 1;
            ix.append(&mut a, WordId(w), &pl(0..n)).unwrap();
        }
        ix.flush(&mut a).unwrap();
        for w in 1..=300u64 {
            let n = (w % 60) as u32 + 1;
            assert_eq!(ix.read_list(&mut a, WordId(w)).unwrap(), pl(0..n), "word {w}");
        }
        assert_eq!(ix.words(), 300);
    }

    #[test]
    fn out_of_order_rejected() {
        let (mut ix, mut a) = setup();
        ix.append(&mut a, WordId(1), &pl(0..5)).unwrap();
        assert!(ix.append(&mut a, WordId(1), &pl(3..6)).is_err());
        // Chunked path too.
        ix.append(&mut a, WordId(2), &pl(0..50)).unwrap();
        assert!(ix.append(&mut a, WordId(2), &pl(10..60)).is_err());
    }

    #[test]
    fn absent_word_reads_empty() {
        let (mut ix, mut a) = setup();
        assert!(ix.read_list(&mut a, WordId(404)).unwrap().is_empty());
    }

    #[test]
    fn config_validation() {
        let mut a = buddy_array(1, 1000, 512);
        assert!(CpIndex::create(
            &mut a,
            CpConfig { block_postings: 20, inline_threshold: 1000, cache_pages: 4 }
        )
        .is_err());
        assert!(CpIndex::create(
            &mut a,
            CpConfig { block_postings: 0, inline_threshold: 4, cache_pages: 4 }
        )
        .is_err());
    }
}
