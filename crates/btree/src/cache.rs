//! Write-back page cache.
//!
//! Traditional systems keep the hot interior of the vocabulary B-tree in
//! memory and write modified leaves back in batches. [`PageCache`] models
//! that: reads hit the cache when possible, writes dirty pages in memory,
//! and `flush` (or eviction under pressure) pushes dirty pages to the
//! device — through the traced [`invidx_disk::DiskArray`], so every real
//! I/O lands in the experiment trace.

use invidx_core::types::Result;
use invidx_disk::{DiskArray, IoOp, OpKind, Payload};
use std::collections::{BTreeMap, HashMap};

/// Key of a cached page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// Owning disk.
    pub disk: u16,
    /// Block index on that disk.
    pub block: u64,
}

struct Slot {
    bytes: Vec<u8>,
    dirty: bool,
    gen: u64,
}

/// A fixed-capacity LRU write-back cache of device pages.
pub struct PageCache {
    slots: HashMap<PageId, Slot>,
    /// generation -> page, for O(log n) LRU eviction.
    lru: BTreeMap<u64, PageId>,
    capacity: usize,
    next_gen: u64,
    hits: u64,
    misses: u64,
}

impl PageCache {
    /// A cache holding at most `capacity` pages (0 disables caching:
    /// every access goes to the device).
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: HashMap::new(),
            lru: BTreeMap::new(),
            capacity,
            next_gen: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn touch(&mut self, id: PageId) {
        if let Some(slot) = self.slots.get_mut(&id) {
            self.lru.remove(&slot.gen);
            slot.gen = self.next_gen;
            self.lru.insert(self.next_gen, id);
            self.next_gen += 1;
        }
    }

    fn evict_one(&mut self, array: &mut DiskArray) -> Result<()> {
        let (&gen, &victim) = self.lru.iter().next().expect("cache not empty");
        self.lru.remove(&gen);
        let slot = self.slots.remove(&victim).expect("slot exists");
        if slot.dirty {
            write_page(array, victim, &slot.bytes)?;
        }
        Ok(())
    }

    /// Read a page through the cache.
    pub fn read(&mut self, array: &mut DiskArray, id: PageId) -> Result<Vec<u8>> {
        if self.slots.contains_key(&id) {
            self.hits += 1;
            self.touch(id);
            return Ok(self.slots[&id].bytes.clone());
        }
        self.misses += 1;
        let bs = array.block_size();
        let mut buf = vec![0u8; bs];
        let op = IoOp {
            kind: OpKind::Read,
            disk: id.disk,
            start: id.block,
            blocks: 1,
            payload: Payload::Directory,
        };
        array.read_op(op, &mut buf)?;
        self.install(array, id, buf.clone(), false)?;
        Ok(buf)
    }

    /// Write a page through the cache (write-back: the device sees it at
    /// flush or eviction).
    pub fn write(&mut self, array: &mut DiskArray, id: PageId, bytes: Vec<u8>) -> Result<()> {
        debug_assert_eq!(bytes.len(), array.block_size());
        self.install(array, id, bytes, true)
    }

    fn install(&mut self, array: &mut DiskArray, id: PageId, bytes: Vec<u8>, dirty: bool) -> Result<()> {
        if self.capacity == 0 {
            if dirty {
                write_page(array, id, &bytes)?;
            }
            return Ok(());
        }
        if let Some(slot) = self.slots.get_mut(&id) {
            slot.bytes = bytes;
            slot.dirty |= dirty;
            self.touch(id);
            return Ok(());
        }
        while self.slots.len() >= self.capacity {
            self.evict_one(array)?;
        }
        let gen = self.next_gen;
        self.next_gen += 1;
        self.slots.insert(id, Slot { bytes, dirty, gen });
        self.lru.insert(gen, id);
        Ok(())
    }

    /// Forget a page without writing it (the caller freed it).
    pub fn discard(&mut self, id: PageId) {
        if let Some(slot) = self.slots.remove(&id) {
            self.lru.remove(&slot.gen);
        }
    }

    /// Write all dirty pages to the device, in `(disk, block)` order so
    /// neighbouring leaves coalesce into sequential writes.
    pub fn flush(&mut self, array: &mut DiskArray) -> Result<()> {
        let mut dirty: Vec<PageId> =
            self.slots.iter().filter(|(_, s)| s.dirty).map(|(&id, _)| id).collect();
        dirty.sort();
        for id in dirty {
            let slot = self.slots.get_mut(&id).expect("listed");
            write_page_buf(array, id, &slot.bytes)?;
            slot.dirty = false;
        }
        Ok(())
    }

    /// Number of dirty pages currently held.
    pub fn dirty_pages(&self) -> usize {
        self.slots.values().filter(|s| s.dirty).count()
    }
}

fn write_page(array: &mut DiskArray, id: PageId, bytes: &[u8]) -> Result<()> {
    write_page_buf(array, id, bytes)
}

fn write_page_buf(array: &mut DiskArray, id: PageId, bytes: &[u8]) -> Result<()> {
    let op = IoOp {
        kind: OpKind::Write,
        disk: id.disk,
        start: id.block,
        blocks: 1,
        payload: Payload::Directory,
    };
    array.write_op(op, bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use invidx_disk::sparse_array;

    fn page(b: u8, bs: usize) -> Vec<u8> {
        vec![b; bs]
    }

    #[test]
    fn read_after_write_hits_cache() {
        let mut array = sparse_array(1, 100, 64);
        let mut cache = PageCache::new(4);
        array.start_trace();
        let id = PageId { disk: 0, block: 5 };
        cache.write(&mut array, id, page(7, 64)).unwrap();
        let got = cache.read(&mut array, id).unwrap();
        assert_eq!(got[0], 7);
        assert_eq!(cache.hits(), 1);
        // Nothing touched the device yet (write-back).
        assert!(array.take_trace().ops.is_empty());
    }

    #[test]
    fn flush_writes_dirty_pages_in_order() {
        let mut array = sparse_array(1, 100, 64);
        let mut cache = PageCache::new(8);
        array.start_trace();
        for b in [9u64, 3, 6] {
            cache.write(&mut array, PageId { disk: 0, block: b }, page(b as u8, 64)).unwrap();
        }
        cache.flush(&mut array).unwrap();
        let trace = array.take_trace();
        let starts: Vec<u64> = trace.ops.iter().map(|op| op.start).collect();
        assert_eq!(starts, vec![3, 6, 9]);
        assert_eq!(cache.dirty_pages(), 0);
        // Flushing again is a no-op.
        array.start_trace();
        cache.flush(&mut array).unwrap();
        assert!(array.take_trace().ops.is_empty());
    }

    #[test]
    fn eviction_writes_back_dirty_lru_page() {
        let mut array = sparse_array(1, 100, 64);
        let mut cache = PageCache::new(2);
        array.start_trace();
        cache.write(&mut array, PageId { disk: 0, block: 1 }, page(1, 64)).unwrap();
        cache.write(&mut array, PageId { disk: 0, block: 2 }, page(2, 64)).unwrap();
        // Touch page 1 so page 2 is LRU.
        cache.read(&mut array, PageId { disk: 0, block: 1 }).unwrap();
        cache.write(&mut array, PageId { disk: 0, block: 3 }, page(3, 64)).unwrap();
        let trace = array.take_trace();
        assert_eq!(trace.ops.len(), 1);
        assert_eq!(trace.ops[0].start, 2);
        // Evicted page is readable from the device.
        let got = cache.read(&mut array, PageId { disk: 0, block: 2 }).unwrap();
        assert_eq!(got[0], 2);
    }

    #[test]
    fn zero_capacity_is_write_through() {
        let mut array = sparse_array(1, 100, 64);
        let mut cache = PageCache::new(0);
        array.start_trace();
        cache.write(&mut array, PageId { disk: 0, block: 1 }, page(5, 64)).unwrap();
        assert_eq!(array.with_trace(|t| t.unwrap().ops.len()), 1);
        let got = cache.read(&mut array, PageId { disk: 0, block: 1 }).unwrap();
        assert_eq!(got[0], 5);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn discard_prevents_writeback() {
        let mut array = sparse_array(1, 100, 64);
        let mut cache = PageCache::new(4);
        array.start_trace();
        let id = PageId { disk: 0, block: 9 };
        cache.write(&mut array, id, page(9, 64)).unwrap();
        cache.discard(id);
        cache.flush(&mut array).unwrap();
        assert!(array.take_trace().ops.is_empty());
    }
}
