//! Property-based tests: the B+-tree against a `BTreeMap` model, and the
//! Cutting–Pedersen index against a posting-list model.

use invidx_btree::{BTree, CpConfig, CpIndex};
use invidx_core::postings::PostingList;
use invidx_core::types::{DocId, WordId};
use invidx_disk::{sparse_array, BuddyAllocator, Disk, DiskArray, SparseDevice};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u64, Vec<u8>),
    Remove(u64),
    Get(u64),
    Range(u64, u64),
    Flush,
}

fn tree_ops() -> impl Strategy<Value = Vec<TreeOp>> {
    let key = 0u64..200;
    prop::collection::vec(
        prop_oneof![
            (key.clone(), prop::collection::vec(any::<u8>(), 0..40))
                .prop_map(|(k, v)| TreeOp::Insert(k, v)),
            key.clone().prop_map(TreeOp::Remove),
            key.clone().prop_map(TreeOp::Get),
            (key.clone(), key).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
            Just(TreeOp::Flush),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn btree_matches_btreemap(ops in tree_ops(), cache in 0usize..16) {
        let mut array = sparse_array(2, 100_000, 256);
        let mut tree = BTree::create(&mut array, cache).expect("create");
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    let old = tree.insert(&mut array, k, &v).expect("insert");
                    prop_assert_eq!(old, model.insert(k, v));
                }
                TreeOp::Remove(k) => {
                    prop_assert_eq!(tree.remove(&mut array, k).expect("remove"), model.remove(&k));
                }
                TreeOp::Get(k) => {
                    prop_assert_eq!(tree.get(&mut array, k).expect("get"), model.get(&k).cloned());
                }
                TreeOp::Range(lo, hi) => {
                    let got = tree.range(&mut array, lo, hi).expect("range");
                    let want: Vec<(u64, Vec<u8>)> =
                        model.range(lo..hi).map(|(&k, v)| (k, v.clone())).collect();
                    prop_assert_eq!(got, want);
                }
                TreeOp::Flush => tree.flush(&mut array).expect("flush"),
            }
            prop_assert_eq!(tree.len(), model.len() as u64);
        }
        let got = tree.scan_all(&mut array).expect("scan");
        let want: Vec<(u64, Vec<u8>)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }
}

fn buddy_array(n: u16, blocks: u64, bs: usize) -> DiskArray {
    let disks = (0..n)
        .map(|_| Disk {
            device: Box::new(SparseDevice::new(blocks.next_power_of_two(), bs)),
            alloc: Box::new(BuddyAllocator::covering(blocks)),
        })
        .collect();
    DiskArray::new(disks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cp_index_matches_posting_model(
        updates in prop::collection::vec((0u64..8, 1u32..50), 1..80),
        threshold in 4u64..24,
    ) {
        let mut array = buddy_array(2, 100_000, 512);
        let config = CpConfig { block_postings: 20, inline_threshold: threshold, cache_pages: 32 };
        let mut index = CpIndex::create(&mut array, config).expect("create");
        let mut model: BTreeMap<u64, Vec<DocId>> = BTreeMap::new();
        let mut next: BTreeMap<u64, u32> = BTreeMap::new();
        for (word, count) in updates {
            let c = next.entry(word).or_insert(0);
            let docs: Vec<DocId> = (*c..*c + count).map(DocId).collect();
            *c += count;
            model.entry(word).or_default().extend(&docs);
            index
                .append(&mut array, WordId(word + 1), &PostingList::from_sorted(docs))
                .expect("append");
        }
        index.flush(&mut array).expect("flush");
        for (&word, docs) in &model {
            let got = index.read_list(&mut array, WordId(word + 1)).expect("read");
            prop_assert_eq!(got.docs(), docs.as_slice());
        }
        // Space accounting is consistent: chunk postings equal the model's
        // spilled lists.
        let (blocks, chunk_postings) = index.space_stats(&mut array).expect("space");
        let spilled: u64 = model
            .values()
            .filter(|d| d.len() as u64 > threshold)
            .map(|d| d.len() as u64)
            .sum();
        prop_assert_eq!(chunk_postings, spilled);
        prop_assert!(blocks * 20 >= chunk_postings);
    }
}
