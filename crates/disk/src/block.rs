//! Block devices: the raw-partition abstraction.
//!
//! The paper's "exercise disks" process issues read/write system calls
//! against raw disk partitions, "bypassing the operating system's file
//! system and disk buffer pool" (§4.5). [`BlockDevice`] is that interface:
//! fixed-size blocks, explicit addresses, no caching.
//!
//! Three implementations:
//!
//! * [`MemDevice`] — dense in-memory storage, for small tests;
//! * [`SparseDevice`] — hash-map-backed storage that only materializes
//!   blocks ever written; lets experiments model multi-gigabyte 1994 disks
//!   while touching only megabytes of RAM;
//! * [`FileDevice`] — a real file used as a raw partition, for functional
//!   verification against actual I/O.

use crate::error::{DiskError, Result};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;

/// A fixed-block-size random-access storage device.
pub trait BlockDevice: Send + Sync {
    /// Total number of blocks.
    fn num_blocks(&self) -> u64;

    /// Bytes per block.
    fn block_size(&self) -> usize;

    /// Read `buf.len()` bytes starting at the beginning of block `start`.
    /// `buf.len()` must be a multiple of the block size.
    fn read(&self, start: u64, buf: &mut [u8]) -> Result<()>;

    /// Write `data` starting at the beginning of block `start`.
    /// `data.len()` must be a multiple of the block size.
    fn write(&mut self, start: u64, data: &[u8]) -> Result<()>;

    /// Durably flush any buffered state (no-op for memory devices).
    fn flush(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Validate an access range; shared by all implementations.
fn check_range(dev_blocks: u64, block_size: usize, start: u64, len: usize) -> Result<u64> {
    if !len.is_multiple_of(block_size) {
        return Err(DiskError::UnalignedAccess { len, block_size });
    }
    let nblocks = (len / block_size) as u64;
    if nblocks == 0 {
        return Err(DiskError::EmptyAccess);
    }
    let end = start
        .checked_add(nblocks)
        .ok_or(DiskError::OutOfRange { start, nblocks, device: dev_blocks })?;
    if end > dev_blocks {
        return Err(DiskError::OutOfRange { start, nblocks, device: dev_blocks });
    }
    Ok(nblocks)
}

/// Dense in-memory block device.
#[derive(Debug, Clone)]
pub struct MemDevice {
    data: Vec<u8>,
    block_size: usize,
    num_blocks: u64,
}

impl MemDevice {
    /// Create a zero-filled device.
    pub fn new(num_blocks: u64, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let bytes = usize::try_from(num_blocks * block_size as u64)
            .expect("MemDevice too large for address space");
        Self { data: vec![0; bytes], block_size, num_blocks }
    }
}

impl BlockDevice for MemDevice {
    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn read(&self, start: u64, buf: &mut [u8]) -> Result<()> {
        check_range(self.num_blocks, self.block_size, start, buf.len())?;
        let off = start as usize * self.block_size;
        buf.copy_from_slice(&self.data[off..off + buf.len()]);
        Ok(())
    }

    fn write(&mut self, start: u64, data: &[u8]) -> Result<()> {
        check_range(self.num_blocks, self.block_size, start, data.len())?;
        let off = start as usize * self.block_size;
        self.data[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }
}

/// Sparse in-memory block device: unwritten blocks read as zeros and take
/// no memory. Can model devices far larger than RAM.
///
/// Stored blocks are trimmed of trailing zero bytes, so a block that is
/// mostly padding (e.g. a long-list block holding `BlockPosting` postings
/// in a much larger physical block) costs only its meaningful prefix.
#[derive(Debug, Clone, Default)]
pub struct SparseDevice {
    blocks: HashMap<u64, Box<[u8]>>,
    block_size: usize,
    num_blocks: u64,
}

impl SparseDevice {
    /// Create a device of `num_blocks` logical blocks.
    pub fn new(num_blocks: u64, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self { blocks: HashMap::new(), block_size, num_blocks }
    }

    /// Number of blocks actually materialized in memory.
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }
}

impl BlockDevice for SparseDevice {
    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn read(&self, start: u64, buf: &mut [u8]) -> Result<()> {
        let nblocks = check_range(self.num_blocks, self.block_size, start, buf.len())?;
        for i in 0..nblocks {
            let dst = &mut buf[i as usize * self.block_size..(i as usize + 1) * self.block_size];
            match self.blocks.get(&(start + i)) {
                Some(b) => {
                    dst[..b.len()].copy_from_slice(b);
                    dst[b.len()..].fill(0);
                }
                None => dst.fill(0),
            }
        }
        Ok(())
    }

    fn write(&mut self, start: u64, data: &[u8]) -> Result<()> {
        let nblocks = check_range(self.num_blocks, self.block_size, start, data.len())?;
        for i in 0..nblocks {
            let src = &data[i as usize * self.block_size..(i as usize + 1) * self.block_size];
            let trimmed = src.len() - src.iter().rev().take_while(|&&b| b == 0).count();
            if trimmed == 0 {
                self.blocks.remove(&(start + i));
            } else {
                self.blocks.insert(start + i, src[..trimmed].into());
            }
        }
        Ok(())
    }
}

/// File-backed block device: a plain file treated as a raw partition.
#[derive(Debug)]
pub struct FileDevice {
    file: File,
    block_size: usize,
    num_blocks: u64,
}

impl FileDevice {
    /// Create (or truncate) a file sized to hold the device.
    pub fn create<P: AsRef<Path>>(path: P, num_blocks: u64, block_size: usize) -> Result<Self> {
        assert!(block_size > 0, "block size must be positive");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(num_blocks * block_size as u64)?;
        Ok(Self { file, block_size, num_blocks })
    }

    /// Open an existing device file; its length must be a whole number of
    /// blocks.
    pub fn open<P: AsRef<Path>>(path: P, block_size: usize) -> Result<Self> {
        assert!(block_size > 0, "block size must be positive");
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % block_size as u64 != 0 {
            return Err(DiskError::UnalignedAccess { len: len as usize, block_size });
        }
        Ok(Self { file, block_size, num_blocks: len / block_size as u64 })
    }
}

impl BlockDevice for FileDevice {
    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn read(&self, start: u64, buf: &mut [u8]) -> Result<()> {
        check_range(self.num_blocks, self.block_size, start, buf.len())?;
        self.file.read_exact_at(buf, start * self.block_size as u64)?;
        Ok(())
    }

    fn write(&mut self, start: u64, data: &[u8]) -> Result<()> {
        check_range(self.num_blocks, self.block_size, start, data.len())?;
        self.file.write_all_at(data, start * self.block_size as u64)?;
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

impl BlockDevice for Box<dyn BlockDevice> {
    fn num_blocks(&self) -> u64 {
        (**self).num_blocks()
    }

    fn block_size(&self) -> usize {
        (**self).block_size()
    }

    fn read(&self, start: u64, buf: &mut [u8]) -> Result<()> {
        (**self).read(start, buf)
    }

    fn write(&mut self, start: u64, data: &[u8]) -> Result<()> {
        (**self).write(start, data)
    }

    fn flush(&mut self) -> Result<()> {
        (**self).flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<D: BlockDevice>(dev: &mut D) {
        let bs = dev.block_size();
        let data: Vec<u8> = (0..bs * 2).map(|i| (i % 251) as u8).collect();
        dev.write(3, &data).unwrap();
        let mut out = vec![0u8; bs * 2];
        dev.read(3, &mut out).unwrap();
        assert_eq!(out, data);
        // Unwritten blocks read as zeros.
        let mut zero = vec![1u8; bs];
        dev.read(0, &mut zero).unwrap();
        assert!(zero.iter().all(|&b| b == 0));
    }

    #[test]
    fn mem_device_round_trip() {
        round_trip(&mut MemDevice::new(16, 64));
    }

    #[test]
    fn sparse_device_round_trip() {
        let mut dev = SparseDevice::new(1 << 40, 64);
        round_trip(&mut dev);
        assert_eq!(dev.resident_blocks(), 2);
    }

    #[test]
    fn file_device_round_trip() {
        let dir = std::env::temp_dir().join(format!("invidx-dev-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blockdev.bin");
        {
            let mut dev = FileDevice::create(&path, 16, 64).unwrap();
            round_trip(&mut dev);
            dev.flush().unwrap();
        }
        // Re-open and verify persistence.
        let dev = FileDevice::open(&path, 64).unwrap();
        assert_eq!(dev.num_blocks(), 16);
        let mut out = vec![0u8; 128];
        dev.read(3, &mut out).unwrap();
        assert_eq!(out[0], 0);
        assert_eq!(out[1], 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_rejected() {
        let mut dev = MemDevice::new(4, 32);
        let buf = vec![0u8; 32];
        assert!(matches!(dev.write(4, &buf), Err(DiskError::OutOfRange { .. })));
        assert!(matches!(dev.write(3, &[0u8; 64]), Err(DiskError::OutOfRange { .. })));
    }

    #[test]
    fn unaligned_rejected() {
        let dev = MemDevice::new(4, 32);
        let mut buf = vec![0u8; 33];
        assert!(matches!(dev.read(0, &mut buf), Err(DiskError::UnalignedAccess { .. })));
    }

    #[test]
    fn empty_access_rejected() {
        let dev = MemDevice::new(4, 32);
        let mut buf = vec![];
        assert!(matches!(dev.read(0, &mut buf), Err(DiskError::EmptyAccess)));
    }

    #[test]
    fn sparse_partial_overwrite() {
        let mut dev = SparseDevice::new(100, 8);
        dev.write(10, &[7u8; 16]).unwrap();
        dev.write(11, &[9u8; 8]).unwrap();
        let mut out = vec![0u8; 16];
        dev.read(10, &mut out).unwrap();
        assert_eq!(&out[..8], &[7u8; 8]);
        assert_eq!(&out[8..], &[9u8; 8]);
    }
}
