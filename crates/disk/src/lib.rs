//! # invidx-disk — the disk substrate
//!
//! The paper evaluates its index-update policies against real 1994 hardware
//! (an IBM RS/6000 with eight SCSI-2 disks, raw partitions, §4.5). This
//! crate is the substitute substrate:
//!
//! * [`block`] — the raw-partition abstraction ([`block::BlockDevice`]) with
//!   dense, sparse, and file-backed implementations;
//! * [`freelist`] — per-disk extent allocation: the paper's first-fit free
//!   list, plus best-fit;
//! * [`buddy`] — a binary buddy allocator (the Cutting–Pedersen alternative
//!   the paper mentions), for ablations;
//! * [`model`] — disk service-time models (1994 SCSI-2, modern HDD, SSD,
//!   optical), used to *time* I/O traces;
//! * [`array`] — multi-disk arrays with the paper's round-robin placement
//!   cursor and I/O trace recording;
//! * [`trace`] — the I/O trace format (paper Figure 6);
//! * [`exercise`] — the "exercise disks" process: per-disk parallel
//!   execution with in-order coalescing up to `BufferBlock` blocks.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod array;
pub mod block;
pub mod buddy;
pub mod error;
pub mod exercise;
pub mod freelist;
pub mod model;
pub mod trace;

pub use array::{sparse_array, Disk, DiskArray, WriteObserver};
pub use block::{BlockDevice, FileDevice, MemDevice, SparseDevice};
pub use buddy::BuddyAllocator;
pub use error::{DiskError, Result};
pub use exercise::{coalesce_batch, exercise, ExerciseConfig, ExerciseResult};
pub use freelist::{ExtentAllocator, FitStrategy, FreeList};
pub use model::DiskProfile;
pub use trace::{IoOp, IoTrace, OpKind, Payload};
