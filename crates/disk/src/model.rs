//! Disk timing models.
//!
//! The paper times its I/O traces on an IBM RS/6000 Model 530 with eight
//! Seagate 2 GB SCSI-2 drives (§4.5). We replace the physical machine with
//! a first-order service-time model per request:
//!
//! ```text
//! t = overhead + seek(distance) + rotational_latency + blocks * transfer
//! ```
//!
//! with `seek = 0` and `rotational_latency = 0` when the request starts
//! exactly where the previous one on the same disk ended (sequential
//! access). The seek curve interpolates between track-to-track and
//! full-stroke times with the conventional square-root-of-distance shape.
//! This preserves exactly the effects the paper measures: coalesced
//! sequential writes approach the device data rate, scattered in-place
//! updates pay a seek each, and "the time required to write the bucket data
//! structure is dominated by the subsystem data rate whereas the time to
//! incrementally update the long lists is dominated by the disk seek time"
//! (§7).

use serde::{Deserialize, Serialize};

/// Timing parameters for one disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiskProfile {
    /// Human-readable profile name.
    pub name: String,
    /// Usable capacity in blocks (of `block_size` bytes).
    pub blocks: u64,
    /// Block size in bytes.
    pub block_size: usize,
    /// Shortest (track-to-track) seek, milliseconds.
    pub min_seek_ms: f64,
    /// Full-stroke seek, milliseconds.
    pub max_seek_ms: f64,
    /// Spindle speed; 0 means no rotational latency (solid-state).
    pub rpm: f64,
    /// Sustained transfer rate, megabytes per second.
    pub transfer_mb_s: f64,
    /// Fixed per-request overhead (controller + system call), milliseconds.
    pub overhead_ms: f64,
}

impl DiskProfile {
    /// A 1994-era 2 GB SCSI-2 drive of the Seagate class used in the paper:
    /// 5400 rpm, ~10.5 ms average seek, ~3.5 MB/s sustained transfer.
    pub fn seagate_1994(block_size: usize) -> Self {
        Self {
            name: "seagate-2gb-1994".into(),
            blocks: 2_000_000_000 / block_size as u64,
            block_size,
            min_seek_ms: 1.7,
            max_seek_ms: 22.5,
            rpm: 5400.0,
            transfer_mb_s: 3.5,
            overhead_ms: 0.7,
        }
    }

    /// A modern 7200 rpm hard drive, for the scaling study.
    pub fn modern_hdd(block_size: usize) -> Self {
        Self {
            name: "modern-hdd".into(),
            blocks: 4_000_000_000_000 / block_size as u64,
            block_size,
            min_seek_ms: 0.4,
            max_seek_ms: 10.0,
            rpm: 7200.0,
            transfer_mb_s: 180.0,
            overhead_ms: 0.1,
        }
    }

    /// A solid-state device: no mechanical latency, high transfer rate.
    pub fn ssd(block_size: usize) -> Self {
        Self {
            name: "ssd".into(),
            blocks: 1_000_000_000_000 / block_size as u64,
            block_size,
            min_seek_ms: 0.0,
            max_seek_ms: 0.0,
            rpm: 0.0,
            transfer_mb_s: 500.0,
            overhead_ms: 0.05,
        }
    }

    /// A magneto-optical drive of the era — the paper's §7 mentions
    /// determining "the performance of updates on an optical disk": very
    /// slow seeks and a low write rate.
    pub fn optical_1994(block_size: usize) -> Self {
        Self {
            name: "optical-1994".into(),
            blocks: 1_300_000_000 / block_size as u64,
            block_size,
            min_seek_ms: 20.0,
            max_seek_ms: 120.0,
            rpm: 2400.0,
            transfer_mb_s: 0.6,
            overhead_ms: 2.0,
        }
    }

    /// A uniformly `factor`-times-faster variant (seeks, rotation, transfer
    /// and overhead all scaled) — the paper's "speeding up disk" study.
    pub fn speedup(&self, factor: f64) -> Self {
        assert!(factor > 0.0);
        Self {
            name: format!("{}-x{factor:.1}", self.name),
            blocks: self.blocks,
            block_size: self.block_size,
            min_seek_ms: self.min_seek_ms / factor,
            max_seek_ms: self.max_seek_ms / factor,
            rpm: self.rpm * factor,
            transfer_mb_s: self.transfer_mb_s * factor,
            overhead_ms: self.overhead_ms / factor,
        }
    }

    /// Seek time for a head movement of `distance` blocks.
    pub fn seek_ms(&self, distance: u64) -> f64 {
        if distance == 0 || self.max_seek_ms == 0.0 {
            return 0.0;
        }
        let frac = (distance as f64 / self.blocks.max(1) as f64).min(1.0);
        self.min_seek_ms + (self.max_seek_ms - self.min_seek_ms) * frac.sqrt()
    }

    /// Average rotational latency (half a revolution), milliseconds.
    pub fn rotational_latency_ms(&self) -> f64 {
        if self.rpm == 0.0 {
            0.0
        } else {
            0.5 * 60_000.0 / self.rpm
        }
    }

    /// Transfer time for `blocks` blocks, milliseconds.
    pub fn transfer_ms(&self, blocks: u64) -> f64 {
        let bytes = blocks as f64 * self.block_size as f64;
        bytes / (self.transfer_mb_s * 1e6) * 1e3
    }

    /// Service time for one request, given the head position (the block
    /// after the previous request's last block on this disk, or `None` for
    /// the first request).
    pub fn service_ms(&self, head: Option<u64>, start: u64, blocks: u64) -> f64 {
        self.service_breakdown(head, start, blocks).total_ms
    }

    /// Service time split into its components — the observability layer
    /// records seek distances and positioning-vs-transfer shares from
    /// this without re-deriving model internals.
    pub fn service_breakdown(&self, head: Option<u64>, start: u64, blocks: u64) -> ServiceBreakdown {
        let (seek_distance, positioning_ms) = match head {
            Some(h) if h == start => (0, 0.0),
            Some(h) => {
                let dist = h.abs_diff(start);
                (dist, self.seek_ms(dist) + self.rotational_latency_ms())
            }
            // First request: model an average stroke of a third of the disk.
            None => {
                let dist = self.blocks / 3;
                (dist, self.seek_ms(dist) + self.rotational_latency_ms())
            }
        };
        let transfer_ms = self.transfer_ms(blocks);
        ServiceBreakdown {
            seek_distance,
            positioning_ms,
            transfer_ms,
            total_ms: self.overhead_ms + positioning_ms + transfer_ms,
        }
    }
}

/// Components of one request's service time (see
/// [`DiskProfile::service_breakdown`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceBreakdown {
    /// Head movement in blocks (0 for sequential access).
    pub seek_distance: u64,
    /// Seek plus rotational latency, milliseconds.
    pub positioning_ms: f64,
    /// Data transfer time, milliseconds.
    pub transfer_ms: f64,
    /// Full service time including fixed overhead, milliseconds.
    pub total_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seek_curve_monotone_and_bounded() {
        let p = DiskProfile::seagate_1994(4096);
        assert_eq!(p.seek_ms(0), 0.0);
        let mut prev = 0.0;
        for d in [1u64, 10, 100, 10_000, 1_000_000, p.blocks] {
            let s = p.seek_ms(d);
            assert!(s >= prev, "seek not monotone at distance {d}");
            assert!(s >= p.min_seek_ms && s <= p.max_seek_ms);
            prev = s;
        }
    }

    #[test]
    fn sequential_access_skips_positioning() {
        let p = DiskProfile::seagate_1994(4096);
        let seq = p.service_ms(Some(100), 100, 8);
        let rand = p.service_ms(Some(100_000), 100, 8);
        assert!(seq < rand);
        let transfer_only = p.overhead_ms + p.transfer_ms(8);
        assert!((seq - transfer_only).abs() < 1e-9);
    }

    #[test]
    fn ssd_has_no_mechanical_latency() {
        let p = DiskProfile::ssd(4096);
        assert_eq!(p.rotational_latency_ms(), 0.0);
        assert_eq!(p.seek_ms(1_000_000), 0.0);
    }

    #[test]
    fn transfer_scales_linearly() {
        let p = DiskProfile::seagate_1994(4096);
        assert!((p.transfer_ms(20) - 2.0 * p.transfer_ms(10)).abs() < 1e-9);
    }

    #[test]
    fn breakdown_components_sum_to_service_time() {
        let p = DiskProfile::seagate_1994(4096);
        for head in [None, Some(0u64), Some(100), Some(9_999)] {
            let b = p.service_breakdown(head, 100, 8);
            assert!(
                (b.total_ms - (p.overhead_ms + b.positioning_ms + b.transfer_ms)).abs() < 1e-12
            );
            assert!((b.total_ms - p.service_ms(head, 100, 8)).abs() < 1e-12);
        }
        let seq = p.service_breakdown(Some(100), 100, 8);
        assert_eq!(seq.seek_distance, 0);
        assert_eq!(seq.positioning_ms, 0.0);
        let scattered = p.service_breakdown(Some(500), 100, 8);
        assert_eq!(scattered.seek_distance, 400);
        assert!(scattered.positioning_ms > 0.0);
    }

    #[test]
    fn speedup_halves_times() {
        let p = DiskProfile::seagate_1994(4096);
        let f = p.speedup(2.0);
        assert!((f.seek_ms(10_000) - 0.5 * p.seek_ms(10_000)).abs() < 1e-9);
        assert!((f.rotational_latency_ms() - 0.5 * p.rotational_latency_ms()).abs() < 1e-9);
        assert!((f.transfer_ms(100) - 0.5 * p.transfer_ms(100)).abs() < 1e-9);
    }

    #[test]
    fn bucket_write_is_data_rate_dominated_longlist_seek_dominated() {
        // The paper's §7 observation, as a model property: one large
        // sequential write is transfer-dominated; many small scattered
        // writes are positioning-dominated.
        let p = DiskProfile::seagate_1994(4096);
        let big_write = p.service_ms(Some(0), 0, 1000);
        assert!(p.transfer_ms(1000) / big_write > 0.9);
        let scattered = p.service_ms(Some(500_000), 1_000, 1);
        assert!(p.transfer_ms(1) / scattered < 0.1);
    }
}
