//! Error types for the disk substrate.

use std::fmt;

/// Result alias for disk operations.
pub type Result<T> = std::result::Result<T, DiskError>;

/// Errors raised by block devices, allocators, and trace machinery.
#[derive(Debug)]
pub enum DiskError {
    /// An access whose byte length is not a whole number of blocks.
    UnalignedAccess {
        /// Byte length of the attempted access (or file).
        len: usize,
        /// Device block size.
        block_size: usize,
    },
    /// A zero-length access.
    EmptyAccess,
    /// An access extending past the end of the device.
    OutOfRange {
        /// First block of the access.
        start: u64,
        /// Blocks in the access.
        nblocks: u64,
        /// Total blocks on the device.
        device: u64,
    },
    /// The device has no free extent large enough for a request.
    OutOfSpace {
        /// Blocks requested.
        requested: u64,
        /// Largest satisfiable request.
        largest_free: u64,
    },
    /// Freeing (part of) a region that was not allocated, or allocator
    /// state corruption.
    AllocatorCorruption(String),
    /// A malformed I/O trace line.
    TraceParse(String),
    /// Underlying file I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnalignedAccess { len, block_size } => {
                write!(f, "access of {len} bytes is not a multiple of block size {block_size}")
            }
            Self::EmptyAccess => write!(f, "zero-length device access"),
            Self::OutOfRange { start, nblocks, device } => {
                write!(f, "access [{start}, {start}+{nblocks}) beyond device of {device} blocks")
            }
            Self::OutOfSpace { requested, largest_free } => {
                write!(f, "no free extent of {requested} blocks (largest is {largest_free})")
            }
            Self::AllocatorCorruption(msg) => write!(f, "allocator corruption: {msg}"),
            Self::TraceParse(msg) => write!(f, "trace parse error: {msg}"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DiskError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}
