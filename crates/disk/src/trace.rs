//! I/O traces: the interface between the "compute disks" and "exercise
//! disks" processes of the paper's Figure 3 pipeline.
//!
//! A trace records every read/write system call an index-building policy
//! would issue — which disk, which starting block, how many blocks, and
//! what the blocks hold (buckets, the directory, or long-list postings for
//! a given word). The text format mirrors the paper's Figure 6:
//!
//! ```text
//! update bucket disk 0 id 0 size 1377
//! update chunk disk 0 id 0 size 0
//! write word 172921 posting 1013 disk 0 id 1377 size 7
//! ```

use crate::error::{DiskError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Direction of an I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A read system call.
    Read,
    /// A write system call.
    Write,
}

/// What the accessed blocks hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Payload {
    /// The bucket data structure (flushed each batch).
    Bucket,
    /// The long-list directory (flushed each batch).
    Directory,
    /// Long-list postings for `word`; `postings` is the posting count moved
    /// by this operation (0 for reads of whole chunks where it is implied).
    LongList {
        /// The word whose list is accessed.
        word: u64,
        /// Postings carried by the operation.
        postings: u64,
    },
    /// Write-ahead-log bytes (durable store commit path).
    Wal,
    /// Checkpoint snapshot bytes (durable store checkpoint path).
    Checkpoint,
    /// Sealed-segment bytes (segment-tiered engine): postings runs and the
    /// term index of immutable segment `segment`.
    Segment {
        /// The segment id whose blocks are accessed.
        segment: u64,
    },
}

/// One I/O system call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoOp {
    /// Read or write.
    pub kind: OpKind,
    /// Target disk (0-based).
    pub disk: u16,
    /// Starting block on that disk.
    pub start: u64,
    /// Number of contiguous blocks.
    pub blocks: u64,
    /// Content tag.
    pub payload: Payload,
}

impl IoOp {
    /// First block past the end of this operation.
    pub fn end(&self) -> u64 {
        self.start + self.blocks
    }
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Figure 6 grammar, extended with an explicit `read` verb (the
        // paper's sample only happens to show writes).
        let verb = match self.kind {
            OpKind::Read => "read",
            OpKind::Write => "write",
        };
        match self.payload {
            Payload::Bucket => write!(
                f,
                "update bucket disk {} id {} size {}",
                self.disk, self.start, self.blocks
            ),
            Payload::Directory => write!(
                f,
                "update chunk disk {} id {} size {}",
                self.disk, self.start, self.blocks
            ),
            Payload::LongList { word, postings } => write!(
                f,
                "{verb} word {word} posting {postings} disk {} id {} size {}",
                self.disk, self.start, self.blocks
            ),
            Payload::Wal => write!(
                f,
                "{verb} wal disk {} id {} size {}",
                self.disk, self.start, self.blocks
            ),
            Payload::Checkpoint => write!(
                f,
                "{verb} checkpoint disk {} id {} size {}",
                self.disk, self.start, self.blocks
            ),
            Payload::Segment { segment } => write!(
                f,
                "{verb} segment {segment} disk {} id {} size {}",
                self.disk, self.start, self.blocks
            ),
        }
    }
}

/// A whole trace: operations plus end-of-batch markers.
///
/// ```
/// use invidx_disk::{IoOp, IoTrace, OpKind, Payload};
///
/// let mut trace = IoTrace::new();
/// trace.push(IoOp {
///     kind: OpKind::Write, disk: 0, start: 1377, blocks: 7,
///     payload: Payload::LongList { word: 172921, postings: 1013 },
/// });
/// trace.end_batch();
/// // The paper's Figure 6 text format round-trips:
/// let text = trace.to_text();
/// assert!(text.starts_with("write word 172921 posting 1013 disk 0 id 1377 size 7"));
/// assert_eq!(IoTrace::from_text(&text).unwrap(), trace);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoTrace {
    /// All operations in issue order.
    pub ops: Vec<IoOp>,
    /// `batch_ends[i]` = index one past the last op of batch `i`.
    pub batch_ends: Vec<usize>,
}

impl IoTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one operation to the current batch.
    pub fn push(&mut self, op: IoOp) {
        self.ops.push(op);
    }

    /// Close the current batch.
    pub fn end_batch(&mut self) {
        self.batch_ends.push(self.ops.len());
    }

    /// Number of completed batches.
    pub fn batches(&self) -> usize {
        self.batch_ends.len()
    }

    /// The operations of batch `i`.
    pub fn batch_ops(&self, i: usize) -> &[IoOp] {
        let start = if i == 0 { 0 } else { self.batch_ends[i - 1] };
        &self.ops[start..self.batch_ends[i]]
    }

    /// Cumulative operation count at the end of each batch — the y-axis of
    /// the paper's Figure 8.
    pub fn cumulative_ops_per_batch(&self) -> Vec<u64> {
        self.batch_ends.iter().map(|&e| e as u64).collect()
    }

    /// Count operations matching a predicate.
    pub fn count<F: Fn(&IoOp) -> bool>(&self, pred: F) -> u64 {
        self.ops.iter().filter(|op| pred(op)).count() as u64
    }

    /// Serialize in the Figure 6 text format, with `end batch` markers.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for (i, _) in self.batch_ends.iter().enumerate() {
            for op in self.batch_ops(i) {
                s.push_str(&op.to_string());
                s.push('\n');
            }
            s.push_str("end batch\n");
        }
        s
    }

    /// Parse the Figure 6 text format.
    pub fn from_text(text: &str) -> Result<Self> {
        let mut trace = Self::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line == "end batch" {
                trace.end_batch();
                continue;
            }
            trace.push(parse_op(line).map_err(|msg| {
                DiskError::TraceParse(format!("line {}: {msg}: {line:?}", lineno + 1))
            })?);
        }
        // An unterminated final batch is closed implicitly.
        if trace.batch_ends.last().copied().unwrap_or(0) != trace.ops.len() {
            trace.end_batch();
        }
        Ok(trace)
    }
}

fn parse_op(line: &str) -> std::result::Result<IoOp, String> {
    let toks: Vec<&str> = line.split_ascii_whitespace().collect();
    let num = |s: &str| s.parse::<u64>().map_err(|_| format!("bad number {s:?}"));
    match toks.as_slice() {
        ["update", "bucket", "disk", d, "id", s, "size", b] => Ok(IoOp {
            kind: OpKind::Write,
            disk: num(d)? as u16,
            start: num(s)?,
            blocks: num(b)?,
            payload: Payload::Bucket,
        }),
        ["update", "chunk", "disk", d, "id", s, "size", b] => Ok(IoOp {
            kind: OpKind::Write,
            disk: num(d)? as u16,
            start: num(s)?,
            blocks: num(b)?,
            payload: Payload::Directory,
        }),
        [verb @ ("read" | "write"), "word", w, "posting", p, "disk", d, "id", s, "size", b] => {
            Ok(IoOp {
                kind: if *verb == "read" { OpKind::Read } else { OpKind::Write },
                disk: num(d)? as u16,
                start: num(s)?,
                blocks: num(b)?,
                payload: Payload::LongList { word: num(w)?, postings: num(p)? },
            })
        }
        [verb @ ("read" | "write"), kind @ ("wal" | "checkpoint"), "disk", d, "id", s, "size", b] => {
            Ok(IoOp {
                kind: if *verb == "read" { OpKind::Read } else { OpKind::Write },
                disk: num(d)? as u16,
                start: num(s)?,
                blocks: num(b)?,
                payload: if *kind == "wal" { Payload::Wal } else { Payload::Checkpoint },
            })
        }
        [verb @ ("read" | "write"), "segment", seg, "disk", d, "id", s, "size", b] => Ok(IoOp {
            kind: if *verb == "read" { OpKind::Read } else { OpKind::Write },
            disk: num(d)? as u16,
            start: num(s)?,
            blocks: num(b)?,
            payload: Payload::Segment { segment: num(seg)? },
        }),
        _ => Err("unrecognized trace line".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> IoTrace {
        let mut t = IoTrace::new();
        t.push(IoOp {
            kind: OpKind::Write,
            disk: 0,
            start: 0,
            blocks: 1377,
            payload: Payload::Bucket,
        });
        t.push(IoOp {
            kind: OpKind::Write,
            disk: 0,
            start: 0,
            blocks: 0,
            payload: Payload::Directory,
        });
        t.push(IoOp {
            kind: OpKind::Write,
            disk: 0,
            start: 1377,
            blocks: 7,
            payload: Payload::LongList { word: 172_921, postings: 1013 },
        });
        t.end_batch();
        t.push(IoOp {
            kind: OpKind::Read,
            disk: 1,
            start: 40,
            blocks: 2,
            payload: Payload::LongList { word: 9, postings: 0 },
        });
        t.push(IoOp {
            kind: OpKind::Write,
            disk: 2,
            start: 512,
            blocks: 64,
            payload: Payload::Segment { segment: 17 },
        });
        t.end_batch();
        t
    }

    #[test]
    fn figure6_line_format() {
        let t = sample_trace();
        assert_eq!(t.ops[0].to_string(), "update bucket disk 0 id 0 size 1377");
        assert_eq!(t.ops[1].to_string(), "update chunk disk 0 id 0 size 0");
        assert_eq!(
            t.ops[2].to_string(),
            "write word 172921 posting 1013 disk 0 id 1377 size 7"
        );
        assert_eq!(t.ops[4].to_string(), "write segment 17 disk 2 id 512 size 64");
    }

    #[test]
    fn text_round_trip() {
        let t = sample_trace();
        let text = t.to_text();
        let parsed = IoTrace::from_text(&text).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn batch_slicing() {
        let t = sample_trace();
        assert_eq!(t.batches(), 2);
        assert_eq!(t.batch_ops(0).len(), 3);
        assert_eq!(t.batch_ops(1).len(), 2);
        assert_eq!(t.cumulative_ops_per_batch(), vec![3, 5]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(IoTrace::from_text("write sideways disk 0\n").is_err());
        assert!(IoTrace::from_text("update bucket disk x id 0 size 1\n").is_err());
    }

    #[test]
    fn unterminated_batch_closed() {
        let t = IoTrace::from_text("update bucket disk 0 id 0 size 1\n").unwrap();
        assert_eq!(t.batches(), 1);
    }

    #[test]
    fn count_predicate() {
        let t = sample_trace();
        assert_eq!(t.count(|op| op.kind == OpKind::Read), 1);
        assert_eq!(t.count(|op| matches!(op.payload, Payload::LongList { .. })), 2);
    }
}
