//! Extent free-space management.
//!
//! The paper (§3, fourth issue) allocates chunks with a **first-fit**
//! strategy, "scanning the free list for the disk from the beginning of the
//! disk", and names best-fit and buddy systems as alternatives it does not
//! evaluate ("to keep the space of possible solutions manageable"). We
//! implement first-fit as the default and the alternatives behind the same
//! trait so the ablation benches can compare them.

use crate::error::{DiskError, Result};
use std::collections::BTreeMap;

/// An allocator handing out contiguous block extents on one disk.
pub trait ExtentAllocator: Send + Sync {
    /// Allocate a contiguous extent of exactly `blocks` blocks; returns the
    /// starting block.
    fn alloc(&mut self, blocks: u64) -> Result<u64>;

    /// Return an extent to free space.
    fn free(&mut self, start: u64, blocks: u64) -> Result<()>;

    /// Device size in blocks.
    fn total_blocks(&self) -> u64;

    /// Free blocks remaining.
    fn free_blocks(&self) -> u64;

    /// Size of the largest allocatable extent.
    fn largest_free(&self) -> u64;

    /// Mark a *specific* extent as allocated — used when reconstructing
    /// allocator state during crash recovery, where the directory dictates
    /// which extents are live. Errors if any block in the range is not
    /// currently free. Allocators that cannot honour exact placement may
    /// return [`DiskError::AllocatorCorruption`].
    fn reserve(&mut self, start: u64, blocks: u64) -> Result<()> {
        let _ = (start, blocks);
        Err(DiskError::AllocatorCorruption(
            "reserve(start, blocks) not supported by this allocator".into(),
        ))
    }

    /// External fragmentation in [0, 1]: `1 - largest_free / free_blocks`
    /// (0 when no blocks are free).
    fn external_fragmentation(&self) -> f64 {
        let free = self.free_blocks();
        if free == 0 {
            0.0
        } else {
            1.0 - self.largest_free() as f64 / free as f64
        }
    }
}

/// Placement rule for [`FreeList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitStrategy {
    /// The paper's strategy: lowest-addressed extent that fits.
    FirstFit,
    /// Smallest extent that fits (ties broken by address).
    BestFit,
}

/// A free list of maximal disjoint extents, kept coalesced.
///
/// ```
/// use invidx_disk::{ExtentAllocator, FitStrategy, FreeList};
///
/// let mut fl = FreeList::new(100, FitStrategy::FirstFit);
/// let a = fl.alloc(10).unwrap();   // first fit: block 0
/// let b = fl.alloc(5).unwrap();    // block 10
/// fl.free(a, 10).unwrap();
/// assert_eq!(fl.alloc(3).unwrap(), 0); // reuses the hole
/// assert_eq!(fl.free_blocks(), 100 - 5 - 3);
/// # let _ = b;
/// ```
#[derive(Debug, Clone)]
pub struct FreeList {
    /// start -> len; invariant: extents are disjoint and non-adjacent.
    extents: BTreeMap<u64, u64>,
    total: u64,
    free: u64,
    strategy: FitStrategy,
}

impl FreeList {
    /// A fully-free disk of `total` blocks.
    pub fn new(total: u64, strategy: FitStrategy) -> Self {
        let mut extents = BTreeMap::new();
        if total > 0 {
            extents.insert(0, total);
        }
        Self { extents, total, free: total, strategy }
    }

    /// A free list where the first `reserved` blocks are pre-allocated
    /// (e.g. a superblock region).
    pub fn with_reserved(total: u64, reserved: u64, strategy: FitStrategy) -> Self {
        assert!(reserved <= total);
        let mut extents = BTreeMap::new();
        if total > reserved {
            extents.insert(reserved, total - reserved);
        }
        Self { extents, total, free: total - reserved, strategy }
    }

    /// Iterate free extents as `(start, len)` in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.extents.iter().map(|(&s, &l)| (s, l))
    }

    /// Verify internal invariants (used by tests and property checks).
    pub fn check_invariants(&self) -> Result<()> {
        let mut sum = 0u64;
        let mut prev_end: Option<u64> = None;
        for (&start, &len) in &self.extents {
            if len == 0 {
                return Err(DiskError::AllocatorCorruption(format!(
                    "zero-length extent at {start}"
                )));
            }
            if start + len > self.total {
                return Err(DiskError::AllocatorCorruption(format!(
                    "extent [{start}, {}) beyond total {}",
                    start + len,
                    self.total
                )));
            }
            if let Some(pe) = prev_end {
                if start <= pe {
                    return Err(DiskError::AllocatorCorruption(format!(
                        "extent at {start} overlaps or abuts previous end {pe}"
                    )));
                }
            }
            prev_end = Some(start + len);
            sum += len;
        }
        if sum != self.free {
            return Err(DiskError::AllocatorCorruption(format!(
                "free count {} != extent sum {sum}",
                self.free
            )));
        }
        Ok(())
    }

    /// Choose an extent; returns `(start, extents examined)`. The scan
    /// length is the paper's free-list cost driver ("scanning the free
    /// list for the disk from the beginning of the disk"), so callers
    /// feed it to the observability layer.
    fn pick(&self, blocks: u64) -> (Option<u64>, u64) {
        match self.strategy {
            FitStrategy::FirstFit => {
                let mut scanned = 0;
                for (&start, &len) in &self.extents {
                    scanned += 1;
                    if len >= blocks {
                        return (Some(start), scanned);
                    }
                }
                (None, scanned)
            }
            FitStrategy::BestFit => {
                // Best fit always examines the whole list.
                let start = self
                    .extents
                    .iter()
                    .filter(|&(_, &len)| len >= blocks)
                    .min_by_key(|&(&start, &len)| (len, start))
                    .map(|(&start, _)| start);
                (start, self.extents.len() as u64)
            }
        }
    }

    /// Debug-build checkpoint: every mutation must leave the free list
    /// consistent. Compiled out of release builds.
    #[inline]
    fn debug_check(&self) {
        #[cfg(debug_assertions)]
        if let Err(e) = self.check_invariants() {
            panic!("free-list invariant violated: {e}");
        }
    }
}

impl ExtentAllocator for FreeList {
    fn alloc(&mut self, blocks: u64) -> Result<u64> {
        if blocks == 0 {
            return Err(DiskError::EmptyAccess);
        }
        let (picked, scanned) = self.pick(blocks);
        invidx_obs::counter!(invidx_obs::names::FREELIST_ALLOCS).inc();
        invidx_obs::histogram!(invidx_obs::names::FREELIST_SCAN_LEN, invidx_obs::Buckets::pow2())
            .record_u64(scanned);
        invidx_obs::histogram!(invidx_obs::names::FREELIST_FRAGMENTS, invidx_obs::Buckets::pow2())
            .record_u64(self.extents.len() as u64);
        let start = picked.ok_or(DiskError::OutOfSpace {
            requested: blocks,
            largest_free: self.largest_free(),
        })?;
        let len = self.extents.remove(&start).expect("picked extent exists");
        if len > blocks {
            // "the chunk is placed at the beginning of the free blocks and
            // the remaining free blocks are returned to free space"
            self.extents.insert(start + blocks, len - blocks);
        }
        self.free -= blocks;
        self.debug_check();
        Ok(start)
    }

    fn free(&mut self, start: u64, blocks: u64) -> Result<()> {
        if blocks == 0 {
            return Err(DiskError::EmptyAccess);
        }
        if start + blocks > self.total {
            return Err(DiskError::OutOfRange { start, nblocks: blocks, device: self.total });
        }
        // Find neighbours to detect double frees and coalesce.
        let prev = self.extents.range(..start).next_back().map(|(&s, &l)| (s, l));
        let next = self.extents.range(start..).next().map(|(&s, &l)| (s, l));
        if let Some((ps, pl)) = prev {
            if ps + pl > start {
                return Err(DiskError::AllocatorCorruption(format!(
                    "free of [{start}, {}) overlaps free extent [{ps}, {})",
                    start + blocks,
                    ps + pl
                )));
            }
        }
        if let Some((ns, _)) = next {
            if start + blocks > ns {
                return Err(DiskError::AllocatorCorruption(format!(
                    "free of [{start}, {}) overlaps free extent at {ns}",
                    start + blocks
                )));
            }
        }
        let mut new_start = start;
        let mut new_len = blocks;
        let mut merges = 0u64;
        if let Some((ps, pl)) = prev {
            if ps + pl == start {
                self.extents.remove(&ps);
                new_start = ps;
                new_len += pl;
                merges += 1;
            }
        }
        if let Some((ns, nl)) = next {
            if start + blocks == ns {
                self.extents.remove(&ns);
                new_len += nl;
                merges += 1;
            }
        }
        self.extents.insert(new_start, new_len);
        self.free += blocks;
        invidx_obs::counter!(invidx_obs::names::FREELIST_FREES).inc();
        if merges > 0 {
            invidx_obs::counter!(invidx_obs::names::FREELIST_COALESCES).add(merges);
        }
        self.debug_check();
        Ok(())
    }

    fn total_blocks(&self) -> u64 {
        self.total
    }

    fn free_blocks(&self) -> u64 {
        self.free
    }

    fn largest_free(&self) -> u64 {
        self.extents.values().copied().max().unwrap_or(0)
    }

    fn reserve(&mut self, start: u64, blocks: u64) -> Result<()> {
        if blocks == 0 {
            return Err(DiskError::EmptyAccess);
        }
        // The containing free extent, if any.
        let (&es, &el) = self
            .extents
            .range(..=start)
            .next_back()
            .ok_or_else(|| not_free(start, blocks))?;
        if es + el < start + blocks {
            return Err(not_free(start, blocks));
        }
        self.extents.remove(&es);
        if es < start {
            self.extents.insert(es, start - es);
        }
        if start + blocks < es + el {
            self.extents.insert(start + blocks, es + el - (start + blocks));
        }
        self.free -= blocks;
        self.debug_check();
        Ok(())
    }
}

fn not_free(start: u64, blocks: u64) -> DiskError {
    DiskError::AllocatorCorruption(format!(
        "reserve of [{start}, {}) overlaps allocated space",
        start + blocks
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_takes_lowest_address() {
        let mut fl = FreeList::new(100, FitStrategy::FirstFit);
        // Create holes: [0,10) free, [10,20) used, [20,100) free.
        let a = fl.alloc(20).unwrap();
        assert_eq!(a, 0);
        fl.free(0, 10).unwrap();
        // A 5-block request fits the first hole.
        assert_eq!(fl.alloc(5).unwrap(), 0);
        fl.check_invariants().unwrap();
    }

    #[test]
    fn best_fit_takes_smallest_hole() {
        let mut fl = FreeList::new(100, FitStrategy::BestFit);
        // Layout: hole of 10 at 0, used [10,20), hole of 80 at 20.
        fl.alloc(20).unwrap();
        fl.free(0, 10).unwrap();
        // Request of 8: best-fit picks the 10-hole, first-fit would too here;
        // request of 15 must skip to the big hole.
        assert_eq!(fl.alloc(15).unwrap(), 20);
        assert_eq!(fl.alloc(8).unwrap(), 0);
        fl.check_invariants().unwrap();
    }

    #[test]
    fn free_coalesces_both_sides() {
        let mut fl = FreeList::new(30, FitStrategy::FirstFit);
        let a = fl.alloc(10).unwrap();
        let b = fl.alloc(10).unwrap();
        let c = fl.alloc(10).unwrap();
        assert_eq!((a, b, c), (0, 10, 20));
        fl.free(a, 10).unwrap();
        fl.free(c, 10).unwrap();
        fl.free(b, 10).unwrap();
        assert_eq!(fl.iter().collect::<Vec<_>>(), vec![(0, 30)]);
        assert_eq!(fl.free_blocks(), 30);
        fl.check_invariants().unwrap();
    }

    #[test]
    fn out_of_space_reports_largest() {
        let mut fl = FreeList::new(10, FitStrategy::FirstFit);
        fl.alloc(6).unwrap();
        match fl.alloc(5) {
            Err(DiskError::OutOfSpace { requested: 5, largest_free: 4 }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn double_free_detected() {
        let mut fl = FreeList::new(10, FitStrategy::FirstFit);
        let a = fl.alloc(4).unwrap();
        fl.free(a, 4).unwrap();
        assert!(fl.free(a, 4).is_err());
        // Partial overlap with free space is also detected.
        let b = fl.alloc(4).unwrap();
        fl.free(b, 2).unwrap();
        assert!(fl.free(b, 4).is_err());
    }

    #[test]
    fn reserved_region_not_allocated() {
        let mut fl = FreeList::with_reserved(100, 16, FitStrategy::FirstFit);
        assert_eq!(fl.free_blocks(), 84);
        assert_eq!(fl.alloc(10).unwrap(), 16);
    }

    #[test]
    fn fragmentation_metric() {
        let mut fl = FreeList::new(100, FitStrategy::FirstFit);
        assert_eq!(fl.external_fragmentation(), 0.0);
        fl.alloc(10).unwrap();
        let keep = fl.alloc(10).unwrap();
        fl.free(0, 10).unwrap();
        let _ = keep;
        // Free space: 10 at 0, 80 at 20 -> largest 80 of 90.
        assert!((fl.external_fragmentation() - (1.0 - 80.0 / 90.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_sized_requests_rejected() {
        let mut fl = FreeList::new(10, FitStrategy::FirstFit);
        assert!(fl.alloc(0).is_err());
        assert!(fl.free(0, 0).is_err());
    }

    #[test]
    fn reserve_carves_exact_extent() {
        let mut fl = FreeList::new(100, FitStrategy::FirstFit);
        fl.reserve(10, 5).unwrap();
        fl.check_invariants().unwrap();
        assert_eq!(fl.free_blocks(), 95);
        // First-fit now lands before the reserved region.
        assert_eq!(fl.alloc(10).unwrap(), 0);
        // Overlapping reserve fails.
        assert!(fl.reserve(12, 2).is_err());
        assert!(fl.reserve(8, 4).is_err());
        // Adjacent reserve succeeds.
        fl.reserve(15, 5).unwrap();
        fl.check_invariants().unwrap();
        // Freeing a reserved extent works like any other.
        fl.free(10, 10).unwrap();
        fl.check_invariants().unwrap();
    }

    #[test]
    fn reserve_whole_extent_and_edges() {
        let mut fl = FreeList::new(20, FitStrategy::FirstFit);
        fl.reserve(0, 20).unwrap();
        assert_eq!(fl.free_blocks(), 0);
        assert!(fl.reserve(0, 1).is_err());
        fl.free(0, 20).unwrap();
        assert_eq!(fl.largest_free(), 20);
    }

    #[test]
    fn exhaustive_alloc_free_cycle_preserves_invariants() {
        let mut fl = FreeList::new(64, FitStrategy::FirstFit);
        let mut held: Vec<(u64, u64)> = Vec::new();
        // Deterministic pseudo-random workload.
        let mut state = 0x12345u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let choice = state >> 60;
            if choice.is_multiple_of(2) || held.is_empty() {
                let want = 1 + (state >> 32) % 8;
                if let Ok(start) = fl.alloc(want) {
                    held.push((start, want));
                }
            } else {
                let idx = ((state >> 16) as usize) % held.len();
                let (s, l) = held.swap_remove(idx);
                fl.free(s, l).unwrap();
            }
            fl.check_invariants().unwrap();
        }
    }
}
