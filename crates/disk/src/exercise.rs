//! The "exercise disks" process (paper §4.5).
//!
//! Takes an I/O trace and executes it against the disk timing model:
//!
//! * "Requests to each disk are issued by independent processes to achieve
//!   maximum parallelism" — each disk serves its own subsequence of the
//!   trace; a batch's elapsed time is the **maximum** over disks of the
//!   per-disk service time sum.
//! * "the disk exerciser program does its own coalescing of I/O operations
//!   where possible without reordering the execution trace. [...] the disk
//!   exerciser will only coalesce up to BufferBlock blocks in a single
//!   request" — consecutive same-kind contiguous operations on the same
//!   disk merge, capped at `buffer_blocks`.

use crate::model::DiskProfile;
use crate::trace::{IoOp, IoTrace, OpKind};
use serde::{Deserialize, Serialize};

/// Configuration of the exerciser.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExerciseConfig {
    /// Timing model applied to every disk.
    pub profile: DiskProfile,
    /// Number of disks (operations referencing higher disk ids are an
    /// error).
    pub disks: u16,
    /// Maximum blocks coalesced into one request ("I/O buffer memory",
    /// Table 4's BufferBlock).
    pub buffer_blocks: u64,
}

/// A coalesced physical request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysRequest {
    /// Read or write.
    pub kind: OpKind,
    /// Target disk.
    pub disk: u16,
    /// Starting block.
    pub start: u64,
    /// Blocks transferred.
    pub blocks: u64,
    /// Number of trace operations merged into this request.
    pub merged: u32,
}

/// Results of exercising one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExerciseResult {
    /// Elapsed seconds per batch (Figure 14's y-axis).
    pub batch_seconds: Vec<f64>,
    /// Cumulative seconds after each batch (Figure 13's y-axis).
    pub cumulative_seconds: Vec<f64>,
    /// Physical requests issued per batch, after coalescing.
    pub phys_requests: Vec<u64>,
    /// Logical (trace) operations per batch, before coalescing.
    pub logical_ops: Vec<u64>,
    /// Busy seconds per disk over the whole run.
    pub disk_busy_seconds: Vec<f64>,
}

impl ExerciseResult {
    /// Total elapsed seconds.
    pub fn total_seconds(&self) -> f64 {
        self.cumulative_seconds.last().copied().unwrap_or(0.0)
    }
}

/// Coalesce one batch's operations into physical requests, per disk, in
/// order, without crossing the buffer limit. Returns the per-disk request
/// queues.
pub fn coalesce_batch(ops: &[IoOp], disks: u16, buffer_blocks: u64) -> Vec<Vec<PhysRequest>> {
    let mut queues: Vec<Vec<PhysRequest>> = vec![Vec::new(); disks as usize];
    for op in ops {
        assert!(op.disk < disks, "trace references disk {} of {disks}", op.disk);
        if op.blocks == 0 {
            // Zero-length entries (e.g. the empty initial directory in
            // Figure 6) perform no actual I/O.
            continue;
        }
        let queue = &mut queues[op.disk as usize];
        if let Some(last) = queue.last_mut() {
            if last.kind == op.kind
                && last.start + last.blocks == op.start
                && last.blocks + op.blocks <= buffer_blocks
            {
                last.blocks += op.blocks;
                last.merged += 1;
                continue;
            }
        }
        queue.push(PhysRequest {
            kind: op.kind,
            disk: op.disk,
            start: op.start,
            blocks: op.blocks,
            merged: 1,
        });
    }
    queues
}

/// Per-disk metric handles, resolved once per exercise run so the
/// per-request hot loop only touches atomics.
struct DiskMetrics {
    ops: Vec<std::sync::Arc<invidx_obs::Counter>>,
    blocks: Vec<std::sync::Arc<invidx_obs::Counter>>,
    service: Vec<std::sync::Arc<invidx_obs::Histogram>>,
}

impl DiskMetrics {
    fn new(disks: u16) -> Self {
        use invidx_obs::names;
        let registry = invidx_obs::registry();
        Self {
            ops: (0..disks)
                .map(|d| registry.counter(&names::per_disk(names::DISK_OPS, d)))
                .collect(),
            blocks: (0..disks)
                .map(|d| registry.counter(&names::per_disk(names::DISK_BLOCKS, d)))
                .collect(),
            service: (0..disks)
                .map(|d| {
                    registry.histogram(
                        &names::per_disk(names::DISK_SERVICE_MS, d),
                        invidx_obs::Buckets::time_ms(),
                    )
                })
                .collect(),
        }
    }
}

/// Execute a trace against the timing model.
pub fn exercise(trace: &IoTrace, cfg: &ExerciseConfig) -> ExerciseResult {
    let mut heads: Vec<Option<u64>> = vec![None; cfg.disks as usize];
    let mut disk_busy = vec![0.0f64; cfg.disks as usize];
    let mut batch_seconds = Vec::with_capacity(trace.batches());
    let mut cumulative_seconds = Vec::with_capacity(trace.batches());
    let mut phys_requests = Vec::with_capacity(trace.batches());
    let mut logical_ops = Vec::with_capacity(trace.batches());
    let mut cumulative = 0.0f64;
    let metrics = DiskMetrics::new(cfg.disks);
    let seek_hist = invidx_obs::histogram!(
        invidx_obs::names::DISK_SEEK_DISTANCE,
        invidx_obs::Buckets::exponential(1.0, 4.0, 16)
    );
    let imbalance_hist = invidx_obs::histogram!(
        invidx_obs::names::DISK_QUEUE_IMBALANCE,
        invidx_obs::Buckets::exponential(1.0, 1.25, 16)
    );

    for b in 0..trace.batches() {
        let ops = trace.batch_ops(b);
        let queues = coalesce_batch(ops, cfg.disks, cfg.buffer_blocks);
        let mut batch_max = 0.0f64;
        let mut batch_busy_ms = 0.0f64;
        let mut requests = 0u64;
        for (d, queue) in queues.iter().enumerate() {
            let mut disk_time_ms = 0.0f64;
            for req in queue {
                let svc = cfg.profile.service_breakdown(heads[d], req.start, req.blocks);
                disk_time_ms += svc.total_ms;
                heads[d] = Some(req.start + req.blocks);
                requests += 1;
                metrics.service[d].record(svc.total_ms);
                if svc.seek_distance > 0 {
                    seek_hist.record_u64(svc.seek_distance);
                }
                metrics.blocks[d].add(req.blocks);
            }
            metrics.ops[d].add(queue.len() as u64);
            disk_busy[d] += disk_time_ms / 1e3;
            batch_busy_ms += disk_time_ms;
            batch_max = batch_max.max(disk_time_ms / 1e3);
        }
        // Queue imbalance: busiest disk over the mean across disks.
        // 1.0 means a perfectly balanced batch; `disks` means one disk
        // did all the work.
        let mean_ms = batch_busy_ms / cfg.disks.max(1) as f64;
        if mean_ms > 0.0 {
            imbalance_hist.record(batch_max * 1e3 / mean_ms);
        }
        invidx_obs::event!("exercise_batch", {
            "batch": b,
            "seconds": batch_max,
            "requests": requests,
            "logical_ops": ops.len(),
            "imbalance": if mean_ms > 0.0 { batch_max * 1e3 / mean_ms } else { 0.0 },
        });
        cumulative += batch_max;
        batch_seconds.push(batch_max);
        cumulative_seconds.push(cumulative);
        phys_requests.push(requests);
        logical_ops.push(ops.len() as u64);
    }

    ExerciseResult {
        batch_seconds,
        cumulative_seconds,
        phys_requests,
        logical_ops,
        disk_busy_seconds: disk_busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Payload;

    fn op(kind: OpKind, disk: u16, start: u64, blocks: u64) -> IoOp {
        IoOp { kind, disk, start, blocks, payload: Payload::LongList { word: 1, postings: 1 } }
    }

    fn cfg() -> ExerciseConfig {
        ExerciseConfig {
            profile: DiskProfile::seagate_1994(4096),
            disks: 2,
            buffer_blocks: 8,
        }
    }

    #[test]
    fn coalesces_contiguous_writes() {
        let ops = vec![
            op(OpKind::Write, 0, 0, 2),
            op(OpKind::Write, 0, 2, 2),
            op(OpKind::Write, 0, 4, 2),
        ];
        let q = coalesce_batch(&ops, 2, 8);
        assert_eq!(q[0].len(), 1);
        assert_eq!(q[0][0].blocks, 6);
        assert_eq!(q[0][0].merged, 3);
    }

    #[test]
    fn respects_buffer_limit() {
        let ops = vec![
            op(OpKind::Write, 0, 0, 5),
            op(OpKind::Write, 0, 5, 5), // would exceed 8
        ];
        let q = coalesce_batch(&ops, 2, 8);
        assert_eq!(q[0].len(), 2);
    }

    #[test]
    fn does_not_merge_across_kinds_or_gaps() {
        let ops = vec![
            op(OpKind::Write, 0, 0, 2),
            op(OpKind::Read, 0, 2, 2),
            op(OpKind::Write, 0, 10, 2),
        ];
        let q = coalesce_batch(&ops, 2, 64);
        assert_eq!(q[0].len(), 3);
    }

    #[test]
    fn does_not_reorder() {
        // A gap op between two contiguous ones blocks the merge, even
        // though reordering would allow it.
        let ops = vec![
            op(OpKind::Write, 0, 0, 2),
            op(OpKind::Write, 0, 100, 2),
            op(OpKind::Write, 0, 2, 2),
        ];
        let q = coalesce_batch(&ops, 2, 64);
        assert_eq!(q[0].len(), 3);
    }

    #[test]
    fn zero_block_ops_are_dropped() {
        let ops = vec![op(OpKind::Write, 0, 0, 0)];
        let q = coalesce_batch(&ops, 2, 8);
        assert!(q[0].is_empty());
    }

    #[test]
    fn disks_run_in_parallel() {
        // The same work split across two disks must be faster than on one.
        let mut t1 = IoTrace::new();
        let mut t2 = IoTrace::new();
        for i in 0..50u64 {
            t1.push(op(OpKind::Write, 0, i * 100, 1));
            t2.push(op(OpKind::Write, (i % 2) as u16, i * 100, 1));
        }
        t1.end_batch();
        t2.end_batch();
        let r1 = exercise(&t1, &cfg());
        let r2 = exercise(&t2, &cfg());
        assert!(r2.total_seconds() < r1.total_seconds());
        assert!(r2.total_seconds() > 0.4 * r1.total_seconds());
    }

    #[test]
    fn sequential_trace_is_transfer_bound() {
        // A purely sequential coalesced write stream approaches the data
        // rate; the same blocks scattered take much longer.
        let mut seq = IoTrace::new();
        let mut scat = IoTrace::new();
        for i in 0..64u64 {
            seq.push(op(OpKind::Write, 0, i, 1));
            scat.push(op(OpKind::Write, 0, (i * 7919) % 100_000, 1));
        }
        seq.end_batch();
        scat.end_batch();
        let c = ExerciseConfig { buffer_blocks: 128, ..cfg() };
        let rs = exercise(&seq, &c);
        let rr = exercise(&scat, &c);
        assert!(rs.total_seconds() * 5.0 < rr.total_seconds());
        assert!(rs.phys_requests[0] < rr.phys_requests[0]);
    }

    #[test]
    fn batch_time_is_max_over_disks() {
        let mut t = IoTrace::new();
        t.push(op(OpKind::Write, 0, 0, 1));
        t.end_batch();
        let r_single = exercise(&t, &cfg());
        // Adding identical work on the other disk must not increase the
        // elapsed batch time (parallel service).
        let mut t2 = IoTrace::new();
        t2.push(op(OpKind::Write, 0, 0, 1));
        t2.push(op(OpKind::Write, 1, 0, 1));
        t2.end_batch();
        let r_double = exercise(&t2, &cfg());
        assert!((r_single.total_seconds() - r_double.total_seconds()).abs() < 1e-9);
        assert_eq!(r_double.phys_requests[0], 2);
    }

    #[test]
    fn disk_busy_bounds_batch_time() {
        let mut t = IoTrace::new();
        for i in 0..20u64 {
            t.push(op(OpKind::Write, (i % 2) as u16, i * 50, 1));
        }
        t.end_batch();
        let r = exercise(&t, &cfg());
        // Elapsed time equals the busiest disk; total busy across disks is
        // at least that but at most disks x elapsed.
        let max_busy = r.disk_busy_seconds.iter().cloned().fold(0.0, f64::max);
        assert!((max_busy - r.total_seconds()).abs() < 1e-9);
        let total_busy: f64 = r.disk_busy_seconds.iter().sum();
        assert!(total_busy >= r.total_seconds());
        assert!(total_busy <= 2.0 * r.total_seconds() + 1e-9);
    }

    #[test]
    fn cumulative_is_prefix_sum() {
        let mut t = IoTrace::new();
        t.push(op(OpKind::Write, 0, 0, 1));
        t.end_batch();
        t.push(op(OpKind::Write, 0, 500, 1));
        t.end_batch();
        let r = exercise(&t, &cfg());
        assert_eq!(r.batch_seconds.len(), 2);
        assert!((r.cumulative_seconds[1] - (r.batch_seconds[0] + r.batch_seconds[1])).abs() < 1e-12);
    }
}
