//! Binary buddy allocator.
//!
//! Cutting & Pedersen (the paper's related work, [1]) "described a buddy
//! system for the allocation of long lists. This approach deserves further
//! experimental study since its expected space utilization is lower than
//! the methods presented here; however it may offer better update
//! performance." The ablation bench puts that remark to the test: the buddy
//! allocator trades internal fragmentation (requests round up to powers of
//! two) for O(log n) allocation and guaranteed coalescing.

use crate::error::{DiskError, Result};
use crate::freelist::ExtentAllocator;
use std::collections::BTreeSet;

/// Binary buddy allocator over `2^max_order` blocks.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    /// `free[k]` holds the start blocks of free buddies of size `2^k`.
    free: Vec<BTreeSet<u64>>,
    max_order: u32,
    total: u64,
    free_blocks: u64,
    /// Start -> order of live allocations, so `free` can verify and round
    /// the same way `alloc` did.
    live: std::collections::HashMap<u64, u32>,
}

impl BuddyAllocator {
    /// Create an allocator over `2^max_order` blocks.
    pub fn new(max_order: u32) -> Self {
        assert!(max_order < 63, "max_order too large");
        let mut free: Vec<BTreeSet<u64>> = (0..=max_order).map(|_| BTreeSet::new()).collect();
        free[max_order as usize].insert(0);
        let total = 1u64 << max_order;
        Self { free, max_order, total, free_blocks: total, live: Default::default() }
    }

    /// Create an allocator covering at least `blocks` blocks (rounded up to
    /// the next power of two).
    pub fn covering(blocks: u64) -> Self {
        let order = 64 - blocks.max(1).next_power_of_two().leading_zeros() - 1;
        Self::new(order)
    }

    fn order_for(blocks: u64) -> u32 {
        64 - blocks.next_power_of_two().leading_zeros() - 1
    }

    /// Verify internal invariants.
    pub fn check_invariants(&self) -> Result<()> {
        let mut sum = 0u64;
        for (k, set) in self.free.iter().enumerate() {
            for &start in set {
                let size = 1u64 << k;
                if start % size != 0 {
                    return Err(DiskError::AllocatorCorruption(format!(
                        "buddy of order {k} at misaligned start {start}"
                    )));
                }
                if start + size > self.total {
                    return Err(DiskError::AllocatorCorruption(format!(
                        "buddy of order {k} at {start} beyond total"
                    )));
                }
                sum += size;
            }
        }
        if sum != self.free_blocks {
            return Err(DiskError::AllocatorCorruption(format!(
                "free count {} != buddy sum {sum}",
                self.free_blocks
            )));
        }
        Ok(())
    }
}

impl ExtentAllocator for BuddyAllocator {
    fn alloc(&mut self, blocks: u64) -> Result<u64> {
        if blocks == 0 {
            return Err(DiskError::EmptyAccess);
        }
        if blocks > self.total {
            return Err(DiskError::OutOfSpace { requested: blocks, largest_free: self.largest_free() });
        }
        let want = Self::order_for(blocks);
        // Find the smallest available order >= want.
        let mut k = want;
        while k <= self.max_order && self.free[k as usize].is_empty() {
            k += 1;
        }
        if k > self.max_order {
            return Err(DiskError::OutOfSpace { requested: blocks, largest_free: self.largest_free() });
        }
        let start = *self.free[k as usize].iter().next().expect("non-empty");
        self.free[k as usize].remove(&start);
        // Split down to the wanted order, freeing the upper halves.
        while k > want {
            k -= 1;
            self.free[k as usize].insert(start + (1u64 << k));
        }
        self.free_blocks -= 1u64 << want;
        self.live.insert(start, want);
        Ok(start)
    }

    fn free(&mut self, start: u64, blocks: u64) -> Result<()> {
        if blocks == 0 {
            return Err(DiskError::EmptyAccess);
        }
        let order = Self::order_for(blocks);
        match self.live.remove(&start) {
            Some(o) if o == order => {}
            Some(o) => {
                self.live.insert(start, o);
                return Err(DiskError::AllocatorCorruption(format!(
                    "free of order {order} at {start} but allocation was order {o}"
                )));
            }
            None => {
                return Err(DiskError::AllocatorCorruption(format!(
                    "free of unallocated buddy at {start}"
                )));
            }
        }
        // Coalesce upward while the buddy is free.
        let mut k = order;
        let mut s = start;
        while k < self.max_order {
            let buddy = s ^ (1u64 << k);
            if self.free[k as usize].remove(&buddy) {
                s = s.min(buddy);
                k += 1;
            } else {
                break;
            }
        }
        self.free[k as usize].insert(s);
        self.free_blocks += 1u64 << order;
        Ok(())
    }

    fn total_blocks(&self) -> u64 {
        self.total
    }

    fn free_blocks(&self) -> u64 {
        self.free_blocks
    }

    fn largest_free(&self) -> u64 {
        (0..=self.max_order)
            .rev()
            .find(|&k| !self.free[k as usize].is_empty())
            .map(|k| 1u64 << k)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_power_of_two_rounded() {
        let mut b = BuddyAllocator::new(6); // 64 blocks
        let a = b.alloc(5).unwrap(); // rounds to 8
        assert_eq!(a % 8, 0);
        assert_eq!(b.free_blocks(), 56);
        b.check_invariants().unwrap();
    }

    #[test]
    fn split_and_coalesce_round_trip() {
        let mut b = BuddyAllocator::new(4); // 16 blocks
        let x = b.alloc(4).unwrap();
        let y = b.alloc(4).unwrap();
        let z = b.alloc(8).unwrap();
        assert_eq!(b.free_blocks(), 0);
        b.free(x, 4).unwrap();
        b.free(y, 4).unwrap();
        b.free(z, 8).unwrap();
        assert_eq!(b.free_blocks(), 16);
        assert_eq!(b.largest_free(), 16);
        b.check_invariants().unwrap();
    }

    #[test]
    fn wrong_size_free_detected() {
        let mut b = BuddyAllocator::new(4);
        let x = b.alloc(4).unwrap();
        assert!(b.free(x, 8).is_err());
        assert!(b.free(x + 1, 4).is_err());
        b.free(x, 4).unwrap();
    }

    #[test]
    fn out_of_space() {
        let mut b = BuddyAllocator::new(3); // 8 blocks
        b.alloc(8).unwrap();
        assert!(matches!(b.alloc(1), Err(DiskError::OutOfSpace { .. })));
    }

    #[test]
    fn covering_rounds_up() {
        let b = BuddyAllocator::covering(100);
        assert_eq!(b.total_blocks(), 128);
        let b = BuddyAllocator::covering(128);
        assert_eq!(b.total_blocks(), 128);
    }

    #[test]
    fn churn_preserves_invariants() {
        let mut b = BuddyAllocator::new(10);
        let mut held: Vec<(u64, u64)> = Vec::new();
        let mut state = 0xdeadbeefu64;
        for _ in 0..3000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if state.is_multiple_of(2) || held.is_empty() {
                let want = 1 + (state >> 33) % 20;
                if let Ok(s) = b.alloc(want) {
                    held.push((s, want));
                }
            } else {
                let idx = ((state >> 17) as usize) % held.len();
                let (s, l) = held.swap_remove(idx);
                b.free(s, l).unwrap();
            }
            b.check_invariants().unwrap();
        }
        for (s, l) in held {
            b.free(s, l).unwrap();
        }
        assert_eq!(b.free_blocks(), 1024);
        assert_eq!(b.largest_free(), 1024);
    }
}
