//! Multi-disk arrays with round-robin placement and trace recording.
//!
//! The paper's second allocation issue (§3): "When the list for a new word
//! w is added to the directory or a new chunk of a list for a word w is
//! allocated, a disk is chosen. [...] The strategy considered here is to
//! choose disk i+1 mod n" where `i` was the previous choice. [`DiskArray`]
//! implements that cursor over a set of per-disk (device, allocator) pairs
//! and optionally records every operation into an [`IoTrace`] — the same
//! trace the paper's "compute disks" process emits.

use crate::block::BlockDevice;
use crate::error::{DiskError, Result};
use crate::freelist::ExtentAllocator;
use crate::trace::{IoOp, IoTrace};
use parking_lot::Mutex;
use std::sync::Arc;

/// Observer notified when bytes *land on a device* — the hook a block
/// cache uses for write-through invalidation. Sequential writes notify
/// immediately; writes buffered inside a capture window notify only at
/// [`DiskArray::end_capture`], after the buffered bytes are applied. That
/// deferral is the commit-point rule: a snapshot reader at epoch E never
/// has cached blocks invalidated (and re-read) with bytes from batch E+1
/// before that batch commits.
pub trait WriteObserver: Send + Sync {
    /// `blocks` device blocks starting at `start` on `disk` now hold new
    /// bytes.
    fn wrote(&self, disk: u16, start: u64, blocks: u64);
}

/// One disk: a block device plus its free-space allocator.
pub struct Disk {
    /// Raw block storage.
    pub device: Box<dyn BlockDevice>,
    /// Extent allocator for this disk's free space.
    pub alloc: Box<dyn ExtentAllocator>,
}

/// A set of disks with a shared round-robin placement cursor.
///
/// The trace sink lives behind a mutex so that *read* operations only need
/// `&self`: queries through [`crate::BlockDevice::read`] are naturally
/// shareable, and the trace append is the only mutation on that path.
/// Concurrent readers (e.g. `invidx_core`'s `SharedIndex`) therefore run
/// under a shared lock, contending only on the short trace push.
pub struct DiskArray {
    disks: Vec<Disk>,
    cursor: usize,
    trace: Mutex<Option<IoTrace>>,
    block_size: usize,
    /// When set, freed extents are quarantined here instead of returning to
    /// the allocators — crash-recovery epochs (see [`Self::defer_frees`]).
    deferred: Option<Vec<(u16, u64, u64)>>,
    /// When set, writes are buffered per disk instead of hitting devices —
    /// the parallel batch-apply window (see [`Self::begin_capture`]).
    capture: Mutex<Option<CaptureState>>,
    /// Invalidation hook for a block cache layered above this array.
    observer: Option<Arc<dyn WriteObserver>>,
}

/// Deferred-execution state for one capture window.
///
/// The plan records every operation in issue order so the trace stays
/// byte-identical to a sequential run; the per-disk write buffers preserve
/// each disk's issue order so the final device bytes do too (overlapping
/// writes land in their original relative order).
/// One disk's buffered `(start, blocks, data)` writes, in issue order.
type PendingWrites = Vec<(u64, u64, Vec<u8>)>;

struct CaptureState {
    /// All captured ops (reads and writes), in issue order.
    plan: Vec<IoOp>,
    /// Buffered writes per disk.
    pending: Vec<PendingWrites>,
}

/// Copy any captured-but-unexecuted writes that overlap `[start,
/// start+blocks)` into `buf` — the read-your-writes overlay that lets a
/// capture-mode read observe earlier same-batch writes. Later writes win,
/// exactly as they would on the device.
fn overlay_pending(
    pending: &[(u64, u64, Vec<u8>)],
    start: u64,
    blocks: u64,
    buf: &mut [u8],
    block_size: usize,
) {
    let read_end = start + blocks;
    for (w_start, w_blocks, data) in pending {
        let lo = start.max(*w_start);
        let hi = read_end.min(w_start + w_blocks);
        for b in lo..hi {
            let src = ((b - w_start) as usize) * block_size;
            let dst = ((b - start) as usize) * block_size;
            buf[dst..dst + block_size].copy_from_slice(&data[src..src + block_size]);
        }
    }
}

impl DiskArray {
    /// Assemble an array. All devices must share one block size.
    ///
    /// # Panics
    /// Panics if `disks` is empty or block sizes disagree.
    pub fn new(disks: Vec<Disk>) -> Self {
        assert!(!disks.is_empty(), "DiskArray requires at least one disk");
        let block_size = disks[0].device.block_size();
        assert!(
            disks.iter().all(|d| d.device.block_size() == block_size),
            "all devices must share one block size"
        );
        Self {
            disks,
            cursor: 0,
            trace: Mutex::new(None),
            block_size,
            deferred: None,
            capture: Mutex::new(None),
            observer: None,
        }
    }

    /// Register (or clear) the write observer. At most one observer is
    /// supported; registering replaces any previous one.
    pub fn set_write_observer(&mut self, observer: Option<Arc<dyn WriteObserver>>) {
        self.observer = observer;
    }

    /// True while a capture window is open. Readers that overlay cached
    /// state above this array must bypass their cache while this holds:
    /// capture-mode reads are answered from the pending-write overlay,
    /// which a cache hit would silently skip.
    pub fn capture_active(&self) -> bool {
        self.capture.lock().is_some()
    }

    fn notify_wrote(&self, disk: u16, start: u64, blocks: u64) {
        if let Some(obs) = &self.observer {
            obs.wrote(disk, start, blocks);
        }
    }

    /// Number of disks.
    pub fn num_disks(&self) -> u16 {
        self.disks.len() as u16
    }

    /// Shared block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Advance the round-robin cursor and return the chosen disk
    /// ("disk i+1 mod n").
    pub fn next_disk(&mut self) -> u16 {
        self.cursor = (self.cursor + 1) % self.disks.len();
        self.cursor as u16
    }

    /// Current cursor position (the disk chosen by the last `next_disk`).
    pub fn cursor(&self) -> u16 {
        self.cursor as u16
    }

    /// Begin recording operations into a fresh trace.
    pub fn start_trace(&self) {
        *self.trace.lock() = Some(IoTrace::new());
    }

    /// Mark the end of a batch in the recorded trace (no-op when not
    /// tracing).
    pub fn end_batch(&self) {
        if let Some(t) = self.trace.lock().as_mut() {
            t.end_batch();
        }
    }

    /// Stop recording and return the trace (empty if tracing never
    /// started).
    pub fn take_trace(&self) -> IoTrace {
        self.trace.lock().take().unwrap_or_default()
    }

    /// Inspect the trace recorded so far under the sink lock. The closure
    /// receives `None` when tracing is not active.
    pub fn with_trace<R>(&self, f: impl FnOnce(Option<&IoTrace>) -> R) -> R {
        f(self.trace.lock().as_ref())
    }

    fn disk_mut(&mut self, disk: u16) -> Result<&mut Disk> {
        let n = self.disks.len() as u64;
        self.disks.get_mut(disk as usize).ok_or(DiskError::OutOfRange {
            start: disk as u64,
            nblocks: 0,
            device: n,
        })
    }

    fn disk_ref(&self, disk: u16) -> Result<&Disk> {
        let n = self.disks.len() as u64;
        self.disks.get(disk as usize).ok_or(DiskError::OutOfRange {
            start: disk as u64,
            nblocks: 0,
            device: n,
        })
    }

    /// Allocate `blocks` contiguous blocks on a specific disk.
    pub fn alloc_on(&mut self, disk: u16, blocks: u64) -> Result<u64> {
        self.disk_mut(disk)?.alloc.alloc(blocks)
    }

    /// Free an extent on a disk. With [`Self::defer_frees`] active the
    /// extent is quarantined instead and only returns to the allocator at
    /// [`Self::release_deferred`] — blocks referenced by a prior checkpoint
    /// stay readable until the next checkpoint commits.
    pub fn free_on(&mut self, disk: u16, start: u64, blocks: u64) -> Result<()> {
        self.disk_ref(disk)?; // validate the disk index even when deferring
        if let Some(pending) = &mut self.deferred {
            pending.push((disk, start, blocks));
            return Ok(());
        }
        self.disk_mut(disk)?.alloc.free(start, blocks)
    }

    /// Switch freed-extent quarantine on or off. Turning it off does NOT
    /// release already-quarantined extents; call [`Self::release_deferred`]
    /// first.
    pub fn defer_frees(&mut self, on: bool) {
        match (on, &self.deferred) {
            (true, None) => self.deferred = Some(Vec::new()),
            (false, Some(p)) => {
                assert!(p.is_empty(), "release_deferred before disabling quarantine");
                self.deferred = None;
            }
            _ => {}
        }
    }

    /// Total quarantined blocks per disk (indexed by disk id).
    pub fn deferred_blocks_per_disk(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.disks.len()];
        if let Some(pending) = &self.deferred {
            for &(d, _, blocks) in pending {
                v[d as usize] += blocks;
            }
        }
        v
    }

    /// Return all quarantined extents to their allocators (after a
    /// checkpoint commits, nothing can replay reads against them).
    pub fn release_deferred(&mut self) -> Result<()> {
        let pending = match &mut self.deferred {
            Some(p) => std::mem::take(p),
            None => return Ok(()),
        };
        for (disk, start, blocks) in pending {
            self.disk_mut(disk)?.alloc.free(start, blocks)?;
        }
        Ok(())
    }

    /// Reserve a specific extent on a disk (crash-recovery support; see
    /// [`ExtentAllocator::reserve`]).
    pub fn reserve_on(&mut self, disk: u16, start: u64, blocks: u64) -> Result<()> {
        self.disk_mut(disk)?.alloc.reserve(start, blocks)
    }

    /// Append an operation to the trace without performing device I/O —
    /// for callers that deliberately skip materializing bytes but must
    /// keep the trace faithful. No-op when not tracing.
    pub fn trace_push(&self, op: IoOp) {
        if let Some(t) = self.trace.lock().as_mut() {
            t.push(op);
        }
    }

    /// Perform (and record) a write described by `op`. `data` must be
    /// exactly `op.blocks * block_size` bytes.
    ///
    /// Inside a capture window ([`Self::begin_capture`]) the write is
    /// buffered on its target disk instead of hitting the device; it lands
    /// at [`Self::end_capture`].
    pub fn write_op(&mut self, op: IoOp, data: &[u8]) -> Result<()> {
        debug_assert_eq!(data.len() as u64, op.blocks * self.block_size as u64);
        {
            let mut cap = self.capture.lock();
            if let Some(state) = cap.as_mut() {
                self.disk_ref(op.disk)?; // validate the disk index now
                state.pending[op.disk as usize].push((op.start, op.blocks, data.to_vec()));
                state.plan.push(op);
                return Ok(());
            }
        }
        self.disk_mut(op.disk)?.device.write(op.start, data)?;
        self.notify_wrote(op.disk, op.start, op.blocks);
        self.trace_push(op);
        Ok(())
    }

    /// Perform (and record) a read described by `op`. `buf` must be exactly
    /// `op.blocks * block_size` bytes.
    ///
    /// Takes `&self`: device reads are shareable and the trace append goes
    /// through the sink mutex, so concurrent queries need no exclusive
    /// access to the array.
    ///
    /// Inside a capture window the read still executes immediately, with
    /// any overlapping buffered writes overlaid on the result (a batch can
    /// read blocks it wrote moments earlier), and its trace entry is
    /// deferred into the capture plan so the recorded order matches a
    /// sequential run.
    pub fn read_op(&self, op: IoOp, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len() as u64, op.blocks * self.block_size as u64);
        let _stage = invidx_obs::trace::stage("disk");
        invidx_obs::trace::add_blocks(op.blocks);
        invidx_obs::trace::add_bytes(buf.len() as u64);
        {
            let mut cap = self.capture.lock();
            if let Some(state) = cap.as_mut() {
                self.disk_ref(op.disk)?.device.read(op.start, buf)?;
                overlay_pending(
                    &state.pending[op.disk as usize],
                    op.start,
                    op.blocks,
                    buf,
                    self.block_size,
                );
                state.plan.push(op);
                return Ok(());
            }
        }
        self.disk_ref(op.disk)?.device.read(op.start, buf)?;
        self.trace_push(op);
        Ok(())
    }

    /// Open a capture window: subsequent [`Self::write_op`]s are buffered
    /// per target disk and [`Self::read_op`]s overlay those buffers, while
    /// allocator calls ([`Self::alloc_on`], [`Self::free_on`],
    /// [`Self::next_disk`]) keep executing immediately in issue order. The
    /// window closes at [`Self::end_capture`], which applies each disk's
    /// buffered writes on its own worker thread. Because per-disk write
    /// order, allocator order, and the trace plan all preserve issue
    /// order, the resulting device bytes, free lists, and trace are
    /// byte-identical to executing the same operations sequentially.
    ///
    /// Untraced accesses ([`Self::read_untraced`], [`Self::write_untraced`])
    /// bypass the window — callers use them outside the measured batch.
    pub fn begin_capture(&mut self) {
        let n = self.disks.len();
        *self.capture.lock() =
            Some(CaptureState { plan: Vec::new(), pending: vec![Vec::new(); n] });
    }

    /// Close the capture window: execute each disk's buffered writes (in
    /// buffered order) across at most `threads` worker threads, then
    /// replay the captured op plan into the trace in issue order. Returns
    /// per-disk `(write_ops, blocks)` counts for instrumentation. A no-op
    /// returning empty counts when no window is open.
    pub fn end_capture(&mut self, threads: usize) -> Result<Vec<(u64, u64)>> {
        let state = self.capture.lock().take();
        let Some(CaptureState { plan, pending }) = state else {
            return Ok(Vec::new());
        };
        let per_disk: Vec<(u64, u64)> = pending
            .iter()
            .map(|w| (w.len() as u64, w.iter().map(|(_, b, _)| b).sum()))
            .collect();
        // Collect written extents now; the buffers are drained by the
        // workers below. Observers are notified only after every write has
        // landed — the batch's commit point.
        let written: Vec<(u16, u64, u64)> = pending
            .iter()
            .enumerate()
            .flat_map(|(disk, w)| {
                w.iter().map(move |&(start, blocks, _)| (disk as u16, start, blocks))
            })
            .collect();
        let mut work: Vec<(&mut Disk, PendingWrites)> =
            self.disks.iter_mut().zip(pending).collect();
        let groups = threads.clamp(1, work.len().max(1));
        let chunk = work.len().div_ceil(groups);
        let results: Vec<Result<()>> = std::thread::scope(|s| {
            let handles: Vec<_> = work
                .chunks_mut(chunk)
                .map(|group| {
                    s.spawn(move || -> Result<()> {
                        for (disk, writes) in group.iter_mut() {
                            for (start, _, data) in writes.drain(..) {
                                disk.device.write(start, &data)?;
                            }
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        drop(work);
        for r in results {
            r?;
        }
        for (disk, start, blocks) in written {
            self.notify_wrote(disk, start, blocks);
        }
        for op in plan {
            self.trace_push(op);
        }
        Ok(per_disk)
    }

    /// Read without recording a trace operation (used for recovery-time
    /// loads that are not part of the measured update sequence).
    pub fn read_untraced(&self, disk: u16, start: u64, buf: &mut [u8]) -> Result<()> {
        self.disk_ref(disk)?.device.read(start, buf)
    }

    /// Write without recording a trace operation. Still notifies the
    /// write observer: untraced writes (superblock commits, checkpoint
    /// restores) change device bytes and must invalidate caches.
    pub fn write_untraced(&mut self, disk: u16, start: u64, data: &[u8]) -> Result<()> {
        let blocks = (data.len() / self.block_size) as u64;
        self.disk_mut(disk)?.device.write(start, data)?;
        self.notify_wrote(disk, start, blocks.max(1));
        Ok(())
    }

    /// Flush all devices.
    pub fn flush(&mut self) -> Result<()> {
        for d in &mut self.disks {
            d.device.flush()?;
        }
        Ok(())
    }

    /// Total free blocks across all disks.
    pub fn free_blocks(&self) -> u64 {
        self.disks.iter().map(|d| d.alloc.free_blocks()).sum()
    }

    /// Total blocks across all disks.
    pub fn total_blocks(&self) -> u64 {
        self.disks.iter().map(|d| d.alloc.total_blocks()).sum()
    }

    /// Per-disk `(free, total)` block counts.
    pub fn per_disk_usage(&self) -> Vec<(u64, u64)> {
        self.disks
            .iter()
            .map(|d| (d.alloc.free_blocks(), d.alloc.total_blocks()))
            .collect()
    }

    /// Access a disk's allocator (for inspection in tests/benches).
    pub fn allocator(&self, disk: u16) -> &dyn ExtentAllocator {
        &*self.disks[disk as usize].alloc
    }
}

/// Build a homogeneous array of `n` sparse in-memory disks with first-fit
/// free lists — the standard configuration for experiments.
pub fn sparse_array(n: u16, blocks_per_disk: u64, block_size: usize) -> DiskArray {
    use crate::block::SparseDevice;
    use crate::freelist::{FitStrategy, FreeList};
    let disks = (0..n)
        .map(|_| Disk {
            device: Box::new(SparseDevice::new(blocks_per_disk, block_size)) as Box<dyn BlockDevice>,
            alloc: Box::new(FreeList::new(blocks_per_disk, FitStrategy::FirstFit))
                as Box<dyn ExtentAllocator>,
        })
        .collect();
    DiskArray::new(disks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{OpKind, Payload};

    #[test]
    fn round_robin_cycles() {
        let mut a = sparse_array(3, 100, 64);
        assert_eq!(a.next_disk(), 1);
        assert_eq!(a.next_disk(), 2);
        assert_eq!(a.next_disk(), 0);
        assert_eq!(a.next_disk(), 1);
    }

    #[test]
    fn alloc_write_read_round_trip() {
        let mut a = sparse_array(2, 100, 64);
        let start = a.alloc_on(1, 2).unwrap();
        let data: Vec<u8> = (0..128).map(|i| i as u8).collect();
        let op = IoOp {
            kind: OpKind::Write,
            disk: 1,
            start,
            blocks: 2,
            payload: Payload::LongList { word: 7, postings: 32 },
        };
        a.write_op(op, &data).unwrap();
        let mut buf = vec![0u8; 128];
        let rop = IoOp { kind: OpKind::Read, ..op };
        a.read_op(rop, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn trace_records_in_order_with_batches() {
        let mut a = sparse_array(1, 100, 64);
        a.start_trace();
        let data = vec![0u8; 64];
        for i in 0..3 {
            let op = IoOp {
                kind: OpKind::Write,
                disk: 0,
                start: i,
                blocks: 1,
                payload: Payload::Bucket,
            };
            a.write_op(op, &data).unwrap();
        }
        a.end_batch();
        let t = a.take_trace();
        assert_eq!(t.batches(), 1);
        assert_eq!(t.batch_ops(0).len(), 3);
    }

    #[test]
    fn untraced_io_not_recorded() {
        let mut a = sparse_array(1, 100, 64);
        a.start_trace();
        a.write_untraced(0, 0, &[1u8; 64]).unwrap();
        let mut buf = vec![0u8; 64];
        a.read_untraced(0, 0, &mut buf).unwrap();
        assert_eq!(buf[0], 1);
        assert!(a.take_trace().ops.is_empty());
    }

    #[test]
    fn free_blocks_aggregates() {
        let mut a = sparse_array(2, 100, 64);
        assert_eq!(a.free_blocks(), 200);
        a.alloc_on(0, 10).unwrap();
        assert_eq!(a.free_blocks(), 190);
        assert_eq!(a.per_disk_usage(), vec![(90, 100), (100, 100)]);
    }

    #[test]
    fn cursor_reports_last_choice_and_flush_succeeds() {
        let mut a = sparse_array(4, 100, 64);
        assert_eq!(a.cursor(), 0);
        a.next_disk();
        a.next_disk();
        assert_eq!(a.cursor(), 2);
        a.flush().unwrap();
        assert_eq!(a.total_blocks(), 400);
    }

    #[test]
    fn capture_defers_writes_and_overlays_reads() {
        let mut a = sparse_array(2, 100, 64);
        a.start_trace();
        let wop = |disk, start| IoOp {
            kind: OpKind::Write,
            disk,
            start,
            blocks: 1,
            payload: Payload::Bucket,
        };
        a.begin_capture();
        a.write_op(wop(0, 3), &[7u8; 64]).unwrap();
        a.write_op(wop(1, 5), &[9u8; 64]).unwrap();
        // Device untouched while captured...
        let mut buf = vec![0u8; 64];
        a.read_untraced(0, 3, &mut buf).unwrap();
        assert_eq!(buf[0], 0);
        // ...but a capture-mode read sees the buffered bytes.
        let rop = IoOp { kind: OpKind::Read, ..wop(0, 3) };
        a.read_op(rop, &mut buf).unwrap();
        assert_eq!(buf, vec![7u8; 64]);
        let per_disk = a.end_capture(4).unwrap();
        assert_eq!(per_disk, vec![(1, 1), (1, 1)]);
        a.read_untraced(0, 3, &mut buf).unwrap();
        assert_eq!(buf, vec![7u8; 64]);
        a.read_untraced(1, 5, &mut buf).unwrap();
        assert_eq!(buf, vec![9u8; 64]);
        // Trace preserves issue order: write, write, read.
        let t = a.take_trace();
        assert_eq!(t.ops.len(), 3);
        assert_eq!((t.ops[0].kind, t.ops[0].disk), (OpKind::Write, 0));
        assert_eq!((t.ops[1].kind, t.ops[1].disk), (OpKind::Write, 1));
        assert_eq!((t.ops[2].kind, t.ops[2].disk), (OpKind::Read, 0));
    }

    #[test]
    fn capture_overlapping_writes_keep_issue_order() {
        let mut a = sparse_array(1, 100, 64);
        let wop = |start, blocks| IoOp {
            kind: OpKind::Write,
            disk: 0,
            start,
            blocks,
            payload: Payload::Bucket,
        };
        a.begin_capture();
        a.write_op(wop(2, 2), &[1u8; 128]).unwrap();
        a.write_op(wop(3, 1), &[2u8; 64]).unwrap();
        // A partial-overlap read: block 2 from the first write, block 3
        // from the second (later write wins).
        let mut buf = vec![0u8; 128];
        a.read_op(IoOp { kind: OpKind::Read, ..wop(2, 2) }, &mut buf).unwrap();
        assert_eq!(&buf[..64], &[1u8; 64][..]);
        assert_eq!(&buf[64..], &[2u8; 64][..]);
        a.end_capture(1).unwrap();
        let mut out = vec![0u8; 128];
        a.read_untraced(0, 2, &mut out).unwrap();
        assert_eq!(out, buf);
    }

    #[test]
    fn end_capture_without_window_is_a_noop() {
        let mut a = sparse_array(1, 100, 64);
        assert!(a.end_capture(8).unwrap().is_empty());
    }

    #[test]
    fn bad_disk_rejected() {
        let mut a = sparse_array(1, 100, 64);
        assert!(a.alloc_on(3, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn empty_array_rejected() {
        DiskArray::new(vec![]);
    }
}
