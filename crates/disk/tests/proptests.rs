//! Property-based tests for the disk substrate: model-checked allocators,
//! device equivalence, coalescer conservation, and trace-format round
//! trips.

use invidx_disk::{
    coalesce_batch, BlockDevice, BuddyAllocator, ExtentAllocator, FitStrategy, FreeList, IoOp,
    IoTrace, MemDevice, OpKind, Payload, SparseDevice,
};
use proptest::prelude::*;

// ----- allocator model checking -----

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc(u64),
    FreeIdx(usize),
    Reserve(u64, u64),
}

fn alloc_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..20).prop_map(AllocOp::Alloc),
            (0usize..64).prop_map(AllocOp::FreeIdx),
            ((0u64..240), (1u64..12)).prop_map(|(s, l)| AllocOp::Reserve(s, l)),
        ],
        1..120,
    )
}

/// Run an op sequence against an allocator and a bitmap model; verify the
/// allocator's placements never overlap live extents and its free count
/// matches the model exactly.
fn check_against_model(
    alloc: &mut dyn ExtentAllocator,
    ops: &[AllocOp],
    check_free_count: bool,
    supports_reserve: bool,
) {
    let total = alloc.total_blocks() as usize;
    let mut model = vec![false; total]; // true = allocated
    let mut live: Vec<(u64, u64)> = Vec::new();
    for op in ops {
        match op {
            AllocOp::Alloc(len) => {
                if let Ok(start) = alloc.alloc(*len) {
                    for b in start..start + len {
                        assert!(!model[b as usize], "allocator handed out a live block {b}");
                        model[b as usize] = true;
                    }
                    live.push((start, *len));
                }
            }
            AllocOp::FreeIdx(i) => {
                if live.is_empty() {
                    continue;
                }
                let (start, len) = live.swap_remove(i % live.len());
                alloc.free(start, len).expect("free of live extent");
                for b in start..start + len {
                    model[b as usize] = false;
                }
            }
            AllocOp::Reserve(start, len) => {
                if !supports_reserve || start + len > total as u64 {
                    continue;
                }
                let free_in_model =
                    (*start..start + len).all(|b| !model[b as usize]);
                match alloc.reserve(*start, *len) {
                    Ok(()) => {
                        assert!(free_in_model, "reserve succeeded over live blocks");
                        for b in *start..start + len {
                            model[b as usize] = true;
                        }
                        live.push((*start, *len));
                    }
                    Err(_) => {
                        assert!(!free_in_model, "reserve failed over free blocks");
                    }
                }
            }
        }
        if check_free_count {
            let model_free = model.iter().filter(|&&b| !b).count() as u64;
            assert_eq!(alloc.free_blocks(), model_free);
        }
    }
    // Everything can be freed and the allocator returns to pristine state.
    for (start, len) in live {
        alloc.free(start, len).expect("final free");
    }
    assert_eq!(alloc.free_blocks(), alloc.total_blocks());
    assert_eq!(alloc.largest_free(), alloc.total_blocks());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn first_fit_matches_model(ops in alloc_ops()) {
        let mut a = FreeList::new(256, FitStrategy::FirstFit);
        check_against_model(&mut a, &ops, true, true);
        a.check_invariants().expect("invariants");
    }

    #[test]
    fn best_fit_matches_model(ops in alloc_ops()) {
        let mut a = FreeList::new(256, FitStrategy::BestFit);
        check_against_model(&mut a, &ops, true, true);
        a.check_invariants().expect("invariants");
    }

    #[test]
    fn buddy_never_overlaps(ops in alloc_ops()) {
        let mut a = BuddyAllocator::new(8); // 256 blocks
        // Buddy rounds sizes up internally, so the bitmap free count
        // differs from ours; overlap-freedom and full-drain still hold.
        check_against_model(&mut a, &ops, false, false);
        a.check_invariants().expect("invariants");
    }
}

// Buddy free-count needs rounded sizes; model that exactly.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn buddy_free_count_matches_rounded_sizes(lens in prop::collection::vec(1u64..32, 1..30)) {
        let mut a = BuddyAllocator::new(10);
        let mut expected_free = a.total_blocks();
        let mut live = Vec::new();
        for len in lens {
            if let Ok(start) = a.alloc(len) {
                expected_free -= len.next_power_of_two();
                live.push((start, len));
            }
            prop_assert_eq!(a.free_blocks(), expected_free);
        }
        for (s, l) in live {
            a.free(s, l).expect("free");
        }
        prop_assert_eq!(a.free_blocks(), a.total_blocks());
    }
}

// ----- device equivalence -----

#[derive(Debug, Clone)]
enum DevOp {
    Write { start: u64, data: Vec<u8> },
    Read { start: u64, blocks: u64 },
}

fn dev_ops(dev_blocks: u64, bs: usize) -> impl Strategy<Value = Vec<DevOp>> {
    prop::collection::vec(
        prop_oneof![
            ((0..dev_blocks), (1u64..4), any::<u8>()).prop_map(move |(start, n, fill)| {
                let n = n.min(dev_blocks - start).max(1);
                // Content varies per block to catch offset bugs.
                let data: Vec<u8> = (0..n as usize * bs)
                    .map(|i| fill.wrapping_add((i / 7) as u8))
                    .collect();
                DevOp::Write { start, data }
            }),
            ((0..dev_blocks), (1u64..4)).prop_map(move |(start, n)| DevOp::Read {
                start,
                blocks: n.min(dev_blocks - start).max(1),
            }),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_and_dense_devices_agree(ops in dev_ops(32, 64)) {
        let mut dense = MemDevice::new(32, 64);
        let mut sparse = SparseDevice::new(32, 64);
        for op in ops {
            match op {
                DevOp::Write { start, data } => {
                    dense.write(start, &data).expect("dense write");
                    sparse.write(start, &data).expect("sparse write");
                }
                DevOp::Read { start, blocks } => {
                    let mut a = vec![0u8; (blocks * 64) as usize];
                    let mut b = vec![1u8; (blocks * 64) as usize];
                    dense.read(start, &mut a).expect("dense read");
                    sparse.read(start, &mut b).expect("sparse read");
                    prop_assert_eq!(&a, &b);
                }
            }
        }
    }
}

// ----- coalescer conservation -----

fn arb_ops() -> impl Strategy<Value = Vec<IoOp>> {
    prop::collection::vec(
        (
            prop_oneof![Just(OpKind::Read), Just(OpKind::Write)],
            0u16..3,
            0u64..100,
            1u64..6,
        )
            .prop_map(|(kind, disk, start, blocks)| IoOp {
                kind,
                disk,
                start,
                blocks,
                payload: Payload::LongList { word: 1, postings: blocks },
            }),
        0..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn coalescing_conserves_block_ranges(ops in arb_ops(), buffer in 1u64..32) {
        let queues = coalesce_batch(&ops, 3, buffer);
        for (disk, queue) in queues.iter().enumerate() {
            // Rebuild the original per-disk (kind, block) sequence and the
            // coalesced one; they must be identical.
            let original: Vec<(OpKind, u64)> = ops
                .iter()
                .filter(|op| op.disk as usize == disk && op.blocks > 0)
                .flat_map(|op| (op.start..op.end()).map(move |b| (op.kind, b)))
                .collect();
            let merged: Vec<(OpKind, u64)> = queue
                .iter()
                .flat_map(|r| (r.start..r.start + r.blocks).map(move |b| (r.kind, b)))
                .collect();
            prop_assert_eq!(original, merged);
            // The buffer bound holds unless a single op already exceeds it.
            for r in queue {
                prop_assert!(r.blocks <= buffer.max(ops.iter().map(|o| o.blocks).max().unwrap_or(0)));
                if r.merged > 1 {
                    prop_assert!(r.blocks <= buffer);
                }
            }
        }
    }

    #[test]
    fn trace_text_round_trip(ops in arb_ops(), splits in prop::collection::vec(0usize..80, 0..5)) {
        round_trip(ops, splits)?;
    }

    #[test]
    fn figure6_full_grammar_round_trip(
        ops in arb_figure6_ops(),
        splits in prop::collection::vec(0usize..80, 0..5),
    ) {
        round_trip(ops, splits)?;
    }
}

/// Every Figure 6 production: bucket and directory updates (always writes
/// in the grammar) and long-list reads/writes — including reads of whole
/// chunks that carry `posting 0` ("0 for reads of whole chunks where it is
/// implied").
fn arb_figure6_ops() -> impl Strategy<Value = Vec<IoOp>> {
    prop::collection::vec(
        prop_oneof![
            ((0u16..3), (0u64..100), (0u64..6)).prop_map(|(disk, start, blocks)| IoOp {
                kind: OpKind::Write,
                disk,
                start,
                blocks,
                payload: Payload::Bucket,
            }),
            ((0u16..3), (0u64..100), (0u64..6)).prop_map(|(disk, start, blocks)| IoOp {
                kind: OpKind::Write,
                disk,
                start,
                blocks,
                payload: Payload::Directory,
            }),
            ((0u16..3), (0u64..100), (1u64..6), (0u64..2000), (0u64..1500)).prop_map(
                |(disk, start, blocks, word, postings)| IoOp {
                    kind: OpKind::Write,
                    disk,
                    start,
                    blocks,
                    payload: Payload::LongList { word, postings },
                },
            ),
            // Reads of whole chunks: posting count 0 by convention.
            ((0u16..3), (0u64..100), (1u64..6), (0u64..2000)).prop_map(
                |(disk, start, blocks, word)| IoOp {
                    kind: OpKind::Read,
                    disk,
                    start,
                    blocks,
                    payload: Payload::LongList { word, postings: 0 },
                },
            ),
            // Durability extensions to the grammar: WAL and checkpoint bytes.
            ((0u16..3), (0u64..100), (0u64..6), (0u8..2), (0u8..2)).prop_map(
                |(disk, start, blocks, write, ckpt)| IoOp {
                    kind: if write == 1 { OpKind::Write } else { OpKind::Read },
                    disk,
                    start,
                    blocks,
                    payload: if ckpt == 1 { Payload::Checkpoint } else { Payload::Wal },
                },
            ),
        ],
        0..80,
    )
}

fn round_trip(ops: Vec<IoOp>, splits: Vec<usize>) -> Result<(), String> {
    let mut trace = IoTrace::new();
    let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (ops.len() + 1)).collect();
    cuts.sort_unstable();
    cuts.dedup();
    for (i, op) in ops.iter().enumerate() {
        while cuts.first() == Some(&i) {
            cuts.remove(0);
            trace.end_batch();
        }
        trace.push(*op);
    }
    trace.end_batch();
    let text = trace.to_text();
    let parsed = IoTrace::from_text(&text).expect("parse");
    prop_assert_eq!(&parsed.ops, &trace.ops);
    prop_assert_eq!(parsed, trace);
    Ok(())
}
