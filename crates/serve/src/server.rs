//! Line-oriented TCP front end over the admission layer.
//!
//! The protocol is one request per line, one reply line per request, all
//! UTF-8 — designed so `nc localhost 7700` is a usable client:
//!
//! ```text
//! > QUERY cat and dog
//! < OK 3 DOCS 2 17
//! > PHRASE the quick brown
//! < OK 3 DOCS 4
//! > LIKE 5 information retrieval systems
//! < OK 3 HITS 9:1.8312 2:0.4401
//! > DOC 4
//! < OK 3 TEXT the quick brown fox
//! > ADD some new document text
//! < OK 3 ADDED 18
//! > FLUSH
//! < OK 4 FLUSHED 1
//! > QUERY cat and dog
//! < ERR overloaded queue depth 128 at high-water 128
//! ```
//!
//! Read verbs (`QUERY`, `PHRASE`, `NEAR`, `LIKE`, `DOC`, `STATS`, `PING`)
//! pass through the bounded queue and can be shed or time out. Write verbs
//! (`ADD`, `FLUSH`, `CHECKPOINT`) go straight to the service's write path,
//! and `METRICS` — the telemetry scrape — bypasses the queue entirely so
//! dashboards keep working while the queue sheds.
//! `ADD` stages text into a per-connection batch; `FLUSH` applies the
//! whole batch atomically and bumps the epoch. Every `OK` reply carries
//! the epoch it was computed at, so clients can reason about staleness.
//!
//! Plain `std::net` + one thread per connection: serviceable at the tested
//! scale (tens of clients) without pulling an async runtime into the tree.

use crate::admission::Frontend;
use crate::engine::ServeEngine;
use crate::error::ServeError;
use crate::request::{error_to_wire, to_hex, Request};
use crate::service::{QueryService, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running TCP server; dropping it (or calling [`Server::shutdown`])
/// stops the accept loop and joins every connection thread.
pub struct Server<E: ServeEngine> {
    frontend: Arc<Frontend<E>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl<E: ServeEngine> Server<E> {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving.
    pub fn bind(
        addr: &str,
        service: Arc<QueryService<E>>,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let frontend = Arc::new(Frontend::start_with(service, config));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let frontend = Arc::clone(&frontend);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &frontend, &stop))
                .expect("spawn accept thread")
        };
        Ok(Self { frontend, addr, stop, accept: Some(accept) })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The admission front end (for in-process stats and ingest).
    pub fn frontend(&self) -> &Arc<Frontend<E>> {
        &self.frontend
    }

    /// Stop accepting, close the queue, join all threads.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl<E: ServeEngine> Drop for Server<E> {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

fn accept_loop<E: ServeEngine>(
    listener: &TcpListener,
    frontend: &Arc<Frontend<E>>,
    stop: &Arc<AtomicBool>,
) {
    // Connection threads park their handles (plus a socket clone) here; on
    // the way out the accept loop shuts every socket down first — a thread
    // idle in `read_line` would otherwise block the join until its client
    // hung up.
    let mut workers: Vec<(TcpStream, JoinHandle<()>)> = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // One-line request/reply turns: Nagle+delayed-ACK would add ~40ms
        // to every round trip.
        let _ = stream.set_nodelay(true);
        let Ok(peer) = stream.try_clone() else { continue };
        let frontend = Arc::clone(frontend);
        let stop = Arc::clone(stop);
        let handle = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &frontend, &stop);
            })
            .expect("spawn connection thread");
        workers.push((peer, handle));
    }
    for (peer, handle) in workers {
        let _ = peer.shutdown(std::net::Shutdown::Both);
        let _ = handle.join();
    }
}

fn serve_connection<E: ServeEngine>(
    stream: TcpStream,
    frontend: &Frontend<E>,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    // Documents staged by ADD, applied atomically by FLUSH.
    let mut staged: Vec<String> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if stop.load(Ordering::Acquire) {
            writeln!(writer, "{}", error_to_wire(&ServeError::Shutdown))?;
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v.to_ascii_uppercase(), r.trim()),
            None => (line.to_ascii_uppercase(), ""),
        };
        let reply = match verb.as_str() {
            "QUIT" => break,
            "ADD" => {
                if rest.is_empty() {
                    error_to_wire(&ServeError::BadRequest("ADD needs document text".into()))
                } else {
                    staged.push(rest.to_string());
                    format!(
                        "OK {} ADDED {}",
                        frontend.service().epoch(),
                        staged.len()
                    )
                }
            }
            "FLUSH" => match frontend.service().ingest_batch(&staged) {
                Ok((report, epoch)) => {
                    staged.clear();
                    format!("OK {epoch} FLUSHED {}", report.postings)
                }
                Err(e) => error_to_wire(&e),
            },
            // Telemetry scrape: bypasses the admission queue on purpose —
            // observability must keep answering while the queue sheds.
            // Reply is framed as `OK <epoch> METRICS <nlines>` followed by
            // that many lines of Prometheus text exposition.
            "METRICS" => {
                let text = frontend.service().render_metrics();
                write!(
                    writer,
                    "OK {} METRICS {}\n{text}",
                    frontend.service().epoch(),
                    text.lines().count()
                )?;
                writer.flush()?;
                continue;
            }
            // WAL shipping: `WALTAIL <from_batch>` returns every committed
            // record after `from_batch`, framed as `OK <epoch> WALTAIL <n>`
            // followed by n lines of `<hex payload>`. Pull-based and
            // queue-bypassing like METRICS: a replica polling for records
            // must not contend with (or be shed by) the query queue, and
            // reading the WAL takes only the shared lock.
            "WALTAIL" => {
                let reply = match rest.parse::<u64>() {
                    Err(e) => {
                        error_to_wire(&ServeError::BadRequest(format!("WALTAIL from_batch: {e}")))
                    }
                    Ok(from) => frontend.service().with_read(|epoch, engine| {
                        match engine.wal_records_from(from) {
                            Ok(records) => {
                                let mut s = format!("OK {epoch} WALTAIL {}", records.len());
                                for rec in &records {
                                    s.push('\n');
                                    s.push_str(&to_hex(&rec.encode_payload()));
                                }
                                s
                            }
                            Err(e) => error_to_wire(&ServeError::Engine(e)),
                        }
                    }),
                };
                writeln!(writer, "{reply}")?;
                writer.flush()?;
                continue;
            }
            "CHECKPOINT" => match frontend.service().checkpoint() {
                Ok(Some(bytes)) => {
                    format!("OK {} CHECKPOINTED {bytes}", frontend.service().epoch())
                }
                Ok(None) => error_to_wire(&ServeError::BadRequest(
                    "engine has no durability layer".into(),
                )),
                Err(e) => error_to_wire(&e),
            },
            _ => match Request::parse(line) {
                Ok(request) => match frontend.call(request) {
                    Ok(response) => response.to_wire(),
                    Err(e) => error_to_wire(&e),
                },
                Err(e) => error_to_wire(&e),
            },
        };
        writeln!(writer, "{reply}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{parse_response, Payload};
    use invidx_core::index::IndexConfig;
    use invidx_disk::sparse_array;
    use invidx_ir::SearchEngine;
    use std::io::BufWriter;

    struct Client {
        reader: BufReader<TcpStream>,
        writer: BufWriter<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Self {
            let stream = TcpStream::connect(addr).unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            Self { reader, writer: BufWriter::new(stream) }
        }

        fn roundtrip(&mut self, line: &str) -> String {
            writeln!(self.writer, "{line}").unwrap();
            self.writer.flush().unwrap();
            let mut reply = String::new();
            self.reader.read_line(&mut reply).unwrap();
            reply.trim_end().to_string()
        }

        /// Send `METRICS`, parse the `OK <epoch> METRICS <n>` header, and
        /// return the n-line exposition body.
        fn scrape_metrics(&mut self) -> String {
            let header = self.roundtrip("METRICS");
            let nlines: usize = header
                .strip_prefix("OK ")
                .and_then(|r| r.split_once(" METRICS "))
                .map(|(_, n)| n.parse().unwrap())
                .unwrap_or_else(|| panic!("bad METRICS header: {header}"));
            let mut body = String::new();
            for _ in 0..nlines {
                self.reader.read_line(&mut body).unwrap();
            }
            body
        }
    }

    fn server() -> Server<SearchEngine> {
        let array = sparse_array(2, 50_000, 256);
        let engine = SearchEngine::create(array, IndexConfig::small()).unwrap();
        let service = Arc::new(QueryService::with_config(engine, ServeConfig::default()).unwrap());
        Server::bind("127.0.0.1:0", service, ServeConfig::default()).unwrap()
    }

    #[test]
    fn wire_session_end_to_end() {
        let srv = server();
        let mut c = Client::connect(srv.addr());
        assert_eq!(c.roundtrip("PING"), "OK 0 PONG");
        assert_eq!(c.roundtrip("ADD the cat sat on the mat"), "OK 0 ADDED 1");
        assert_eq!(c.roundtrip("ADD the dog chased the cat"), "OK 0 ADDED 2");
        let flushed = c.roundtrip("FLUSH");
        assert!(flushed.starts_with("OK 1 FLUSHED "), "got: {flushed}");
        let reply = c.roundtrip("QUERY cat and dog");
        let resp = parse_response(&reply).unwrap().unwrap();
        assert_eq!((resp.epoch, resp.payload), (1, Payload::Docs(vec![2])));
        let reply = c.roundtrip("DOC 1");
        let resp = parse_response(&reply).unwrap().unwrap();
        assert_eq!(resp.payload, Payload::Text(Some("the cat sat on the mat".into())));
        let reply = c.roundtrip("NEAR cat dog 3");
        let resp = parse_response(&reply).unwrap().unwrap();
        assert_eq!(resp.payload, Payload::Docs(vec![2]));
        srv.shutdown();
    }

    #[test]
    fn errors_come_back_typed_on_the_wire() {
        let srv = server();
        let mut c = Client::connect(srv.addr());
        let reply = c.roundtrip("BOGUS verb");
        assert!(reply.starts_with("ERR badrequest "), "got: {reply}");
        let reply = c.roundtrip("QUERY (cat and");
        assert!(reply.starts_with("ERR badrequest "), "got: {reply}");
        let reply = c.roundtrip("CHECKPOINT");
        assert!(reply.contains("engine has no durability"), "got: {reply}");
        let err = parse_response(&c.roundtrip("ADD")).unwrap().unwrap_err();
        assert_eq!(err.code(), "badrequest");
        srv.shutdown();
    }

    #[test]
    fn concurrent_wire_clients() {
        let srv = server();
        {
            let mut seed = Client::connect(srv.addr());
            seed.roundtrip("ADD alpha beta");
            seed.roundtrip("ADD beta gamma");
            seed.roundtrip("FLUSH");
        }
        let addr = srv.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr);
                    let reply = c.roundtrip("QUERY beta");
                    parse_response(&reply).unwrap().unwrap()
                })
            })
            .collect();
        for h in handles {
            let resp = h.join().unwrap();
            assert_eq!(resp.payload, Payload::Docs(vec![1, 2]));
        }
        srv.shutdown();
    }

    #[test]
    fn metrics_over_the_wire() {
        let srv = server();
        let mut c = Client::connect(srv.addr());
        c.roundtrip("ADD one two three");
        c.roundtrip("FLUSH");
        c.roundtrip("QUERY two");
        let body = c.scrape_metrics();
        // The exposition must parse cleanly and carry the serving metrics.
        let snap = invidx_obs::parse_prometheus(&body)
            .unwrap_or_else(|e| panic!("exposition must parse: {e}"));
        assert!(snap.counters.iter().any(|(n, _)| n == "serve_queries_total"));
        assert!(snap.gauges.iter().any(|(n, _)| n == "serve_latency_p99_us"));
        assert!(snap.gauges.iter().any(|(n, _)| n == "slo_error_budget_remaining_ppm"));
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "serve_latency_ms" && h.count > 0));
        // A second scrape still parses (idempotent, no framing drift).
        let again = c.scrape_metrics();
        invidx_obs::parse_prometheus(&again).unwrap();
        srv.shutdown();
    }

    #[test]
    fn stats_over_the_wire() {
        let srv = server();
        let mut c = Client::connect(srv.addr());
        c.roundtrip("ADD one two three");
        c.roundtrip("FLUSH");
        c.roundtrip("QUERY two");
        c.roundtrip("QUERY two");
        let reply = c.roundtrip("STATS");
        let resp = parse_response(&reply).unwrap().unwrap();
        let Payload::Stats(stats) = resp.payload else { panic!("want stats: {reply}") };
        assert_eq!(stats.docs, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.cache_hits, 1);
        srv.shutdown();
    }
}
