//! Admission control: bounded work queue, deadlines, and a reader pool.
//!
//! The [`Frontend`] is the load-bearing wall between clients and the
//! [`QueryService`]. Read requests are admitted into one bounded queue;
//! a pool of reader threads drains it, each executing against the shared
//! service on `&self`. Two deliberate refusals protect latency under
//! overload:
//!
//! * **Shedding** — a request arriving while the queue sits at its
//!   high-water mark is rejected immediately with
//!   [`ServeError::Overloaded`], never queued. Depth stays bounded, so
//!   queueing delay stays bounded.
//! * **Deadline reaping** — a request that waited in the queue past its
//!   deadline is answered [`ServeError::Timeout`] by the reader that
//!   dequeues it, without executing. Work nobody is still waiting for is
//!   not done.
//!
//! Writer operations (batch ingest, checkpoint) bypass the queue: they go
//! straight to the service's write path, which serializes them on the
//! engine's write lock. There is one writer by construction, so admission
//! control for writes is unnecessary.
//!
//! The queue uses `std::sync::Mutex` + `Condvar` (the vendored
//! `parking_lot` deliberately omits condvars), and replies travel over
//! per-request `mpsc` channels.

use crate::engine::ServeEngine;
use crate::error::ServeError;
use crate::request::{Request, Response};
use crate::service::{QueryService, ServeConfig};
use invidx_obs::names;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One admitted read request waiting for a reader.
struct Job {
    request: Request,
    admitted: Instant,
    deadline: Duration,
    reply: mpsc::Sender<Result<Response, ServeError>>,
    /// Trace context for sampled requests; carried through the queue and
    /// installed on the reader thread for the execute window.
    trace: Option<invidx_obs::TraceCtx>,
}

/// The shared queue state behind the mutex.
struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    wake: Condvar,
    closed: AtomicBool,
}

/// A ticket for a pending request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Block until the reply arrives.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }

    /// Wait up to `timeout` for the reply (load generators use this to
    /// bound client-side stalls).
    pub fn wait_timeout(self, timeout: Duration) -> Result<Response, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => reply,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                Err(ServeError::Timeout { waited: timeout, deadline: timeout })
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Shutdown),
        }
    }
}

/// Bounded-queue front end over a [`QueryService`].
pub struct Frontend<E: ServeEngine> {
    service: Arc<QueryService<E>>,
    queue: Arc<Queue>,
    config: ServeConfig,
    readers: Vec<JoinHandle<()>>,
}

impl<E: ServeEngine> Frontend<E> {
    /// Start `config.readers` reader threads over `service`. The config's
    /// shape was validated at `ServeConfig::build()`, so there is nothing
    /// to panic about here.
    pub fn start_with(service: Arc<QueryService<E>>, config: ServeConfig) -> Self {
        assert!(config.readers > 0, "at least one reader thread");
        assert!(config.high_water > 0, "high-water mark must be positive");
        let queue = Arc::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            closed: AtomicBool::new(false),
        });
        let readers = (0..config.readers)
            .map(|i| {
                let service = Arc::clone(&service);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("serve-reader-{i}"))
                    .spawn(move || reader_loop(&service, &queue))
                    .expect("spawn reader thread")
            })
            .collect();
        Self { service, queue, config, readers }
    }

    /// The service this front end feeds (for the writer path and stats).
    pub fn service(&self) -> &Arc<QueryService<E>> {
        &self.service
    }

    /// Admit a read request with the default deadline.
    pub fn submit(&self, request: Request) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(request, self.config.deadline)
    }

    /// Admit a read request, shedding if the queue is at high water.
    pub fn submit_with_deadline(
        &self,
        request: Request,
        deadline: Duration,
    ) -> Result<Ticket, ServeError> {
        if self.queue.closed.load(Ordering::Acquire) {
            return Err(ServeError::Shutdown);
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut jobs = self.queue.jobs.lock().expect("queue poisoned");
            if jobs.len() >= self.config.high_water {
                drop(jobs);
                self.service.counters().count_shed();
                self.service.telemetry().record_failed();
                // Shed outcomes are always logged — they are the requests
                // the slow-query log exists to explain.
                invidx_obs::counter!(names::SERVE_SLOW_QUERIES).inc();
                invidx_obs::event!("slow_query", {
                    "req": request.to_wire(),
                    "outcome": "overloaded",
                    "total_ms": 0.0,
                    "queue_ms": 0.0,
                    "trace_id": 0u64,
                });
                return Err(ServeError::Overloaded {
                    depth: self.config.high_water,
                    high_water: self.config.high_water,
                });
            }
            let trace = self.service.telemetry().sample();
            jobs.push_back(Job { request, admitted: Instant::now(), deadline, reply: tx, trace });
            // Balanced by the dequeue in `reader_loop` and the drain in
            // `close()`: the gauge returns to zero on every exit path.
            invidx_obs::gauge!(names::SERVE_QUEUE_DEPTH).add(1);
        }
        self.queue.wake.notify_one();
        Ok(Ticket { rx })
    }

    /// Admit and block for the reply — the common client call.
    pub fn call(&self, request: Request) -> Result<Response, ServeError> {
        self.submit(request)?.wait()
    }

    /// Current queue depth (tests, stats).
    pub fn queue_depth(&self) -> usize {
        self.queue.jobs.lock().expect("queue poisoned").len()
    }

    /// Stop accepting work, fail pending jobs with [`ServeError::Shutdown`],
    /// and join the reader threads.
    pub fn shutdown(mut self) {
        self.close();
        for reader in self.readers.drain(..) {
            let _ = reader.join();
        }
    }

    fn close(&self) {
        self.queue.closed.store(true, Ordering::Release);
        let drained: Vec<Job> = {
            let mut jobs = self.queue.jobs.lock().expect("queue poisoned");
            jobs.drain(..).collect()
        };
        if !drained.is_empty() {
            invidx_obs::gauge!(names::SERVE_QUEUE_DEPTH).add(-(drained.len() as i64));
        }
        for job in drained {
            let _ = job.reply.send(Err(ServeError::Shutdown));
        }
        self.queue.wake.notify_all();
    }
}

impl<E: ServeEngine> Drop for Frontend<E> {
    fn drop(&mut self) {
        self.close();
        for reader in self.readers.drain(..) {
            let _ = reader.join();
        }
    }
}

fn reader_loop<E: ServeEngine>(service: &QueryService<E>, queue: &Queue) {
    loop {
        let mut job = {
            let mut jobs = queue.jobs.lock().expect("queue poisoned");
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                if queue.closed.load(Ordering::Acquire) {
                    return;
                }
                jobs = queue.wake.wait(jobs).expect("queue poisoned");
            }
        };
        invidx_obs::gauge!(names::SERVE_QUEUE_DEPTH).add(-1);
        let waited = job.admitted.elapsed();
        let waited_ms = waited.as_secs_f64() * 1e3;
        invidx_obs::histogram!(names::SERVE_QUEUE_WAIT_MS, invidx_obs::Buckets::time_ms())
            .record(waited_ms);
        let mut trace = job.trace.take();
        if let Some(ctx) = trace.as_mut() {
            ctx.add_span("queue", 0, waited.as_micros() as u64);
        }
        let reply = if waited > job.deadline {
            service.counters().count_timeout();
            service.telemetry().record_failed();
            Err(ServeError::Timeout { waited, deadline: job.deadline })
        } else {
            // Install the trace for the execute window so stage sites in
            // the service, engine, cache, and disk layers attach to it.
            if let Some(ctx) = trace.take() {
                invidx_obs::trace::install(ctx);
            }
            let reply = service.execute(&job.request);
            trace = invidx_obs::trace::uninstall();
            reply
        };
        let accounted = Instant::now();
        let total_ms = job.admitted.elapsed().as_secs_f64() * 1e3;
        invidx_obs::histogram!(names::SERVE_LATENCY_MS, invidx_obs::Buckets::time_ms())
            .record(total_ms);
        let outcome = match &reply {
            Ok(_) => {
                service.telemetry().record_served(total_ms);
                "ok"
            }
            Err(ServeError::Timeout { .. }) => "timeout", // accounted above
            Err(e) => {
                service.telemetry().record_failed();
                e.code()
            }
        };
        let slow_ms = service.telemetry().slow_threshold_ms();
        let reaped = matches!(reply, Err(ServeError::Timeout { .. }));
        if reaped || (slow_ms > 0 && total_ms >= slow_ms as f64) {
            invidx_obs::counter!(names::SERVE_SLOW_QUERIES).inc();
            invidx_obs::event!("slow_query", {
                "req": job.request.to_wire(),
                "outcome": outcome,
                "total_ms": total_ms,
                "queue_ms": waited_ms,
                "trace_id": trace.as_ref().map(|t| t.trace_id()).unwrap_or(0),
            });
        }
        if let Some(mut ctx) = trace {
            // Latency histograms and SLO accounting sit between the
            // execute window and the trace close; name that slice so the
            // top-level stages still sum to the root.
            ctx.add_span("account", 0, accounted.elapsed().as_micros() as u64);
            ctx.finish(&job.request.to_wire(), outcome);
        }
        // The client may have given up (wait_timeout); that's fine.
        let _ = job.reply.send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Payload;
    use invidx_core::index::IndexConfig;
    use invidx_disk::sparse_array;
    use invidx_ir::SearchEngine;

    fn frontend(config: ServeConfig) -> Frontend<SearchEngine> {
        let array = sparse_array(2, 50_000, 256);
        let engine = SearchEngine::create(array, IndexConfig::small()).unwrap();
        let service = Arc::new(QueryService::with_config(engine, ServeConfig::default()).unwrap());
        service.ingest_batch(&["the quick brown fox", "lazy dog sleeps"]).unwrap();
        Frontend::start_with(service, config)
    }

    #[test]
    fn calls_round_trip_through_the_pool() {
        let fe = frontend(ServeConfig { readers: 2, ..ServeConfig::default() });
        let resp = fe.call(Request::Boolean("fox".into())).unwrap();
        assert_eq!(resp.payload, Payload::Docs(vec![1]));
        let resp = fe.call(Request::Ping).unwrap();
        assert_eq!(resp.payload, Payload::Pong);
        fe.shutdown();
    }

    #[test]
    fn concurrent_clients_all_get_answers() {
        let fe = Arc::new(frontend(ServeConfig { readers: 4, ..ServeConfig::default() }));
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let fe = Arc::clone(&fe);
                std::thread::spawn(move || {
                    let word = if i % 2 == 0 { "fox" } else { "dog" };
                    fe.call(Request::Boolean(word.into())).unwrap()
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let resp = h.join().unwrap();
            let want = if i % 2 == 0 { vec![1] } else { vec![2] };
            assert_eq!(resp.payload, Payload::Docs(want));
        }
        if let Ok(fe) = Arc::try_unwrap(fe) {
            fe.shutdown();
        }
    }

    #[test]
    fn full_queue_sheds_with_typed_error() {
        // One reader, wedged on a query while we overfill the queue: park
        // the reader by submitting against a *stalled* engine write lock.
        let fe = frontend(ServeConfig {
            readers: 1,
            high_water: 2,
            deadline: Duration::from_secs(5),
            ..ServeConfig::default()
        });
        let service = Arc::clone(fe.service());
        // Hold the write lock so the reader blocks inside execute().
        let gate = Arc::new(std::sync::Barrier::new(2));
        let gate2 = Arc::clone(&gate);
        let blocker = std::thread::spawn(move || {
            service.with_blocked_writer(|| {
                gate2.wait(); // writer lock held
                gate2.wait(); // released when the test is done
            });
        });
        gate.wait();
        // First submit is picked up by the reader and blocks on the lock;
        // give the reader a moment to dequeue it.
        let t1 = fe.submit(Request::Boolean("fox".into())).unwrap();
        while fe.queue_depth() > 0 {
            std::thread::yield_now();
        }
        let _t2 = fe.submit(Request::Boolean("dog".into())).unwrap();
        let _t3 = fe.submit(Request::Boolean("quick".into())).unwrap();
        let err = fe.submit(Request::Boolean("lazy".into())).unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { high_water: 2, .. }));
        assert!(err.is_load_response());
        assert_eq!(fe.service().counters().shed(), 1);
        gate.wait();
        blocker.join().unwrap();
        assert!(t1.wait().is_ok());
        fe.shutdown();
    }

    #[test]
    fn expired_jobs_are_reaped_not_executed() {
        let fe = frontend(ServeConfig {
            readers: 1,
            high_water: 16,
            deadline: Duration::from_secs(5),
            ..ServeConfig::default()
        });
        let service = Arc::clone(fe.service());
        let gate = Arc::new(std::sync::Barrier::new(2));
        let gate2 = Arc::clone(&gate);
        let blocker = std::thread::spawn(move || {
            service.with_blocked_writer(|| {
                gate2.wait();
                gate2.wait();
            });
        });
        gate.wait();
        // Reader dequeues t1 and blocks on the engine lock. t2 sits in the
        // queue with a zero deadline, so it is expired by the time the
        // reader reaches it.
        let t1 = fe.submit(Request::Boolean("fox".into())).unwrap();
        while fe.queue_depth() > 0 {
            std::thread::yield_now();
        }
        let t2 = fe.submit_with_deadline(Request::Boolean("dog".into()), Duration::ZERO).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        gate.wait();
        blocker.join().unwrap();
        assert!(t1.wait().is_ok());
        let err = t2.wait().unwrap_err();
        assert!(matches!(err, ServeError::Timeout { .. }));
        assert_eq!(fe.service().counters().timeouts(), 1);
        fe.shutdown();
    }

    #[test]
    fn closed_frontend_rejects_at_admission() {
        let fe = frontend(ServeConfig { readers: 1, ..ServeConfig::default() });
        fe.call(Request::Ping).unwrap();
        fe.queue.closed.store(true, Ordering::Release);
        let err = fe.submit(Request::Ping).unwrap_err();
        assert_eq!(err.code(), "shutdown");
        fe.shutdown();
    }

    #[test]
    fn drop_joins_readers_cleanly() {
        let fe = frontend(ServeConfig { readers: 3, ..ServeConfig::default() });
        fe.call(Request::Boolean("fox".into())).unwrap();
        drop(fe); // must not hang or panic
    }
}
