//! Copy-on-write snapshot publication and the per-core result cache.
//!
//! [`Published`] is the serving layer's RCU cell: the writer builds the
//! next [`ServeSnapshot`] off to the side and publishes it at the commit
//! point; readers follow a lock-free chain of `Arc` nodes to the newest
//! snapshot. Each reader thread caches its chain position per cell as a
//! `Weak` reference: between publications a load is pure atomic pointer
//! reads, and a publication orphans the old chain, so the next load
//! re-joins at the head (one brief mutex lock, held by the writer only
//! to swap a pointer). Holding the position weakly is load-bearing for
//! memory: a thread that served one query and then parked on an empty
//! queue pins nothing, so superseded snapshots — each O(docs + vocab) —
//! drop as soon as in-flight loads release them, however long the thread
//! stays idle. No reader ever blocks on the writer's materialization
//! work, and a stalled reader never blocks publication.
//!
//! [`ShardedCache`] splits the result cache into independent LRU shards
//! (one mutex each, selected by key hash), killing the global cache-mutex
//! convoy that coupled reader latency to cache contention. Per-shard
//! capacities sum exactly to the configured total and per-shard counters
//! are summed for STATS; eviction *order* is the one divergence from a
//! single LRU (each shard reaps its own least-recent entry under
//! capacity pressure).
//!
//! [`ReadGate`] preserves the old `RwLock` semantics tests rely on:
//! [`crate::QueryService::with_blocked_writer`] stalls the read path for
//! its duration, without putting a lock on the normal query path (the
//! fast path is a single relaxed atomic load).

use crate::cache::{Lookup, ResultCache};
use crate::request::Payload;
use invidx_core::cache::CacheStats;
use invidx_ir::EngineSnapshot;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock, Weak};

/// Everything a reader needs to answer one request coherently: the epoch,
/// the materialized engine view it names, and the block-cache counters as
/// of the publish (snapshot queries do no block I/O themselves — all
/// cache/disk traffic happens at materialization, inside the writer).
#[derive(Debug, Clone)]
pub(crate) struct ServeSnapshot {
    pub(crate) epoch: u64,
    pub(crate) view: Arc<EngineSnapshot>,
    pub(crate) block: CacheStats,
}

/// One link in the publication chain.
#[derive(Debug)]
struct Node {
    value: Arc<ServeSnapshot>,
    next: OnceLock<Arc<Node>>,
}

impl Drop for Node {
    fn drop(&mut self) {
        // Unlink iteratively: reader caches are weak so chains stay short
        // in steady state, but a reader mid-load (or a test) can still
        // hold an old node while many publications extend the chain, and
        // releasing it must not recurse one Arc drop per link — deep
        // enough to overflow the stack.
        let mut next = self.next.take();
        while let Some(node) = next {
            match Arc::try_unwrap(node) {
                Ok(mut n) => next = n.next.take(),
                Err(_) => break,
            }
        }
    }
}

/// Distinguishes publication cells in the per-thread chain cache.
static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Each reader thread's last-seen node per publication cell, held
    /// weakly. The cached position accelerates repeat loads while its
    /// chain is current, but pins nothing: an idle thread must not keep
    /// superseded snapshots alive, and entries for destroyed cells are
    /// swept on the next fallback load (see [`Published::load`]) rather
    /// than accumulating for the thread's lifetime.
    static CHAIN_CACHE: RefCell<HashMap<u64, Weak<Node>>> = RefCell::new(HashMap::new());
}

/// A single-writer, many-reader publication cell (RCU-style).
///
/// The writer serializes through [`Published::publish`] (the service holds
/// its writer mutex there anyway); readers call [`Published::load`], which
/// locks nothing between publications after the thread's first touch, and
/// pays one pointer-swap-sized head lock per publication to re-join the
/// chain.
#[derive(Debug)]
pub(crate) struct Published {
    id: u64,
    head: Mutex<Arc<Node>>,
}

impl Published {
    pub(crate) fn new(initial: ServeSnapshot) -> Self {
        Self {
            id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed),
            head: Mutex::new(Arc::new(Node {
                value: Arc::new(initial),
                next: OnceLock::new(),
            })),
        }
    }

    /// Publish the next snapshot. Readers parked anywhere on the chain
    /// reach it by following `next` links; new threads join at the head.
    pub(crate) fn publish(&self, value: ServeSnapshot) {
        let node = Arc::new(Node { value: Arc::new(value), next: OnceLock::new() });
        let mut head = self.head.lock();
        head.next
            .set(node.clone())
            .expect("single writer: the head node's next link is unset");
        *head = node;
    }

    /// The newest snapshot. Between publications this is lock-free after
    /// the calling thread's first touch: upgrade the cached `Weak` chain
    /// position, then chase `OnceLock` pointers to the tail. Once a
    /// publication has orphaned the cached chain the upgrade fails and
    /// the thread re-joins at the head — one short mutex lock per
    /// publication (the writer holds it only to swap a pointer), which is
    /// also when entries whose chains are gone (superseded nodes,
    /// destroyed cells) are swept from this thread's cache.
    pub(crate) fn load(&self) -> Arc<ServeSnapshot> {
        CHAIN_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            let mut node = match cache.get(&self.id).and_then(Weak::upgrade) {
                Some(node) => node,
                None => {
                    cache.retain(|_, cached| cached.strong_count() > 0);
                    self.head.lock().clone()
                }
            };
            while let Some(next) = node.next.get() {
                node = next.clone();
            }
            cache.insert(self.id, Arc::downgrade(&node));
            node.value.clone()
        })
    }
}

/// The result cache, split into independently locked LRU shards.
///
/// Shard count adapts to the machine (one per available core) but never
/// exceeds the capacity — a capacity-1 cache stays one exact LRU slot,
/// which the stats-consistency tests rely on. Keys pick their shard by
/// hash, so repeat queries always land on the same shard, per-shard
/// capacities sum exactly to the configured total, and the summed
/// hit/miss/drop counters are exactly what the callers observed.
/// Eviction *order* is the one divergence from a single global LRU: each
/// shard reaps its own least-recent entry, so under capacity pressure a
/// hot shard can evict an entry a global LRU would have kept.
pub(crate) struct ShardedCache {
    shards: Vec<Mutex<ResultCache>>,
}

impl ShardedCache {
    pub(crate) fn new(capacity: usize) -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let n = capacity.min(cores).max(1);
        // Distribute the capacity exactly: the first `capacity % n` shards
        // take one extra slot, so the shards sum to `capacity` rather than
        // the rounded-up `n * ceil(capacity / n)`. With `n <= capacity`,
        // every shard holds at least one entry.
        let (base, extra) = (capacity / n, capacity % n);
        Self {
            shards: (0..n)
                .map(|i| Mutex::new(ResultCache::new(base + usize::from(i < extra))))
                .collect(),
        }
    }

    fn shard_of(&self, key: &str) -> &Mutex<ResultCache> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    pub(crate) fn get(&self, key: &str, epoch: u64) -> (Option<Payload>, Lookup) {
        self.shard_of(key).lock().get(key, epoch)
    }

    pub(crate) fn insert(&self, key: String, epoch: u64, value: Payload) {
        self.shard_of(&key).lock().insert(key, epoch, value);
    }

    /// `(evictions, stale_drops)` summed across shards.
    pub(crate) fn totals(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(e, s), shard| {
            let shard = shard.lock();
            (e + shard.evictions(), s + shard.stale_drops())
        })
    }

    /// Hold every shard lock for the duration of `f` — a deterministic
    /// way for tests to wedge the cache path and prove the writer no
    /// longer depends on it.
    #[doc(hidden)]
    pub(crate) fn with_blocked(&self, f: impl FnOnce()) {
        let _guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        f();
    }
}

/// Stalls the read path while [`crate::QueryService::with_blocked_writer`]
/// runs, mirroring the old write-lock semantics the admission and
/// gauge-hygiene tests are built around. The normal query path pays one
/// relaxed atomic load.
#[derive(Debug, Default)]
pub(crate) struct ReadGate {
    stalled: AtomicBool,
    lock: StdMutex<()>,
    cv: Condvar,
}

impl ReadGate {
    /// Fast path: one atomic load. When stalled, park until released.
    pub(crate) fn wait_if_stalled(&self) {
        if !self.stalled.load(Ordering::Acquire) {
            return;
        }
        let mut guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while self.stalled.load(Ordering::Acquire) {
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub(crate) fn stall(&self) {
        self.stalled.store(true, Ordering::Release);
    }

    pub(crate) fn unstall(&self) {
        let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        self.stalled.store(false, Ordering::Release);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64) -> ServeSnapshot {
        ServeSnapshot {
            epoch,
            view: Arc::new(EngineSnapshot::empty()),
            block: CacheStats::default(),
        }
    }

    #[test]
    fn publish_is_visible_to_old_and_new_readers() {
        let cell = Published::new(snap(0));
        assert_eq!(cell.load().epoch, 0);
        for e in 1..=100 {
            cell.publish(snap(e));
            assert_eq!(cell.load().epoch, e, "same-thread reader chases to the tail");
        }
        // A fresh thread joins at the head and sees the newest snapshot.
        let newest = std::thread::scope(|s| {
            s.spawn(|| cell.load().epoch).join().unwrap()
        });
        assert_eq!(newest, 100);
    }

    #[test]
    fn concurrent_readers_see_monotonic_epochs() {
        let cell = Arc::new(Published::new(snap(0)));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = cell.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let e = cell.load().epoch;
                        assert!(e >= last, "epoch went backwards: {last} -> {e}");
                        last = e;
                    }
                });
            }
            for e in 1..=500 {
                cell.publish(snap(e));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(cell.load().epoch, 500);
    }

    #[test]
    fn long_chains_drop_without_overflowing() {
        let cell = Published::new(snap(0));
        // Pin the chain's origin node directly (reader caches are weak and
        // pin nothing), extend the chain far enough that a recursive drop
        // would blow the stack, then release it.
        let origin = cell.head.lock().clone();
        for e in 1..=200_000 {
            cell.publish(snap(e));
        }
        drop(origin);
        assert_eq!(cell.load().epoch, 200_000);
    }

    #[test]
    fn parked_reader_thread_does_not_pin_superseded_snapshots() {
        let cell = Arc::new(Published::new(snap(0)));
        let (parked_tx, parked_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        std::thread::scope(|s| {
            let reader = cell.clone();
            s.spawn(move || {
                // Serve one load, then park — the idle replica / no-query
                // shape from the field: the thread must not keep every
                // later publication alive through its chain cache.
                reader.load();
                parked_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            });
            parked_rx.recv().unwrap();
            let mut weaks = Vec::new();
            for e in 1..=50 {
                cell.publish(snap(e));
                weaks.push(Arc::downgrade(&cell.load()));
            }
            let (superseded, newest) = weaks.split_at(weaks.len() - 1);
            assert!(
                superseded.iter().all(|w| w.upgrade().is_none()),
                "superseded snapshots must drop while a reader thread is parked"
            );
            assert!(newest[0].upgrade().is_some(), "the published snapshot stays live");
            release_tx.send(()).unwrap();
        });
    }

    #[test]
    fn destroyed_cells_are_swept_from_reader_caches() {
        let a = Published::new(snap(1));
        let a_id = a.id;
        assert_eq!(a.load().epoch, 1);
        CHAIN_CACHE.with(|c| assert!(c.borrow().contains_key(&a_id), "load caches a position"));
        drop(a);
        // The next load that misses its cached position (here: a fresh
        // cell's first touch) sweeps entries whose chains are gone, so a
        // long-lived reader thread does not accumulate one entry per
        // destroyed service.
        let b = Published::new(snap(2));
        assert_eq!(b.load().epoch, 2);
        CHAIN_CACHE.with(|c| {
            assert!(!c.borrow().contains_key(&a_id), "dead cell entry must be swept")
        });
    }

    #[test]
    fn sharded_cache_sums_counters_and_stays_exact_at_capacity_one() {
        let c = ShardedCache::new(1);
        assert_eq!(c.shards.len(), 1, "capacity bounds the shard count");
        c.insert("a".into(), 0, Payload::Docs(vec![1]));
        c.insert("b".into(), 0, Payload::Docs(vec![2]));
        assert_eq!(c.totals(), (1, 0));
        assert_eq!(c.get("b", 0).1, Lookup::Hit);
        assert_eq!(c.get("b", 1).1, Lookup::Stale);
        assert_eq!(c.totals(), (1, 1));
    }

    #[test]
    fn sharded_cache_totals_sum_across_shards() {
        // Wide capacity → as many shards as the machine has cores; keys
        // hash across them. However the drops scatter, the summed totals
        // must equal what the caller observed. (All inserts happen at
        // epoch 0, so any capacity reap of a skewed shard counts as an
        // eviction — entries missing at probe time are plain misses.)
        let c = ShardedCache::new(256);
        for i in 0..40 {
            c.insert(format!("k{i}"), 0, Payload::Docs(vec![i]));
        }
        let mut observed_stale = 0;
        for i in 0..40 {
            if c.get(&format!("k{i}"), 1).1 == Lookup::Stale {
                observed_stale += 1;
            }
        }
        assert!(observed_stale > 0, "epoch bump must stale the entries");
        let (evictions, stale_drops) = c.totals();
        assert_eq!(stale_drops, observed_stale, "shard counters must sum to the totals");
        assert_eq!(evictions, 40 - observed_stale, "every other entry was a capacity reap");
    }

    #[test]
    fn sharded_cache_distributes_capacity_exactly() {
        for capacity in [1usize, 2, 3, 5, 8, 10, 17, 100, 256] {
            let c = ShardedCache::new(capacity);
            let total: usize = c.shards.iter().map(|s| s.lock().capacity()).sum();
            assert_eq!(total, capacity, "shard capacities must sum to the configured total");
            assert!(
                c.shards.iter().all(|s| s.lock().capacity() >= 1),
                "no shard may be a zero-capacity black hole"
            );
        }
        // Capacity 0 stays the single disabled shard.
        let disabled = ShardedCache::new(0);
        assert_eq!(disabled.shards.len(), 1);
        assert_eq!(disabled.shards[0].lock().capacity(), 0);
    }

    #[test]
    fn sharded_cache_routes_repeat_keys_to_one_shard() {
        let c = ShardedCache::new(1024);
        for i in 0..200 {
            c.insert(format!("q{i}"), 3, Payload::Docs(vec![i]));
        }
        for i in 0..200 {
            let (hit, outcome) = c.get(&format!("q{i}"), 3);
            assert_eq!(outcome, Lookup::Hit);
            assert_eq!(hit, Some(Payload::Docs(vec![i])));
        }
    }

    #[test]
    fn read_gate_blocks_until_released() {
        let gate = Arc::new(ReadGate::default());
        gate.stall();
        let passed = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            let g = gate.clone();
            let p = passed.clone();
            s.spawn(move || {
                g.wait_if_stalled();
                p.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert!(!passed.load(Ordering::SeqCst), "reader must park while stalled");
            gate.unstall();
        });
        assert!(passed.load(Ordering::SeqCst));
        gate.wait_if_stalled(); // released gate is a no-op
    }
}
