//! Copy-on-write snapshot publication and the per-core result cache.
//!
//! [`Published`] is the serving layer's RCU cell: the writer builds the
//! next [`ServeSnapshot`] off to the side and publishes it at the commit
//! point; readers follow a lock-free chain of `Arc` nodes to the newest
//! snapshot. After a thread's first touch (one mutex lock to join the
//! chain), every subsequent load is a handful of atomic pointer reads —
//! no reader ever blocks on the writer, and a stalled reader never blocks
//! publication.
//!
//! [`ShardedCache`] splits the result cache into independent LRU shards
//! (one mutex each, selected by key hash), killing the global cache-mutex
//! convoy that coupled reader latency to cache contention. Per-shard
//! counters are summed for STATS, so totals are exactly what one big
//! cache would have reported.
//!
//! [`ReadGate`] preserves the old `RwLock` semantics tests rely on:
//! [`crate::QueryService::with_blocked_writer`] stalls the read path for
//! its duration, without putting a lock on the normal query path (the
//! fast path is a single relaxed atomic load).

use crate::cache::{Lookup, ResultCache};
use crate::request::Payload;
use invidx_core::cache::CacheStats;
use invidx_ir::EngineSnapshot;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock};

/// Everything a reader needs to answer one request coherently: the epoch,
/// the materialized engine view it names, and the block-cache counters as
/// of the publish (snapshot queries do no block I/O themselves — all
/// cache/disk traffic happens at materialization, inside the writer).
#[derive(Debug, Clone)]
pub(crate) struct ServeSnapshot {
    pub(crate) epoch: u64,
    pub(crate) view: Arc<EngineSnapshot>,
    pub(crate) block: CacheStats,
}

/// One link in the publication chain.
#[derive(Debug)]
struct Node {
    value: Arc<ServeSnapshot>,
    next: OnceLock<Arc<Node>>,
}

impl Drop for Node {
    fn drop(&mut self) {
        // Unlink iteratively: a thread that parked on an old node for many
        // epochs would otherwise trigger a recursive Arc-chain drop deep
        // enough to overflow the stack.
        let mut next = self.next.take();
        while let Some(node) = next {
            match Arc::try_unwrap(node) {
                Ok(mut n) => next = n.next.take(),
                Err(_) => break,
            }
        }
    }
}

/// Distinguishes publication cells in the per-thread chain cache.
static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Each reader thread's last-seen node per publication cell. Entries
    /// pin that node's suffix of the chain until the thread loads again
    /// (chasing releases the prefix) or exits.
    static CHAIN_CACHE: RefCell<HashMap<u64, Arc<Node>>> = RefCell::new(HashMap::new());
}

/// A single-writer, many-reader publication cell (RCU-style).
///
/// The writer serializes through [`Published::publish`] (the service holds
/// its writer mutex there anyway); readers call [`Published::load`], which
/// locks nothing after the thread's first touch.
#[derive(Debug)]
pub(crate) struct Published {
    id: u64,
    head: Mutex<Arc<Node>>,
}

impl Published {
    pub(crate) fn new(initial: ServeSnapshot) -> Self {
        Self {
            id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed),
            head: Mutex::new(Arc::new(Node {
                value: Arc::new(initial),
                next: OnceLock::new(),
            })),
        }
    }

    /// Publish the next snapshot. Readers parked anywhere on the chain
    /// reach it by following `next` links; new threads join at the head.
    pub(crate) fn publish(&self, value: ServeSnapshot) {
        let node = Arc::new(Node { value: Arc::new(value), next: OnceLock::new() });
        let mut head = self.head.lock();
        head.next
            .set(node.clone())
            .expect("single writer: the head node's next link is unset");
        *head = node;
    }

    /// The newest snapshot. Lock-free after the calling thread's first
    /// load: cached chain position plus `OnceLock` pointer chasing.
    pub(crate) fn load(&self) -> Arc<ServeSnapshot> {
        CHAIN_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            let node = cache.entry(self.id).or_insert_with(|| self.head.lock().clone());
            while let Some(next) = node.next.get() {
                *node = next.clone();
            }
            node.value.clone()
        })
    }
}

/// The result cache, split into independently locked LRU shards.
///
/// Shard count adapts to the machine (one per available core) but never
/// exceeds the capacity — a capacity-1 cache stays one exact LRU slot,
/// which the stats-consistency tests rely on. Keys pick their shard by
/// hash, so repeat queries always land on the same shard and totals are
/// exactly what a single cache of the same capacity would count.
pub(crate) struct ShardedCache {
    shards: Vec<Mutex<ResultCache>>,
}

impl ShardedCache {
    pub(crate) fn new(capacity: usize) -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let n = capacity.min(cores).max(1);
        let per_shard = capacity.div_ceil(n);
        Self {
            shards: (0..n).map(|_| Mutex::new(ResultCache::new(per_shard))).collect(),
        }
    }

    fn shard_of(&self, key: &str) -> &Mutex<ResultCache> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    pub(crate) fn get(&self, key: &str, epoch: u64) -> (Option<Payload>, Lookup) {
        self.shard_of(key).lock().get(key, epoch)
    }

    pub(crate) fn insert(&self, key: String, epoch: u64, value: Payload) {
        self.shard_of(&key).lock().insert(key, epoch, value);
    }

    /// `(evictions, stale_drops)` summed across shards.
    pub(crate) fn totals(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(e, s), shard| {
            let shard = shard.lock();
            (e + shard.evictions(), s + shard.stale_drops())
        })
    }

    /// Hold every shard lock for the duration of `f` — a deterministic
    /// way for tests to wedge the cache path and prove the writer no
    /// longer depends on it.
    #[doc(hidden)]
    pub(crate) fn with_blocked(&self, f: impl FnOnce()) {
        let _guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        f();
    }
}

/// Stalls the read path while [`crate::QueryService::with_blocked_writer`]
/// runs, mirroring the old write-lock semantics the admission and
/// gauge-hygiene tests are built around. The normal query path pays one
/// relaxed atomic load.
#[derive(Debug, Default)]
pub(crate) struct ReadGate {
    stalled: AtomicBool,
    lock: StdMutex<()>,
    cv: Condvar,
}

impl ReadGate {
    /// Fast path: one atomic load. When stalled, park until released.
    pub(crate) fn wait_if_stalled(&self) {
        if !self.stalled.load(Ordering::Acquire) {
            return;
        }
        let mut guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while self.stalled.load(Ordering::Acquire) {
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub(crate) fn stall(&self) {
        self.stalled.store(true, Ordering::Release);
    }

    pub(crate) fn unstall(&self) {
        let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        self.stalled.store(false, Ordering::Release);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64) -> ServeSnapshot {
        ServeSnapshot {
            epoch,
            view: Arc::new(EngineSnapshot::empty()),
            block: CacheStats::default(),
        }
    }

    #[test]
    fn publish_is_visible_to_old_and_new_readers() {
        let cell = Published::new(snap(0));
        assert_eq!(cell.load().epoch, 0);
        for e in 1..=100 {
            cell.publish(snap(e));
            assert_eq!(cell.load().epoch, e, "same-thread reader chases to the tail");
        }
        // A fresh thread joins at the head and sees the newest snapshot.
        let newest = std::thread::scope(|s| {
            s.spawn(|| cell.load().epoch).join().unwrap()
        });
        assert_eq!(newest, 100);
    }

    #[test]
    fn concurrent_readers_see_monotonic_epochs() {
        let cell = Arc::new(Published::new(snap(0)));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = cell.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let e = cell.load().epoch;
                        assert!(e >= last, "epoch went backwards: {last} -> {e}");
                        last = e;
                    }
                });
            }
            for e in 1..=500 {
                cell.publish(snap(e));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(cell.load().epoch, 500);
    }

    #[test]
    fn long_chains_drop_without_overflowing() {
        let cell = Published::new(snap(0));
        // Pin the chain's origin, extend it far enough that a recursive
        // drop would blow the stack, then release the origin.
        let origin = cell.load();
        for e in 1..=200_000 {
            cell.publish(snap(e));
        }
        drop(origin);
        CHAIN_CACHE.with(|c| c.borrow_mut().clear());
        assert_eq!(cell.load().epoch, 200_000);
    }

    #[test]
    fn sharded_cache_sums_counters_and_stays_exact_at_capacity_one() {
        let c = ShardedCache::new(1);
        assert_eq!(c.shards.len(), 1, "capacity bounds the shard count");
        c.insert("a".into(), 0, Payload::Docs(vec![1]));
        c.insert("b".into(), 0, Payload::Docs(vec![2]));
        assert_eq!(c.totals(), (1, 0));
        assert_eq!(c.get("b", 0).1, Lookup::Hit);
        assert_eq!(c.get("b", 1).1, Lookup::Stale);
        assert_eq!(c.totals(), (1, 1));
    }

    #[test]
    fn sharded_cache_totals_sum_across_shards() {
        // Wide capacity → as many shards as the machine has cores; keys
        // hash across them. However the drops scatter, the summed totals
        // must equal what the caller observed — exactly what one big
        // cache of the same capacity would have counted.
        let c = ShardedCache::new(256);
        for i in 0..40 {
            c.insert(format!("k{i}"), 0, Payload::Docs(vec![i]));
        }
        let mut observed_stale = 0;
        for i in 0..40 {
            if c.get(&format!("k{i}"), 1).1 == Lookup::Stale {
                observed_stale += 1;
            }
        }
        assert!(observed_stale > 0, "epoch bump must stale the entries");
        let (evictions, stale_drops) = c.totals();
        assert_eq!(stale_drops, observed_stale, "shard counters must sum to the totals");
        assert_eq!(evictions, 0, "nothing was reaped for capacity");
    }

    #[test]
    fn sharded_cache_routes_repeat_keys_to_one_shard() {
        let c = ShardedCache::new(1024);
        for i in 0..200 {
            c.insert(format!("q{i}"), 3, Payload::Docs(vec![i]));
        }
        for i in 0..200 {
            let (hit, outcome) = c.get(&format!("q{i}"), 3);
            assert_eq!(outcome, Lookup::Hit);
            assert_eq!(hit, Some(Payload::Docs(vec![i])));
        }
    }

    #[test]
    fn read_gate_blocks_until_released() {
        let gate = Arc::new(ReadGate::default());
        gate.stall();
        let passed = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            let g = gate.clone();
            let p = passed.clone();
            s.spawn(move || {
                g.wait_if_stalled();
                p.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert!(!passed.load(Ordering::SeqCst), "reader must park while stalled");
            gate.unstall();
        });
        assert!(passed.load(Ordering::SeqCst));
        gate.wait_if_stalled(); // released gate is a no-op
    }
}
