//! # invidx-serve — concurrent query serving over the incremental index
//!
//! The paper's engine (Tomasic, García-Molina & Shoens, SIGMOD '94) is an
//! *update* story: batches of postings folded into a dual bucket/long-list
//! structure. This crate is the complementary *read* story: serve queries
//! from many clients **while** those batches keep landing, without ever
//! returning a result that a single-threaded replay could not produce.
//!
//! The layers, bottom up:
//!
//! * [`ServeEngine`] — the engine contract: queries on `&self`, updates on
//!   `&mut self`, plus snapshot materialization for the read path.
//!   Implemented by `SearchEngine` and `DurableEngine`.
//! * [`QueryService`] — lock-free reads over copy-on-write epoch
//!   snapshots: the single writer applies add+flush batches atomically,
//!   materializes the next immutable engine view off to the side, and
//!   publishes `(epoch, view, block-cache counters)` as one atomic unit;
//!   readers load the current snapshot with no lock and consult a
//!   per-core sharded epoch-keyed LRU ([`ResultCache`] shards).
//! * [`Frontend`] — admission control: a bounded work queue with
//!   high-water load shedding ([`ServeError::Overloaded`]), per-request
//!   deadlines reaped in the queue ([`ServeError::Timeout`]), and a
//!   reader-thread pool.
//! * [`Server`] — a line-oriented TCP front end (`QUERY`/`PHRASE`/`NEAR`/
//!   `LIKE`/`DOC`/`ADD`/`FLUSH`/`CHECKPOINT`/`STATS`/`PING`) you can drive
//!   with `nc`.
//!
//! The correctness invariant threaded through all of it: every response
//! carries the **epoch** it was computed at, and epoch + state travel in
//! one published snapshot, so `(epoch, result)` pairs are exactly
//! reproducible by replaying the same batches single-threaded and querying
//! at the same epoch. The stress tests and the `ablation_serving` load
//! generator check results against that oracle.

pub mod admission;
pub mod cache;
pub mod engine;
pub mod error;
pub mod request;
pub mod server;
pub mod service;
pub(crate) mod snapshot;
pub mod telemetry;

pub use admission::{Frontend, Ticket};
pub use cache::{Lookup, ResultCache};
pub use engine::ServeEngine;
pub use error::ServeError;
pub use request::{
    error_to_wire, from_hex, normalize_query, parse_response, to_hex, Payload, Request, Response,
    ServeStats,
};
pub use server::Server;
pub use service::{QueryService, ServeConfig, ServeConfigBuilder, ServeCounters};
pub use telemetry::Telemetry;
