//! Live telemetry for one serving instance: trace sampling, sliding
//! latency quantiles, the slow-query threshold, and SLO accounting.
//!
//! One [`Telemetry`] lives inside each [`crate::QueryService`] and is
//! consulted at admission (should this request carry a
//! [`TraceCtx`](invidx_obs::TraceCtx)?) and at completion (classify the
//! outcome against the SLO, feed the sliding window, decide whether the
//! request belongs in the slow-query log). [`Telemetry::publish_gauges`]
//! pushes the derived values — live p50/p95/p99, error-budget remaining,
//! burn rate — into the global registry so the `METRICS` verb and
//! `invidx top` see them.

use crate::service::ServeConfig;
use invidx_obs::names;
use invidx_obs::{Buckets, Sampler, SlidingHistogram, SloTracker, TraceCtx};

/// Latency quantile window: 6 slots × 10 s = one minute.
const WINDOW_SLOTS: usize = 6;
const SLOT_MS: u64 = 10_000;

/// Per-service telemetry state (see module docs).
pub struct Telemetry {
    sampler: Sampler,
    latency: SlidingHistogram,
    slo: SloTracker,
    slow_ms: u64,
}

impl Telemetry {
    /// Build from the serving config's observability knobs.
    pub fn new(config: &ServeConfig) -> Self {
        Self {
            sampler: Sampler::new(config.trace_sample),
            latency: SlidingHistogram::new(Buckets::time_ms(), WINDOW_SLOTS, SLOT_MS),
            slo: SloTracker::new(config.slo_target_ms as f64, config.slo_objective_ppm),
            slow_ms: config.slow_query_ms,
        }
    }

    /// Decide whether this arrival is traced; a `Some` carries a fresh
    /// context whose root span starts now.
    pub fn sample(&self) -> Option<TraceCtx> {
        if !self.sampler.hit() {
            return None;
        }
        invidx_obs::counter!(names::SERVE_TRACES).inc();
        Some(TraceCtx::start(invidx_obs::trace::next_trace_id()))
    }

    /// Account a served request; returns whether it met the SLO target.
    pub fn record_served(&self, latency_ms: f64) -> bool {
        self.latency.record(latency_ms);
        let ok = self.slo.observe(latency_ms);
        invidx_obs::counter!(names::SLO_REQUESTS).inc();
        if !ok {
            invidx_obs::counter!(names::SLO_VIOLATIONS).inc();
        }
        ok
    }

    /// Account a request that produced no result (shed, reaped, engine
    /// error) — always an SLO violation.
    pub fn record_failed(&self) {
        self.slo.observe_failure();
        invidx_obs::counter!(names::SLO_REQUESTS).inc();
        invidx_obs::counter!(names::SLO_VIOLATIONS).inc();
    }

    /// Slow-query threshold in ms (0 disables the threshold path;
    /// shed/timeout outcomes are always logged).
    pub fn slow_threshold_ms(&self) -> u64 {
        self.slow_ms
    }

    /// Live quantile over the sliding window, in milliseconds.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.latency.quantile(q)
    }

    /// The SLO accountant.
    pub fn slo(&self) -> &SloTracker {
        &self.slo
    }

    /// Push derived gauges (live quantiles in µs, error-budget state)
    /// into the global registry.
    pub fn publish_gauges(&self) {
        let us = |q: f64| (self.latency.quantile(q) * 1e3) as i64;
        invidx_obs::gauge!(names::SERVE_P50_US).set(us(0.50));
        invidx_obs::gauge!(names::SERVE_P95_US).set(us(0.95));
        invidx_obs::gauge!(names::SERVE_P99_US).set(us(0.99));
        invidx_obs::gauge!(names::SLO_BUDGET_REMAINING_PPM).set(self.slo.budget_remaining_ppm());
        invidx_obs::gauge!(names::SLO_BURN_RATE_X1000).set(self.slo.burn_rate_x1000());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(trace_sample: u32) -> ServeConfig {
        ServeConfig { trace_sample, ..ServeConfig::default() }
    }

    #[test]
    fn sampling_follows_config() {
        let t = Telemetry::new(&config(0));
        assert!(t.sample().is_none());
        let t = Telemetry::new(&config(1));
        assert!(t.sample().is_some());
        let t = Telemetry::new(&config(3));
        let sampled = (0..9).filter(|_| t.sample().is_some()).count();
        assert_eq!(sampled, 3);
    }

    #[test]
    fn slo_classification_feeds_tracker() {
        let cfg = ServeConfig { slo_target_ms: 10, slo_objective_ppm: 900_000, ..config(0) };
        let t = Telemetry::new(&cfg);
        assert!(t.record_served(1.0));
        assert!(!t.record_served(100.0));
        t.record_failed();
        assert_eq!(t.slo().total(), 3);
        assert_eq!(t.slo().violations(), 2);
    }

    #[test]
    fn quantiles_come_from_the_window() {
        let t = Telemetry::new(&config(0));
        for _ in 0..100 {
            t.record_served(1.0);
        }
        let p99 = t.quantile_ms(0.99);
        assert!(p99 > 0.0 && p99 <= 2.56, "p99={p99}");
        t.publish_gauges(); // must not panic; gauge values spot-checked
        assert!(invidx_obs::registry().gauge(names::SERVE_P99_US).get() > 0);
    }
}
