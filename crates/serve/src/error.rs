//! Typed serving errors.
//!
//! The admission-control contract of the subsystem lives in this type: an
//! overloaded server answers with [`ServeError::Overloaded`] instead of
//! queueing unboundedly, and a request that waited past its deadline
//! answers [`ServeError::Timeout`] instead of burning a reader thread on a
//! result nobody is waiting for. Clients can tell these apart from real
//! failures and back off accordingly.

use std::fmt;
use std::time::Duration;

/// Everything the serving layer can answer instead of a result.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The work queue is at its high-water mark; the request was rejected
    /// at admission without queuing. Retry after backoff.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
        /// The configured high-water mark.
        high_water: usize,
    },
    /// The request waited in the queue past its deadline and was dropped
    /// before execution.
    Timeout {
        /// How long the request had waited when it was reaped.
        waited: Duration,
        /// The deadline it was admitted with.
        deadline: Duration,
    },
    /// The request line or query text did not parse.
    BadRequest(String),
    /// A `ServeConfig` failed validation at `build()`.
    Config(String),
    /// The engine failed while executing the request.
    Engine(String),
    /// The server is shutting down; no more requests are accepted.
    Shutdown,
}

impl ServeError {
    /// Short machine-readable code used on the wire (`ERR <code> ...`).
    pub fn code(&self) -> &'static str {
        match self {
            Self::Overloaded { .. } => "overloaded",
            Self::Timeout { .. } => "timeout",
            Self::BadRequest(_) => "badrequest",
            Self::Config(_) => "config",
            Self::Engine(_) => "engine",
            Self::Shutdown => "shutdown",
        }
    }

    /// True for the two graceful-degradation answers (shed or expired):
    /// the server is healthy, the request was deliberately not served.
    pub fn is_load_response(&self) -> bool {
        matches!(self, Self::Overloaded { .. } | Self::Timeout { .. })
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { depth, high_water } => {
                write!(f, "overloaded: queue depth {depth} at high-water {high_water}")
            }
            Self::Timeout { waited, deadline } => write!(
                f,
                "deadline exceeded: waited {:.1} ms past a {:.1} ms deadline",
                waited.as_secs_f64() * 1e3,
                deadline.as_secs_f64() * 1e3
            ),
            Self::BadRequest(msg) => write!(f, "bad request: {msg}"),
            Self::Config(msg) => write!(f, "invalid serve config: {msg}"),
            Self::Engine(msg) => write!(f, "engine error: {msg}"),
            Self::Shutdown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_classification() {
        let shed = ServeError::Overloaded { depth: 9, high_water: 8 };
        let late = ServeError::Timeout {
            waited: Duration::from_millis(12),
            deadline: Duration::from_millis(10),
        };
        assert_eq!(shed.code(), "overloaded");
        assert_eq!(late.code(), "timeout");
        assert!(shed.is_load_response());
        assert!(late.is_load_response());
        assert!(!ServeError::BadRequest("x".into()).is_load_response());
        assert!(!ServeError::Shutdown.is_load_response());
        assert!(shed.to_string().contains("high-water 8"));
    }
}
