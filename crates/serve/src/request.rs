//! The serving request model and its line-oriented wire form.
//!
//! One request or response per line, ASCII keywords, no framing beyond
//! `\n` — the protocol a human can drive with `nc`. Read requests map onto
//! the engine's query surface (boolean, phrase, proximity, vector); write
//! requests (`ADD`/`FLUSH`/`CHECKPOINT`) bypass the reader queue and take
//! the writer path directly.
//!
//! Every successful response carries the **epoch** the result was computed
//! at (`OK <epoch> ...`), which is what makes results checkable against an
//! oracle replay: a result is correct iff it equals the single-threaded
//! answer at that same epoch.

use crate::error::ServeError;

/// A read request, executed by the reader pool under the shared lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `QUERY <boolean expression>` — e.g. `(cat and dog) or mouse`.
    Boolean(String),
    /// `PHRASE <words>` — contiguous in-order match.
    Phrase(String),
    /// `NEAR <w1> <w2> <window>` — proximity predicate.
    Near(String, String, u32),
    /// `LIKE <k> <text>` — top-k vector-model search seeded by a text.
    Like(usize, String),
    /// `RANK <k> <text>` — BM25 ranked top-k seeded by a text, scored
    /// with the service's configured `(k1, b)` and WAND-pruned.
    Rank(usize, String),
    /// `DF <term>...` — document frequency per term plus the engine's
    /// document and token counts: the fan-out phase of the router's
    /// distributed LIKE and RANK.
    Df(Vec<String>),
    /// `WLIKE <k> <n> <term>:<weight-bits-hex>...` — top-k scoring with
    /// caller-supplied per-term contributions, applied in wire order.
    /// Weights travel as `f64::to_bits` hex so shipped idf values survive
    /// the wire bit-exactly; that is what makes sharded LIKE scores equal
    /// an unsharded engine's, to the last ulp.
    WeightedLike(usize, Vec<(String, u64)>),
    /// `WRANK <k> <k1-hex> <b-hex> <avgdl-hex> <n> <term>:<idf-bits-hex>...`
    /// — BM25 top-k with caller-supplied idf weights and corpus-global
    /// parameters: the second phase of the router's distributed RANK.
    /// Every `f64` travels as `f64::to_bits` hex, so sharded scores equal
    /// an unsharded engine's to the last ulp.
    WeightedRank {
        /// Result budget.
        k: usize,
        /// `f64::to_bits` of the BM25 `k1` parameter.
        k1_bits: u64,
        /// `f64::to_bits` of the BM25 `b` parameter.
        b_bits: u64,
        /// `f64::to_bits` of the corpus-global average document length.
        avgdl_bits: u64,
        /// `(term, idf-bits)` in canonical sorted order.
        terms: Vec<(String, u64)>,
    },
    /// `DOC <id>` — fetch a stored document.
    Doc(u32),
    /// `STATS` — serving counters and epoch.
    Stats,
    /// `PING` — liveness check, never queued.
    Ping,
}

impl Request {
    /// Parse one request line. Unknown verbs and malformed operands are
    /// [`ServeError::BadRequest`].
    pub fn parse(line: &str) -> Result<Self, ServeError> {
        let bad = |m: String| ServeError::BadRequest(m);
        let line = line.trim();
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        match verb.to_ascii_uppercase().as_str() {
            "QUERY" if !rest.is_empty() => Ok(Self::Boolean(rest.to_string())),
            "PHRASE" if !rest.is_empty() => Ok(Self::Phrase(rest.to_string())),
            "NEAR" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                let [w1, w2, win] = parts.as_slice() else {
                    return Err(bad(format!("NEAR wants `w1 w2 window`, got {rest:?}")));
                };
                let window = win.parse().map_err(|e| bad(format!("NEAR window: {e}")))?;
                Ok(Self::Near(w1.to_string(), w2.to_string(), window))
            }
            "LIKE" => {
                let (k, text) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| bad(format!("LIKE wants `k text`, got {rest:?}")))?;
                let k = k.parse().map_err(|e| bad(format!("LIKE k: {e}")))?;
                Ok(Self::Like(k, text.trim().to_string()))
            }
            "RANK" => {
                let (k, text) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| bad(format!("RANK wants `k text`, got {rest:?}")))?;
                let k = k.parse().map_err(|e| bad(format!("RANK k: {e}")))?;
                Ok(Self::Rank(k, text.trim().to_string()))
            }
            "DF" => {
                if rest.is_empty() {
                    return Err(bad("DF wants at least one term".into()));
                }
                Ok(Self::Df(rest.split_whitespace().map(str::to_string).collect()))
            }
            "WLIKE" => {
                let mut it = rest.split_whitespace();
                let k: usize = it
                    .next()
                    .ok_or_else(|| bad("WLIKE missing k".into()))?
                    .parse()
                    .map_err(|e| bad(format!("WLIKE k: {e}")))?;
                let n: usize = it
                    .next()
                    .ok_or_else(|| bad("WLIKE missing term count".into()))?
                    .parse()
                    .map_err(|e| bad(format!("WLIKE count: {e}")))?;
                let terms: Vec<(String, u64)> = it
                    .map(|t| {
                        let (term, bits) = t
                            .rsplit_once(':')
                            .ok_or_else(|| bad(format!("WLIKE term {t:?} missing ':'")))?;
                        let bits = u64::from_str_radix(bits, 16)
                            .map_err(|e| bad(format!("WLIKE weight bits: {e}")))?;
                        Ok((term.to_string(), bits))
                    })
                    .collect::<Result<_, ServeError>>()?;
                if terms.len() != n {
                    return Err(bad(format!("WLIKE count {n} != {} terms", terms.len())));
                }
                Ok(Self::WeightedLike(k, terms))
            }
            "WRANK" => {
                let mut it = rest.split_whitespace();
                let k: usize = it
                    .next()
                    .ok_or_else(|| bad("WRANK missing k".into()))?
                    .parse()
                    .map_err(|e| bad(format!("WRANK k: {e}")))?;
                let k1_bits = wrank_bits(it.next(), "k1 bits")?;
                let b_bits = wrank_bits(it.next(), "b bits")?;
                let avgdl_bits = wrank_bits(it.next(), "avgdl bits")?;
                let n: usize = it
                    .next()
                    .ok_or_else(|| bad("WRANK missing term count".into()))?
                    .parse()
                    .map_err(|e| bad(format!("WRANK count: {e}")))?;
                let terms: Vec<(String, u64)> = it
                    .map(|t| {
                        let (term, bits) = t
                            .rsplit_once(':')
                            .ok_or_else(|| bad(format!("WRANK term {t:?} missing ':'")))?;
                        let bits = u64::from_str_radix(bits, 16)
                            .map_err(|e| bad(format!("WRANK weight bits: {e}")))?;
                        Ok((term.to_string(), bits))
                    })
                    .collect::<Result<_, ServeError>>()?;
                if terms.len() != n {
                    return Err(bad(format!("WRANK count {n} != {} terms", terms.len())));
                }
                Ok(Self::WeightedRank { k, k1_bits, b_bits, avgdl_bits, terms })
            }
            "DOC" => {
                let id = rest.parse().map_err(|e| bad(format!("DOC id: {e}")))?;
                Ok(Self::Doc(id))
            }
            "STATS" if rest.is_empty() => Ok(Self::Stats),
            "PING" if rest.is_empty() => Ok(Self::Ping),
            "" => Err(bad("empty request".into())),
            other => Err(bad(format!("unknown verb {other:?}"))),
        }
    }

    /// The normalized cache key, or `None` for uncacheable requests
    /// (`DOC` is cheap and identity-keyed; `STATS`/`PING` are not queries).
    ///
    /// Normalization makes textually different spellings of the same query
    /// share one cache entry: case-folded, parentheses spaced out, all
    /// whitespace runs collapsed — `" Cat AND( dog )"` and `"cat and (dog)"`
    /// both key as `b:cat and ( dog )`.
    pub fn cache_key(&self) -> Option<String> {
        match self {
            Self::Boolean(q) => Some(format!("b:{}", normalize_query(q))),
            Self::Phrase(p) => Some(format!("p:{}", normalize_query(p))),
            Self::Near(w1, w2, win) => Some(format!(
                "n:{}:{}:{win}",
                w1.to_ascii_lowercase(),
                w2.to_ascii_lowercase()
            )),
            Self::Like(k, text) => Some(format!("l:{k}:{}", normalize_query(text))),
            Self::Rank(k, text) => Some(format!("r:{k}:{}", normalize_query(text))),
            // DF/WLIKE/WRANK are the router's internal fan-out verbs: the
            // router caches at its own layer (keyed by the client request),
            // so caching the halves again would only double the memory.
            Self::Df(_) | Self::WeightedLike(_, _) | Self::WeightedRank { .. } => None,
            Self::Doc(_) | Self::Stats | Self::Ping => None,
        }
    }

    /// Render as a request line (inverse of [`Request::parse`]).
    pub fn to_wire(&self) -> String {
        match self {
            Self::Boolean(q) => format!("QUERY {q}"),
            Self::Phrase(p) => format!("PHRASE {p}"),
            Self::Near(w1, w2, win) => format!("NEAR {w1} {w2} {win}"),
            Self::Like(k, text) => format!("LIKE {k} {text}"),
            Self::Rank(k, text) => format!("RANK {k} {text}"),
            Self::Df(terms) => format!("DF {}", terms.join(" ")),
            Self::WeightedLike(k, terms) => {
                let mut s = format!("WLIKE {k} {}", terms.len());
                for (term, bits) in terms {
                    s.push_str(&format!(" {term}:{bits:x}"));
                }
                s
            }
            Self::WeightedRank { k, k1_bits, b_bits, avgdl_bits, terms } => {
                let mut s =
                    format!("WRANK {k} {k1_bits:x} {b_bits:x} {avgdl_bits:x} {}", terms.len());
                for (term, bits) in terms {
                    s.push_str(&format!(" {term}:{bits:x}"));
                }
                s
            }
            Self::Doc(id) => format!("DOC {id}"),
            Self::Stats => "STATS".to_string(),
            Self::Ping => "PING".to_string(),
        }
    }
}

/// One hex-encoded `f64::to_bits` operand of a `WRANK` line.
fn wrank_bits(token: Option<&str>, what: &str) -> Result<u64, ServeError> {
    let token =
        token.ok_or_else(|| ServeError::BadRequest(format!("WRANK missing {what}")))?;
    u64::from_str_radix(token, 16)
        .map_err(|e| ServeError::BadRequest(format!("WRANK {what}: {e}")))
}

/// Lowercase-hex encode arbitrary bytes for line-framed transport (the
/// WALTAIL reply body ships WAL record payloads this way — hex keeps the
/// one-line-per-record framing byte-safe).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Invert [`to_hex`].
pub fn from_hex(text: &str) -> Result<Vec<u8>, ServeError> {
    let bad = |m: String| ServeError::BadRequest(m);
    let text = text.trim();
    if !text.is_ascii() {
        return Err(bad("hex line has non-ASCII bytes".into()));
    }
    if !text.len().is_multiple_of(2) {
        return Err(bad(format!("hex line has odd length {}", text.len())));
    }
    (0..text.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&text[i..i + 2], 16).map_err(|e| bad(format!("hex byte: {e}")))
        })
        .collect()
}

/// Case-fold, space out parentheses, collapse whitespace.
pub fn normalize_query(text: &str) -> String {
    text.to_ascii_lowercase()
        .replace('(', " ( ")
        .replace(')', " ) ")
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

/// Serving counters reported by `STATS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Documents in the index.
    pub docs: u64,
    /// Queries executed (cache hits included).
    pub queries: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Capacity evictions.
    pub cache_evictions: u64,
    /// Stale-epoch lazy drops.
    pub cache_stale_drops: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests expired in the queue.
    pub timeouts: u64,
    /// Batches ingested by the writer.
    pub batches: u64,
    /// Engine block-cache hits (long-list/bucket reads answered from
    /// resident blocks; 0 when the engine runs without a block cache).
    pub block_cache_hits: u64,
    /// Engine block-cache misses (reads that went to the device).
    pub block_cache_misses: u64,
    /// Engine block-cache frame evictions under budget pressure.
    pub block_cache_evictions: u64,
}

/// What a successfully executed request returns.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Matching document ids, ascending (boolean/phrase/proximity).
    Docs(Vec<u32>),
    /// Ranked `(doc, score)` hits, best first (vector model).
    Hits(Vec<(u32, f64)>),
    /// `DF` answer: the engine's corpus counters plus one document
    /// frequency per requested term (0 for unknown words), in request
    /// order. The token count rides along so the router can compute the
    /// corpus-global average document length for distributed BM25.
    Df {
        /// Documents in the engine.
        docs: u64,
        /// Total lexer tokens across those documents.
        tokens: u64,
        /// Per-term document frequencies, in request order.
        dfs: Vec<u64>,
    },
    /// A stored document, if present.
    Text(Option<String>),
    /// Serving counters.
    Stats(ServeStats),
    /// `PING` answer.
    Pong,
}

/// A successful answer: the payload plus the epoch it was computed at.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Batch epoch of the snapshot the result reflects.
    pub epoch: u64,
    /// The result itself.
    pub payload: Payload,
}

impl Response {
    /// Render as a response line: `OK <epoch> <payload>`.
    pub fn to_wire(&self) -> String {
        let body = match &self.payload {
            Payload::Docs(ids) => {
                let mut s = format!("DOCS {}", ids.len());
                for id in ids {
                    s.push(' ');
                    s.push_str(&id.to_string());
                }
                s
            }
            Payload::Hits(hits) => {
                // `{score}` is Rust's shortest-round-trip f64 rendering:
                // parsing it back yields the identical bits, so scores can
                // be oracle-checked for exact equality across the wire.
                let mut s = format!("HITS {}", hits.len());
                for (id, score) in hits {
                    s.push_str(&format!(" {id}:{score}"));
                }
                s
            }
            Payload::Df { docs, tokens, dfs } => {
                let mut s = format!("DF {docs} {tokens} {}", dfs.len());
                for df in dfs {
                    s.push(' ');
                    s.push_str(&df.to_string());
                }
                s
            }
            Payload::Text(Some(text)) => format!("TEXT {}", text.escape_default()),
            Payload::Text(None) => "NONE".to_string(),
            Payload::Stats(s) => format!(
                "STATS docs={} queries={} cache_hits={} cache_misses={} \
                 cache_evictions={} cache_stale_drops={} shed={} timeouts={} batches={} \
                 block_cache_hits={} block_cache_misses={} block_cache_evictions={}",
                s.docs,
                s.queries,
                s.cache_hits,
                s.cache_misses,
                s.cache_evictions,
                s.cache_stale_drops,
                s.shed,
                s.timeouts,
                s.batches,
                s.block_cache_hits,
                s.block_cache_misses,
                s.block_cache_evictions
            ),
            Payload::Pong => "PONG".to_string(),
        };
        format!("OK {} {body}", self.epoch)
    }
}

/// Render an error as a response line: `ERR <code> <message>`.
pub fn error_to_wire(err: &ServeError) -> String {
    format!("ERR {} {err}", err.code())
}

/// Parse a response line back into `Ok(Response)` / `Err(ServeError)` —
/// the client half of the protocol, used by the load generator and tests.
/// Error lines keep only their code; the free-text message is not
/// reconstructed field-by-field.
pub fn parse_response(line: &str) -> Result<Result<Response, ServeError>, ServeError> {
    let bad = |m: String| ServeError::BadRequest(m);
    let line = line.trim_end();
    if let Some(rest) = line.strip_prefix("ERR ") {
        let (code, msg) = rest.split_once(' ').unwrap_or((rest, ""));
        let err = match code {
            "overloaded" => ServeError::Overloaded { depth: 0, high_water: 0 },
            "timeout" => ServeError::Timeout {
                waited: std::time::Duration::ZERO,
                deadline: std::time::Duration::ZERO,
            },
            "badrequest" => ServeError::BadRequest(msg.to_string()),
            "engine" => ServeError::Engine(msg.to_string()),
            "shutdown" => ServeError::Shutdown,
            other => return Err(bad(format!("unknown error code {other:?}"))),
        };
        return Ok(Err(err));
    }
    let rest = line
        .strip_prefix("OK ")
        .ok_or_else(|| bad(format!("response line {line:?} is neither OK nor ERR")))?;
    let (epoch, body) = rest
        .split_once(' ')
        .ok_or_else(|| bad("OK line missing payload".into()))?;
    let epoch: u64 = epoch.parse().map_err(|e| bad(format!("epoch: {e}")))?;
    let (kind, args) = body.split_once(' ').unwrap_or((body, ""));
    let payload = match kind {
        "DOCS" => {
            let mut it = args.split_whitespace();
            let n: usize = it
                .next()
                .ok_or_else(|| bad("DOCS missing count".into()))?
                .parse()
                .map_err(|e| bad(format!("DOCS count: {e}")))?;
            let ids: Vec<u32> = it
                .map(|t| t.parse().map_err(|e| bad(format!("doc id: {e}"))))
                .collect::<Result<_, _>>()?;
            if ids.len() != n {
                return Err(bad(format!("DOCS count {n} != {} ids", ids.len())));
            }
            Payload::Docs(ids)
        }
        "HITS" => {
            let mut it = args.split_whitespace();
            let n: usize = it
                .next()
                .ok_or_else(|| bad("HITS missing count".into()))?
                .parse()
                .map_err(|e| bad(format!("HITS count: {e}")))?;
            let hits: Vec<(u32, f64)> = it
                .map(|t| {
                    let (id, score) = t
                        .split_once(':')
                        .ok_or_else(|| bad(format!("hit {t:?} missing ':'")))?;
                    Ok((
                        id.parse().map_err(|e| bad(format!("hit id: {e}")))?,
                        score.parse().map_err(|e| bad(format!("hit score: {e}")))?,
                    ))
                })
                .collect::<Result<_, ServeError>>()?;
            if hits.len() != n {
                return Err(bad(format!("HITS count {n} != {} hits", hits.len())));
            }
            Payload::Hits(hits)
        }
        "DF" => {
            let mut it = args.split_whitespace();
            let docs: u64 = it
                .next()
                .ok_or_else(|| bad("DF missing docs".into()))?
                .parse()
                .map_err(|e| bad(format!("DF docs: {e}")))?;
            let tokens: u64 = it
                .next()
                .ok_or_else(|| bad("DF missing tokens".into()))?
                .parse()
                .map_err(|e| bad(format!("DF tokens: {e}")))?;
            let n: usize = it
                .next()
                .ok_or_else(|| bad("DF missing count".into()))?
                .parse()
                .map_err(|e| bad(format!("DF count: {e}")))?;
            let dfs: Vec<u64> = it
                .map(|t| t.parse().map_err(|e| bad(format!("df value: {e}"))))
                .collect::<Result<_, _>>()?;
            if dfs.len() != n {
                return Err(bad(format!("DF count {n} != {} values", dfs.len())));
            }
            Payload::Df { docs, tokens, dfs }
        }
        "TEXT" => Payload::Text(Some(unescape(args)?)),
        "NONE" => Payload::Text(None),
        "STATS" => {
            let mut stats = ServeStats::default();
            for kv in args.split_whitespace() {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| bad(format!("stats field {kv:?}")))?;
                let v: u64 = v.parse().map_err(|e| bad(format!("stats {k}: {e}")))?;
                match k {
                    "docs" => stats.docs = v,
                    "queries" => stats.queries = v,
                    "cache_hits" => stats.cache_hits = v,
                    "cache_misses" => stats.cache_misses = v,
                    "cache_evictions" => stats.cache_evictions = v,
                    "cache_stale_drops" => stats.cache_stale_drops = v,
                    "shed" => stats.shed = v,
                    "timeouts" => stats.timeouts = v,
                    "batches" => stats.batches = v,
                    "block_cache_hits" => stats.block_cache_hits = v,
                    "block_cache_misses" => stats.block_cache_misses = v,
                    "block_cache_evictions" => stats.block_cache_evictions = v,
                    other => return Err(bad(format!("unknown stats field {other:?}"))),
                }
            }
            Payload::Stats(stats)
        }
        "PONG" => Payload::Pong,
        other => return Err(bad(format!("unknown payload kind {other:?}"))),
    };
    Ok(Ok(Response { epoch, payload }))
}

/// Invert [`str::escape_default`] for the subset it emits.
fn unescape(text: &str) -> Result<String, ServeError> {
    let bad = |m: &str| ServeError::BadRequest(format!("TEXT unescape: {m}"));
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('\\') => out.push('\\'),
            Some('\'') => out.push('\''),
            Some('"') => out.push('"'),
            Some('0') => out.push('\0'),
            Some('u') => {
                let rest: String = chars.clone().collect();
                let inner = rest
                    .strip_prefix('{')
                    .and_then(|r| r.split_once('}'))
                    .ok_or_else(|| bad("malformed \\u{...}"))?;
                let code =
                    u32::from_str_radix(inner.0, 16).map_err(|_| bad("bad hex in \\u{...}"))?;
                out.push(char::from_u32(code).ok_or_else(|| bad("invalid scalar"))?);
                for _ in 0..inner.0.len() + 2 {
                    chars.next();
                }
            }
            _ => return Err(bad("dangling backslash")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_request_lines() {
        assert_eq!(
            Request::parse("QUERY (cat and dog) or mouse").unwrap(),
            Request::Boolean("(cat and dog) or mouse".into())
        );
        assert_eq!(
            Request::parse("  near cat dog 5 ").unwrap(),
            Request::Near("cat".into(), "dog".into(), 5)
        );
        assert_eq!(
            Request::parse("LIKE 3 incremental index updates").unwrap(),
            Request::Like(3, "incremental index updates".into())
        );
        assert_eq!(
            Request::parse("RANK 5 inverted list maintenance").unwrap(),
            Request::Rank(5, "inverted list maintenance".into())
        );
        assert_eq!(Request::parse("DOC 17").unwrap(), Request::Doc(17));
        assert_eq!(Request::parse("STATS").unwrap(), Request::Stats);
        assert_eq!(Request::parse("PING").unwrap(), Request::Ping);
        for bad in [
            "", "QUERY", "NEAR cat dog", "NEAR cat dog x", "LIKE 3", "RANK 3", "RANK x cat",
            "DOC abc", "FROB x",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn request_wire_round_trips() {
        for req in [
            Request::Boolean("(cat and dog) or mouse".into()),
            Request::Phrase("inverted lists".into()),
            Request::Near("cat".into(), "dog".into(), 5),
            Request::Like(7, "some text".into()),
            Request::Rank(4, "some other text".into()),
            Request::Df(vec!["cat".into(), "dog".into()]),
            Request::WeightedLike(
                2,
                vec![("cat".into(), 1.5f64.to_bits()), ("dog".into(), 0.1f64.to_bits())],
            ),
            Request::WeightedRank {
                k: 3,
                k1_bits: 1.2f64.to_bits(),
                b_bits: 0.75f64.to_bits(),
                avgdl_bits: (10.0f64 / 3.0).to_bits(),
                terms: vec![("cat".into(), 2.0f64.ln().to_bits()), ("dog".into(), 0.1f64.to_bits())],
            },
            Request::Doc(3),
            Request::Stats,
            Request::Ping,
        ] {
            assert_eq!(Request::parse(&req.to_wire()).unwrap(), req);
        }
    }

    #[test]
    fn wlike_weight_bits_survive_the_wire_exactly() {
        // 0.1 has no finite binary expansion — if the wire rendered the
        // weight as decimal text, the bits would drift.
        let w = 0.1f64 + 0.2f64;
        let req = Request::WeightedLike(5, vec![("x".into(), w.to_bits())]);
        let Request::WeightedLike(_, terms) = Request::parse(&req.to_wire()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(f64::from_bits(terms[0].1).to_bits(), w.to_bits());
        for bad in ["WLIKE", "WLIKE 3", "WLIKE 3 1", "WLIKE 3 1 nocolon", "WLIKE 3 2 a:1"] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should not parse");
        }
        assert!(Request::parse("DF").is_err());
    }

    #[test]
    fn wrank_operands_survive_the_wire_exactly() {
        let req = Request::WeightedRank {
            k: 9,
            k1_bits: 1.2f64.to_bits(),
            b_bits: 0.75f64.to_bits(),
            avgdl_bits: (7.0f64 / 3.0).to_bits(),
            terms: vec![("alpha".into(), (0.1f64 + 0.2).to_bits())],
        };
        assert_eq!(Request::parse(&req.to_wire()).unwrap(), req);
        for bad in [
            "WRANK",
            "WRANK 3",
            "WRANK 3 ff",
            "WRANK 3 ff ff",
            "WRANK 3 ff ff ff",
            "WRANK 3 ff ff ff 1",
            "WRANK 3 ff ff ff 1 nocolon",
            "WRANK 3 xx ff ff 0",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn normalization_folds_spelling_variants() {
        assert_eq!(
            Request::Boolean(" Cat AND( dog )".into()).cache_key(),
            Request::Boolean("cat and (dog)".into()).cache_key()
        );
        assert_ne!(
            Request::Boolean("cat".into()).cache_key(),
            Request::Phrase("cat".into()).cache_key()
        );
        assert_ne!(
            Request::Like(3, "cat".into()).cache_key(),
            Request::Like(4, "cat".into()).cache_key()
        );
        assert_ne!(
            Request::Like(3, "cat".into()).cache_key(),
            Request::Rank(3, "cat".into()).cache_key()
        );
        assert_eq!(
            Request::Rank(3, " Cat  dog".into()).cache_key(),
            Request::Rank(3, "cat dog".into()).cache_key()
        );
        assert_eq!(Request::Doc(1).cache_key(), None);
        assert_eq!(Request::Stats.cache_key(), None);
    }

    #[test]
    fn response_wire_round_trips() {
        let cases = vec![
            Response { epoch: 3, payload: Payload::Docs(vec![1, 5, 9]) },
            Response { epoch: 0, payload: Payload::Docs(vec![]) },
            Response { epoch: 8, payload: Payload::Hits(vec![(4, 1.5), (2, 0.25)]) },
            // Non-dyadic scores must round-trip bit-exactly for the
            // router's oracle checks to use ==.
            Response {
                epoch: 8,
                payload: Payload::Hits(vec![(1, 0.1f64 + 0.2f64), (9, 2.0f64.ln())]),
            },
            Response { epoch: 5, payload: Payload::Df { docs: 42, tokens: 314, dfs: vec![7, 0, 3] } },
            Response { epoch: 0, payload: Payload::Df { docs: 0, tokens: 0, dfs: vec![] } },
            Response {
                epoch: 2,
                payload: Payload::Text(Some("line one\nline \"two\"\ttab".into())),
            },
            Response { epoch: 2, payload: Payload::Text(Some("caf\u{e9} \u{1F600}".into())) },
            Response { epoch: 1, payload: Payload::Text(None) },
            Response {
                epoch: 9,
                payload: Payload::Stats(ServeStats {
                    docs: 10,
                    queries: 7,
                    cache_hits: 3,
                    cache_misses: 4,
                    cache_evictions: 1,
                    cache_stale_drops: 2,
                    shed: 5,
                    timeouts: 6,
                    batches: 8,
                    block_cache_hits: 11,
                    block_cache_misses: 12,
                    block_cache_evictions: 13,
                }),
            },
            Response { epoch: 4, payload: Payload::Pong },
        ];
        for resp in cases {
            let line = resp.to_wire();
            assert!(!line.contains('\n'), "payload leaked a newline: {line:?}");
            assert_eq!(parse_response(&line).unwrap().unwrap(), resp);
        }
    }

    #[test]
    fn error_wire_round_trips_codes() {
        for err in [
            ServeError::Overloaded { depth: 9, high_water: 8 },
            ServeError::Timeout {
                waited: std::time::Duration::from_millis(5),
                deadline: std::time::Duration::from_millis(2),
            },
            ServeError::BadRequest("nope".into()),
            ServeError::Shutdown,
        ] {
            let parsed = parse_response(&error_to_wire(&err)).unwrap().unwrap_err();
            assert_eq!(parsed.code(), err.code());
        }
        assert!(parse_response("GARBAGE").is_err());
        assert!(parse_response("OK x DOCS 0").is_err());
        assert!(parse_response("OK 1 DOCS 2 5").is_err());
    }
}
