//! Bounded LRU result cache with epoch invalidation.
//!
//! Entries are keyed on **normalized query text** and stamped with the
//! batch **epoch** the result was computed at. The invalidation rule is a
//! single comparison: an entry is valid iff its epoch equals the current
//! one. A flush bumps the epoch, which implicitly invalidates the whole
//! cache without touching it — stale entries are discarded lazily, when a
//! lookup trips over them (counted as `stale_drops`) or when capacity
//! eviction reaps them like any other entry.
//!
//! The structure is a classic O(1) LRU: a hash map from key to slot, slots
//! forming an intrusive doubly-linked recency list inside one `Vec` (no
//! per-entry allocation, no unsafe).

use crate::request::Payload;
use std::collections::HashMap;

/// Slot-index sentinel for "no neighbour".
const NIL: usize = usize::MAX;

struct Node {
    key: String,
    epoch: u64,
    value: Payload,
    prev: usize,
    next: usize,
}

/// What a lookup did — the service maps these onto counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Valid entry at the current epoch.
    Hit,
    /// No entry under that key.
    Miss,
    /// An entry existed but was recorded at an older epoch; it was dropped.
    Stale,
}

/// A bounded LRU map from normalized query text to `(epoch, result)`.
pub struct ResultCache {
    capacity: usize,
    map: HashMap<String, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    evictions: u64,
    stale_drops: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries. Zero capacity is a
    /// valid always-miss cache (caching disabled).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            evictions: 0,
            stale_drops: 0,
        }
    }

    /// The configured capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently held (stale ones included until they are reaped).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Stale-epoch lazy drops so far.
    pub fn stale_drops(&self) -> u64 {
        self.stale_drops
    }

    /// Look up `key` at the current `epoch`. A current-epoch entry moves to
    /// the recency front and returns a clone; an old-epoch entry is
    /// discarded and reported as [`Lookup::Stale`].
    pub fn get(&mut self, key: &str, epoch: u64) -> (Option<Payload>, Lookup) {
        let Some(&slot) = self.map.get(key) else {
            return (None, Lookup::Miss);
        };
        if self.nodes[slot].epoch != epoch {
            self.remove_slot(slot);
            self.stale_drops += 1;
            return (None, Lookup::Stale);
        }
        self.detach(slot);
        self.push_front(slot);
        (Some(self.nodes[slot].value.clone()), Lookup::Hit)
    }

    /// Insert (or refresh) `key` with a result computed at `epoch`,
    /// evicting the least-recently-used entry if at capacity.
    pub fn insert(&mut self, key: String, epoch: u64, value: Payload) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.nodes[slot].epoch = epoch;
            self.nodes[slot].value = value;
            self.detach(slot);
            self.push_front(slot);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "capacity > 0 and map full implies a tail");
            // Classify the reaped entry by its epoch stamp: an entry a
            // flush already invalidated is a stale drop, not a capacity
            // eviction — otherwise post-flush hit-rate accounting blames
            // capacity pressure for losses the epoch bump caused.
            if self.nodes[lru].epoch == epoch {
                self.evictions += 1;
            } else {
                self.stale_drops += 1;
            }
            self.remove_slot(lru);
        }
        let node = Node { key: key.clone(), epoch, value, prev: NIL, next: NIL };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    /// Drop every entry (counters survive).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keys from most- to least-recently used (tests, introspection).
    pub fn keys_by_recency(&self) -> Vec<&str> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut slot = self.head;
        while slot != NIL {
            out.push(self.nodes[slot].key.as_str());
            slot = self.nodes[slot].next;
        }
        out
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn remove_slot(&mut self, slot: usize) {
        self.detach(slot);
        let key = std::mem::take(&mut self.nodes[slot].key);
        self.map.remove(&key);
        self.nodes[slot].value = Payload::Pong; // drop the payload now
        self.free.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(ids: &[u32]) -> Payload {
        Payload::Docs(ids.to_vec())
    }

    #[test]
    fn hit_miss_and_recency() {
        let mut c = ResultCache::new(2);
        assert_eq!(c.get("a", 0), (None, Lookup::Miss));
        c.insert("a".into(), 0, docs(&[1]));
        c.insert("b".into(), 0, docs(&[2]));
        assert_eq!(c.get("a", 0), (Some(docs(&[1])), Lookup::Hit));
        assert_eq!(c.keys_by_recency(), vec!["a", "b"]);
        // "b" is now LRU; inserting "c" evicts it.
        c.insert("c".into(), 0, docs(&[3]));
        assert_eq!(c.get("b", 0), (None, Lookup::Miss));
        assert_eq!(c.get("a", 0).1, Lookup::Hit);
        assert_eq!(c.get("c", 0).1, Lookup::Hit);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn epoch_bump_invalidates_lazily() {
        let mut c = ResultCache::new(4);
        c.insert("q".into(), 1, docs(&[1, 2]));
        assert_eq!(c.get("q", 1).1, Lookup::Hit);
        // Epoch advanced: entry is stale, dropped on first touch.
        assert_eq!(c.get("q", 2), (None, Lookup::Stale));
        assert_eq!(c.stale_drops(), 1);
        assert_eq!(c.len(), 0);
        // Re-inserted at the new epoch it serves again.
        c.insert("q".into(), 2, docs(&[1, 2, 3]));
        assert_eq!(c.get("q", 2), (Some(docs(&[1, 2, 3])), Lookup::Hit));
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let mut c = ResultCache::new(2);
        c.insert("a".into(), 0, docs(&[1]));
        c.insert("b".into(), 0, docs(&[2]));
        c.insert("a".into(), 1, docs(&[9]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a", 1), (Some(docs(&[9])), Lookup::Hit));
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn capacity_reap_classifies_by_epoch_stamp() {
        let mut c = ResultCache::new(2);
        // Two entries recorded at epoch 0; a flush moves the world to
        // epoch 1 without touching them.
        c.insert("old1".into(), 0, docs(&[1]));
        c.insert("old2".into(), 0, docs(&[2]));
        // Capacity reap of an already-stale entry counts as a stale
        // drop, not an eviction.
        c.insert("new1".into(), 1, docs(&[3]));
        assert_eq!((c.evictions(), c.stale_drops()), (0, 1));
        // "old2" is still the LRU: reaping it is another stale drop.
        c.insert("new2".into(), 1, docs(&[4]));
        assert_eq!((c.evictions(), c.stale_drops()), (0, 2));
        // Now the LRU ("new1") is current-epoch: a genuine eviction.
        c.insert("new3".into(), 1, docs(&[5]));
        assert_eq!((c.evictions(), c.stale_drops()), (1, 2));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert("a".into(), 0, docs(&[1]));
        assert_eq!(c.get("a", 0), (None, Lookup::Miss));
        assert!(c.is_empty());
    }

    #[test]
    fn slots_are_reused_after_eviction() {
        let mut c = ResultCache::new(3);
        for round in 0u32..50 {
            c.insert(format!("k{}", round % 7), 0, docs(&[round]));
            assert!(c.len() <= 3);
        }
        // The backing vec never outgrows capacity + 1 churn slack.
        assert!(c.nodes.len() <= 4, "nodes grew to {}", c.nodes.len());
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let mut c = ResultCache::new(1);
        c.insert("a".into(), 0, docs(&[1]));
        c.insert("b".into(), 0, docs(&[2]));
        assert_eq!(c.evictions(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.evictions(), 1);
        c.insert("c".into(), 0, docs(&[3]));
        assert_eq!(c.get("c", 0).1, Lookup::Hit);
    }
}
