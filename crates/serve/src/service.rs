//! [`QueryService`]: the lock-free read path over published snapshots.
//!
//! Readers never take a lock on the engine. Each request atomically loads
//! the current [`ServeSnapshot`] — an `Arc` carrying `(epoch, materialized
//! engine view, block-cache counters)` published as one unit — so the
//! epoch always names exactly the state the result was computed from,
//! which is what the result cache keys its invalidation on and what the
//! oracle tests replay against. The writer serializes through one mutex,
//! builds the next snapshot off to the side (incrementally: only posting
//! lists the batch dirtied are re-read), and publishes it at the commit
//! point, after the flush succeeds and before the epoch becomes visible.
//!
//! Writer operations are batch-atomic: [`QueryService::ingest_batch`] adds
//! the documents, flushes, and publishes one snapshot, so queries either
//! see none of the batch (the old snapshot) or all of it (the new one) —
//! visible state only changes at publication. Past the flush the commit is
//! durable, so the epoch always advances with the engine's batch count; a
//! materialization failure defers publication (readers keep the previous
//! snapshot, the lag is gauged) rather than desynchronizing the two.
//!
//! The result cache is sharded per core ([`ShardedCache`]): independent
//! LRU shards selected by key hash, per-shard counters summed for STATS.
//! A reader stuck on one shard's mutex delays nothing but itself.

use crate::cache::Lookup;
use crate::engine::ServeEngine;
use crate::error::ServeError;
use crate::request::{Payload, Request, Response, ServeStats};
use crate::snapshot::{Published, ReadGate, ServeSnapshot, ShardedCache};
use invidx_core::concurrent::EpochCounter;
use invidx_core::index::BatchReport;
use invidx_core::types::DocId;
use invidx_ir::{EngineQuery, QueryOutput};
use invidx_obs::names;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One configuration for the whole serving stack — the result cache
/// ([`QueryService`]) and admission control ([`crate::Frontend`]) read
/// from the same struct, so a deployment is described in one place.
///
/// Construct through [`ServeConfig::builder`], which validates the shape
/// at `build()` (readers and high-water must be positive, the deadline
/// non-zero) instead of panicking at first use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Result-cache capacity in entries; 0 disables result caching.
    pub result_cache_capacity: usize,
    /// Largest `k` a `RANK` request may ask for; larger requests are
    /// rejected as bad requests instead of burning a reader thread on an
    /// unbounded heap.
    pub rank_k: usize,
    /// BM25 `k1` (term-frequency saturation) used by `RANK`.
    pub bm25_k1: f64,
    /// BM25 `b` (length normalization) used by `RANK`.
    pub bm25_b: f64,
    /// Reader threads draining the admission queue.
    pub readers: usize,
    /// Queue depth at which new requests are shed.
    pub high_water: usize,
    /// Default per-request deadline, measured from admission.
    pub deadline: std::time::Duration,
    /// Trace one in this many requests (0 = tracing off, 1 = every
    /// request). Sampled requests emit a span tree on the event stream.
    pub trace_sample: u32,
    /// Slow-query threshold in milliseconds; served requests at or above
    /// it are logged as `slow_query` events (0 disables the threshold;
    /// shed and timed-out requests are always logged).
    pub slow_query_ms: u64,
    /// SLO latency target in milliseconds.
    pub slo_target_ms: u64,
    /// SLO availability objective in ppm of requests meeting the target
    /// (e.g. 999_000 = 99.9%).
    pub slo_objective_ppm: u32,
    /// Simulated per-read device floor applied to uncached query requests
    /// (zero = off). A load-experiment hook: the snapshot read path never
    /// touches the device, so saturation benches that model a seek-bound
    /// store inject the bounded per-lane service rate here.
    pub read_floor: std::time::Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let bm25 = invidx_ir::Bm25Params::default();
        Self {
            result_cache_capacity: 1024,
            rank_k: 1000,
            bm25_k1: bm25.k1,
            bm25_b: bm25.b,
            readers: 4,
            high_water: 128,
            deadline: std::time::Duration::from_millis(500),
            trace_sample: 0,
            slow_query_ms: 250,
            slo_target_ms: 50,
            slo_objective_ppm: 999_000,
            read_floor: std::time::Duration::ZERO,
        }
    }
}

impl ServeConfig {
    /// Start from the defaults and override what you need.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder { config: Self::default() }
    }
}

/// Builder for [`ServeConfig`]; obtained from [`ServeConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Result-cache capacity in entries; 0 disables result caching.
    pub fn result_cache_capacity(mut self, entries: usize) -> Self {
        self.config.result_cache_capacity = entries;
        self
    }

    /// Largest `k` a `RANK` request may ask for.
    pub fn rank_k(mut self, k: usize) -> Self {
        self.config.rank_k = k;
        self
    }

    /// BM25 `k1` (term-frequency saturation) used by `RANK`.
    pub fn bm25_k1(mut self, k1: f64) -> Self {
        self.config.bm25_k1 = k1;
        self
    }

    /// BM25 `b` (length normalization) used by `RANK`.
    pub fn bm25_b(mut self, b: f64) -> Self {
        self.config.bm25_b = b;
        self
    }

    /// Reader threads draining the admission queue.
    pub fn readers(mut self, readers: usize) -> Self {
        self.config.readers = readers;
        self
    }

    /// Queue depth at which new requests are shed.
    pub fn high_water(mut self, depth: usize) -> Self {
        self.config.high_water = depth;
        self
    }

    /// Default per-request deadline, measured from admission.
    pub fn deadline(mut self, deadline: std::time::Duration) -> Self {
        self.config.deadline = deadline;
        self
    }

    /// Trace one in `every` requests (0 = off, 1 = all).
    pub fn trace_sample(mut self, every: u32) -> Self {
        self.config.trace_sample = every;
        self
    }

    /// Slow-query threshold in milliseconds (0 disables the threshold).
    pub fn slow_query_ms(mut self, ms: u64) -> Self {
        self.config.slow_query_ms = ms;
        self
    }

    /// SLO latency target in milliseconds.
    pub fn slo_target_ms(mut self, ms: u64) -> Self {
        self.config.slo_target_ms = ms;
        self
    }

    /// SLO availability objective in ppm (e.g. 999_000 = 99.9%).
    pub fn slo_objective_ppm(mut self, ppm: u32) -> Self {
        self.config.slo_objective_ppm = ppm;
        self
    }

    /// Simulated per-read device floor for uncached queries (zero = off).
    pub fn read_floor(mut self, floor: std::time::Duration) -> Self {
        self.config.read_floor = floor;
        self
    }

    /// Validate and produce the config. All shape invariants are checked
    /// here, so a `ServeConfig` in hand is always safe to start a
    /// [`crate::Frontend`] with.
    pub fn build(self) -> Result<ServeConfig, ServeError> {
        let c = &self.config;
        if c.readers == 0 {
            return Err(ServeError::Config("readers must be >= 1".into()));
        }
        if c.high_water == 0 {
            return Err(ServeError::Config("high-water mark must be >= 1".into()));
        }
        if c.deadline.is_zero() {
            return Err(ServeError::Config("deadline must be non-zero".into()));
        }
        if c.slo_target_ms == 0 {
            return Err(ServeError::Config("SLO target must be non-zero".into()));
        }
        if !(1..=999_999).contains(&c.slo_objective_ppm) {
            return Err(ServeError::Config(
                "SLO objective must be in [1, 999999] ppm".into(),
            ));
        }
        if c.rank_k == 0 {
            return Err(ServeError::Config("RANK k ceiling must be >= 1".into()));
        }
        if !c.bm25_k1.is_finite() || c.bm25_k1 < 0.0 {
            return Err(ServeError::Config(format!(
                "BM25 k1 must be finite and non-negative, got {}",
                c.bm25_k1
            )));
        }
        if !c.bm25_b.is_finite() || !(0.0..=1.0).contains(&c.bm25_b) {
            return Err(ServeError::Config(format!(
                "BM25 b must be in [0, 1], got {}",
                c.bm25_b
            )));
        }
        Ok(self.config)
    }
}

/// Per-service counters, mirrored into the global `invidx-obs` registry so
/// dashboards see them, but readable per instance so tests don't race each
/// other through process-global state.
///
/// Each local counter is paired with its resolved global handle at
/// construction. (An earlier version mirrored through the `counter!`
/// macro inside a shared helper — but that macro caches its handle per
/// *call site*, so every name funneled through one helper incremented
/// whichever global counter was resolved first.)
#[derive(Debug)]
pub struct ServeCounters {
    queries: MirroredCounter,
    cache_hits: MirroredCounter,
    cache_misses: MirroredCounter,
    shed: MirroredCounter,
    timeouts: MirroredCounter,
    batches: MirroredCounter,
}

/// A per-instance counter plus its global-registry mirror.
#[derive(Debug)]
struct MirroredCounter {
    local: AtomicU64,
    global: std::sync::Arc<invidx_obs::Counter>,
}

impl MirroredCounter {
    fn new(name: &str) -> Self {
        Self { local: AtomicU64::new(0), global: invidx_obs::registry().counter(name) }
    }

    fn inc(&self) {
        self.local.fetch_add(1, Ordering::Relaxed);
        self.global.inc();
    }

    fn get(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }
}

impl Default for ServeCounters {
    fn default() -> Self {
        Self {
            queries: MirroredCounter::new(names::SERVE_QUERIES),
            cache_hits: MirroredCounter::new(names::SERVE_CACHE_HITS),
            cache_misses: MirroredCounter::new(names::SERVE_CACHE_MISSES),
            shed: MirroredCounter::new(names::SERVE_SHED),
            timeouts: MirroredCounter::new(names::SERVE_TIMEOUTS),
            batches: MirroredCounter::new(names::SERVE_BATCHES),
        }
    }
}

impl ServeCounters {

    /// Count one shed request (admission rejection).
    pub fn count_shed(&self) {
        self.shed.inc();
    }

    /// Count one queue-deadline expiry.
    pub fn count_timeout(&self) {
        self.timeouts.inc();
    }

    /// Requests shed so far.
    pub fn shed(&self) -> u64 {
        self.shed.get()
    }

    /// Requests expired so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.get()
    }

    /// Cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }
}

/// A serving handle over an engine: lock-free snapshot reads, one
/// serialized writer.
pub struct QueryService<E> {
    /// The live engine — touched only by writer operations (ingest,
    /// replication, checkpoint) and never on the query path.
    writer: Mutex<E>,
    epoch: EpochCounter,
    /// The published `(epoch, view, block stats)` readers load atomically.
    current: Published,
    cache: ShardedCache,
    counters: ServeCounters,
    telemetry: crate::telemetry::Telemetry,
    /// Stalls readers for `with_blocked_writer` (test determinism only).
    gate: ReadGate,
    /// Simulated device floor for uncached reads (see
    /// [`ServeConfig::read_floor`]); zero in production configs.
    read_floor: std::time::Duration,
    /// Largest `k` a `RANK` request may ask for.
    rank_k: usize,
    /// BM25 parameters `RANK` requests are scored with.
    bm25: invidx_ir::Bm25Params,
    /// Last WAL-bytes value successfully read from the engine, re-published
    /// when a scrape can't reach a busy writer. `u64::MAX` = never known
    /// (volatile engine): nothing to re-publish.
    last_wal: AtomicU64,
}

impl<E: ServeEngine> QueryService<E> {
    /// Wrap an engine for serving. Materializes and publishes the initial
    /// snapshot, so an engine opened over existing data serves it at once;
    /// fails if that first materialization does.
    pub fn with_config(engine: E, config: ServeConfig) -> Result<Self, ServeError> {
        Self::with_config_at(engine, config, 0)
    }

    /// Wrap an engine for serving with the epoch anchored at `epoch` —
    /// normally the engine's committed batch count, so that epochs stay
    /// comparable across restarts and across a replication pair (the lag
    /// gauge is *primary epoch − replica epoch*, which only means anything
    /// when both sides count from the same durable state).
    pub fn with_config_at(
        mut engine: E,
        config: ServeConfig,
        epoch: u64,
    ) -> Result<Self, ServeError> {
        let view = engine.snapshot(None).map_err(ServeError::Engine)?;
        let block = engine.block_cache_stats().unwrap_or_default();
        let wal = engine.wal_bytes();
        Ok(Self {
            writer: Mutex::new(engine),
            epoch: EpochCounter::starting_at(epoch),
            current: Published::new(ServeSnapshot { epoch, view: Arc::new(view), block }),
            cache: ShardedCache::new(config.result_cache_capacity),
            counters: ServeCounters::default(),
            telemetry: crate::telemetry::Telemetry::new(&config),
            gate: ReadGate::default(),
            read_floor: config.read_floor,
            rank_k: config.rank_k,
            bm25: invidx_ir::Bm25Params { k1: config.bm25_k1, b: config.bm25_b },
            last_wal: AtomicU64::new(wal.unwrap_or(u64::MAX)),
        })
    }

    /// The current batch epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Unwrap the service and hand the engine back (e.g. to close it
    /// cleanly or reopen a durable store).
    pub fn into_engine(self) -> E {
        self.writer.into_inner()
    }

    /// The per-service counters (shared with the admission layer).
    pub fn counters(&self) -> &ServeCounters {
        &self.counters
    }

    /// The per-service telemetry (trace sampling, live quantiles, SLO).
    pub fn telemetry(&self) -> &crate::telemetry::Telemetry {
        &self.telemetry
    }

    /// Refresh derived gauges (live quantiles, SLO budget, epoch, WAL
    /// lag) in the global registry. Uses `try_lock` on the writer so a
    /// wedged writer cannot stall a metrics scrape; a skipped refresh is
    /// counted (`serve_gauge_scrape_skipped_total`) and the last-known
    /// WAL value is re-published, so dashboards can tell "no WAL growth"
    /// from "scrape skipped under a wedged writer". A scrape that does
    /// get the writer lock also retries any deferred snapshot publication
    /// (commit succeeded, materialization failed), so committed state
    /// becomes visible even on a write-quiet service.
    pub fn publish_gauges(&self) {
        self.telemetry.publish_gauges();
        let epoch = self.epoch.get();
        invidx_obs::gauge!(names::SERVE_EPOCH).set(epoch as i64);
        match self.writer.try_lock() {
            Some(mut engine) => {
                if self.current.load().epoch < epoch {
                    self.publish_committed(&mut engine, epoch);
                }
                if let Some(wal) = engine.wal_bytes() {
                    self.last_wal.store(wal, Ordering::Relaxed);
                    invidx_obs::gauge!(names::INDEX_WAL_BYTES).set(wal as i64);
                }
            }
            None => {
                invidx_obs::counter!(names::SERVE_GAUGE_SCRAPE_SKIPPED).inc();
                let last = self.last_wal.load(Ordering::Relaxed);
                if last != u64::MAX {
                    invidx_obs::gauge!(names::INDEX_WAL_BYTES).set(last as i64);
                }
            }
        }
        invidx_obs::gauge!(names::SERVE_PUBLISH_LAG)
            .set(epoch.saturating_sub(self.current.load().epoch) as i64);
    }

    /// Render the full Prometheus text exposition for this process,
    /// refreshing derived gauges first and flushing any buffered event
    /// sink so scrapes and trace files stay in step. Backs the `METRICS`
    /// protocol verb.
    pub fn render_metrics(&self) -> String {
        self.publish_gauges();
        invidx_obs::flush_events();
        invidx_obs::snapshot().to_prometheus()
    }

    /// Execute one read request against an atomically loaded snapshot,
    /// consulting the result cache for cacheable requests. Takes no
    /// engine lock: the snapshot pins a coherent `(epoch, state)` pair
    /// for the whole request, however long the writer runs concurrently.
    pub fn execute(&self, request: &Request) -> Result<Response, ServeError> {
        self.counters.queries.inc();
        // With the engine stage down to RAM speed, the prelude (gate
        // check, snapshot load, query normalization) is a visible slice
        // of the latency — stage it so traces still decompose.
        let (snap, key) = {
            let _stage = invidx_obs::trace::stage("snapshot");
            self.gate.wait_if_stalled();
            (self.current.load(), request.cache_key())
        };
        let epoch = snap.epoch;
        if let Some(key) = &key {
            let probe = {
                let _stage = invidx_obs::trace::stage("cache");
                invidx_obs::trace::add_items(1);
                self.cache.get(key, epoch)
            };
            let (cached, outcome) = probe;
            self.count_lookup(outcome);
            if let Some(payload) = cached {
                return Ok(Response { epoch, payload });
            }
        }
        let payload = {
            let _stage = invidx_obs::trace::stage("engine");
            self.run(&snap, request)?
        };
        if let Some(key) = key {
            // Stamped with the snapshot's own epoch: even if a newer
            // snapshot published meanwhile, the entry names the state it
            // was computed from and lazily drops as stale.
            let _stage = invidx_obs::trace::stage("cache");
            self.cache.insert(key, epoch, payload.clone());
        }
        Ok(Response { epoch, payload })
    }

    /// Translate the wire request into one typed [`EngineQuery`] and run
    /// it through the snapshot's single `execute` entry point — the wire
    /// verbs and the engine query surface now meet in exactly one place.
    fn run(&self, snap: &ServeSnapshot, request: &Request) -> Result<Payload, ServeError> {
        if !self.read_floor.is_zero() {
            if let Request::Boolean(_)
            | Request::Phrase(_)
            | Request::Near(..)
            | Request::Like(..)
            | Request::Rank(..)
            | Request::Doc(_) = request
            {
                std::thread::sleep(self.read_floor);
            }
        }
        let engine_err = |e: invidx_core::types::IndexError| match e {
            invidx_core::types::IndexError::InvalidConfig(msg) => ServeError::BadRequest(msg),
            other => ServeError::Engine(other.to_string()),
        };
        let decode = |terms: &[(String, u64)]| -> Vec<(String, f64)> {
            terms.iter().map(|(t, bits)| (t.clone(), f64::from_bits(*bits))).collect()
        };
        let query = match request {
            Request::Boolean(q) => EngineQuery::Boolean(q.clone()),
            Request::Phrase(p) => EngineQuery::Phrase(p.clone()),
            Request::Near(w1, w2, win) => {
                EngineQuery::Near { w1: w1.clone(), w2: w2.clone(), window: *win }
            }
            Request::Like(k, text) => EngineQuery::Like { text: text.clone(), k: *k },
            Request::Rank(k, text) => {
                if *k > self.rank_k {
                    return Err(ServeError::BadRequest(format!(
                        "RANK k {k} exceeds the configured ceiling {}",
                        self.rank_k
                    )));
                }
                EngineQuery::Rank { text: text.clone(), k: *k, params: self.bm25 }
            }
            Request::Df(terms) => EngineQuery::Dfs(terms.clone()),
            Request::WeightedLike(k, terms) => {
                EngineQuery::WeightedLike { terms: decode(terms), k: *k }
            }
            Request::WeightedRank { k, k1_bits, b_bits, avgdl_bits, terms } => {
                EngineQuery::WeightedRank {
                    terms: decode(terms),
                    k: *k,
                    params: invidx_ir::Bm25Params {
                        k1: f64::from_bits(*k1_bits),
                        b: f64::from_bits(*b_bits),
                    },
                    avgdl: f64::from_bits(*avgdl_bits),
                }
            }
            Request::Doc(id) => EngineQuery::Doc(DocId(*id)),
            Request::Stats => return Ok(Payload::Stats(self.stats_from(snap))),
            Request::Ping => return Ok(Payload::Pong),
        };
        Ok(match snap.view.execute(&query).map_err(engine_err)? {
            QueryOutput::Docs(list) => Payload::Docs(to_ids(&list)),
            QueryOutput::Hits(hits) => {
                Payload::Hits(hits.into_iter().map(|h| (h.doc.0, h.score)).collect())
            }
            QueryOutput::Dfs { docs, tokens, dfs } => Payload::Df { docs, tokens, dfs },
            QueryOutput::Text(text) => Payload::Text(text),
        })
    }

    fn count_lookup(&self, outcome: Lookup) {
        match outcome {
            Lookup::Hit => self.counters.cache_hits.inc(),
            Lookup::Miss => self.counters.cache_misses.inc(),
            Lookup::Stale => {
                // A stale drop is also a miss from the caller's viewpoint.
                self.counters.cache_misses.inc();
                invidx_obs::counter!(names::SERVE_CACHE_STALE_DROPS).inc();
            }
        }
    }

    /// Build and publish the next snapshot from the engine's state. Must
    /// be called with the writer mutex held; `epoch` is what readers will
    /// see as the current epoch. An `incremental` materialization re-reads
    /// only the posting lists dirtied since the last *successful* snapshot
    /// (the engine clears its dirty set only when materialization
    /// completes) — that is where all block-cache and disk traffic for the
    /// read path happens now, so the block counters are captured right
    /// after, as part of the same publication.
    fn try_publish(
        &self,
        engine: &mut E,
        epoch: u64,
        incremental: bool,
    ) -> Result<(), ServeError> {
        let prev = self.current.load();
        let view = engine
            .snapshot(if incremental { Some(&prev.view) } else { None })
            .map_err(ServeError::Engine)?;
        let block = engine.block_cache_stats().unwrap_or_default();
        if let Some(wal) = engine.wal_bytes() {
            self.last_wal.store(wal, Ordering::Relaxed);
        }
        self.current.publish(ServeSnapshot { epoch, view: Arc::new(view), block });
        Ok(())
    }

    /// Publish after a commit the engine has already made durable. Past
    /// the commit point a materialization error must not unwind into the
    /// caller: the engine is at the next batch whatever happens here, and
    /// propagating an `Err` used to leave the epoch counter behind the
    /// batch count — a re-shipped WAL record was then rejected by the
    /// replica's gap check ("gap or replay"), wedging replication until a
    /// restart. So: try the incremental materialization, fall back to a
    /// full rebuild (the dirty set is intact after a failure, so both are
    /// safe), and if even that fails, *defer* — the caller still bumps
    /// the epoch in lockstep with the commit, readers keep the previous
    /// snapshot, and the still-dirty engine state folds into the next
    /// publication attempt (the next commit, or [`Self::publish_gauges`]'s
    /// catch-up). Deferrals are counted (`serve_publish_deferred_total`)
    /// and surface as the `serve_publish_lag_batches` gauge.
    fn publish_committed(&self, engine: &mut E, epoch: u64) {
        if self.try_publish(engine, epoch, true).is_ok() {
            return;
        }
        if self.try_publish(engine, epoch, false).is_err() {
            invidx_obs::counter!(names::SERVE_PUBLISH_DEFERRED).inc();
        }
    }

    /// Ingest one batch atomically: add every document, flush, publish
    /// the next snapshot, bump the epoch. Queries either see none of the
    /// batch (the old snapshot) or all of it (the new one). Returns the
    /// report and the new epoch. When telemetry samples this ingest, the
    /// batch emits a span tree (`add`/`flush`/`publish`, with the
    /// block-cache and disk stages nested under `publish`).
    pub fn ingest_batch<S: AsRef<str>>(
        &self,
        texts: &[S],
    ) -> Result<(BatchReport, u64), ServeError> {
        let mut engine = self.writer.lock();
        let trace = self.telemetry.sample();
        if let Some(ctx) = trace {
            invidx_obs::trace::install(ctx);
        }
        let outcome = self.ingest_locked(&mut engine, texts);
        if let Some(ctx) = invidx_obs::trace::uninstall() {
            let label = format!("INGEST {}", texts.len());
            ctx.finish(&label, if outcome.is_ok() { "served" } else { "error" });
        }
        outcome
    }

    fn ingest_locked<S: AsRef<str>>(
        &self,
        engine: &mut E,
        texts: &[S],
    ) -> Result<(BatchReport, u64), ServeError> {
        {
            let _stage = invidx_obs::trace::stage("add");
            invidx_obs::trace::add_items(texts.len() as u64);
            for text in texts {
                engine.add_document(text.as_ref()).map_err(ServeError::Engine)?;
            }
        }
        let report = {
            let _stage = invidx_obs::trace::stage("flush");
            engine.flush().map_err(ServeError::Engine)?
        };
        // Publish before the epoch counter moves: a reader loads the
        // snapshot (state and epoch travel together), so at worst it
        // briefly sees the new state under the new epoch while `epoch()`
        // still reports the old value — never new state under an old
        // snapshot. The bump is unconditional: the flush committed, so the
        // epoch tracks the engine's batch count even when publication is
        // deferred (see `publish_committed`).
        let epoch = self.epoch.get() + 1;
        {
            let _stage = invidx_obs::trace::stage("publish");
            self.publish_committed(engine, epoch);
        }
        let epoch = self.epoch.bump();
        self.counters.batches.inc();
        Ok((report, epoch))
    }

    /// Apply one shipped WAL record under the writer mutex (the replica
    /// half of WAL shipping), publish, and bump the epoch, exactly as the
    /// equivalent local write would have. When the service was constructed
    /// with [`Self::with_config_at`] over the engine's batch count, this
    /// keeps `epoch == batches` on the replica, so replication lag is
    /// directly the primary/replica epoch delta. Returns the new epoch.
    ///
    /// The epoch advances with the commit even if snapshot publication
    /// fails (the record is in the replica's own WAL from the moment
    /// `apply_replicated` returns on the engine): returning an error with
    /// the epoch left behind would make the tailer re-request this batch
    /// and trip the engine's gap check, wedging replication. A deferred
    /// publication leaves readers on the previous snapshot until the next
    /// record or metrics scrape republishes.
    pub fn apply_replicated(&self, record: &invidx_durable::WalRecord) -> Result<u64, ServeError> {
        let mut engine = self.writer.lock();
        engine.apply_replicated(record).map_err(ServeError::Engine)?;
        self.publish_committed(&mut engine, self.epoch.get() + 1);
        let epoch = self.epoch.bump();
        self.counters.batches.inc();
        drop(engine);
        Ok(epoch)
    }

    /// Write a durable checkpoint (no-op `Ok(None)` for volatile engines).
    /// Readers keep serving from the published snapshot throughout; the
    /// visible state does not change, so the epoch does not move.
    pub fn checkpoint(&self) -> Result<Option<u64>, ServeError> {
        self.writer.lock().checkpoint().map_err(ServeError::Engine)
    }

    /// Hold the writer mutex *and* stall the read path for the duration of
    /// `f`, without touching the engine or the epoch — a deterministic way
    /// for tests to wedge the service the way a stuck writer once could.
    #[doc(hidden)]
    pub fn with_blocked_writer(&self, f: impl FnOnce()) {
        let _guard = self.writer.lock();
        // Drop-guard so a panicking closure still releases the readers.
        struct Unstall<'a>(&'a ReadGate);
        impl Drop for Unstall<'_> {
            fn drop(&mut self) {
                self.0.unstall();
            }
        }
        self.gate.stall();
        let _release = Unstall(&self.gate);
        f();
    }

    /// Hold every result-cache shard lock for the duration of `f` — the
    /// deterministic wedge for proving the writer no longer waits on the
    /// result cache.
    #[doc(hidden)]
    pub fn with_blocked_cache(&self, f: impl FnOnce()) {
        self.cache.with_blocked(f);
    }

    /// Run a closure with access to the live engine and the current epoch
    /// (oracle tests use this to snapshot ground truth; the router uses it
    /// for WAL shipping). Serializes with the writer.
    pub fn with_read<R>(&self, f: impl FnOnce(u64, &E) -> R) -> R {
        let engine = self.writer.lock();
        f(self.epoch.get(), &engine)
    }

    /// Serving counters plus engine totals, from the published snapshot.
    pub fn stats(&self) -> ServeStats {
        self.stats_from(&self.current.load())
    }

    fn stats_from(&self, snap: &ServeSnapshot) -> ServeStats {
        let (evictions, stale_drops) = self.cache.totals();
        ServeStats {
            docs: snap.view.total_docs(),
            queries: self.counters.queries.get(),
            cache_hits: self.counters.cache_hits.get(),
            cache_misses: self.counters.cache_misses.get(),
            cache_evictions: evictions,
            cache_stale_drops: stale_drops,
            shed: self.counters.shed.get(),
            timeouts: self.counters.timeouts.get(),
            batches: self.counters.batches.get(),
            block_cache_hits: snap.block.hits,
            block_cache_misses: snap.block.misses,
            block_cache_evictions: snap.block.evictions,
        }
    }
}

fn to_ids(list: &invidx_core::postings::PostingList) -> Vec<u32> {
    list.docs().iter().map(|d| d.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use invidx_core::index::IndexConfig;
    use invidx_disk::sparse_array;
    use invidx_ir::SearchEngine;

    fn service(cache: usize) -> QueryService<SearchEngine> {
        let array = sparse_array(2, 50_000, 256);
        let engine = SearchEngine::create(array, IndexConfig::small()).unwrap();
        let config = ServeConfig::builder().result_cache_capacity(cache).build().unwrap();
        QueryService::with_config(engine, config).unwrap()
    }

    /// The STATS payload must carry the engine's block-cache counters —
    /// a stub engine with known counters proves the plumbing end to end
    /// (service snapshot → wire render → wire parse).
    #[test]
    fn stats_surface_engine_block_cache_counters() {
        use invidx_core::postings::PostingList;
        struct Stub;
        impl ServeEngine for Stub {
            fn execute(
                &self,
                query: &EngineQuery,
            ) -> invidx_core::types::Result<QueryOutput> {
                Ok(match query {
                    EngineQuery::Boolean(_)
                    | EngineQuery::Phrase(_)
                    | EngineQuery::Near { .. } => {
                        QueryOutput::Docs(PostingList::from_sorted(vec![]))
                    }
                    EngineQuery::Like { .. }
                    | EngineQuery::Rank { .. }
                    | EngineQuery::WeightedLike { .. }
                    | EngineQuery::WeightedRank { .. } => QueryOutput::Hits(vec![]),
                    EngineQuery::Dfs(terms) => {
                        QueryOutput::Dfs { docs: 0, tokens: 0, dfs: vec![0; terms.len()] }
                    }
                    EngineQuery::Doc(_) => QueryOutput::Text(None),
                })
            }
            fn add_document(&mut self, _: &str) -> Result<DocId, String> {
                Err("unused".into())
            }
            fn flush(&mut self) -> Result<invidx_core::index::BatchReport, String> {
                Err("unused".into())
            }
            fn block_cache_stats(&self) -> Option<invidx_core::cache::CacheStats> {
                Some(invidx_core::cache::CacheStats {
                    hits: 21,
                    misses: 8,
                    evictions: 3,
                    ..Default::default()
                })
            }
            fn snapshot(
                &mut self,
                _: Option<&invidx_ir::EngineSnapshot>,
            ) -> Result<invidx_ir::EngineSnapshot, String> {
                Ok(invidx_ir::EngineSnapshot::empty())
            }
            fn total_docs(&self) -> u64 {
                0
            }
            fn vocabulary_size(&self) -> usize {
                0
            }
        }
        let s = QueryService::with_config(Stub, ServeConfig::default()).unwrap();
        let resp = s.execute(&Request::Stats).unwrap();
        let Payload::Stats(stats) = resp.payload else { panic!("expected stats") };
        assert_eq!(
            (stats.block_cache_hits, stats.block_cache_misses, stats.block_cache_evictions),
            (21, 8, 3)
        );
        let wire = Response { epoch: 0, payload: Payload::Stats(stats) }.to_wire();
        let parsed = crate::request::parse_response(&wire).unwrap().unwrap();
        assert_eq!(parsed.payload, Payload::Stats(stats));
    }

    #[test]
    fn builder_validates_shape() {
        let c = ServeConfig::builder()
            .result_cache_capacity(0)
            .readers(2)
            .high_water(7)
            .deadline(std::time::Duration::from_millis(100))
            .build()
            .unwrap();
        assert_eq!(
            (c.result_cache_capacity, c.readers, c.high_water),
            (0, 2, 7)
        );
        assert!(ServeConfig::builder().readers(0).build().is_err());
        assert!(ServeConfig::builder().high_water(0).build().is_err());
        assert!(ServeConfig::builder().deadline(std::time::Duration::ZERO).build().is_err());
    }

    #[test]
    fn builder_validates_ranking_shape() {
        let c = ServeConfig::builder().rank_k(64).bm25_k1(0.9).bm25_b(0.4).build().unwrap();
        assert_eq!((c.rank_k, c.bm25_k1, c.bm25_b), (64, 0.9, 0.4));
        assert!(ServeConfig::builder().rank_k(0).build().is_err());
        assert!(ServeConfig::builder().bm25_k1(-0.1).build().is_err());
        assert!(ServeConfig::builder().bm25_k1(f64::NAN).build().is_err());
        assert!(ServeConfig::builder().bm25_b(1.5).build().is_err());
        assert!(ServeConfig::builder().bm25_b(f64::INFINITY).build().is_err());
    }

    /// `RANK` serves BM25 hits from the published snapshot, agrees
    /// bit-exactly with the live engine's WAND ranker, and enforces the
    /// configured k ceiling.
    #[test]
    fn rank_serves_bm25_from_the_snapshot() {
        let array = sparse_array(2, 50_000, 256);
        let engine = SearchEngine::create(array, IndexConfig::small()).unwrap();
        let config =
            ServeConfig::builder().rank_k(8).bm25_k1(1.2).bm25_b(0.75).build().unwrap();
        let s = QueryService::with_config(engine, config).unwrap();
        s.ingest_batch(&[
            "the cat sat on the mat",
            "the dog chased the cat around",
            "a cat and a cat and a cat",
        ])
        .unwrap();
        let resp = s.execute(&Request::Rank(2, "cat dog".into())).unwrap();
        let Payload::Hits(hits) = resp.payload else { panic!("expected hits") };
        assert_eq!(hits.len(), 2);
        let oracle = s.with_read(|_, e| {
            e.rank("cat dog", 2, invidx_ir::Bm25Params { k1: 1.2, b: 0.75 }).unwrap()
        });
        for (got, want) in hits.iter().zip(&oracle) {
            assert_eq!(
                (got.0, got.1.to_bits()),
                (want.doc.0, want.score.to_bits()),
                "served RANK must match the engine ranker bit-exactly"
            );
        }
        // Repeats come from the result cache and answer identically.
        let again = s.execute(&Request::Rank(2, "cat dog".into())).unwrap();
        assert_eq!(Payload::Hits(hits), again.payload);
        assert_eq!(s.stats().cache_hits, 1);
        // Beyond the ceiling: typed rejection, not an unbounded heap.
        let err = s.execute(&Request::Rank(9, "cat".into())).unwrap_err();
        assert_eq!(err.code(), "badrequest");
    }

    /// The DF payload carries the token count the router's distributed
    /// BM25 needs for the corpus-global average document length.
    #[test]
    fn df_carries_corpus_token_count() {
        let s = service(16);
        s.ingest_batch(&["one two three", "four five"]).unwrap();
        let resp = s.execute(&Request::Df(vec!["one".into(), "nope".into()])).unwrap();
        assert_eq!(
            resp.payload,
            Payload::Df { docs: 2, tokens: 5, dfs: vec![1, 0] }
        );
    }

    fn docs_of(resp: &Response) -> Vec<u32> {
        match &resp.payload {
            Payload::Docs(ids) => ids.clone(),
            other => panic!("expected docs, got {other:?}"),
        }
    }

    #[test]
    fn queries_see_batches_atomically() {
        let s = service(16);
        assert_eq!(s.epoch(), 0);
        let (report, epoch) =
            s.ingest_batch(&["the cat sat on the mat", "the dog chased the cat"]).unwrap();
        assert_eq!((report.batch, epoch), (0, 1)); // batches are 0-based, epochs count flushes
        let resp = s.execute(&Request::Boolean("cat and dog".into())).unwrap();
        assert_eq!((resp.epoch, docs_of(&resp)), (1, vec![2]));
        let resp = s.execute(&Request::Near("cat".into(), "dog".into(), 3)).unwrap();
        assert_eq!(docs_of(&resp), vec![2]);
        let resp = s.execute(&Request::Doc(1)).unwrap();
        assert_eq!(resp.payload, Payload::Text(Some("the cat sat on the mat".into())));
    }

    #[test]
    fn cache_serves_repeats_and_epoch_invalidates() {
        let s = service(16);
        s.ingest_batch(&["alpha beta gamma"]).unwrap();
        let q = Request::Boolean("alpha".into());
        let first = s.execute(&q).unwrap();
        let second = s.execute(&q).unwrap();
        assert_eq!(first, second);
        let stats = s.stats();
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        // New batch changes the answer; the stale entry must not serve.
        s.ingest_batch(&["alpha again here"]).unwrap();
        let third = s.execute(&q).unwrap();
        assert_eq!(docs_of(&third), vec![1, 2]);
        assert_eq!(third.epoch, 2);
        assert_eq!(s.stats().cache_stale_drops, 1);
    }

    #[test]
    fn uncacheable_requests_bypass_the_cache() {
        let s = service(16);
        s.ingest_batch(&["one document"]).unwrap();
        s.execute(&Request::Doc(1)).unwrap();
        s.execute(&Request::Ping).unwrap();
        s.execute(&Request::Stats).unwrap();
        let stats = s.stats();
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 0));
        assert_eq!(stats.queries, 3);
    }

    #[test]
    fn bad_queries_are_typed_bad_requests() {
        let s = service(4);
        s.ingest_batch(&["some text"]).unwrap();
        let err = s.execute(&Request::Boolean("(cat and".into())).unwrap_err();
        assert_eq!(err.code(), "badrequest");
    }

    #[test]
    fn stats_snapshot_counts() {
        let s = service(2);
        s.ingest_batch(&["a b c", "b c d"]).unwrap();
        let q = Request::Boolean("b".into());
        s.execute(&q).unwrap();
        s.execute(&q).unwrap();
        let stats = s.stats();
        assert_eq!(stats.docs, 2);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.cache_hits, 1);
    }
}
