//! [`QueryService`]: the shared read path with its epoch-keyed cache.
//!
//! The snapshot model is lock-based and coarse but exact: an engine behind
//! one `RwLock`, an [`EpochCounter`] bumped **while the write lock is
//! held**, readers sampling the epoch **under the read lock**. The pair a
//! reader sees is therefore coherent — the epoch names exactly the state
//! its result was computed from, which is what the result cache keys its
//! invalidation on and what the oracle tests replay against.
//!
//! Writer operations are batch-atomic: [`QueryService::ingest_batch`] adds
//! the documents *and* flushes under one write-lock hold, so queries never
//! observe a half-ingested batch and visible state only changes at epoch
//! bumps.

use crate::cache::{Lookup, ResultCache};
use crate::engine::ServeEngine;
use crate::error::ServeError;
use crate::request::{Payload, Request, Response, ServeStats};
use invidx_core::concurrent::EpochCounter;
use invidx_core::index::BatchReport;
use invidx_core::types::DocId;
use invidx_obs::names;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};

/// One configuration for the whole serving stack — the result cache
/// ([`QueryService`]) and admission control ([`crate::Frontend`]) read
/// from the same struct, so a deployment is described in one place.
///
/// Construct through [`ServeConfig::builder`], which validates the shape
/// at `build()` (readers and high-water must be positive, the deadline
/// non-zero) instead of panicking at first use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Result-cache capacity in entries; 0 disables result caching.
    pub result_cache_capacity: usize,
    /// Reader threads draining the admission queue.
    pub readers: usize,
    /// Queue depth at which new requests are shed.
    pub high_water: usize,
    /// Default per-request deadline, measured from admission.
    pub deadline: std::time::Duration,
    /// Trace one in this many requests (0 = tracing off, 1 = every
    /// request). Sampled requests emit a span tree on the event stream.
    pub trace_sample: u32,
    /// Slow-query threshold in milliseconds; served requests at or above
    /// it are logged as `slow_query` events (0 disables the threshold;
    /// shed and timed-out requests are always logged).
    pub slow_query_ms: u64,
    /// SLO latency target in milliseconds.
    pub slo_target_ms: u64,
    /// SLO availability objective in ppm of requests meeting the target
    /// (e.g. 999_000 = 99.9%).
    pub slo_objective_ppm: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            result_cache_capacity: 1024,
            readers: 4,
            high_water: 128,
            deadline: std::time::Duration::from_millis(500),
            trace_sample: 0,
            slow_query_ms: 250,
            slo_target_ms: 50,
            slo_objective_ppm: 999_000,
        }
    }
}

impl ServeConfig {
    /// Start from the defaults and override what you need.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder { config: Self::default() }
    }
}

/// Builder for [`ServeConfig`]; obtained from [`ServeConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Result-cache capacity in entries; 0 disables result caching.
    pub fn result_cache_capacity(mut self, entries: usize) -> Self {
        self.config.result_cache_capacity = entries;
        self
    }

    /// Reader threads draining the admission queue.
    pub fn readers(mut self, readers: usize) -> Self {
        self.config.readers = readers;
        self
    }

    /// Queue depth at which new requests are shed.
    pub fn high_water(mut self, depth: usize) -> Self {
        self.config.high_water = depth;
        self
    }

    /// Default per-request deadline, measured from admission.
    pub fn deadline(mut self, deadline: std::time::Duration) -> Self {
        self.config.deadline = deadline;
        self
    }

    /// Trace one in `every` requests (0 = off, 1 = all).
    pub fn trace_sample(mut self, every: u32) -> Self {
        self.config.trace_sample = every;
        self
    }

    /// Slow-query threshold in milliseconds (0 disables the threshold).
    pub fn slow_query_ms(mut self, ms: u64) -> Self {
        self.config.slow_query_ms = ms;
        self
    }

    /// SLO latency target in milliseconds.
    pub fn slo_target_ms(mut self, ms: u64) -> Self {
        self.config.slo_target_ms = ms;
        self
    }

    /// SLO availability objective in ppm (e.g. 999_000 = 99.9%).
    pub fn slo_objective_ppm(mut self, ppm: u32) -> Self {
        self.config.slo_objective_ppm = ppm;
        self
    }

    /// Validate and produce the config. All shape invariants are checked
    /// here, so a `ServeConfig` in hand is always safe to start a
    /// [`crate::Frontend`] with.
    pub fn build(self) -> Result<ServeConfig, ServeError> {
        let c = &self.config;
        if c.readers == 0 {
            return Err(ServeError::Config("readers must be >= 1".into()));
        }
        if c.high_water == 0 {
            return Err(ServeError::Config("high-water mark must be >= 1".into()));
        }
        if c.deadline.is_zero() {
            return Err(ServeError::Config("deadline must be non-zero".into()));
        }
        if c.slo_target_ms == 0 {
            return Err(ServeError::Config("SLO target must be non-zero".into()));
        }
        if !(1..=999_999).contains(&c.slo_objective_ppm) {
            return Err(ServeError::Config(
                "SLO objective must be in [1, 999999] ppm".into(),
            ));
        }
        Ok(self.config)
    }
}

/// Per-service counters, mirrored into the global `invidx-obs` registry so
/// dashboards see them, but readable per instance so tests don't race each
/// other through process-global state.
///
/// Each local counter is paired with its resolved global handle at
/// construction. (An earlier version mirrored through the `counter!`
/// macro inside a shared helper — but that macro caches its handle per
/// *call site*, so every name funneled through one helper incremented
/// whichever global counter was resolved first.)
#[derive(Debug)]
pub struct ServeCounters {
    queries: MirroredCounter,
    cache_hits: MirroredCounter,
    cache_misses: MirroredCounter,
    shed: MirroredCounter,
    timeouts: MirroredCounter,
    batches: MirroredCounter,
}

/// A per-instance counter plus its global-registry mirror.
#[derive(Debug)]
struct MirroredCounter {
    local: AtomicU64,
    global: std::sync::Arc<invidx_obs::Counter>,
}

impl MirroredCounter {
    fn new(name: &str) -> Self {
        Self { local: AtomicU64::new(0), global: invidx_obs::registry().counter(name) }
    }

    fn inc(&self) {
        self.local.fetch_add(1, Ordering::Relaxed);
        self.global.inc();
    }

    fn get(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }
}

impl Default for ServeCounters {
    fn default() -> Self {
        Self {
            queries: MirroredCounter::new(names::SERVE_QUERIES),
            cache_hits: MirroredCounter::new(names::SERVE_CACHE_HITS),
            cache_misses: MirroredCounter::new(names::SERVE_CACHE_MISSES),
            shed: MirroredCounter::new(names::SERVE_SHED),
            timeouts: MirroredCounter::new(names::SERVE_TIMEOUTS),
            batches: MirroredCounter::new(names::SERVE_BATCHES),
        }
    }
}

impl ServeCounters {

    /// Count one shed request (admission rejection).
    pub fn count_shed(&self) {
        self.shed.inc();
    }

    /// Count one queue-deadline expiry.
    pub fn count_timeout(&self) {
        self.timeouts.inc();
    }

    /// Requests shed so far.
    pub fn shed(&self) -> u64 {
        self.shed.get()
    }

    /// Requests expired so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.get()
    }

    /// Cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }
}

/// A read-shared, write-exclusive serving handle over an engine.
pub struct QueryService<E> {
    engine: RwLock<E>,
    epoch: EpochCounter,
    cache: Mutex<ResultCache>,
    counters: ServeCounters,
    telemetry: crate::telemetry::Telemetry,
}

impl<E: ServeEngine> QueryService<E> {
    /// Wrap an engine for serving.
    pub fn with_config(engine: E, config: ServeConfig) -> Self {
        Self::with_config_at(engine, config, 0)
    }

    /// Wrap an engine for serving with the epoch anchored at `epoch` —
    /// normally the engine's committed batch count, so that epochs stay
    /// comparable across restarts and across a replication pair (the lag
    /// gauge is *primary epoch − replica epoch*, which only means anything
    /// when both sides count from the same durable state).
    pub fn with_config_at(engine: E, config: ServeConfig, epoch: u64) -> Self {
        Self {
            engine: RwLock::new(engine),
            epoch: EpochCounter::starting_at(epoch),
            cache: Mutex::new(ResultCache::new(config.result_cache_capacity)),
            counters: ServeCounters::default(),
            telemetry: crate::telemetry::Telemetry::new(&config),
        }
    }

    /// The current batch epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Unwrap the service and hand the engine back (e.g. to close it
    /// cleanly or reopen a durable store).
    pub fn into_engine(self) -> E {
        self.engine.into_inner()
    }

    /// The per-service counters (shared with the admission layer).
    pub fn counters(&self) -> &ServeCounters {
        &self.counters
    }

    /// The per-service telemetry (trace sampling, live quantiles, SLO).
    pub fn telemetry(&self) -> &crate::telemetry::Telemetry {
        &self.telemetry
    }

    /// Refresh derived gauges (live quantiles, SLO budget, epoch, WAL
    /// lag) in the global registry. Uses `try_read` on the engine so a
    /// wedged writer cannot stall a metrics scrape.
    pub fn publish_gauges(&self) {
        self.telemetry.publish_gauges();
        invidx_obs::gauge!(names::SERVE_EPOCH).set(self.epoch.get() as i64);
        if let Some(engine) = self.engine.try_read() {
            if let Some(wal) = engine.wal_bytes() {
                invidx_obs::gauge!(names::INDEX_WAL_BYTES).set(wal as i64);
            }
        }
    }

    /// Render the full Prometheus text exposition for this process,
    /// refreshing derived gauges first and flushing any buffered event
    /// sink so scrapes and trace files stay in step. Backs the `METRICS`
    /// protocol verb.
    pub fn render_metrics(&self) -> String {
        self.publish_gauges();
        invidx_obs::flush_events();
        invidx_obs::snapshot().to_prometheus()
    }

    /// Execute one read request against a coherent `(epoch, engine)`
    /// snapshot, consulting the result cache for cacheable requests.
    pub fn execute(&self, request: &Request) -> Result<Response, ServeError> {
        self.counters.queries.inc();
        // The read lock pins the epoch: writers bump it only while holding
        // the write lock, so `epoch` names exactly the state we query.
        let engine = self.engine.read();
        let epoch = self.epoch.get();
        let key = request.cache_key();
        if let Some(key) = &key {
            let probe = {
                let _stage = invidx_obs::trace::stage("cache");
                invidx_obs::trace::add_items(1);
                self.cache.lock().get(key, epoch)
            };
            let (cached, outcome) = probe;
            self.count_lookup(outcome);
            if let Some(payload) = cached {
                return Ok(Response { epoch, payload });
            }
        }
        let payload = {
            let _stage = invidx_obs::trace::stage("engine");
            self.run(&engine, request)?
        };
        if let Some(key) = key {
            // Still under the read lock, so `epoch` is still current.
            let _stage = invidx_obs::trace::stage("cache");
            self.cache.lock().insert(key, epoch, payload.clone());
        }
        Ok(Response { epoch, payload })
    }

    fn run(&self, engine: &E, request: &Request) -> Result<Payload, ServeError> {
        let engine_err = |e: invidx_core::types::IndexError| match e {
            invidx_core::types::IndexError::InvalidConfig(msg) => ServeError::BadRequest(msg),
            other => ServeError::Engine(other.to_string()),
        };
        Ok(match request {
            Request::Boolean(q) => {
                Payload::Docs(to_ids(&engine.boolean_str(q).map_err(engine_err)?))
            }
            Request::Phrase(p) => Payload::Docs(to_ids(&engine.phrase(p).map_err(engine_err)?)),
            Request::Near(w1, w2, win) => {
                Payload::Docs(to_ids(&engine.within(w1, w2, *win).map_err(engine_err)?))
            }
            Request::Like(k, text) => Payload::Hits(
                engine
                    .more_like_this(text, *k)
                    .map_err(engine_err)?
                    .into_iter()
                    .map(|h| (h.doc.0, h.score))
                    .collect(),
            ),
            Request::Df(terms) => {
                Payload::Df(engine.total_docs(), engine.term_dfs(terms).map_err(engine_err)?)
            }
            Request::WeightedLike(k, terms) => {
                let weighted: Vec<(String, f64)> =
                    terms.iter().map(|(t, bits)| (t.clone(), f64::from_bits(*bits))).collect();
                Payload::Hits(
                    engine
                        .weighted_like(&weighted, *k)
                        .map_err(engine_err)?
                        .into_iter()
                        .map(|h| (h.doc.0, h.score))
                        .collect(),
                )
            }
            Request::Doc(id) => {
                Payload::Text(engine.document(DocId(*id)).map_err(engine_err)?)
            }
            Request::Stats => Payload::Stats(self.stats_with(engine)),
            Request::Ping => Payload::Pong,
        })
    }

    fn count_lookup(&self, outcome: Lookup) {
        match outcome {
            Lookup::Hit => self.counters.cache_hits.inc(),
            Lookup::Miss => self.counters.cache_misses.inc(),
            Lookup::Stale => {
                // A stale drop is also a miss from the caller's viewpoint.
                self.counters.cache_misses.inc();
                invidx_obs::counter!(names::SERVE_CACHE_STALE_DROPS).inc();
            }
        }
    }

    /// Ingest one batch atomically: add every document, flush, bump the
    /// epoch. Queries either see none of the batch (old epoch) or all of
    /// it (new epoch). Returns the report and the new epoch.
    pub fn ingest_batch<S: AsRef<str>>(
        &self,
        texts: &[S],
    ) -> Result<(BatchReport, u64), ServeError> {
        let mut engine = self.engine.write();
        for text in texts {
            engine.add_document(text.as_ref()).map_err(ServeError::Engine)?;
        }
        let report = engine.flush().map_err(ServeError::Engine)?;
        // Bump while still holding the write lock, so no reader can pair
        // the new state with the old epoch.
        let epoch = self.epoch.bump();
        self.counters.batches.inc();
        drop(engine);
        Ok((report, epoch))
    }

    /// Apply one shipped WAL record under the write lock (the replica half
    /// of WAL shipping) and bump the epoch, exactly as the equivalent local
    /// write would have. When the service was constructed with
    /// [`Self::with_config_at`] over the engine's batch count, this keeps
    /// `epoch == batches` on the replica, so replication lag is directly
    /// the primary/replica epoch delta. Returns the new epoch.
    pub fn apply_replicated(&self, record: &invidx_durable::WalRecord) -> Result<u64, ServeError> {
        let mut engine = self.engine.write();
        engine.apply_replicated(record).map_err(ServeError::Engine)?;
        let epoch = self.epoch.bump();
        self.counters.batches.inc();
        drop(engine);
        Ok(epoch)
    }

    /// Write a durable checkpoint (no-op `Ok(None)` for volatile engines).
    /// Takes the write lock — readers stall for the duration and resume;
    /// the visible state does not change, so the epoch does not move.
    pub fn checkpoint(&self) -> Result<Option<u64>, ServeError> {
        self.engine.write().checkpoint().map_err(ServeError::Engine)
    }

    /// Hold the engine write lock for the duration of `f` without touching
    /// the engine or the epoch — a deterministic way for tests to stall
    /// the read path.
    #[doc(hidden)]
    pub fn with_blocked_writer(&self, f: impl FnOnce()) {
        let _guard = self.engine.write();
        f();
    }

    /// Run a closure with shared access to the engine and the pinned epoch
    /// (oracle tests use this to snapshot ground truth).
    pub fn with_read<R>(&self, f: impl FnOnce(u64, &E) -> R) -> R {
        let engine = self.engine.read();
        f(self.epoch.get(), &engine)
    }

    /// Serving counters plus engine totals.
    pub fn stats(&self) -> ServeStats {
        self.stats_with(&self.engine.read())
    }

    fn stats_with(&self, engine: &E) -> ServeStats {
        let cache = self.cache.lock();
        let block = engine.block_cache_stats().unwrap_or_default();
        ServeStats {
            docs: engine.total_docs(),
            queries: self.counters.queries.get(),
            cache_hits: self.counters.cache_hits.get(),
            cache_misses: self.counters.cache_misses.get(),
            cache_evictions: cache.evictions(),
            cache_stale_drops: cache.stale_drops(),
            shed: self.counters.shed.get(),
            timeouts: self.counters.timeouts.get(),
            batches: self.counters.batches.get(),
            block_cache_hits: block.hits,
            block_cache_misses: block.misses,
            block_cache_evictions: block.evictions,
        }
    }
}

fn to_ids(list: &invidx_core::postings::PostingList) -> Vec<u32> {
    list.docs().iter().map(|d| d.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use invidx_core::index::IndexConfig;
    use invidx_disk::sparse_array;
    use invidx_ir::SearchEngine;

    fn service(cache: usize) -> QueryService<SearchEngine> {
        let array = sparse_array(2, 50_000, 256);
        let engine = SearchEngine::create(array, IndexConfig::small()).unwrap();
        let config = ServeConfig::builder().result_cache_capacity(cache).build().unwrap();
        QueryService::with_config(engine, config)
    }

    /// The STATS payload must carry the engine's block-cache counters —
    /// a stub engine with known counters proves the plumbing end to end
    /// (service snapshot → wire render → wire parse).
    #[test]
    fn stats_surface_engine_block_cache_counters() {
        use invidx_core::postings::PostingList;
        struct Stub;
        impl ServeEngine for Stub {
            fn boolean_str(&self, _: &str) -> invidx_core::types::Result<PostingList> {
                Ok(PostingList::from_sorted(vec![]))
            }
            fn phrase(&self, _: &str) -> invidx_core::types::Result<PostingList> {
                Ok(PostingList::from_sorted(vec![]))
            }
            fn within(&self, _: &str, _: &str, _: u32) -> invidx_core::types::Result<PostingList> {
                Ok(PostingList::from_sorted(vec![]))
            }
            fn more_like_this(
                &self,
                _: &str,
                _: usize,
            ) -> invidx_core::types::Result<Vec<invidx_ir::Hit>> {
                Ok(vec![])
            }
            fn document(&self, _: DocId) -> invidx_core::types::Result<Option<String>> {
                Ok(None)
            }
            fn add_document(&mut self, _: &str) -> Result<DocId, String> {
                Err("unused".into())
            }
            fn flush(&mut self) -> Result<invidx_core::index::BatchReport, String> {
                Err("unused".into())
            }
            fn block_cache_stats(&self) -> Option<invidx_core::cache::CacheStats> {
                Some(invidx_core::cache::CacheStats {
                    hits: 21,
                    misses: 8,
                    evictions: 3,
                    ..Default::default()
                })
            }
            fn total_docs(&self) -> u64 {
                0
            }
            fn vocabulary_size(&self) -> usize {
                0
            }
        }
        let s = QueryService::with_config(Stub, ServeConfig::default());
        let resp = s.execute(&Request::Stats).unwrap();
        let Payload::Stats(stats) = resp.payload else { panic!("expected stats") };
        assert_eq!(
            (stats.block_cache_hits, stats.block_cache_misses, stats.block_cache_evictions),
            (21, 8, 3)
        );
        let wire = Response { epoch: 0, payload: Payload::Stats(stats) }.to_wire();
        let parsed = crate::request::parse_response(&wire).unwrap().unwrap();
        assert_eq!(parsed.payload, Payload::Stats(stats));
    }

    #[test]
    fn builder_validates_shape() {
        let c = ServeConfig::builder()
            .result_cache_capacity(0)
            .readers(2)
            .high_water(7)
            .deadline(std::time::Duration::from_millis(100))
            .build()
            .unwrap();
        assert_eq!(
            (c.result_cache_capacity, c.readers, c.high_water),
            (0, 2, 7)
        );
        assert!(ServeConfig::builder().readers(0).build().is_err());
        assert!(ServeConfig::builder().high_water(0).build().is_err());
        assert!(ServeConfig::builder().deadline(std::time::Duration::ZERO).build().is_err());
    }

    fn docs_of(resp: &Response) -> Vec<u32> {
        match &resp.payload {
            Payload::Docs(ids) => ids.clone(),
            other => panic!("expected docs, got {other:?}"),
        }
    }

    #[test]
    fn queries_see_batches_atomically() {
        let s = service(16);
        assert_eq!(s.epoch(), 0);
        let (report, epoch) =
            s.ingest_batch(&["the cat sat on the mat", "the dog chased the cat"]).unwrap();
        assert_eq!((report.batch, epoch), (0, 1)); // batches are 0-based, epochs count flushes
        let resp = s.execute(&Request::Boolean("cat and dog".into())).unwrap();
        assert_eq!((resp.epoch, docs_of(&resp)), (1, vec![2]));
        let resp = s.execute(&Request::Near("cat".into(), "dog".into(), 3)).unwrap();
        assert_eq!(docs_of(&resp), vec![2]);
        let resp = s.execute(&Request::Doc(1)).unwrap();
        assert_eq!(resp.payload, Payload::Text(Some("the cat sat on the mat".into())));
    }

    #[test]
    fn cache_serves_repeats_and_epoch_invalidates() {
        let s = service(16);
        s.ingest_batch(&["alpha beta gamma"]).unwrap();
        let q = Request::Boolean("alpha".into());
        let first = s.execute(&q).unwrap();
        let second = s.execute(&q).unwrap();
        assert_eq!(first, second);
        let stats = s.stats();
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        // New batch changes the answer; the stale entry must not serve.
        s.ingest_batch(&["alpha again here"]).unwrap();
        let third = s.execute(&q).unwrap();
        assert_eq!(docs_of(&third), vec![1, 2]);
        assert_eq!(third.epoch, 2);
        assert_eq!(s.stats().cache_stale_drops, 1);
    }

    #[test]
    fn uncacheable_requests_bypass_the_cache() {
        let s = service(16);
        s.ingest_batch(&["one document"]).unwrap();
        s.execute(&Request::Doc(1)).unwrap();
        s.execute(&Request::Ping).unwrap();
        s.execute(&Request::Stats).unwrap();
        let stats = s.stats();
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 0));
        assert_eq!(stats.queries, 3);
    }

    #[test]
    fn bad_queries_are_typed_bad_requests() {
        let s = service(4);
        s.ingest_batch(&["some text"]).unwrap();
        let err = s.execute(&Request::Boolean("(cat and".into())).unwrap_err();
        assert_eq!(err.code(), "badrequest");
    }

    #[test]
    fn stats_snapshot_counts() {
        let s = service(2);
        s.ingest_batch(&["a b c", "b c d"]).unwrap();
        let q = Request::Boolean("b".into());
        s.execute(&q).unwrap();
        s.execute(&q).unwrap();
        let stats = s.stats();
        assert_eq!(stats.docs, 2);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.cache_hits, 1);
    }
}
