//! The engine abstraction the serving layer sits on.
//!
//! [`ServeEngine`] is the split personality every servable engine must
//! have: queries on `&self` (so N reader threads share one engine under a
//! read lock) and updates on `&mut self` (so the single writer serializes
//! through the write lock). Both of the repo's engines qualify —
//! [`SearchEngine`] (volatile metadata) and [`DurableEngine`] (WAL +
//! checkpoints, which additionally supports [`ServeEngine::checkpoint`]
//! while serving).
//!
//! The read surface is one required method: [`ServeEngine::execute`] over
//! the typed [`EngineQuery`]. The historical per-verb methods
//! (`boolean_str`, `phrase`, …) remain as deprecated default shims over
//! `execute`, so an engine implements exactly one dispatch point and new
//! verbs (like BM25 `Rank`) need no trait change at all.

use invidx_core::cache::CacheStats;
use invidx_core::index::BatchReport;
use invidx_core::postings::PostingList;
use invidx_core::types::{DocId, IndexError, Result};
use invidx_durable::WalRecord;
use invidx_ir::{
    DurableEngine, EngineQuery, EngineSnapshot, Hit, QueryOutput, SearchEngine,
};

/// The error a deprecated per-verb shim reports when a custom `execute`
/// implementation answers with the wrong [`QueryOutput`] variant.
fn mismatched(verb: &str, got: &QueryOutput) -> IndexError {
    IndexError::Corruption(format!(
        "ServeEngine::execute answered {verb} with a mismatched output variant: {got:?}"
    ))
}

/// Query-on-`&self`, update-on-`&mut self` — the contract that lets
/// [`crate::QueryService`] serialize writers while serving reads from
/// published copy-on-write snapshots.
pub trait ServeEngine: Send + Sync + 'static {
    /// Execute one typed query. This is the single read entry point; all
    /// per-verb read methods are deprecated shims over it, so the output
    /// variant is determined by the query variant.
    fn execute(&self, query: &EngineQuery) -> Result<QueryOutput>;

    /// Parse and evaluate a boolean query string.
    #[deprecated(note = "construct an `EngineQuery::Boolean` and call `execute`")]
    fn boolean_str(&self, query: &str) -> Result<PostingList> {
        match self.execute(&EngineQuery::Boolean(query.to_string()))? {
            QueryOutput::Docs(list) => Ok(list),
            other => Err(mismatched("QUERY", &other)),
        }
    }

    /// Phrase query: the words occur contiguously, in order.
    #[deprecated(note = "construct an `EngineQuery::Phrase` and call `execute`")]
    fn phrase(&self, phrase: &str) -> Result<PostingList> {
        match self.execute(&EngineQuery::Phrase(phrase.to_string()))? {
            QueryOutput::Docs(list) => Ok(list),
            other => Err(mismatched("PHRASE", &other)),
        }
    }

    /// Proximity query: both words within `window` positions.
    #[deprecated(note = "construct an `EngineQuery::Near` and call `execute`")]
    fn within(&self, w1: &str, w2: &str, window: u32) -> Result<PostingList> {
        let query =
            EngineQuery::Near { w1: w1.to_string(), w2: w2.to_string(), window };
        match self.execute(&query)? {
            QueryOutput::Docs(list) => Ok(list),
            other => Err(mismatched("NEAR", &other)),
        }
    }

    /// Top-k vector-model search seeded by a text.
    #[deprecated(note = "construct an `EngineQuery::Like` and call `execute`")]
    fn more_like_this(&self, text: &str, k: usize) -> Result<Vec<Hit>> {
        match self.execute(&EngineQuery::Like { text: text.to_string(), k })? {
            QueryOutput::Hits(hits) => Ok(hits),
            other => Err(mismatched("LIKE", &other)),
        }
    }

    /// The stored text of a document.
    #[deprecated(note = "construct an `EngineQuery::Doc` and call `execute`")]
    fn document(&self, doc: DocId) -> Result<Option<String>> {
        match self.execute(&EngineQuery::Doc(doc))? {
            QueryOutput::Text(text) => Ok(text),
            other => Err(mismatched("DOC", &other)),
        }
    }

    /// Document frequency per term (0 for unknown words) — the DF phase of
    /// the router's two-phase distributed LIKE/RANK.
    #[deprecated(note = "construct an `EngineQuery::Dfs` and call `execute`")]
    fn term_dfs(&self, terms: &[String]) -> Result<Vec<u64>> {
        match self.execute(&EngineQuery::Dfs(terms.to_vec()))? {
            QueryOutput::Dfs { dfs, .. } => Ok(dfs),
            other => Err(mismatched("DF", &other)),
        }
    }

    /// Top-k scoring with caller-supplied per-term contributions, applied
    /// in slice order (the router's WLIKE phase ships corpus-global idf
    /// weights in canonical sorted-term order).
    #[deprecated(note = "construct an `EngineQuery::WeightedLike` and call `execute`")]
    fn weighted_like(&self, terms: &[(String, f64)], k: usize) -> Result<Vec<Hit>> {
        match self.execute(&EngineQuery::WeightedLike { terms: terms.to_vec(), k })? {
            QueryOutput::Hits(hits) => Ok(hits),
            other => Err(mismatched("WLIKE", &other)),
        }
    }

    /// Add a document to the current batch (not yet visible as a flushed
    /// epoch; the serving writer always pairs adds with a flush).
    fn add_document(&mut self, text: &str) -> std::result::Result<DocId, String>;
    /// Flush the current batch; the serving layer bumps the epoch on
    /// success.
    fn flush(&mut self) -> std::result::Result<BatchReport, String>;
    /// Write a durable checkpoint, if this engine has one. Returns
    /// `Ok(None)` for engines without durability; `Ok(Some(bytes))` with
    /// the checkpoint size otherwise.
    fn checkpoint(&mut self) -> std::result::Result<Option<u64>, String> {
        Ok(None)
    }

    /// Counters of the engine's block cache, if one is configured
    /// (`IndexConfig::cache_blocks > 0`). The STATS verb surfaces these so
    /// operators can see device-read savings next to result-cache hits.
    fn block_cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Bytes of write-ahead log not yet folded into a checkpoint — the
    /// replay debt a crash would incur. `None` for volatile engines; the
    /// telemetry layer publishes it as the WAL-lag gauge.
    fn wal_bytes(&self) -> Option<u64> {
        None
    }

    /// Committed batches (0 for engines without a durable batch counter).
    /// Anchors serving epochs to persistent state: a service constructed
    /// with [`crate::QueryService::with_config_at`] over this value keeps
    /// epochs comparable across restarts and replicas, which is what
    /// replication lag (primary epoch − replica epoch) is measured in.
    fn batches(&self) -> u64 {
        0
    }

    /// Committed WAL records after `from_batch` — the primary half of WAL
    /// shipping. `Err` for engines without a WAL.
    fn wal_records_from(&self, from_batch: u64) -> std::result::Result<Vec<WalRecord>, String> {
        let _ = from_batch;
        Err("engine has no write-ahead log".into())
    }

    /// Apply one shipped WAL record (the replica half of WAL shipping);
    /// returns the new committed batch count. `Err` for engines without a
    /// WAL.
    fn apply_replicated(&mut self, record: &WalRecord) -> std::result::Result<u64, String> {
        let _ = record;
        Err("engine has no write-ahead log".into())
    }

    /// Materialize an immutable point-in-time view of the engine for the
    /// lock-free read path. The serving writer calls this at every commit
    /// point, passing the previously published view so unchanged posting
    /// lists and texts are shared rather than re-read.
    fn snapshot(
        &mut self,
        prev: Option<&EngineSnapshot>,
    ) -> std::result::Result<EngineSnapshot, String>;

    /// Documents indexed so far.
    fn total_docs(&self) -> u64;
    /// Distinct words interned so far.
    fn vocabulary_size(&self) -> usize;
}

impl ServeEngine for SearchEngine {
    fn execute(&self, query: &EngineQuery) -> Result<QueryOutput> {
        SearchEngine::execute(self, query)
    }

    fn add_document(&mut self, text: &str) -> std::result::Result<DocId, String> {
        SearchEngine::add_document(self, text).map_err(|e| e.to_string())
    }

    fn flush(&mut self) -> std::result::Result<BatchReport, String> {
        SearchEngine::flush(self).map_err(|e| e.to_string())
    }

    fn block_cache_stats(&self) -> Option<CacheStats> {
        SearchEngine::cache_stats(self)
    }

    fn snapshot(
        &mut self,
        prev: Option<&EngineSnapshot>,
    ) -> std::result::Result<EngineSnapshot, String> {
        SearchEngine::snapshot(self, prev).map_err(|e| e.to_string())
    }

    fn total_docs(&self) -> u64 {
        SearchEngine::total_docs(self)
    }

    fn vocabulary_size(&self) -> usize {
        SearchEngine::vocabulary_size(self)
    }
}

impl ServeEngine for DurableEngine {
    fn execute(&self, query: &EngineQuery) -> Result<QueryOutput> {
        DurableEngine::execute(self, query)
    }

    fn add_document(&mut self, text: &str) -> std::result::Result<DocId, String> {
        DurableEngine::add_document(self, text).map_err(|e| e.to_string())
    }

    fn flush(&mut self) -> std::result::Result<BatchReport, String> {
        DurableEngine::flush(self).map_err(|e| e.to_string())
    }

    fn checkpoint(&mut self) -> std::result::Result<Option<u64>, String> {
        DurableEngine::checkpoint(self).map(Some).map_err(|e| e.to_string())
    }

    fn block_cache_stats(&self) -> Option<CacheStats> {
        DurableEngine::cache_stats(self)
    }

    fn wal_bytes(&self) -> Option<u64> {
        Some(self.index().wal_size())
    }

    fn batches(&self) -> u64 {
        self.index().batches()
    }

    fn wal_records_from(&self, from_batch: u64) -> std::result::Result<Vec<WalRecord>, String> {
        DurableEngine::wal_records_from(self, from_batch).map_err(|e| e.to_string())
    }

    fn apply_replicated(&mut self, record: &WalRecord) -> std::result::Result<u64, String> {
        DurableEngine::apply_replicated(self, record).map_err(|e| e.to_string())
    }

    fn snapshot(
        &mut self,
        prev: Option<&EngineSnapshot>,
    ) -> std::result::Result<EngineSnapshot, String> {
        DurableEngine::snapshot(self, prev).map_err(|e| e.to_string())
    }

    fn total_docs(&self) -> u64 {
        DurableEngine::total_docs(self)
    }

    fn vocabulary_size(&self) -> usize {
        DurableEngine::vocabulary_size(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invidx_core::index::IndexConfig;
    use invidx_disk::sparse_array;

    /// The deprecated per-verb shims must answer exactly what `execute`
    /// answers — they are the compatibility surface for older callers.
    #[test]
    #[allow(deprecated)]
    fn per_verb_shims_agree_with_execute() {
        let mut engine =
            SearchEngine::create(sparse_array(2, 40_000, 256), IndexConfig::small()).unwrap();
        engine.add_document("the cat sat on the mat").unwrap();
        engine.add_document("the dog chased the cat").unwrap();
        engine.flush().unwrap();
        let serve: &dyn ServeEngine = &engine;
        let direct = serve
            .execute(&EngineQuery::Boolean("cat and dog".into()))
            .unwrap();
        assert_eq!(
            serve.boolean_str("cat and dog").unwrap(),
            direct.docs().unwrap().clone()
        );
        assert_eq!(
            serve.term_dfs(&["cat".into(), "emu".into()]).unwrap(),
            vec![2, 0]
        );
        assert_eq!(
            serve.document(DocId(1)).unwrap().as_deref(),
            Some("the cat sat on the mat")
        );
        let like = serve.more_like_this("cat dog", 4).unwrap();
        let via_execute = serve
            .execute(&EngineQuery::Like { text: "cat dog".into(), k: 4 })
            .unwrap();
        assert_eq!(like, via_execute.hits().unwrap().to_vec());
    }
}
