//! The engine abstraction the serving layer sits on.
//!
//! [`ServeEngine`] is the split personality every servable engine must
//! have: queries on `&self` (so N reader threads share one engine under a
//! read lock) and updates on `&mut self` (so the single writer serializes
//! through the write lock). Both of the repo's engines qualify —
//! [`SearchEngine`] (volatile metadata) and [`DurableEngine`] (WAL +
//! checkpoints, which additionally supports [`ServeEngine::checkpoint`]
//! while serving).

use invidx_core::cache::CacheStats;
use invidx_core::index::BatchReport;
use invidx_core::postings::PostingList;
use invidx_core::types::{DocId, Result};
use invidx_durable::WalRecord;
use invidx_ir::{DurableEngine, EngineSnapshot, Hit, SearchEngine};

/// Query-on-`&self`, update-on-`&mut self` — the contract that lets
/// [`crate::QueryService`] serialize writers while serving reads from
/// published copy-on-write snapshots.
pub trait ServeEngine: Send + Sync + 'static {
    /// Parse and evaluate a boolean query string.
    fn boolean_str(&self, query: &str) -> Result<PostingList>;
    /// Phrase query: the words occur contiguously, in order.
    fn phrase(&self, phrase: &str) -> Result<PostingList>;
    /// Proximity query: both words within `window` positions.
    fn within(&self, w1: &str, w2: &str, window: u32) -> Result<PostingList>;
    /// Top-k vector-model search seeded by a text.
    fn more_like_this(&self, text: &str, k: usize) -> Result<Vec<Hit>>;
    /// The stored text of a document.
    fn document(&self, doc: DocId) -> Result<Option<String>>;

    /// Document frequency per term (0 for unknown words) — the DF phase of
    /// the router's two-phase distributed LIKE. The default (all zeros)
    /// suits engines that never sit behind a router.
    fn term_dfs(&self, terms: &[String]) -> Result<Vec<u64>> {
        Ok(vec![0; terms.len()])
    }

    /// Top-k scoring with caller-supplied per-term contributions, applied
    /// in slice order (the router's WLIKE phase ships corpus-global idf
    /// weights in canonical sorted-term order).
    fn weighted_like(&self, terms: &[(String, f64)], k: usize) -> Result<Vec<Hit>> {
        let _ = (terms, k);
        Ok(Vec::new())
    }

    /// Add a document to the current batch (not yet visible as a flushed
    /// epoch; the serving writer always pairs adds with a flush).
    fn add_document(&mut self, text: &str) -> std::result::Result<DocId, String>;
    /// Flush the current batch; the serving layer bumps the epoch on
    /// success.
    fn flush(&mut self) -> std::result::Result<BatchReport, String>;
    /// Write a durable checkpoint, if this engine has one. Returns
    /// `Ok(None)` for engines without durability; `Ok(Some(bytes))` with
    /// the checkpoint size otherwise.
    fn checkpoint(&mut self) -> std::result::Result<Option<u64>, String> {
        Ok(None)
    }

    /// Counters of the engine's block cache, if one is configured
    /// (`IndexConfig::cache_blocks > 0`). The STATS verb surfaces these so
    /// operators can see device-read savings next to result-cache hits.
    fn block_cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Bytes of write-ahead log not yet folded into a checkpoint — the
    /// replay debt a crash would incur. `None` for volatile engines; the
    /// telemetry layer publishes it as the WAL-lag gauge.
    fn wal_bytes(&self) -> Option<u64> {
        None
    }

    /// Committed batches (0 for engines without a durable batch counter).
    /// Anchors serving epochs to persistent state: a service constructed
    /// with [`crate::QueryService::with_config_at`] over this value keeps
    /// epochs comparable across restarts and replicas, which is what
    /// replication lag (primary epoch − replica epoch) is measured in.
    fn batches(&self) -> u64 {
        0
    }

    /// Committed WAL records after `from_batch` — the primary half of WAL
    /// shipping. `Err` for engines without a WAL.
    fn wal_records_from(&self, from_batch: u64) -> std::result::Result<Vec<WalRecord>, String> {
        let _ = from_batch;
        Err("engine has no write-ahead log".into())
    }

    /// Apply one shipped WAL record (the replica half of WAL shipping);
    /// returns the new committed batch count. `Err` for engines without a
    /// WAL.
    fn apply_replicated(&mut self, record: &WalRecord) -> std::result::Result<u64, String> {
        let _ = record;
        Err("engine has no write-ahead log".into())
    }

    /// Materialize an immutable point-in-time view of the engine for the
    /// lock-free read path. The serving writer calls this at every commit
    /// point, passing the previously published view so unchanged posting
    /// lists and texts are shared rather than re-read.
    fn snapshot(
        &mut self,
        prev: Option<&EngineSnapshot>,
    ) -> std::result::Result<EngineSnapshot, String>;

    /// Documents indexed so far.
    fn total_docs(&self) -> u64;
    /// Distinct words interned so far.
    fn vocabulary_size(&self) -> usize;
}

impl ServeEngine for SearchEngine {
    fn boolean_str(&self, query: &str) -> Result<PostingList> {
        SearchEngine::boolean_str(self, query)
    }

    fn phrase(&self, phrase: &str) -> Result<PostingList> {
        SearchEngine::phrase(self, phrase)
    }

    fn within(&self, w1: &str, w2: &str, window: u32) -> Result<PostingList> {
        SearchEngine::within(self, w1, w2, window)
    }

    fn more_like_this(&self, text: &str, k: usize) -> Result<Vec<Hit>> {
        SearchEngine::more_like_this(self, text, k)
    }

    fn document(&self, doc: DocId) -> Result<Option<String>> {
        SearchEngine::document(self, doc)
    }

    fn term_dfs(&self, terms: &[String]) -> Result<Vec<u64>> {
        SearchEngine::term_dfs(self, terms)
    }

    fn weighted_like(&self, terms: &[(String, f64)], k: usize) -> Result<Vec<Hit>> {
        SearchEngine::weighted_like(self, terms, k)
    }

    fn add_document(&mut self, text: &str) -> std::result::Result<DocId, String> {
        SearchEngine::add_document(self, text).map_err(|e| e.to_string())
    }

    fn flush(&mut self) -> std::result::Result<BatchReport, String> {
        SearchEngine::flush(self).map_err(|e| e.to_string())
    }

    fn block_cache_stats(&self) -> Option<CacheStats> {
        SearchEngine::cache_stats(self)
    }

    fn snapshot(
        &mut self,
        prev: Option<&EngineSnapshot>,
    ) -> std::result::Result<EngineSnapshot, String> {
        SearchEngine::snapshot(self, prev).map_err(|e| e.to_string())
    }

    fn total_docs(&self) -> u64 {
        SearchEngine::total_docs(self)
    }

    fn vocabulary_size(&self) -> usize {
        SearchEngine::vocabulary_size(self)
    }
}

impl ServeEngine for DurableEngine {
    fn boolean_str(&self, query: &str) -> Result<PostingList> {
        DurableEngine::boolean_str(self, query)
    }

    fn phrase(&self, phrase: &str) -> Result<PostingList> {
        DurableEngine::phrase(self, phrase)
    }

    fn within(&self, w1: &str, w2: &str, window: u32) -> Result<PostingList> {
        DurableEngine::within(self, w1, w2, window)
    }

    fn more_like_this(&self, text: &str, k: usize) -> Result<Vec<Hit>> {
        DurableEngine::more_like_this(self, text, k)
    }

    fn document(&self, doc: DocId) -> Result<Option<String>> {
        DurableEngine::document(self, doc)
    }

    fn term_dfs(&self, terms: &[String]) -> Result<Vec<u64>> {
        DurableEngine::term_dfs(self, terms)
    }

    fn weighted_like(&self, terms: &[(String, f64)], k: usize) -> Result<Vec<Hit>> {
        DurableEngine::weighted_like(self, terms, k)
    }

    fn add_document(&mut self, text: &str) -> std::result::Result<DocId, String> {
        DurableEngine::add_document(self, text).map_err(|e| e.to_string())
    }

    fn flush(&mut self) -> std::result::Result<BatchReport, String> {
        DurableEngine::flush(self).map_err(|e| e.to_string())
    }

    fn checkpoint(&mut self) -> std::result::Result<Option<u64>, String> {
        DurableEngine::checkpoint(self).map(Some).map_err(|e| e.to_string())
    }

    fn block_cache_stats(&self) -> Option<CacheStats> {
        DurableEngine::cache_stats(self)
    }

    fn wal_bytes(&self) -> Option<u64> {
        Some(self.index().wal_size())
    }

    fn batches(&self) -> u64 {
        self.index().batches()
    }

    fn wal_records_from(&self, from_batch: u64) -> std::result::Result<Vec<WalRecord>, String> {
        DurableEngine::wal_records_from(self, from_batch).map_err(|e| e.to_string())
    }

    fn apply_replicated(&mut self, record: &WalRecord) -> std::result::Result<u64, String> {
        DurableEngine::apply_replicated(self, record).map_err(|e| e.to_string())
    }

    fn snapshot(
        &mut self,
        prev: Option<&EngineSnapshot>,
    ) -> std::result::Result<EngineSnapshot, String> {
        DurableEngine::snapshot(self, prev).map_err(|e| e.to_string())
    }

    fn total_docs(&self) -> u64 {
        DurableEngine::total_docs(self)
    }

    fn vocabulary_size(&self) -> usize {
        DurableEngine::vocabulary_size(self)
    }
}
