//! Satellite check: the `STATS` verb over TCP and the in-process
//! `QueryService::stats()` must agree field-by-field, and a scripted
//! query/flush sequence must move *all* the result-cache and block-cache
//! counters (hit, miss, stale drop, eviction) off zero — so a dashboard
//! built on either surface sees the same, complete story.

use invidx_core::index::IndexConfig;
use invidx_disk::sparse_array;
use invidx_ir::SearchEngine;
use invidx_serve::{parse_response, Payload, QueryService, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

#[test]
fn stats_verb_matches_in_process_counters() {
    // Geometry chosen so the counters are forced to move: both "hot" and
    // "warm" have 120 postings (≫ the 40-unit bucket capacity, so they
    // migrate to 12-block long lists), the block cache holds 16 blocks in
    // one shard (warm's read evicts hot's frames), and the result cache
    // holds exactly one entry (the warm lookup evicts the hot entry).
    let mut config = IndexConfig::small();
    config.cache_blocks = 16;
    config.cache_shards = 1;
    let array = sparse_array(2, 50_000, 256);
    let engine = SearchEngine::create(array, config).unwrap();
    let serve = ServeConfig::builder().result_cache_capacity(1).readers(1).build().unwrap();
    let service = Arc::new(QueryService::with_config(engine, serve));
    let docs: Vec<String> = (0..120)
        .map(|i| format!("hot f{i}"))
        .chain((0..120).map(|i| format!("warm g{i}")))
        .collect();
    service.ingest_batch(&docs).unwrap();

    let srv = Server::bind("127.0.0.1:0", Arc::clone(&service), serve).unwrap();
    let stream = TcpStream::connect(srv.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut roundtrip = |line: &str| -> String {
        writeln!(&stream, "{line}").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.starts_with("OK "), "{line} failed: {reply}");
        reply
    };

    // Result-cache miss + cold block-cache read (12 misses, 12 inserts).
    roundtrip("QUERY hot");
    // Epoch bump: the cached "hot" entry is now stale.
    roundtrip("ADD unrelated zzz");
    roundtrip("FLUSH");
    // Stale drop + recompute; the blocks are still resident → block hits.
    roundtrip("QUERY hot");
    // Same epoch now → result-cache hit.
    roundtrip("QUERY hot");
    // New key: result miss, and its insert evicts the "hot" entry
    // (capacity 1); its 12-block read evicts hot's frames (16-block cache).
    roundtrip("QUERY warm");

    let reply = roundtrip("STATS");
    let resp = parse_response(&reply).unwrap().unwrap();
    let Payload::Stats(wire) = resp.payload else { panic!("want stats: {reply}") };
    let local = service.stats();

    // The two surfaces must agree exactly — same counters, same engine.
    assert_eq!(wire, local, "wire STATS diverged from in-process stats()");

    // And the scripted sequence moved every cache counter off zero.
    assert!(wire.docs >= 241, "240 corpus docs + 1 added");
    assert!(wire.queries >= 4);
    assert_eq!(wire.batches, 2);
    assert!(wire.cache_misses >= 2, "hot cold lookup + warm lookup");
    assert!(wire.cache_stale_drops >= 1, "epoch bump must stale the entry");
    assert!(wire.cache_hits >= 1, "same-epoch re-query must hit");
    assert!(wire.cache_evictions >= 1, "capacity-1 cache must evict");
    // Block-cache hits/misses count range reads, not blocks; evictions
    // count frames.
    assert!(wire.block_cache_misses >= 1, "cold long-list read");
    assert!(wire.block_cache_hits >= 1, "resident re-read must hit");
    assert!(wire.block_cache_evictions >= 1, "16-frame budget must evict");
    assert_eq!(wire.shed, 0);
    assert_eq!(wire.timeouts, 0);
    srv.shutdown();
}
