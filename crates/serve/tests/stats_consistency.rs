//! Satellite check: the `STATS` verb over TCP and the in-process
//! `QueryService::stats()` must agree field-by-field, and a scripted
//! sequence must move *all* the result-cache and block-cache counters
//! (hit, miss, stale drop, eviction) off zero — so a dashboard built on
//! either surface sees the same, complete story.
//!
//! Counter choreography under the snapshot read path: queries never touch
//! the block device, so all block-cache traffic happens when the writer
//! *materializes* a snapshot. A miss is a cold dirty-list read at
//! publish; a hit needs a re-read with no intervening append (appends
//! invalidate the written tail frame, and a range read only counts as a
//! hit when fully resident) — exactly what the full re-materialization of
//! a service restart does, so the script rewraps the engine mid-way.

use invidx_core::index::IndexConfig;
use invidx_disk::sparse_array;
use invidx_ir::SearchEngine;
use invidx_serve::{parse_response, Payload, QueryService, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

#[test]
fn stats_verb_matches_in_process_counters() {
    // Geometry chosen so the counters are forced to move deterministically:
    // "hot" has 120 postings (≫ the 40-unit bucket capacity, so it
    // migrates to a 12-block long list) and its whole publish working set
    // (list + texts) fits the 64-frame block cache, so the restart re-read
    // hits no matter what order materialization walks the vocabulary;
    // "warm" has 360 postings, and its batch pushes the cumulative frame
    // count past the budget, forcing evictions. The result cache holds
    // exactly one entry (the warm lookup evicts the hot entry).
    let mut config = IndexConfig::small();
    config.cache_blocks = 64;
    config.cache_shards = 1;
    let array = sparse_array(2, 50_000, 256);
    let engine = SearchEngine::create(array, config).unwrap();
    let serve = ServeConfig::builder().result_cache_capacity(1).readers(1).build().unwrap();

    // Publish #1: materializing "hot" reads its 12 blocks cold —
    // block-cache misses.
    let staging = QueryService::with_config(engine, serve).unwrap();
    let hot: Vec<String> = (0..120).map(|i| format!("hot f{i}")).collect();
    staging.ingest_batch(&hot).unwrap();

    // Restart-shaped rewrap: the full re-materialization re-reads hot's
    // still-resident blocks with no intervening append — block-cache hits.
    // Anchored at epoch 1 so epochs keep counting batches across the swap.
    let service =
        Arc::new(QueryService::with_config_at(staging.into_engine(), serve, 1).unwrap());

    // Publish #3: warm's cold blocks push the 64-frame budget past
    // capacity — block-cache evictions.
    let warm: Vec<String> = (0..360).map(|i| format!("warm g{i}")).collect();
    service.ingest_batch(&warm).unwrap();

    let srv = Server::bind("127.0.0.1:0", Arc::clone(&service), serve).unwrap();
    let stream = TcpStream::connect(srv.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut roundtrip = |line: &str| -> String {
        writeln!(&stream, "{line}").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.starts_with("OK "), "{line} failed: {reply}");
        reply
    };

    // Result-cache miss (cold key).
    roundtrip("QUERY hot");
    // Epoch bump: the cached "hot" entry is now stale.
    roundtrip("ADD unrelated zzz");
    roundtrip("FLUSH");
    // Stale drop + recompute against the new snapshot.
    roundtrip("QUERY hot");
    // Same epoch now → result-cache hit.
    roundtrip("QUERY hot");
    // New key: result miss, and its same-epoch insert evicts the "hot"
    // entry (capacity 1) — a capacity eviction, not a stale drop.
    roundtrip("QUERY warm");

    let reply = roundtrip("STATS");
    let resp = parse_response(&reply).unwrap().unwrap();
    let Payload::Stats(wire) = resp.payload else { panic!("want stats: {reply}") };
    let local = service.stats();

    // The two surfaces must agree exactly — same counters, same engine.
    assert_eq!(wire, local, "wire STATS diverged from in-process stats()");

    // And the scripted sequence moved every cache counter off zero.
    assert!(wire.docs >= 481, "480 corpus docs + 1 added");
    assert!(wire.queries >= 4);
    assert_eq!(wire.batches, 2, "warm batch + wire flush through this service");
    assert!(wire.cache_misses >= 2, "hot cold lookup + warm lookup");
    assert!(wire.cache_stale_drops >= 1, "epoch bump must stale the entry");
    assert!(wire.cache_hits >= 1, "same-epoch re-query must hit");
    assert!(wire.cache_evictions >= 1, "capacity-1 cache must evict");
    // Block-cache hits/misses count range reads at materialization time,
    // not blocks; evictions count frames.
    assert!(wire.block_cache_misses >= 1, "cold long-list read at publish");
    assert!(wire.block_cache_hits >= 1, "restart re-materialization must hit");
    assert!(wire.block_cache_evictions >= 1, "64-frame budget must evict");
    assert_eq!(wire.shed, 0);
    assert_eq!(wire.timeouts, 0);
    srv.shutdown();
}
