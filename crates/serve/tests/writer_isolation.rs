//! Regression tests for two serve-layer locking bugs fixed alongside the
//! copy-on-write snapshot read path:
//!
//! 1. The writer must never wait behind result-cache contention. The old
//!    read path probed the global cache mutex *while holding the engine
//!    read lock*, so a reader parked on a hot cache could wedge every
//!    ingest behind the rwlock's writer queue. Now the cache probe holds
//!    no other lock and the writer takes no lock a reader can hold.
//!
//! 2. A metrics scrape that finds the writer busy must say so: the WAL
//!    gauge refresh uses `try_lock`, and a skipped refresh increments
//!    `serve_gauge_scrape_skipped_total` and re-publishes the last-known
//!    value instead of silently leaving the gauge to rot.

use invidx_core::index::IndexConfig;
use invidx_disk::sparse_array;
use invidx_durable::{DurableOptions, StoreGeometry};
use invidx_ir::{DurableEngine, SearchEngine};
use invidx_obs::names;
use invidx_serve::{Payload, QueryService, Request, ServeConfig};
use std::sync::{mpsc, Arc};
use std::time::Duration;

#[test]
fn writer_completes_while_result_cache_is_held() {
    let array = sparse_array(2, 50_000, 256);
    let engine = SearchEngine::create(array, IndexConfig::small()).unwrap();
    let serve = ServeConfig::builder().result_cache_capacity(8).readers(1).build().unwrap();
    let service = Arc::new(QueryService::with_config(engine, serve).unwrap());
    service.ingest_batch(&["cat dog", "dog fox"]).unwrap();

    // A rogue holder pins every result-cache shard lock.
    let (held_tx, held_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let holder = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            service.with_blocked_cache(|| {
                held_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            });
        })
    };
    held_rx.recv().unwrap();

    // A reader parks on the shard lock mid-probe. Crucially it holds
    // nothing else while parked — its snapshot is a lock-free load.
    let reader = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || service.execute(&Request::Boolean("cat".into())).unwrap())
    };
    std::thread::sleep(Duration::from_millis(50));

    // The regression: with the reader parked and the cache held, an
    // ingest must still land promptly. (Under the old rwlock path the
    // parked reader pinned the read lock, so this would deadlock until
    // the cache was released.)
    let (done_tx, done_rx) = mpsc::channel();
    let writer = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            service.ingest_batch(&["bee ant"]).unwrap();
            done_tx.send(()).unwrap();
        })
    };
    done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("writer must not wait behind result-cache contention");
    assert_eq!(service.epoch(), 2, "the batch committed while the cache was held");

    release_tx.send(()).unwrap();
    holder.join().unwrap();
    writer.join().unwrap();
    let response = reader.join().unwrap();
    assert_eq!(response.payload, Payload::Docs(vec![1]), "parked reader still answers");
}

#[test]
fn skipped_gauge_scrape_is_counted_and_wal_gauge_holds_last_value() {
    let dir = std::env::temp_dir()
        .join(format!("invidx-serve-gauge-scrape-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let geom = StoreGeometry { disks: 2, blocks_per_disk: 20_000, block_size: 256 };
    let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
    let engine = DurableEngine::create(&dir, IndexConfig::small(), geom, opts).unwrap();
    let service =
        Arc::new(QueryService::with_config(engine, ServeConfig::default()).unwrap());
    service.ingest_batch(&["cat dog", "dog fox bee"]).unwrap();

    let gauge = invidx_obs::registry().gauge(names::INDEX_WAL_BYTES);
    let skipped = invidx_obs::registry().counter(names::SERVE_GAUGE_SCRAPE_SKIPPED);

    // Healthy scrape: the WAL gauge reflects real replay debt.
    service.publish_gauges();
    let wal = gauge.get();
    assert!(wal > 0, "two uncheckpointed batches must leave WAL bytes");
    let skips = skipped.get();

    // Poison the gauge, then scrape with the writer wedged: the skip is
    // counted and the last-known value is re-published — a dashboard sees
    // "stale but honest", not a silent gap or a zero.
    gauge.set(-1);
    service.with_blocked_writer(|| {
        service.publish_gauges();
    });
    assert_eq!(skipped.get(), skips + 1, "busy-writer scrape must be counted");
    assert_eq!(gauge.get(), wal, "last-known WAL value must be re-published");

    // Writer released: scrapes go back to live values, no new skips.
    service.publish_gauges();
    assert_eq!(skipped.get(), skips + 1);
    assert_eq!(gauge.get(), wal);
}
