//! Acceptance test for end-to-end request tracing: a sampled query over
//! TCP must produce a span tree on the NDJSON event stream whose stages
//! (queue, cache, engine) are all present and whose top-level stages sum
//! to within 10% of the measured end-to-end latency (the root `request`
//! span) — and a sampled ingest must show where the device traffic went,
//! because under the snapshot read path the block-cache and disk layers
//! are only touched when the writer materializes the next snapshot.
//!
//! Single `#[test]` on purpose: the event sink is process-global.

use invidx_core::index::IndexConfig;
use invidx_disk::sparse_array;
use invidx_ir::SearchEngine;
use invidx_serve::{QueryService, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Minimal field extraction from one NDJSON event line (the events are
/// flat objects with unescaped keys, rendered by invidx-obs itself).
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

fn field_i64(line: &str, key: &str) -> Option<i64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

#[derive(Debug, Clone)]
struct Span {
    name: String,
    parent: i64,
    dur_us: u64,
    blocks: u64,
}

/// All spans of one trace, indexed by span id (root is index 0).
fn spans_of(events: &str, trace_id: u64) -> Vec<Span> {
    let mut spans: Vec<(u64, Span)> = events
        .lines()
        .filter(|l| l.contains("\"kind\":\"tspan\""))
        .filter(|l| field_u64(l, "trace_id") == Some(trace_id))
        .map(|l| {
            (
                field_u64(l, "id").unwrap(),
                Span {
                    name: field_str(l, "name").unwrap().to_string(),
                    parent: field_i64(l, "parent").unwrap(),
                    dur_us: field_u64(l, "dur_us").unwrap(),
                    blocks: field_u64(l, "blocks").unwrap(),
                },
            )
        })
        .collect();
    spans.sort_by_key(|(id, _)| *id);
    spans.into_iter().map(|(_, s)| s).collect()
}

/// Is span `i` inside the subtree rooted at `root`?
fn within(spans: &[Span], mut i: usize, root: usize) -> bool {
    while spans[i].parent >= 0 {
        if spans[i].parent as usize == root {
            return true;
        }
        i = spans[i].parent as usize;
    }
    false
}

#[test]
fn sampled_query_yields_decomposed_span_tree() {
    // A corpus where "hot" migrates to a long list (1500 postings ≫ the
    // 40-unit bucket capacity of IndexConfig::small), so the snapshot
    // materialization reaches the block-cache and disk layers.
    let mut config = IndexConfig::small();
    config.cache_blocks = 64;
    let array = sparse_array(2, 50_000, 256);
    let engine = SearchEngine::create(array, config).unwrap();
    // Result cache off so every query exercises the snapshot read path;
    // sample every request (queries and ingests alike).
    let serve = ServeConfig::builder()
        .result_cache_capacity(0)
        .trace_sample(1)
        .readers(2)
        .build()
        .unwrap();
    let service = Arc::new(QueryService::with_config(engine, serve).unwrap());

    // Sink installed before the ingest: the batch's sampled trace is the
    // one that carries the block-cache/disk spans now.
    invidx_obs::init_memory_event_sink();
    let docs: Vec<String> = (0..1500).map(|i| format!("hot filler{i}")).collect();
    service.ingest_batch(&docs).unwrap();

    let srv = Server::bind("127.0.0.1:0", service, serve).unwrap();
    let stream = TcpStream::connect(srv.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();
    // Several attempts: the 10% budget is checked against the best trace
    // so one scheduler hiccup cannot flake the test.
    for _ in 0..6 {
        writeln!(&stream, "QUERY hot").unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.starts_with("OK "), "query failed: {reply}");
    }
    srv.shutdown();
    let events = invidx_obs::take_memory_events().expect("memory sink");

    // --- The ingest trace: add/flush/publish, device traffic inside
    // publish (that is where the writer materializes the next snapshot).
    let ingest_ids: Vec<u64> = events
        .lines()
        .filter(|l| l.contains("\"kind\":\"trace\""))
        .filter(|l| field_str(l, "req") == Some("INGEST 1500"))
        .map(|l| field_u64(l, "trace_id").unwrap())
        .collect();
    assert_eq!(ingest_ids.len(), 1, "the batch ingest was sampled");
    let ispans = spans_of(&events, ingest_ids[0]);
    assert_eq!(ispans[0].name, "request");
    assert!(ispans[0].parent == -1 && ispans[0].dur_us > 0);
    for name in ["add", "flush", "publish"] {
        let s = ispans.iter().find(|s| s.name == name).unwrap_or_else(|| {
            panic!("stage {name} missing from ingest trace: {ispans:?}")
        });
        assert_eq!(s.parent, 0, "{name} must be a top-level ingest stage");
    }
    let publish_idx = ispans.iter().position(|s| s.name == "publish").unwrap();
    for name in ["block_cache", "disk"] {
        let idx = ispans.iter().position(|s| s.name == name).unwrap_or_else(|| {
            panic!("stage {name} missing from ingest trace: {ispans:?}")
        });
        assert!(within(&ispans, idx, publish_idx), "{name} must nest under publish");
    }
    // Per-stage block accounting: materializing the long list moved its
    // blocks through the cache, and the cold read fell through to disk.
    let bc_blocks: u64 =
        ispans.iter().filter(|s| s.name == "block_cache").map(|s| s.blocks).sum();
    assert!(bc_blocks >= 10, "long list spans many blocks, saw {bc_blocks}");
    let disk_blocks: u64 =
        ispans.iter().filter(|s| s.name == "disk").map(|s| s.blocks).sum();
    assert!(disk_blocks >= 10, "cold materialization must read the device");
    let iexplained: u64 =
        ispans.iter().filter(|s| s.parent == 0).map(|s| s.dur_us).sum();
    assert!(
        iexplained as f64 <= ispans[0].dur_us as f64 * 1.02,
        "ingest children cannot exceed the root"
    );

    // --- The query traces: queue/cache/engine decompose the latency;
    // no block-cache or disk span — the read path never touches either.
    let trace_ids: Vec<u64> = events
        .lines()
        .filter(|l| l.contains("\"kind\":\"trace\""))
        .filter(|l| field_str(l, "req") == Some("QUERY hot"))
        .map(|l| field_u64(l, "trace_id").unwrap())
        .collect();
    assert_eq!(trace_ids.len(), 6, "every query was sampled");

    let mut best_ratio = 0.0f64;
    for trace_id in &trace_ids {
        let spans = spans_of(&events, *trace_id);
        assert_eq!(spans[0].name, "request");
        assert!(spans[0].parent == -1 && spans[0].dur_us > 0);

        // Structure: queue/cache/engine are children of the root; the
        // engine subtree evaluates terms against the published snapshot.
        for name in ["queue", "cache", "engine"] {
            let s = spans.iter().find(|s| s.name == name).unwrap_or_else(|| {
                panic!("stage {name} missing from trace {trace_id}: {spans:?}")
            });
            assert_eq!(s.parent, 0, "{name} must be a top-level stage");
        }
        let engine_idx = spans.iter().position(|s| s.name == "engine").unwrap();
        let term_idx = spans.iter().position(|s| s.name == "term").unwrap_or_else(|| {
            panic!("stage term missing from trace {trace_id}: {spans:?}")
        });
        assert!(within(&spans, term_idx, engine_idx), "term must nest under engine");
        // Lock-free read path: a query trace that reached the block cache
        // or the disk model would mean the snapshot leaked device reads.
        assert!(
            !spans.iter().any(|s| s.name == "block_cache" || s.name == "disk"),
            "query must be served from the snapshot alone: {spans:?}"
        );

        // Decomposition: top-level stages must explain the end-to-end
        // latency (root duration) to within 10% on at least one trace.
        let total = spans[0].dur_us as f64;
        let explained: u64 =
            spans.iter().filter(|s| s.parent == 0).map(|s| s.dur_us).sum();
        let ratio = explained as f64 / total;
        assert!(
            ratio <= 1.02,
            "children cannot exceed the root: {explained} vs {total}"
        );
        best_ratio = best_ratio.max(ratio);
    }
    assert!(
        best_ratio >= 0.9,
        "stages must sum to within 10% of end-to-end latency; best {best_ratio:.3}"
    );
}
