//! Regression tests for publication failure *after* the commit point.
//!
//! A replica's `apply_replicated` (and a primary's `ingest_batch`) commit
//! the record to the engine — durably, for a `DurableEngine` — before the
//! next snapshot is materialized. If that materialization fails, the
//! service must NOT surface an error that leaves the epoch counter behind
//! the engine's committed batch count: the tailer would re-request the
//! same batch and the engine's gap check would reject it ("gap or
//! replay"), wedging replication until a restart. Instead publication is
//! *deferred*: the epoch advances with the commit, readers keep the
//! previous snapshot, the deferral is counted, and the committed state
//! surfaces at the next successful publication — the next record, or a
//! metrics scrape's catch-up.

use invidx_core::cache::CacheStats;
use invidx_core::index::{BatchReport, IndexConfig};
use invidx_core::types::{DocId, Result as IrResult};
use invidx_durable::{DurableOptions, StoreGeometry, WalRecord};
use invidx_ir::{DurableEngine, EngineQuery, EngineSnapshot, QueryOutput};
use invidx_obs::names;
use invidx_serve::{Payload, QueryService, Request, ServeConfig, ServeEngine};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("invidx-publish-deferral-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn create(dir: &Path) -> DurableEngine {
    let geometry = StoreGeometry { disks: 2, blocks_per_disk: 20_000, block_size: 256 };
    // Replication source contract: no checkpoints while shipping.
    let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
    DurableEngine::create(dir, IndexConfig::small(), geometry, opts).unwrap()
}

fn serve_cfg() -> ServeConfig {
    ServeConfig::builder().result_cache_capacity(0).build().unwrap()
}

/// A real durable engine whose snapshot materialization can be armed to
/// fail: every failure decrements the shared counter, so `store(2)` fails
/// exactly one publication attempt (incremental + full fallback).
struct FlakySnapshots {
    inner: DurableEngine,
    fail: Arc<AtomicU32>,
}

impl ServeEngine for FlakySnapshots {
    fn execute(&self, query: &EngineQuery) -> IrResult<QueryOutput> {
        self.inner.execute(query)
    }

    fn add_document(&mut self, text: &str) -> Result<DocId, String> {
        self.inner.add_document(text).map_err(|e| e.to_string())
    }

    fn flush(&mut self) -> Result<BatchReport, String> {
        self.inner.flush().map_err(|e| e.to_string())
    }

    fn block_cache_stats(&self) -> Option<CacheStats> {
        self.inner.cache_stats()
    }

    fn wal_bytes(&self) -> Option<u64> {
        Some(self.inner.index().wal_size())
    }

    fn batches(&self) -> u64 {
        self.inner.index().batches()
    }

    fn apply_replicated(&mut self, record: &WalRecord) -> Result<u64, String> {
        self.inner.apply_replicated(record).map_err(|e| e.to_string())
    }

    fn snapshot(&mut self, prev: Option<&EngineSnapshot>) -> Result<EngineSnapshot, String> {
        if self
            .fail
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err("injected: snapshot materialization failed".into());
        }
        self.inner.snapshot(prev).map_err(|e| e.to_string())
    }

    fn total_docs(&self) -> u64 {
        self.inner.total_docs()
    }

    fn vocabulary_size(&self) -> usize {
        self.inner.vocabulary_size()
    }
}

fn shipped_records(primary: &QueryService<DurableEngine>) -> Vec<WalRecord> {
    primary.with_read(|_, engine| engine.wal_records_from(0).unwrap())
}

fn docs(service: &QueryService<FlakySnapshots>, word: &str) -> (u64, Vec<u32>) {
    let resp = service.execute(&Request::Boolean(word.into())).unwrap();
    match resp.payload {
        Payload::Docs(ids) => (resp.epoch, ids),
        other => panic!("expected docs, got {other:?}"),
    }
}

#[test]
fn deferred_publication_keeps_epoch_and_replication_in_step() {
    let deferred = invidx_obs::registry().counter(names::SERVE_PUBLISH_DEFERRED);

    let primary =
        QueryService::with_config(create(&tmpdir("step-primary")), serve_cfg()).unwrap();
    primary.ingest_batch(&["cat dog", "dog fox"]).unwrap();
    primary.ingest_batch(&["bee ant cat"]).unwrap();
    let records = shipped_records(&primary);
    assert_eq!(records.len(), 2);

    let fail = Arc::new(AtomicU32::new(0));
    let engine = FlakySnapshots { inner: create(&tmpdir("step-replica")), fail: fail.clone() };
    let replica = QueryService::with_config_at(engine, serve_cfg(), 0).unwrap();

    // Record 1 commits, but both materialization attempts (incremental,
    // then the full-rebuild fallback) fail. The apply must still succeed
    // and the epoch must track the committed batch count.
    let before = deferred.get();
    fail.store(2, Ordering::SeqCst);
    let epoch = replica.apply_replicated(&records[0]).unwrap();
    assert_eq!(epoch, 1, "epoch advances with the durable commit");
    assert_eq!(replica.with_read(|_, e| e.batches()), 1);
    assert_eq!(fail.load(Ordering::SeqCst), 0, "incremental and full attempts both ran");
    assert_eq!(deferred.get(), before + 1, "the deferral is counted");
    // Committed but not yet visible: readers stay on the empty snapshot.
    assert_eq!(docs(&replica, "cat"), (0, vec![]));

    // Record 2 must not trip the gap check (the historical wedge), and its
    // successful publication surfaces BOTH batches at once — the dirty set
    // survived the failed materialization.
    let epoch = replica.apply_replicated(&records[1]).unwrap();
    assert_eq!(epoch, 2);
    assert_eq!(docs(&replica, "cat"), (2, vec![1, 3]));
    assert_eq!(docs(&replica, "fox"), (2, vec![2]));
}

#[test]
fn metrics_scrape_republishes_a_deferred_snapshot() {
    let primary =
        QueryService::with_config(create(&tmpdir("scrape-primary")), serve_cfg()).unwrap();
    primary.ingest_batch(&["whale squid"]).unwrap();
    let records = shipped_records(&primary);

    let fail = Arc::new(AtomicU32::new(0));
    let engine = FlakySnapshots { inner: create(&tmpdir("scrape-replica")), fail: fail.clone() };
    let replica = QueryService::with_config_at(engine, serve_cfg(), 0).unwrap();

    fail.store(2, Ordering::SeqCst);
    assert_eq!(replica.apply_replicated(&records[0]).unwrap(), 1);
    assert_eq!(docs(&replica, "whale"), (0, vec![]), "publication was deferred");

    // No further records arrive (write-quiet replica). A metrics scrape
    // that can take the writer lock retries the publication, so committed
    // state does not stay invisible until the next batch.
    replica.publish_gauges();
    assert_eq!(docs(&replica, "whale"), (1, vec![1]));
    assert_eq!(
        invidx_obs::registry().gauge(names::SERVE_PUBLISH_LAG).get(),
        0,
        "catch-up clears the publication lag gauge"
    );
}
