//! Regression test for queue-depth gauge hygiene: `serve_queue_depth` is
//! incremented exactly once at admission and must be decremented on every
//! exit path — served, shed, deadline-reaped, abandoned client, and the
//! shutdown drain — so it always returns to zero when the queue is idle.
//!
//! One `#[test]` on purpose: the gauge is process-global, so concurrent
//! tests in the same binary would race on its value.

use invidx_core::index::IndexConfig;
use invidx_disk::sparse_array;
use invidx_ir::SearchEngine;
use invidx_obs::names;
use invidx_serve::{Frontend, QueryService, Request, ServeConfig, ServeError};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn frontend(config: ServeConfig) -> Frontend<SearchEngine> {
    let array = sparse_array(2, 50_000, 256);
    let engine = SearchEngine::create(array, IndexConfig::small()).unwrap();
    let service = Arc::new(QueryService::with_config(engine, ServeConfig::default()).unwrap());
    service.ingest_batch(&["the quick brown fox", "lazy dog sleeps"]).unwrap();
    Frontend::start_with(service, config)
}

fn depth() -> i64 {
    invidx_obs::registry().gauge(names::SERVE_QUEUE_DEPTH).get()
}

/// Wedge the single reader on the engine write lock, run `f` while it is
/// stuck (submissions queue up behind it), then release and return.
fn with_wedged_reader(fe: &Frontend<SearchEngine>, f: impl FnOnce()) {
    let service = Arc::clone(fe.service());
    let gate = Arc::new(Barrier::new(2));
    let gate2 = Arc::clone(&gate);
    let blocker = std::thread::spawn(move || {
        service.with_blocked_writer(|| {
            gate2.wait(); // lock held
            gate2.wait(); // released when the caller is done
        });
    });
    gate.wait();
    // The reader dequeues this job and blocks inside execute(); its gauge
    // decrement has already happened by the time the queue is empty again.
    let parked = fe.submit(Request::Boolean("fox".into())).unwrap();
    while fe.queue_depth() > 0 {
        std::thread::yield_now();
    }
    f();
    gate.wait();
    blocker.join().unwrap();
    parked.wait().unwrap();
}

#[test]
fn queue_depth_gauge_returns_to_zero_on_every_exit_path() {
    assert_eq!(depth(), 0, "gauge must start clean");

    // Path 1: served. A normal round trip ends at zero.
    let fe = frontend(ServeConfig { readers: 1, ..ServeConfig::default() });
    fe.call(Request::Boolean("fox".into())).unwrap();
    assert_eq!(depth(), 0, "served");

    // Path 2: abandoned client. The ticket is dropped before the reply;
    // the reader still dequeues (and decrements) normally.
    let ticket = fe.submit(Request::Boolean("dog".into())).unwrap();
    drop(ticket);
    fe.call(Request::Ping).unwrap(); // fence: the dropped job has been processed
    assert_eq!(depth(), 0, "abandoned client");
    fe.shutdown();

    // Path 3: shed. Overfill the queue past high_water; the rejected job
    // must not leave a phantom increment behind.
    let fe = frontend(ServeConfig {
        readers: 1,
        high_water: 2,
        deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    });
    let mut tickets = Vec::new();
    with_wedged_reader(&fe, || {
        tickets.push(fe.submit(Request::Boolean("dog".into())).unwrap());
        tickets.push(fe.submit(Request::Boolean("quick".into())).unwrap());
        assert_eq!(depth(), 2, "two jobs queued behind the wedged reader");
        let err = fe.submit(Request::Boolean("lazy".into())).unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { .. }));
        assert_eq!(depth(), 2, "shed admission must not bump the gauge");
    });
    for t in tickets.drain(..) {
        t.wait().unwrap();
    }
    assert_eq!(depth(), 0, "shed");
    fe.shutdown();

    // Path 4: deadline-reaped. A zero-deadline job queued behind the wedge
    // is expired by the reader, not executed — still decremented.
    let fe = frontend(ServeConfig {
        readers: 1,
        high_water: 16,
        deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    });
    let mut reaped = None;
    with_wedged_reader(&fe, || {
        reaped = Some(
            fe.submit_with_deadline(Request::Boolean("dog".into()), Duration::ZERO).unwrap(),
        );
        assert_eq!(depth(), 1);
        std::thread::sleep(Duration::from_millis(5));
    });
    let err = reaped.unwrap().wait().unwrap_err();
    assert!(matches!(err, ServeError::Timeout { .. }));
    assert_eq!(depth(), 0, "deadline-reaped");
    fe.shutdown();

    // Path 5: shutdown drain. Jobs still queued when the frontend closes
    // are failed with Shutdown and drained in bulk — gauge included.
    let fe = frontend(ServeConfig {
        readers: 1,
        high_water: 16,
        deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    });
    let service = Arc::clone(fe.service());
    let gate = Arc::new(Barrier::new(2));
    let gate2 = Arc::clone(&gate);
    let blocker = std::thread::spawn(move || {
        service.with_blocked_writer(|| {
            gate2.wait();
            gate2.wait();
        });
    });
    gate.wait();
    let parked = fe.submit(Request::Boolean("fox".into())).unwrap();
    while fe.queue_depth() > 0 {
        std::thread::yield_now();
    }
    let t2 = fe.submit(Request::Boolean("dog".into())).unwrap();
    let t3 = fe.submit(Request::Boolean("quick".into())).unwrap();
    assert_eq!(depth(), 2);
    // shutdown() drains the queue first, then joins the reader — release
    // the wedge from a helper so the join can complete.
    let unwedge = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        gate.wait();
    });
    fe.shutdown();
    unwedge.join().unwrap();
    blocker.join().unwrap();
    parked.wait().unwrap();
    assert_eq!(t2.wait().unwrap_err().code(), "shutdown");
    assert_eq!(t3.wait().unwrap_err().code(), "shutdown");
    assert_eq!(depth(), 0, "shutdown drain");
}
