//! Readers-vs-writer stress tests with an oracle replay.
//!
//! The serving invariant under test: every `(epoch, result)` pair a
//! concurrent reader observes is exactly what a single-threaded replay of
//! the same batches produces when queried after that many flushes. The
//! oracle is built first by replaying the batch schedule on a private
//! engine and recording every query's answer at every epoch; then N client
//! threads hammer the admission front end while the writer applies the
//! same schedule, and each response is checked against the oracle row for
//! the epoch it carries.

use invidx_core::index::IndexConfig;
use invidx_disk::sparse_array;
use invidx_durable::{DurableOptions, StoreGeometry};
use invidx_ir::{DurableEngine, EngineQuery, QueryOutput, SearchEngine};
use invidx_serve::{
    Frontend, Payload, QueryService, Request, ServeConfig, ServeEngine,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const VOCAB: [&str; 12] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
    "lambda", "mu",
];

/// Deterministic doc text for `(batch, slot)` — same schedule every run.
fn doc_text(batch: usize, slot: usize) -> String {
    let mut state = (batch as u64) << 32 | slot as u64 | 1;
    let mut words = Vec::with_capacity(6);
    for _ in 0..6 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        words.push(VOCAB[((state >> 33) % VOCAB.len() as u64) as usize]);
    }
    words.join(" ")
}

fn batches(count: usize, docs_per_batch: usize) -> Vec<Vec<String>> {
    (0..count)
        .map(|b| (0..docs_per_batch).map(|s| doc_text(b, s)).collect())
        .collect()
}

fn query_mix() -> Vec<Request> {
    let mut qs: Vec<Request> =
        VOCAB.iter().take(6).map(|w| Request::Boolean((*w).into())).collect();
    qs.push(Request::Boolean("alpha and beta".into()));
    qs.push(Request::Boolean("(gamma or delta) and epsilon".into()));
    qs.push(Request::Phrase("alpha beta".into()));
    qs.push(Request::Near("zeta".into(), "eta".into(), 4));
    qs
}

fn run_request<E: ServeEngine>(engine: &E, req: &Request) -> Vec<u32> {
    let query = match req {
        Request::Boolean(q) => EngineQuery::Boolean(q.clone()),
        Request::Phrase(p) => EngineQuery::Phrase(p.clone()),
        Request::Near(w1, w2, win) => {
            EngineQuery::Near { w1: w1.clone(), w2: w2.clone(), window: *win }
        }
        other => panic!("not an oracle query: {other:?}"),
    };
    match engine.execute(&query).unwrap() {
        QueryOutput::Docs(list) => list.docs().iter().map(|d| d.0).collect(),
        other => panic!("oracle query answered {other:?}"),
    }
}

/// Replay the schedule single-threaded: `oracle[epoch][wire-form] = docs`.
fn build_oracle(schedule: &[Vec<String>], queries: &[Request]) -> Vec<HashMap<String, Vec<u32>>> {
    let array = sparse_array(2, 100_000, 256);
    let mut engine = SearchEngine::create(array, IndexConfig::small()).unwrap();
    let mut oracle = Vec::with_capacity(schedule.len() + 1);
    let row = |engine: &SearchEngine| {
        queries.iter().map(|q| (q.to_wire(), run_request(engine, q))).collect()
    };
    oracle.push(row(&engine));
    for batch in schedule {
        for text in batch {
            engine.add_document(text).unwrap();
        }
        engine.flush().unwrap();
        oracle.push(row(&engine));
    }
    oracle
}

#[test]
fn eight_readers_one_writer_match_oracle_replay() {
    let schedule = batches(12, 8);
    let queries = query_mix();
    let oracle = Arc::new(build_oracle(&schedule, &queries));

    let array = sparse_array(2, 100_000, 256);
    let engine = SearchEngine::create(array, IndexConfig::small()).unwrap();
    let config = ServeConfig::builder()
        .result_cache_capacity(64)
        .readers(4)
        .high_water(256)
        .deadline(Duration::from_secs(10))
        .build()
        .unwrap();
    let service = Arc::new(QueryService::with_config(engine, config).unwrap());
    let frontend = Arc::new(Frontend::start_with(Arc::clone(&service), config));
    let final_epoch = schedule.len() as u64;
    let checked = Arc::new(AtomicU64::new(0));

    let clients: Vec<_> = (0..8)
        .map(|c| {
            let frontend = Arc::clone(&frontend);
            let oracle = Arc::clone(&oracle);
            let queries = queries.clone();
            let checked = Arc::clone(&checked);
            std::thread::spawn(move || {
                let mut i = c; // stagger starting points across clients
                loop {
                    let done = frontend.service().epoch() == final_epoch;
                    let req = &queries[i % queries.len()];
                    i += 1;
                    let resp = frontend.call(req.clone()).unwrap();
                    let Payload::Docs(got) = &resp.payload else {
                        panic!("unexpected payload {:?}", resp.payload)
                    };
                    let want = &oracle[resp.epoch as usize][&req.to_wire()];
                    assert_eq!(
                        got, want,
                        "client {c}: {} at epoch {} diverged from oracle",
                        req.to_wire(),
                        resp.epoch
                    );
                    checked.fetch_add(1, Ordering::Relaxed);
                    if done && i % queries.len() == 0 {
                        break;
                    }
                }
            })
        })
        .collect();

    let writer = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            for (b, batch) in schedule.iter().enumerate() {
                let (_, epoch) = service.ingest_batch(batch).unwrap();
                assert_eq!(epoch, b as u64 + 1);
                std::thread::sleep(Duration::from_millis(3));
            }
        })
    };

    writer.join().unwrap();
    for client in clients {
        client.join().unwrap();
    }
    let total = checked.load(Ordering::Relaxed);
    assert!(total >= 8 * 10, "only {total} oracle-checked results");
    let stats = service.stats();
    assert_eq!(stats.docs, 12 * 8);
    assert_eq!(stats.batches, 12);
    assert_eq!(stats.shed, 0, "queue was sized to never shed here");
    assert_eq!(stats.timeouts, 0);
    assert!(stats.cache_hits > 0, "repeated queries should hit the cache");
    if let Ok(frontend) = Arc::try_unwrap(frontend) {
        frontend.shutdown();
    }
}

#[test]
fn serving_continues_while_checkpointing() {
    let dir = std::env::temp_dir()
        .join(format!("invidx-serve-ckpt-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let geometry = StoreGeometry { disks: 2, blocks_per_disk: 20_000, block_size: 256 };
    // checkpoint_every: 0 — the service decides when to checkpoint.
    let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
    let engine = DurableEngine::create(&dir, IndexConfig::small(), geometry, opts).unwrap();
    let service = Arc::new(QueryService::with_config(engine, ServeConfig::default()).unwrap());
    let frontend = Arc::new(Frontend::start_with(Arc::clone(&service), ServeConfig::default()));

    let schedule = batches(6, 4);
    let oracle = Arc::new(build_oracle(&schedule, &query_mix()));
    let final_epoch = schedule.len() as u64;

    let clients: Vec<_> = (0..4)
        .map(|c| {
            let frontend = Arc::clone(&frontend);
            let oracle = Arc::clone(&oracle);
            let queries = query_mix();
            std::thread::spawn(move || {
                let mut i = c;
                loop {
                    let done = frontend.service().epoch() == final_epoch;
                    let req = &queries[i % queries.len()];
                    i += 1;
                    let resp = frontend.call(req.clone()).unwrap();
                    let Payload::Docs(got) = &resp.payload else { panic!() };
                    assert_eq!(got, &oracle[resp.epoch as usize][&req.to_wire()]);
                    if done && i % queries.len() == 0 {
                        break;
                    }
                }
            })
        })
        .collect();

    // Writer: batch, checkpoint, batch, checkpoint... queries keep flowing
    // around each checkpoint's write-lock hold.
    for batch in &schedule {
        service.ingest_batch(batch).unwrap();
        let bytes = service.checkpoint().unwrap();
        assert!(bytes.is_some(), "durable engine must report checkpoint size");
    }
    for client in clients {
        client.join().unwrap();
    }
    if let Ok(frontend) = Arc::try_unwrap(frontend) {
        frontend.shutdown();
    }

    // The store must recover to exactly the served state.
    let service = Arc::try_unwrap(service).ok().expect("all clients done");
    let engine = service.into_engine();
    let total = ServeEngine::total_docs(&engine);
    drop(engine);
    let opts = DurableOptions { checkpoint_every: 0, ..Default::default() };
    let reopened = DurableEngine::open(&dir, IndexConfig::small(), opts).unwrap();
    assert_eq!(ServeEngine::total_docs(&reopened), total);
    assert_eq!(total, 6 * 4);
    for (req, want) in &oracle[oracle.len() - 1] {
        let got = run_request(&reopened, &Request::parse(req).unwrap());
        assert_eq!(&got, want, "{req} after recovery");
    }
    std::fs::remove_dir_all(&dir).ok();
}
