//! Property test for the epoch-invalidation rule of the result cache.
//!
//! Random interleavings of batch flushes and queries run against a
//! [`QueryService`] whose cache is deliberately tiny (so hits, misses,
//! stale drops, *and* evictions all occur). After every query the result
//! is compared with a brute-force model of the corpus at the current
//! epoch. Any stale cache entry surviving an epoch bump — the bug class
//! this exists to catch — shows up as a result that matches an *earlier*
//! corpus state instead of the current one.

use invidx_core::index::IndexConfig;
use invidx_disk::sparse_array;
use invidx_ir::SearchEngine;
use invidx_serve::{Payload, QueryService, Request, ServeConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;

const VOCAB: [&str; 8] = ["ant", "bee", "cat", "dog", "eel", "fox", "gnu", "hen"];

#[derive(Debug, Clone)]
enum Op {
    /// Flush a batch of docs; each doc is a set of vocabulary indices.
    Ingest(Vec<Vec<usize>>),
    /// Single-word query.
    Word(usize),
    /// Two-word conjunction.
    And(usize, usize),
    /// Two-word disjunction.
    Or(usize, usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let word = 0usize..VOCAB.len();
    let doc = prop::collection::vec(word.clone(), 1..5);
    let batch = prop::collection::vec(doc, 1..4);
    let op = prop_oneof![
        batch.prop_map(Op::Ingest),
        (0usize..VOCAB.len()).prop_map(Op::Word),
        (0usize..VOCAB.len(), 0usize..VOCAB.len()).prop_map(|(a, b)| Op::And(a, b)),
        (0usize..VOCAB.len(), 0usize..VOCAB.len()).prop_map(|(a, b)| Op::Or(a, b)),
    ];
    prop::collection::vec(op, 1..40)
}

/// Brute-force answer over the raw doc texts (doc ids are 1-based).
fn model_answer(docs: &[BTreeSet<usize>], op: &Op) -> Vec<u32> {
    let has = |d: &BTreeSet<usize>, w: &usize| d.contains(w);
    docs.iter()
        .enumerate()
        .filter(|(_, d)| match op {
            Op::Word(w) => has(d, w),
            Op::And(a, b) => has(d, a) && has(d, b),
            Op::Or(a, b) => has(d, a) || has(d, b),
            Op::Ingest(_) => unreachable!(),
        })
        .map(|(i, _)| i as u32 + 1)
        .collect()
}

fn to_request(op: &Op) -> Request {
    match op {
        Op::Word(w) => Request::Boolean(VOCAB[*w].into()),
        Op::And(a, b) => Request::Boolean(format!("{} and {}", VOCAB[*a], VOCAB[*b])),
        Op::Or(a, b) => Request::Boolean(format!("{} or {}", VOCAB[*a], VOCAB[*b])),
        Op::Ingest(_) => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cached_results_never_survive_postings_changes(ops in arb_ops()) {
        let array = sparse_array(2, 50_000, 256);
        let engine = SearchEngine::create(array, IndexConfig::small()).unwrap();
        // Capacity 4 with an 8-word vocabulary: constant eviction churn.
        let config = ServeConfig::builder().result_cache_capacity(4).build().unwrap();
        let service = QueryService::with_config(engine, config).unwrap();
        let mut corpus: Vec<BTreeSet<usize>> = Vec::new();
        let mut flushes = 0u64;

        for op in &ops {
            match op {
                Op::Ingest(batch) => {
                    let texts: Vec<String> = batch
                        .iter()
                        .map(|doc| {
                            doc.iter().map(|&w| VOCAB[w]).collect::<Vec<_>>().join(" ")
                        })
                        .collect();
                    let (_, epoch) = service.ingest_batch(&texts).unwrap();
                    corpus.extend(batch.iter().map(|d| d.iter().copied().collect()));
                    flushes += 1;
                    prop_assert_eq!(epoch, flushes);
                }
                query => {
                    let resp = service.execute(&to_request(query)).unwrap();
                    prop_assert_eq!(resp.epoch, flushes, "epoch must track flushes");
                    let want = model_answer(&corpus, query);
                    let Payload::Docs(got) = resp.payload else {
                        panic!("boolean query returned {:?}", resp.payload)
                    };
                    prop_assert_eq!(
                        got, want,
                        "{:?} at epoch {} returned a result for a different corpus state",
                        query, flushes
                    );
                }
            }
        }
        // Sanity: the run exercised the cache, not just the engine.
        let stats = service.stats();
        prop_assert_eq!(
            stats.cache_hits + stats.cache_misses,
            ops.iter().filter(|o| !matches!(o, Op::Ingest(_))).count() as u64
        );
    }
}
